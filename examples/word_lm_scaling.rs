//! Strong-scaling demo: the word LM across 1–8 simulated GPUs, baseline
//! vs techniques — a miniature of the paper's Table III, measured (not
//! modeled) on the thread-per-GPU simulator, including the baseline's
//! OOM cliff under a fixed device-memory cap.
//!
//! ```sh
//! cargo run --release --example word_lm_scaling
//! ```

use zipf_lm::{train, train_with_memory_limit, Method, ModelKind, TrainConfig, TrainError};

fn cfg(gpus: usize, method: Method) -> TrainConfig {
    TrainConfig {
        model: ModelKind::Word { vocab: 800 },
        gpus,
        batch: 8,
        seq_len: 16,
        steps_per_epoch: 20,
        epochs: 1,
        base_lr: 0.4,
        lr_decay: 0.95,
        method,
        seed: 11,
        tokens: 300_000,
    }
}

fn main() {
    println!(
        "{:>5} {:>15} {:>15} {:>12} {:>12} {:>8}",
        "GPUs", "base bytes/step", "ours bytes/step", "base mem", "ours mem", "Ug/step"
    );
    let mut base_peak_8 = 0;
    let mut ours_peak_8 = 0;
    for g in [1usize, 2, 4, 8] {
        let base = train(&cfg(g, Method::baseline())).expect("baseline");
        let ours = train(&cfg(g, Method::full())).expect("ours");
        if g == 8 {
            base_peak_8 = base.peak_mem_bytes;
            ours_peak_8 = ours.peak_mem_bytes;
        }
        println!(
            "{g:>5} {:>15.0} {:>15.0} {:>12} {:>12} {:>8.0}",
            base.mean_step_bytes(),
            ours.mean_step_bytes(),
            base.peak_mem_bytes,
            ours.peak_mem_bytes,
            ours.mean_unique_global
        );
    }

    // Now impose a device cap between the two 8-GPU peak usages: the
    // baseline must die the way the Titan X's 12 GB kills it in Table
    // III, while the unique path sails through.
    let cap = (base_peak_8 + ours_peak_8) / 2;
    println!("\nrerunning at 8 GPUs with a {cap}-byte device cap:");
    let verdict = |r: Result<zipf_lm::TrainReport, TrainError>| match r {
        Ok(rep) => format!("ok (ppl {:.1})", rep.final_ppl()),
        Err(TrainError::Oom(e)) => format!("OUT OF MEMORY ({e})"),
        Err(e) => format!("{e}"),
    };
    println!(
        "  baseline       : {}",
        verdict(train_with_memory_limit(&cfg(8, Method::baseline()), cap))
    );
    println!(
        "  with techniques: {}",
        verdict(train_with_memory_limit(&cfg(8, Method::full()), cap))
    );
    println!("\nfull-scale (calibrated) version: `cargo run -p zlm-bench --bin repro table3`");
}
