//! Strong-scaling demo: the word LM across 1–8 simulated GPUs, baseline
//! vs techniques — a miniature of the paper's Table III, measured (not
//! modeled) on the thread-per-GPU simulator, including the baseline's
//! OOM cliff under a fixed device-memory cap.
//!
//! ```sh
//! cargo run --release --example word_lm_scaling
//! ```

use zipf_lm::{
    chrome_trace_json_with_counters, train, train_with_faults, train_with_memory_limit,
    CheckpointConfig, CommConfig, FaultPlan, HealthEvent, Method, MetricsConfig, ModelKind,
    TraceConfig, TrainConfig, TrainError,
};

fn cfg(gpus: usize, method: Method) -> TrainConfig {
    TrainConfig {
        model: ModelKind::Word { vocab: 800 },
        gpus,
        batch: 8,
        seq_len: 16,
        steps_per_epoch: 20,
        epochs: 1,
        base_lr: 0.4,
        lr_decay: 0.95,
        method,
        seed: 11,
        tokens: 300_000,
        trace: TraceConfig::off(),
        metrics: MetricsConfig::off(),
        checkpoint: CheckpointConfig::off(),
        comm: CommConfig::flat(),
    }
}

fn main() {
    println!(
        "{:>5} {:>15} {:>15} {:>12} {:>12} {:>8}",
        "GPUs", "base bytes/step", "ours bytes/step", "base mem", "ours mem", "Ug/step"
    );
    let mut base_peak_8 = 0;
    let mut ours_peak_8 = 0;
    for g in [1usize, 2, 4, 8] {
        let base = train(&cfg(g, Method::baseline())).expect("baseline");
        let ours = train(&cfg(g, Method::full())).expect("ours");
        if g == 8 {
            base_peak_8 = base.peak_mem_bytes;
            ours_peak_8 = ours.peak_mem_bytes;
        }
        println!(
            "{g:>5} {:>15.0} {:>15.0} {:>12} {:>12} {:>8.0}",
            base.mean_step_bytes(),
            ours.mean_step_bytes(),
            base.peak_mem_bytes,
            ours.peak_mem_bytes,
            ours.mean_unique_global
        );
    }

    // Now impose a device cap between the two 8-GPU peak usages: the
    // baseline must die the way the Titan X's 12 GB kills it in Table
    // III, while the unique path sails through.
    let cap = (base_peak_8 + ours_peak_8) / 2;
    println!("\nrerunning at 8 GPUs with a {cap}-byte device cap:");
    let verdict = |r: Result<zipf_lm::TrainReport, TrainError>| match r {
        Ok(rep) => format!("ok (ppl {:.1})", rep.final_ppl()),
        Err(TrainError::Oom(e)) => format!("OUT OF MEMORY ({e})"),
        Err(e) => format!("{e}"),
    };
    println!(
        "  baseline       : {}",
        verdict(train_with_memory_limit(&cfg(8, Method::baseline()), cap))
    );
    println!(
        "  with techniques: {}",
        verdict(train_with_memory_limit(&cfg(8, Method::full()), cap))
    );
    // Traced rerun: 4 GPUs with rank 2 straggling 5 ms per step. Every
    // rank records span events; the merged Chrome trace and rank 0's
    // per-step JSONL land under target/ for inspection.
    println!("\ntraced 4-GPU run (rank 2 straggles 5 ms/step):");
    let mut tcfg = cfg(4, Method::full());
    tcfg.steps_per_epoch = 8;
    tcfg.trace = TraceConfig::on();
    tcfg.metrics = MetricsConfig::on();
    let plan = FaultPlan::none().straggle(2, std::time::Duration::from_millis(5));
    let reports: Vec<_> = train_with_faults(&tcfg, u64::MAX / 4, &plan)
        .into_iter()
        .map(|r| r.expect("traced run"))
        .collect();
    println!(
        "  {:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "rank", "compute ps", "wire ps", "barrier ps", "skew ps", "delay ps"
    );
    for (r, rep) in reports.iter().enumerate() {
        let a = &rep.attribution;
        println!(
            "  {r:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
            a.compute_ps,
            a.wire_ps(),
            a.barrier_wait_ps,
            a.skew_ps,
            a.self_delay_ps
        );
    }
    // Fleet metrics: the health monitor should have flagged the injected
    // straggler, and rank 0 carries the exact cross-rank merged registry
    // plus the byte-stable RunSummary artifact bench-diff gates on.
    for ev in &reports[0].health {
        match ev {
            HealthEvent::Straggler {
                rank,
                factor_milli,
                step,
            } => println!(
                "  health: rank {rank} straggling at {:.2}x the median (flagged at step {step})",
                *factor_milli as f64 / 1000.0
            ),
            HealthEvent::TraceTruncated { rank, dropped } => {
                println!("  health: rank {rank} trace ring dropped {dropped} span(s)")
            }
            HealthEvent::CheckpointCorrupt { rank, step } => {
                println!("  health: rank {rank} checkpoint at step {step} corrupt on disk")
            }
            HealthEvent::Recovery { round, survivors } => {
                println!("  health: recovery round {round}, {survivors} survivor(s)")
            }
        }
    }
    let summary = reports[0].run_summary(&tcfg);
    println!(
        "  summary: step p50 {} ps, p95 {} ps, p99 {} ps, max {} ps",
        summary.step_p50_ps, summary.step_p95_ps, summary.step_p99_ps, summary.step_max_ps
    );
    let logs: Vec<_> = reports.iter().filter_map(|rep| rep.trace.clone()).collect();
    let _ = std::fs::create_dir_all("target");
    let chrome = "target/word_lm_scaling.trace.json";
    let jsonl = "target/word_lm_scaling.steps.jsonl";
    let summary_path = "target/word_lm_scaling.summary.json";
    // Counter tracks ride in the same Chrome trace as "C"-phase events:
    // wire bytes and Ug per step render as counter charts above the spans.
    std::fs::write(
        chrome,
        chrome_trace_json_with_counters(&logs, &reports[0].counter_tracks()),
    )
    .expect("write chrome trace");
    std::fs::write(jsonl, reports[0].steps_jsonl()).expect("write step jsonl");
    std::fs::write(summary_path, summary.to_json()).expect("write run summary");
    println!("  wrote {chrome} (open in chrome://tracing), {jsonl} and {summary_path}");

    println!("\nfull-scale (calibrated) version: `cargo run -p zlm-bench --bin repro table3`");
}
