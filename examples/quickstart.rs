//! Quickstart: train a small word LM on 4 simulated GPUs with all three
//! of the paper's techniques, and compare against the baseline exchange.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use zipf_lm::{
    train, CheckpointConfig, CommConfig, Method, MetricsConfig, ModelKind, TraceConfig, TrainConfig,
};

fn main() {
    let mut cfg = TrainConfig {
        model: ModelKind::Word { vocab: 500 },
        gpus: 4,
        batch: 8,
        seq_len: 16,
        steps_per_epoch: 40,
        epochs: 2,
        base_lr: 0.5,
        lr_decay: 0.9,
        method: Method::full(),
        seed: 42,
        tokens: 100_000,
        trace: TraceConfig::off(),
        metrics: MetricsConfig::off(),
        checkpoint: CheckpointConfig::off(),
        comm: CommConfig::flat(),
    };

    println!(
        "training word LM on {} simulated GPUs (uniqueness + seeding + fp16)...",
        cfg.gpus
    );
    let ours = train(&cfg).expect("training");
    for e in &ours.epochs {
        println!(
            "  epoch {}: train loss {:.3}, valid ppl {:.1}, simulated time {:.2}s",
            e.epoch + 1,
            e.train_loss,
            e.valid_ppl,
            e.sim_time_s
        );
    }

    cfg.method = Method::baseline();
    println!("\nsame model with the baseline dense ALLGATHER exchange...");
    let base = train(&cfg).expect("training");

    println!("\n                        baseline      with techniques");
    println!(
        "final perplexity      : {:>10.1}   {:>10.1}   (accuracy preserved)",
        base.final_ppl(),
        ours.final_ppl()
    );
    println!(
        "wire bytes (total)    : {:>10}   {:>10}   ({:.1}x less)",
        base.traffic.total_bytes(),
        ours.traffic.total_bytes(),
        base.traffic.total_bytes() as f64 / ours.traffic.total_bytes() as f64
    );
    println!(
        "peak GPU memory       : {:>10}   {:>10}   ({:.1}x less)",
        base.peak_mem_bytes,
        ours.peak_mem_bytes,
        base.peak_mem_bytes as f64 / ours.peak_mem_bytes as f64
    );
    println!(
        "mean unique words/step: {:>10}   {:>10}   (Zipf's law at work)",
        "-",
        ours.mean_unique_global.round()
    );
}
