//! Character-level LM (the paper's RHN model, scaled down) on the
//! English alphabet profile: trains across simulated GPUs and reports
//! perplexity and bits-per-character.
//!
//! ```sh
//! cargo run --release --example char_lm
//! ```

use zipf_lm::{
    train, CheckpointConfig, CommConfig, Method, MetricsConfig, ModelKind, TraceConfig, TrainConfig,
};

fn main() {
    let cfg = TrainConfig {
        model: ModelKind::Char { vocab: 98 },
        gpus: 4,
        batch: 4,
        seq_len: 12,
        steps_per_epoch: 0, // full shard per epoch
        epochs: 3,
        base_lr: 0.8,
        lr_decay: 0.9,
        method: Method::unique(), // §V-B: no seeding for char LMs (full softmax)
        seed: 5,
        tokens: 120_000,
        trace: TraceConfig::off(),
        metrics: MetricsConfig::off(),
        checkpoint: CheckpointConfig::off(),
        comm: CommConfig::flat(),
    };

    println!(
        "char LM (RHN depth {}, {} cells) on a 98-char alphabet, {} simulated GPUs",
        cfg.model.char_config().depth,
        cfg.model.char_config().hidden,
        cfg.gpus
    );
    let rep = train(&cfg).expect("training");
    println!(
        "{:>6} {:>12} {:>10} {:>8}",
        "epoch", "train loss", "ppl", "BPC"
    );
    for e in &rep.epochs {
        println!(
            "{:>6} {:>12.4} {:>10.3} {:>8.3}",
            e.epoch + 1,
            e.train_loss,
            e.valid_ppl,
            e.valid_bpc
        );
    }
    println!(
        "\nunique chars per step saturate at the alphabet: mean Ug = {:.1} (vocab 98) —",
        rep.mean_unique_global
    );
    println!("\"the number of unique characters becomes constant as we keep increasing the batch size\" (§V-B).");
}
