//! Elastic recovery walkthrough: kill a rank mid-epoch, shrink to the
//! survivors, restore from the last consistent checkpoint and finish
//! the run — then export a chrome trace with the recovery marker.
//!
//! ```sh
//! cargo run --release --example elastic_recovery
//! ```
//!
//! Open `target/elastic.trace.json` in `chrome://tracing` or Perfetto;
//! the `Recovery` span on the timeline marks the restart.

use simgpu::FaultPlan;
use zipf_lm::{
    chrome_trace_json, train_elastic, CheckpointConfig, CommConfig, Method, MetricsConfig,
    ModelKind, RecoveryPolicy, TraceConfig, TrainConfig,
};

fn main() {
    let cfg = TrainConfig {
        model: ModelKind::Word { vocab: 500 },
        gpus: 4,
        batch: 8,
        seq_len: 16,
        steps_per_epoch: 40,
        epochs: 2,
        base_lr: 0.5,
        lr_decay: 0.9,
        method: Method::full(),
        seed: 42,
        tokens: 100_000,
        trace: TraceConfig::on(),
        metrics: MetricsConfig::off(),
        checkpoint: CheckpointConfig::every(10),
        comm: CommConfig::flat(),
    };

    // Rank 3 dies once, mid-way through epoch 1.
    let plan = FaultPlan::none().kill_rank_transient(3, 55);

    println!(
        "elastic run: {} GPUs, checkpoint every {} steps, rank 3 dies at step 55...",
        cfg.gpus, cfg.checkpoint.every_steps
    );
    let outcome = train_elastic(&cfg, &plan, RecoveryPolicy::default()).expect("elastic run");

    for ev in &outcome.recoveries {
        println!(
            "  recovery #{}: ranks {:?} failed, world {} -> {}, restored step {:?} ({} steps lost, stalled {:.2}ms)",
            ev.restart,
            ev.failed_ranks,
            ev.world_before,
            ev.world_after,
            ev.restored_step,
            ev.steps_lost,
            ev.stall_ns as f64 / 1e6
        );
    }
    println!(
        "finished at world {} (started at {})",
        outcome.final_world, outcome.initial_world
    );
    for e in &outcome.report.epochs {
        println!(
            "  epoch {}: train loss {:.3}, valid ppl {:.1}",
            e.epoch + 1,
            e.train_loss,
            e.valid_ppl
        );
    }

    if let Some(trace) = &outcome.report.trace {
        let json = chrome_trace_json(std::slice::from_ref(trace));
        let path = "target/elastic.trace.json";
        std::fs::write(path, json).expect("write trace");
        println!("chrome trace (with Recovery marker) written to {path}");
    }
}
