//! Chaos walkthrough: durable checkpoints surviving disk rot.
//!
//! A four-GPU run checkpoints to an on-disk store; rank 1's step-20
//! snapshot is bit-flipped on disk, then rank 2 dies at step 25. The
//! recovery scan detects the corrupt frame (CRC mismatch), falls back
//! to the newest fully-intact cut, shrinks to the survivors and
//! finishes — with the damage surfaced as a typed health event and a
//! `Recovery` marker on the chrome trace.
//!
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```
//!
//! Open `target/chaos.trace.json` in `chrome://tracing` or Perfetto;
//! the `Recovery` span marks the restart. The checkpoint directory is
//! left under `target/chaos-ckpts` for inspection — the damaged frame
//! is still there, exactly as the scan saw it.

use simgpu::{DiskFault, DiskFaultPlan, FaultPlan};
use std::sync::Arc;
use zipf_lm::{
    chrome_trace_json, train_elastic_durable, CheckpointConfig, CheckpointDir, CommConfig,
    HealthEvent, Method, MetricsConfig, ModelKind, RecoveryPolicy, TraceConfig, TrainConfig,
};

fn main() {
    let cfg = TrainConfig {
        model: ModelKind::Word { vocab: 500 },
        gpus: 4,
        batch: 8,
        seq_len: 16,
        steps_per_epoch: 40,
        epochs: 2,
        base_lr: 0.5,
        lr_decay: 0.9,
        method: Method::full(),
        seed: 42,
        tokens: 100_000,
        trace: TraceConfig::on(),
        metrics: MetricsConfig::off(),
        checkpoint: CheckpointConfig::every(10),
        comm: CommConfig::flat(),
    };

    // The chaos: rank 1's step-20 frame rots on disk (one flipped bit
    // in the payload), then rank 2 dies at step 25.
    let disk = DiskFaultPlan::none().inject(1, 20, DiskFault::BitFlip { byte: 99, bit: 5 });
    let plan = FaultPlan::none().kill_rank_transient(2, 25);

    let root = "target/chaos-ckpts";
    let _ = std::fs::remove_dir_all(root);
    let backend = Arc::new(
        CheckpointDir::open_with_faults(root, cfg.checkpoint.keep_last, disk)
            .expect("open checkpoint dir"),
    );

    println!(
        "chaos run: {} GPUs, checkpoints on disk at {root}, \
         rank 1's step-20 frame bit-flipped, rank 2 dies at step 25...",
        cfg.gpus
    );
    let policy = RecoveryPolicy {
        backoff: std::time::Duration::from_millis(50),
        ..RecoveryPolicy::default()
    };
    let outcome = train_elastic_durable(&cfg, &plan, policy, backend).expect("chaos run recovers");

    for ev in &outcome.recoveries {
        println!(
            "  recovery #{}: ranks {:?} failed, world {} -> {}, restored step {:?} \
             ({} steps lost, backoff {:.2}ms simulated)",
            ev.restart,
            ev.failed_ranks,
            ev.world_before,
            ev.world_after,
            ev.restored_step,
            ev.steps_lost,
            ev.backoff_ps as f64 / 1e9
        );
    }
    for h in &outcome.report.health {
        if let HealthEvent::CheckpointCorrupt { rank, step } = h {
            println!("  corrupt frame detected: rank {rank}, step {step} (skipped by the scan)");
        }
    }
    let summary = outcome.report.run_summary(&cfg);
    println!(
        "finished at world {} (started at {}): {} recoveries, {} corrupt frames",
        outcome.final_world, outcome.initial_world, summary.recoveries, summary.corruptions
    );
    for e in &outcome.report.epochs {
        println!(
            "  epoch {}: train loss {:.3}, valid ppl {:.1}",
            e.epoch + 1,
            e.train_loss,
            e.valid_ppl
        );
    }

    if let Some(trace) = &outcome.report.trace {
        let json = chrome_trace_json(std::slice::from_ref(trace));
        let path = "target/chaos.trace.json";
        std::fs::write(path, json).expect("write trace");
        println!("chrome trace (with Recovery marker) written to {path}");
    }
}
