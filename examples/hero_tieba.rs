//! The §V-C "hero run" in miniature: weak scaling a Chinese-profile
//! char LM (the paper's 15 K-character vocabulary scaled to 2 K) — more
//! GPUs AND proportionally more data, reproducing the paper's headline:
//! large accuracy gains from training on more data.
//!
//! Like Table V, the learning rate grows with scale (the paper uses
//! 2e-4 / 4e-4 / 5e-4 at 6 / 24 / 192 GPUs) to keep the larger global
//! batches training well.
//!
//! The *time* side of the weak-scaling claim (32× data for 1.25× hours)
//! lives in the calibrated full-scale model:
//! `cargo run -p zlm-bench --bin repro table5`.
//!
//! ```sh
//! cargo run --release --example hero_tieba
//! ```

use zipf_lm::{
    train, CheckpointConfig, CommConfig, Method, MetricsConfig, ModelKind, TraceConfig, TrainConfig,
};

fn main() {
    println!("Tieba weak scaling (miniature): vocab 2000, data grows with GPUs\n");
    println!(
        "{:>6} {:>10} {:>8} {:>10} {:>8}",
        "GPUs", "tokens", "lr", "ppl", "gain"
    );

    let mut base_ppl = None;
    for (gpus, data_mult, lr) in [(1usize, 1usize, 0.8f32), (4, 4, 1.1), (8, 16, 1.4)] {
        // More capacity than the default small config so the larger
        // corpora actually pay off (the paper's model has 213 M params).
        let model = ModelKind::CharCustom(nn::model::CharLmConfig {
            vocab: 2000,
            embed_dim: 32,
            hidden: 64,
            depth: 3,
        });
        let cfg = TrainConfig {
            model,
            gpus,
            batch: 4,
            seq_len: 10,
            steps_per_epoch: 0,
            epochs: 1,
            base_lr: lr,
            lr_decay: 0.9,
            method: Method::full(),
            seed: 999,
            tokens: 30_000 * data_mult,
            trace: TraceConfig::off(),
            metrics: MetricsConfig::off(),
            checkpoint: CheckpointConfig::off(),
            comm: CommConfig::flat(),
        };
        let rep = train(&cfg).expect("training");
        let ppl = rep.final_ppl();
        let base = *base_ppl.get_or_insert(ppl);
        println!(
            "{gpus:>6} {:>10} {lr:>8.1} {ppl:>10.2} {:>7.0}%",
            cfg.tokens,
            (base - ppl) / base * 100.0
        );
    }
    println!("\npaper at full scale: 20% better at 4x data, 35% better at 32x (192 GPUs, 93 GB),");
    println!("for only 1.25x the training time — see `repro table5` for the time model.");
}
