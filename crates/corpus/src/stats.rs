//! Table I style corpus statistics.
//!
//! The paper's Table I reports characters, words and bytes per dataset.
//! Synthetic corpora have no literal surface text, so we assign each word
//! rank a plausible surface length via Zipf's law of abbreviation
//! (frequent words are short): `len(r) = 2 + ⌊0.55 · ln(r + 2)⌋`, which
//! gives "the"-like lengths at the head and long rare words in the tail,
//! and report synthetic chars/bytes from it.

use crate::generator::Corpus;
use crate::profile::TokenUnit;
use zipf::FrequencyTable;

/// Summary statistics of a (synthetic) corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusStats {
    /// Total tokens.
    pub tokens: u64,
    /// Distinct tokens (types).
    pub types: u64,
    /// Synthetic character count (word corpora: surface letters + one
    /// separating space per token; char corpora: 1 per token).
    pub chars: u64,
    /// Synthetic byte count (English: 1 byte/char; Chinese: 3 bytes/char
    /// in UTF-8, which is why Tieba's 34 B chars occupy 93 GB).
    pub bytes: u64,
}

/// Surface length (in characters) assigned to word rank `r`.
pub fn word_surface_len(rank: u32) -> u64 {
    2 + (0.55 * ((rank as f64) + 2.0).ln()) as u64
}

/// Computes statistics for a corpus; `bytes_per_char` is 1 for English
/// and 3 for UTF-8 Chinese.
pub fn corpus_stats(corpus: &Corpus, bytes_per_char: u64) -> CorpusStats {
    let mut freq = FrequencyTable::new();
    freq.add_all(&corpus.tokens);
    let chars: u64 = match corpus.unit {
        TokenUnit::Word => corpus
            .tokens
            .iter()
            .map(|&t| word_surface_len(t) + 1) // + separating space
            .sum(),
        TokenUnit::Char => corpus.tokens.len() as u64,
    };
    CorpusStats {
        tokens: freq.tokens(),
        types: freq.types() as u64,
        chars,
        bytes: chars * bytes_per_char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::CorpusGenerator;
    use crate::profile::DatasetProfile;

    #[test]
    fn abbreviation_law_monotone() {
        assert!(word_surface_len(0) <= word_surface_len(100));
        assert!(word_surface_len(100) <= word_surface_len(1_000_000));
        // Head words are short, tail words long-ish.
        assert!(word_surface_len(0) <= 3);
        assert!(word_surface_len(1_000_000) >= 8);
    }

    #[test]
    fn word_stats_count_correctly() {
        let p = DatasetProfile::one_billion();
        let c = CorpusGenerator::new(&p, TokenUnit::Word, 1).corpus(10_000);
        let s = corpus_stats(&c, 1);
        assert_eq!(s.tokens, 10_000);
        assert!(s.types < s.tokens);
        // Avg English word ≈ 3–6 synthetic chars + space.
        let avg = s.chars as f64 / s.tokens as f64;
        assert!(avg > 3.0 && avg < 9.0, "avg {avg}");
        assert_eq!(s.bytes, s.chars);
    }

    #[test]
    fn char_stats_one_char_per_token() {
        let p = DatasetProfile::tieba();
        let c = CorpusGenerator::new(&p, TokenUnit::Char, 1).corpus(5_000);
        let s = corpus_stats(&c, 3);
        assert_eq!(s.chars, 5_000);
        assert_eq!(s.bytes, 15_000); // UTF-8 Chinese ≈ 3 bytes/char
    }

    #[test]
    fn chinese_bytes_ratio_matches_table1() {
        // Table I: Tieba has 34.36 B chars in 93.12 GB ⇒ ~2.7 bytes/char;
        // our 3-bytes/char model is within 12%.
        let paper_ratio: f64 = 93.12e9 / 34.36e9;
        assert!((paper_ratio - 3.0).abs() / 3.0 < 0.12);
    }
}
