//! Synthetic Zipfian corpora standing in for the paper's datasets.
//!
//! The paper evaluates on 1-Billion-Word, Gutenberg, Common Crawl, Amazon
//! Reviews (English, word- and char-level) and Baidu Tieba (Chinese,
//! char-level). None of those corpora ship with this reproduction, but
//! every property the paper's techniques exploit — the Zipfian
//! rank-frequency law and the resulting sub-linear type–token growth — is
//! captured by a seeded Zipf–Mandelbrot generator per dataset profile.
//!
//! * [`profile::DatasetProfile`] — per-dataset generation parameters plus
//!   the paper's Table I ground-truth statistics.
//! * [`generator::CorpusGenerator`] / [`generator::Corpus`] — deterministic
//!   token-stream synthesis.
//! * [`vocab::Vocab`] — most-frequent-K vocabulary truncation with UNK
//!   (the §IV-A procedure) and coverage reporting.
//! * [`split`] — the 99:1 / 1000:1 train–validation splits of §IV-A.
//! * [`batch`] — contiguous LM batching `[batch, seq_len]` with next-token
//!   targets and per-GPU sharding for data parallelism.
//! * [`stats`] — Table I style corpus statistics (tokens, types, synthetic
//!   surface bytes).

pub mod batch;
pub mod generator;
pub mod profile;
pub mod split;
pub mod stats;
pub mod vocab;

pub use batch::{shard_batches, Batch, BatchSpec};
pub use generator::{Corpus, CorpusGenerator};
pub use profile::{DatasetProfile, Language, TokenUnit};
pub use split::train_valid_split;
pub use stats::{corpus_stats, CorpusStats};
pub use vocab::Vocab;
