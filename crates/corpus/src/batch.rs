//! LM batching and per-GPU sharding.
//!
//! The paper's data parallelism (§II-B): each GPU consumes `K/c` sequences
//! of length `c` per step — a local batch of `K` tokens — drawn from its
//! own shard of the corpus. We use the standard continuous-batching
//! layout: the shard is split into `batch` contiguous lanes; each step
//! advances every lane by `seq_len` tokens, and targets are the inputs
//! shifted by one.

/// Shape of one training step's data on one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSpec {
    /// Number of sequences processed in parallel (lanes).
    pub batch: usize,
    /// Tokens per sequence per step (the paper's `c`).
    pub seq_len: usize,
}

impl BatchSpec {
    /// Local batch size `K = batch · seq_len` in tokens.
    pub fn tokens_per_step(&self) -> usize {
        self.batch * self.seq_len
    }
}

/// One training step's data: `batch × seq_len` inputs and their
/// next-token targets, both row-major `[lane][position]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Input token ids, `batch * seq_len` entries.
    pub inputs: Vec<u32>,
    /// Target token ids (inputs shifted by one), same shape.
    pub targets: Vec<u32>,
    /// Number of lanes.
    pub batch: usize,
    /// Positions per lane.
    pub seq_len: usize,
}

impl Batch {
    /// Input row for one lane.
    pub fn input_lane(&self, lane: usize) -> &[u32] {
        &self.inputs[lane * self.seq_len..(lane + 1) * self.seq_len]
    }

    /// Target row for one lane.
    pub fn target_lane(&self, lane: usize) -> &[u32] {
        &self.targets[lane * self.seq_len..(lane + 1) * self.seq_len]
    }
}

/// Iterator over the batches of one GPU's shard.
pub struct BatchIter<'a> {
    lanes: Vec<&'a [u32]>,
    spec: BatchSpec,
    step: usize,
    steps: usize,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.step >= self.steps {
            return None;
        }
        let BatchSpec { batch, seq_len } = self.spec;
        let off = self.step * seq_len;
        let mut inputs = Vec::with_capacity(batch * seq_len);
        let mut targets = Vec::with_capacity(batch * seq_len);
        for lane in &self.lanes {
            inputs.extend_from_slice(&lane[off..off + seq_len]);
            targets.extend_from_slice(&lane[off + 1..off + seq_len + 1]);
        }
        self.step += 1;
        Some(Batch {
            inputs,
            targets,
            batch,
            seq_len,
        })
    }
}

impl ExactSizeIterator for BatchIter<'_> {
    fn len(&self) -> usize {
        self.steps - self.step
    }
}

/// Builds the batch iterator for GPU `rank` of `world` over `tokens`.
///
/// The corpus is first cut into `world` equal shards (GPU `g` gets shard
/// `g`), then each shard into `batch` contiguous lanes. Every lane keeps
/// one look-ahead token so targets exist for the final step.
///
/// Returns an empty iterator if the shard is too small for even one step.
pub fn shard_batches(tokens: &[u32], spec: BatchSpec, rank: usize, world: usize) -> BatchIter<'_> {
    assert!(
        world >= 1 && rank < world,
        "rank {rank} out of world {world}"
    );
    assert!(
        spec.batch >= 1 && spec.seq_len >= 1,
        "degenerate batch spec"
    );

    let shard_len = tokens.len() / world;
    let shard = &tokens[rank * shard_len..(rank + 1) * shard_len];

    let lane_len = shard.len() / spec.batch;
    // Usable steps: each step consumes seq_len tokens and needs +1 target.
    let steps = if lane_len > spec.seq_len {
        (lane_len - 1) / spec.seq_len
    } else {
        0
    };
    let lanes: Vec<&[u32]> = (0..spec.batch)
        .map(|b| &shard[b * lane_len..(b + 1) * lane_len])
        .collect();
    BatchIter {
        lanes,
        spec,
        step: 0,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_are_inputs_shifted() {
        let tokens: Vec<u32> = (0..100).collect();
        let spec = BatchSpec {
            batch: 2,
            seq_len: 5,
        };
        let batches: Vec<Batch> = shard_batches(&tokens, spec, 0, 1).collect();
        assert!(!batches.is_empty());
        for b in &batches {
            for lane in 0..2 {
                let inp = b.input_lane(lane);
                let tgt = b.target_lane(lane);
                for i in 0..5 {
                    assert_eq!(tgt[i], inp[i] + 1);
                }
            }
        }
    }

    #[test]
    fn lanes_are_contiguous_streams_across_steps() {
        let tokens: Vec<u32> = (0..1000).collect();
        let spec = BatchSpec {
            batch: 4,
            seq_len: 7,
        };
        let batches: Vec<Batch> = shard_batches(&tokens, spec, 0, 1).collect();
        for lane in 0..4 {
            let mut prev_last = None;
            for b in &batches {
                let inp = b.input_lane(lane);
                if let Some(p) = prev_last {
                    assert_eq!(inp[0], p + 1);
                }
                prev_last = Some(*inp.last().unwrap());
            }
        }
    }

    #[test]
    fn shards_are_disjoint() {
        let tokens: Vec<u32> = (0..1200).collect();
        let spec = BatchSpec {
            batch: 2,
            seq_len: 4,
        };
        let b0: Vec<u32> = shard_batches(&tokens, spec, 0, 3)
            .flat_map(|b| b.inputs)
            .collect();
        let b2: Vec<u32> = shard_batches(&tokens, spec, 2, 3)
            .flat_map(|b| b.inputs)
            .collect();
        assert!(b0
            .iter()
            .all(|t| b2.binary_search(t).is_err() || !b2.contains(t)));
        assert!(b0.iter().max() < b2.iter().min());
    }

    #[test]
    fn step_count_uses_full_lane() {
        let tokens: Vec<u32> = (0..101).collect(); // 1 lane of 101
        let spec = BatchSpec {
            batch: 1,
            seq_len: 10,
        };
        let it = shard_batches(&tokens, spec, 0, 1);
        assert_eq!(it.len(), 10); // (101-1)/10
    }

    #[test]
    fn too_small_shard_yields_nothing() {
        let tokens: Vec<u32> = (0..8).collect();
        let spec = BatchSpec {
            batch: 4,
            seq_len: 5,
        };
        assert_eq!(shard_batches(&tokens, spec, 0, 1).count(), 0);
    }

    #[test]
    fn tokens_per_step() {
        let spec = BatchSpec {
            batch: 32,
            seq_len: 20,
        };
        // The paper's word-LM local batch: 32 sequences × 20 tokens = 640.
        assert_eq!(spec.tokens_per_step(), 640);
    }

    #[test]
    #[should_panic(expected = "out of world")]
    fn bad_rank_panics() {
        let tokens = [0u32; 10];
        shard_batches(
            &tokens,
            BatchSpec {
                batch: 1,
                seq_len: 2,
            },
            3,
            2,
        );
    }
}
