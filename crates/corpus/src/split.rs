//! Train / validation splits — §IV-A.
//!
//! "To train the models and to test the accuracy, we split the first two
//! datasets into 99:1 ratio and the last two into 1000:1 ratio … Each
//! split is created by sampling without replacement and a fixed random
//! seed." We sample *blocks* (not individual tokens) without replacement
//! so validation text retains local sequential structure for the LM to
//! predict.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Block size used when assigning text to the validation split.
const BLOCK: usize = 256;

/// Splits `tokens` so roughly `1/denominator` of blocks land in the
/// validation set (denominator 100 ⇒ 99:1, 1001 ⇒ 1000:1), sampling
/// blocks without replacement with the fixed `seed`.
///
/// Returns `(train, valid)`. The final partial block always stays in
/// train so validation length is a multiple of `BLOCK` (except for tiny
/// inputs where everything stays in train).
pub fn train_valid_split(tokens: &[u32], denominator: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
    assert!(denominator >= 2, "denominator must be >= 2");
    let n_blocks = tokens.len() / BLOCK;
    let n_valid = n_blocks / denominator;
    if n_valid == 0 {
        return (tokens.to_vec(), Vec::new());
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..n_blocks).collect();
    idx.shuffle(&mut rng);
    let mut valid_blocks: Vec<usize> = idx[..n_valid].to_vec();
    valid_blocks.sort_unstable();

    let mut train = Vec::with_capacity(tokens.len());
    let mut valid = Vec::with_capacity(n_valid * BLOCK);
    let mut next_valid = 0usize;
    for b in 0..n_blocks {
        let chunk = &tokens[b * BLOCK..(b + 1) * BLOCK];
        if next_valid < valid_blocks.len() && valid_blocks[next_valid] == b {
            valid.extend_from_slice(chunk);
            next_valid += 1;
        } else {
            train.extend_from_slice(chunk);
        }
    }
    train.extend_from_slice(&tokens[n_blocks * BLOCK..]);
    (train, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn partition_preserves_all_tokens() {
        let tokens = stream(100_000);
        let (train, valid) = train_valid_split(&tokens, 100, 7);
        assert_eq!(train.len() + valid.len(), tokens.len());
        // Distinct ids in this stream: union must be exact.
        let mut all: Vec<u32> = train.iter().chain(valid.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, tokens);
    }

    #[test]
    fn ratio_approximately_honoured() {
        let tokens = stream(1_000_000);
        let (_, valid) = train_valid_split(&tokens, 100, 1);
        let frac = valid.len() as f64 / tokens.len() as f64;
        assert!((frac - 0.01).abs() < 0.003, "valid frac {frac}");
    }

    #[test]
    fn thousand_to_one_ratio() {
        let tokens = stream(2_000_000);
        let (_, valid) = train_valid_split(&tokens, 1001, 1);
        let frac = valid.len() as f64 / tokens.len() as f64;
        assert!(frac > 0.0 && frac < 0.002, "valid frac {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let tokens = stream(50_000);
        let a = train_valid_split(&tokens, 100, 9);
        let b = train_valid_split(&tokens, 100, 9);
        assert_eq!(a, b);
        let c = train_valid_split(&tokens, 100, 10);
        assert_ne!(a.1, c.1);
    }

    #[test]
    fn tiny_input_all_train() {
        let tokens = stream(100);
        let (train, valid) = train_valid_split(&tokens, 100, 1);
        assert_eq!(train, tokens);
        assert!(valid.is_empty());
    }

    #[test]
    fn validation_blocks_are_contiguous_runs() {
        let tokens = stream(100_000);
        let (_, valid) = train_valid_split(&tokens, 50, 3);
        // Ids were sequential, so each 256-block of valid must be a run.
        for chunk in valid.chunks(256) {
            for w in chunk.windows(2) {
                assert_eq!(w[1], w[0] + 1);
            }
        }
    }
}
