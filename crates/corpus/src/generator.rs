//! Deterministic synthetic corpus generation.
//!
//! A [`CorpusGenerator`] draws token ids (frequency ranks) from the
//! profile's Zipf–Mandelbrot law with a seeded RNG, so any experiment can
//! regenerate byte-identical data from `(profile, seed, len)`.

use crate::profile::{DatasetProfile, TokenUnit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zipf::ZipfMandelbrot;

/// A seeded token-stream generator for one dataset profile.
///
/// Two generation modes:
///
/// * **i.i.d.** (default): every token is an independent draw from the
///   profile's Zipf–Mandelbrot law. This reproduces the corpus
///   *statistics* the paper's techniques exploit (Figure 1), but carries
///   no sequential signal — a language model can learn nothing beyond
///   the unigram distribution.
/// * **structured** ([`CorpusGenerator::with_structure`]): with
///   probability `λ` the next token is a *deterministic successor* of
///   the previous-token context (an order-2 hash of the last two
///   tokens), where each successor was itself drawn once from the Zipf
///   law. The token **marginal stays Zipfian** (successor values are
///   Zipf-distributed), but now there is real predictive structure whose
///   coverage grows with corpus size — which is what makes "more data ⇒
///   better perplexity" (the paper's Table V) reproducible on synthetic
///   text.
pub struct CorpusGenerator {
    dist: ZipfMandelbrot,
    rng: StdRng,
    unit: TokenUnit,
    /// Probability that the next token is the deterministic successor of
    /// its context (0 = pure i.i.d.).
    lambda: f64,
    /// Seed of the fixed successor function.
    successor_seed: u64,
    /// Number of distinct contexts the successor function distinguishes.
    context_buckets: u32,
    prev: u32,
    prev2: u32,
}

/// SplitMix64 finaliser, used to key the successor function.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl CorpusGenerator {
    /// Creates a generator at the given granularity.
    ///
    /// Word streams draw from the profile's word law over `word_types`
    /// ranks; char streams draw from the char law over `char_types`.
    pub fn new(profile: &DatasetProfile, unit: TokenUnit, seed: u64) -> Self {
        let dist = match unit {
            TokenUnit::Word => {
                ZipfMandelbrot::new(profile.word_types, profile.zipf_s, profile.zipf_q)
            }
            TokenUnit::Char => ZipfMandelbrot::new(profile.char_types, profile.char_zipf_s, 0.5),
        };
        Self {
            dist,
            rng: StdRng::seed_from_u64(seed),
            unit,
            lambda: 0.0,
            successor_seed: mix(seed ^ 0x5cce_5507),
            context_buckets: 4096,
            prev: 0,
            prev2: 0,
        }
    }

    /// Enables order-2 successor structure: with probability `lambda`
    /// the next token is the fixed Zipf-drawn successor of the current
    /// two-token context.
    ///
    /// # Panics
    /// Panics unless `0 ≤ lambda < 1`.
    pub fn with_structure(mut self, lambda: f64) -> Self {
        assert!((0.0..1.0).contains(&lambda), "lambda must be in [0, 1)");
        self.lambda = lambda;
        self
    }

    /// The deterministic successor of a two-token context. Each context
    /// bucket's successor is one fixed draw from the Zipf law, so the
    /// marginal over contexts remains Zipfian.
    fn successor(&self, prev: u32, prev2: u32) -> u32 {
        let ctx =
            (prev as u64).wrapping_mul(31).wrapping_add(prev2 as u64) % self.context_buckets as u64;
        let mut r = StdRng::seed_from_u64(mix(self.successor_seed ^ ctx));
        self.dist.sample(&mut r) as u32
    }

    /// Granularity this generator emits.
    pub fn unit(&self) -> TokenUnit {
        self.unit
    }

    /// Number of distinct token ids the generator can emit.
    pub fn type_space(&self) -> usize {
        self.dist.vocab()
    }

    /// Draws the next token id.
    #[inline]
    pub fn next_token(&mut self) -> u32 {
        let t = if self.lambda > 0.0 && self.rng.gen::<f64>() < self.lambda {
            self.successor(self.prev, self.prev2)
        } else {
            self.dist.sample(&mut self.rng) as u32
        };
        self.prev2 = self.prev;
        self.prev = t;
        t
    }

    /// Materialises `n` tokens.
    pub fn generate(&mut self, n: usize) -> Vec<u32> {
        if self.lambda == 0.0 {
            let mut out = vec![0u32; n];
            self.dist.sample_many(&mut self.rng, &mut out);
            return out;
        }
        (0..n).map(|_| self.next_token()).collect()
    }

    /// Generates a full [`Corpus`] of `n` tokens.
    pub fn corpus(&mut self, n: usize) -> Corpus {
        Corpus {
            tokens: self.generate(n),
            type_space: self.type_space(),
            unit: self.unit,
        }
    }
}

/// A materialised synthetic corpus: raw token ids in generation order.
///
/// Token ids are frequency *ranks* in the generator's law (0 = most
/// frequent); [`crate::vocab::Vocab`] remaps them to a truncated model
/// vocabulary with UNK.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The token stream.
    pub tokens: Vec<u32>,
    /// Upper bound (exclusive) on token ids.
    pub type_space: usize,
    /// Granularity of the tokens.
    pub unit: TokenUnit,
}

impl Corpus {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the corpus has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let p = DatasetProfile::one_billion();
        let a = CorpusGenerator::new(&p, TokenUnit::Word, 42).generate(1000);
        let b = CorpusGenerator::new(&p, TokenUnit::Word, 42).generate(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let p = DatasetProfile::one_billion();
        let a = CorpusGenerator::new(&p, TokenUnit::Word, 1).generate(1000);
        let b = CorpusGenerator::new(&p, TokenUnit::Word, 2).generate(1000);
        assert_ne!(a, b);
    }

    #[test]
    fn tokens_within_type_space() {
        let p = DatasetProfile::tieba();
        let mut gen = CorpusGenerator::new(&p, TokenUnit::Char, 7);
        let space = gen.type_space() as u32;
        assert_eq!(space, 15_437);
        assert!(gen.generate(10_000).iter().all(|&t| t < space));
    }

    #[test]
    fn word_stream_is_head_heavy() {
        // Zipfian streams concentrate mass on low ranks.
        let p = DatasetProfile::one_billion();
        let tokens = CorpusGenerator::new(&p, TokenUnit::Word, 3).generate(50_000);
        let head = tokens.iter().filter(|&&t| t < 100).count();
        assert!(
            head as f64 > 0.3 * tokens.len() as f64,
            "head fraction {}",
            head as f64 / tokens.len() as f64
        );
    }

    #[test]
    fn char_stream_has_small_effective_alphabet() {
        let p = DatasetProfile::one_billion();
        let tokens = CorpusGenerator::new(&p, TokenUnit::Char, 3).generate(50_000);
        let mut seen = [false; 98];
        for &t in &tokens {
            seen[t as usize] = true;
        }
        let types = seen.iter().filter(|&&s| s).count();
        // All or nearly all of the small alphabet appears quickly —
        // this is the "unique characters become constant" note of §V-B.
        assert!(types > 80, "types {types}");
    }

    #[test]
    fn structured_mode_is_deterministic() {
        let p = DatasetProfile::one_billion();
        let a = CorpusGenerator::new(&p, TokenUnit::Char, 4)
            .with_structure(0.5)
            .generate(2000);
        let b = CorpusGenerator::new(&p, TokenUnit::Char, 4)
            .with_structure(0.5)
            .generate(2000);
        assert_eq!(a, b);
    }

    #[test]
    fn structured_mode_has_predictable_bigrams() {
        // With λ = 0.5, seeing the same 2-token context twice must often
        // produce the same successor — the signal an LM can learn.
        let p = DatasetProfile::one_billion();
        let tokens = CorpusGenerator::new(&p, TokenUnit::Char, 9)
            .with_structure(0.5)
            .generate(60_000);
        let mut seen: std::collections::HashMap<(u32, u32), u32> = Default::default();
        let mut repeats = 0usize;
        let mut matches = 0usize;
        for w in tokens.windows(3) {
            let ctx = (w[1], w[0]);
            if let Some(&next) = seen.get(&ctx) {
                repeats += 1;
                if next == w[2] {
                    matches += 1;
                }
            } else {
                seen.insert(ctx, w[2]);
            }
        }
        assert!(repeats > 1000);
        let rate = matches as f64 / repeats as f64;
        // λ² = 0.25 of pairs are (deterministic, deterministic) matches,
        // plus chance collisions from the Zipf head.
        assert!(rate > 0.25, "match rate {rate}");
        // And an i.i.d. stream must be far less predictable.
        let iid = CorpusGenerator::new(&p, TokenUnit::Char, 9).generate(60_000);
        let mut seen2: std::collections::HashMap<(u32, u32), u32> = Default::default();
        let (mut rep2, mut mat2) = (0usize, 0usize);
        for w in iid.windows(3) {
            let ctx = (w[1], w[0]);
            if let Some(&next) = seen2.get(&ctx) {
                rep2 += 1;
                if next == w[2] {
                    mat2 += 1;
                }
            } else {
                seen2.insert(ctx, w[2]);
            }
        }
        let iid_rate = mat2 as f64 / rep2.max(1) as f64;
        assert!(rate > iid_rate + 0.1, "structured {rate} vs iid {iid_rate}");
    }

    #[test]
    fn structured_marginal_stays_head_heavy() {
        // The token marginal must remain Zipfian (Figure 1 depends on
        // it): successor values are themselves Zipf draws.
        let p = DatasetProfile::one_billion();
        let tokens = CorpusGenerator::new(&p, TokenUnit::Word, 3)
            .with_structure(0.5)
            .generate(50_000);
        let head = tokens.iter().filter(|&&t| t < 100).count();
        assert!(
            head as f64 > 0.3 * tokens.len() as f64,
            "head fraction {}",
            head as f64 / tokens.len() as f64
        );
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn structure_lambda_must_be_probability() {
        let p = DatasetProfile::one_billion();
        let _ = CorpusGenerator::new(&p, TokenUnit::Char, 1).with_structure(1.0);
    }

    #[test]
    fn corpus_wrapper_consistent() {
        let p = DatasetProfile::gutenberg();
        let c = CorpusGenerator::new(&p, TokenUnit::Word, 5).corpus(256);
        assert_eq!(c.len(), 256);
        assert!(!c.is_empty());
        assert_eq!(c.type_space, p.word_types);
        assert_eq!(c.unit, TokenUnit::Word);
    }
}
