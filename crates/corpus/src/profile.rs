//! Dataset profiles: generation parameters + the paper's Table I facts.
//!
//! Each profile pairs (a) the Zipf–Mandelbrot parameters that make the
//! synthetic stream's type–token curve match Figure 1, with (b) the real
//! corpus statistics from Table I so reports can show the scale factor of
//! the substitution. Exponents: Heaps' α ≈ 1/s asymptotically, so
//! `s ≈ 1/0.64 ≈ 1.56` targets the paper's measured 0.64. The Mandelbrot
//! offset `q` tunes the prefactor (the paper fits `U = 7.02·N^0.64` on
//! Amazon Reviews).

/// Token granularity of a language model over a profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenUnit {
    /// Word-level LM (large vocabulary; the paper truncates to 100 K).
    Word,
    /// Character-level LM (98-symbol English / ~15 K-symbol Chinese).
    Char,
}

/// Natural language of the source corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    /// English (1b, gb, cc, ar).
    English,
    /// Chinese (tieba).
    Chinese,
}

/// A synthetic stand-in for one of the paper's corpora.
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Short name used throughout the paper ("1b", "gb", "cc", "ar", "tieba").
    pub name: &'static str,
    /// Source language.
    pub language: Language,
    /// Number of distinct word types the generator can emit. The paper
    /// reports 2 M – 24 M unique words per corpus; we keep the generator
    /// vocabulary large enough that the type–token curve never saturates
    /// in our sweeps.
    pub word_types: usize,
    /// Zipf–Mandelbrot exponent `s` for the word distribution.
    pub zipf_s: f64,
    /// Zipf–Mandelbrot offset `q` for the word distribution.
    pub zipf_q: f64,
    /// Character vocabulary size (98 for English per §IV-A; 15,437 for
    /// the Tieba Chinese corpus per §V-C).
    pub char_types: usize,
    /// Zipf exponent for the character distribution (characters are much
    /// flatter than words; ~1.0 keeps a small effective alphabet).
    pub char_zipf_s: f64,
    /// Default synthetic corpus size in word tokens (scaled down from the
    /// paper's corpus by `scale_down`).
    pub default_tokens: u64,
    /// How much smaller the synthetic default is than the real corpus.
    pub scale_down: f64,
    /// Table I: number of characters in the real corpus (billions).
    pub paper_chars_billion: f64,
    /// Table I: number of words in the real corpus (billions), if word
    /// counts apply (Chinese is unsegmented: `None`).
    pub paper_words_billion: Option<f64>,
    /// Table I: corpus size in GB.
    pub paper_bytes_gb: f64,
}

impl DatasetProfile {
    /// 1-Billion Word benchmark (Chelba et al.) — "1b".
    pub fn one_billion() -> Self {
        Self {
            name: "1b",
            language: Language::English,
            word_types: 2_000_000,
            zipf_s: 1.5625,
            zipf_q: 3.5,
            char_types: 98,
            char_zipf_s: 1.0,
            default_tokens: 780_000, // 0.78 B words / 1000
            scale_down: 1000.0,
            paper_chars_billion: 4.19,
            paper_words_billion: Some(0.78),
            paper_bytes_gb: 3.94,
        }
    }

    /// Project Gutenberg — "gb".
    pub fn gutenberg() -> Self {
        Self {
            name: "gb",
            language: Language::English,
            word_types: 3_000_000,
            zipf_s: 1.5625,
            zipf_q: 2.5,
            char_types: 98,
            char_zipf_s: 1.0,
            default_tokens: 1_810_000, // 1.81 B / 1000
            scale_down: 1000.0,
            paper_chars_billion: 8.90,
            paper_words_billion: Some(1.81),
            paper_bytes_gb: 8.29,
        }
    }

    /// Common Crawl n-gram corpus — "cc" (appears in Fig 1 only).
    pub fn common_crawl() -> Self {
        Self {
            name: "cc",
            language: Language::English,
            word_types: 8_000_000,
            zipf_s: 1.5,
            zipf_q: 2.0,
            char_types: 98,
            char_zipf_s: 1.0,
            default_tokens: 2_000_000,
            scale_down: 1000.0,
            paper_chars_billion: 0.0, // not tabulated in Table I
            paper_words_billion: None,
            paper_bytes_gb: 0.0,
        }
    }

    /// Amazon Reviews (McAuley et al.) — "ar".
    pub fn amazon_reviews() -> Self {
        Self {
            name: "ar",
            language: Language::English,
            word_types: 6_000_000,
            zipf_s: 1.5625,
            zipf_q: 4.0,
            char_types: 98,
            char_zipf_s: 1.0,
            default_tokens: 7_010_000, // 7.01 B / 1000
            scale_down: 1000.0,
            paper_chars_billion: 38.76,
            paper_words_billion: Some(7.01),
            paper_bytes_gb: 37.04,
        }
    }

    /// Baidu Tieba Chinese forum corpus — "tieba" (char-level only).
    pub fn tieba() -> Self {
        Self {
            name: "tieba",
            language: Language::Chinese,
            word_types: 4_000_000,
            zipf_s: 1.5625,
            zipf_q: 3.0,
            char_types: 15_437,
            char_zipf_s: 1.1,
            default_tokens: 0, // word-level LM not defined for tieba
            scale_down: 1000.0,
            paper_chars_billion: 34.36,
            paper_words_billion: None,
            paper_bytes_gb: 93.12,
        }
    }

    /// All four Figure 1 profiles in paper order.
    pub fn figure1_profiles() -> Vec<DatasetProfile> {
        vec![
            Self::one_billion(),
            Self::gutenberg(),
            Self::common_crawl(),
            Self::amazon_reviews(),
        ]
    }

    /// All Table I profiles in paper order.
    pub fn table1_profiles() -> Vec<DatasetProfile> {
        vec![
            Self::one_billion(),
            Self::gutenberg(),
            Self::amazon_reviews(),
            Self::tieba(),
        ]
    }

    /// Vocabulary size for a model at the given granularity: word LMs use
    /// the paper's 100 K truncation (§IV-A), char LMs the full alphabet.
    pub fn model_vocab(&self, unit: TokenUnit) -> usize {
        match unit {
            TokenUnit::Word => 100_000.min(self.word_types),
            TokenUnit::Char => self.char_types,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let profiles = DatasetProfile::table1_profiles();
        assert_eq!(profiles.len(), 4);
        let onebil = &profiles[0];
        assert_eq!(onebil.name, "1b");
        assert_eq!(onebil.paper_words_billion, Some(0.78));
        assert!((onebil.paper_bytes_gb - 3.94).abs() < 1e-9);
        let tieba = &profiles[3];
        assert_eq!(tieba.language, Language::Chinese);
        assert_eq!(tieba.char_types, 15_437);
        assert!((tieba.paper_bytes_gb - 93.12).abs() < 1e-9);
        assert!(tieba.paper_words_billion.is_none());
    }

    #[test]
    fn figure1_has_four_english_profiles() {
        let profiles = DatasetProfile::figure1_profiles();
        assert_eq!(profiles.len(), 4);
        assert!(profiles.iter().all(|p| p.language == Language::English));
        let names: Vec<_> = profiles.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["1b", "gb", "cc", "ar"]);
    }

    #[test]
    fn model_vocab_truncates_words_not_chars() {
        let p = DatasetProfile::one_billion();
        assert_eq!(p.model_vocab(TokenUnit::Word), 100_000);
        assert_eq!(p.model_vocab(TokenUnit::Char), 98);
        let t = DatasetProfile::tieba();
        assert_eq!(t.model_vocab(TokenUnit::Char), 15_437);
    }

    #[test]
    fn exponents_target_heaps_064() {
        // 1/s should be ≈ 0.64 for the word profiles used in Fig 1 fits.
        for p in DatasetProfile::figure1_profiles() {
            let alpha = 1.0 / p.zipf_s;
            assert!((alpha - 0.64).abs() < 0.04, "{}: {alpha}", p.name);
        }
    }
}
