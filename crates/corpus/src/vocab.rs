//! Vocabulary truncation with UNK — the §IV-A procedure.
//!
//! "We use the 100,000 most frequent words … as the vocabulary for each
//! corpus. The number of unique words can range from 2 M to 24 M …, but
//! vocabularies created by this simple procedure account for 99 % of the
//! text." [`Vocab::build`] reproduces exactly that: count, keep top-K,
//! map the rest to UNK, and report coverage.

use zipf::FrequencyTable;

/// A truncated model vocabulary over raw corpus token ids.
#[derive(Debug, Clone)]
pub struct Vocab {
    /// raw id -> model id; ids absent from the map go to UNK.
    map: Vec<u32>,
    /// Model vocabulary size *including* the UNK entry.
    size: usize,
    /// Model id of the UNK token (always `size - 1`).
    unk: u32,
    /// Fraction of training-token mass covered by non-UNK entries.
    coverage: f64,
}

impl Vocab {
    /// Sentinel in `map` for "not in vocabulary".
    const ABSENT: u32 = u32::MAX;

    /// Builds the vocabulary from a token stream, keeping the `top_k`
    /// most frequent raw ids, in frequency order (model id 0 = most
    /// frequent — preserving the Zipf rank structure the `lm` crate's
    /// seeding strategy relies on). One extra UNK slot is appended.
    pub fn build(tokens: &[u32], top_k: usize) -> Self {
        assert!(top_k >= 1, "vocabulary must keep at least one word");
        let mut freq = FrequencyTable::new();
        freq.add_all(tokens);
        let (kept, coverage) = freq.top_k(top_k);

        let max_raw = tokens.iter().copied().max().unwrap_or(0) as usize;
        let mut map = vec![Self::ABSENT; max_raw + 1];
        for (model_id, &raw) in kept.iter().enumerate() {
            map[raw as usize] = model_id as u32;
        }
        let size = kept.len() + 1;
        Self {
            map,
            size,
            unk: (size - 1) as u32,
            coverage,
        }
    }

    /// Identity vocabulary over a dense id space of `n` ids (used for
    /// char LMs where no truncation happens). No UNK is added; every id
    /// maps to itself.
    pub fn identity(n: usize) -> Self {
        assert!(n >= 1);
        Self {
            map: (0..n as u32).collect(),
            size: n,
            unk: (n - 1) as u32, // never produced by lookup
            coverage: 1.0,
        }
    }

    /// Model vocabulary size (including UNK for built vocabularies).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Model id of the UNK token.
    pub fn unk(&self) -> u32 {
        self.unk
    }

    /// Fraction of the build stream covered by in-vocabulary tokens.
    pub fn coverage(&self) -> f64 {
        self.coverage
    }

    /// Maps one raw id to its model id (UNK if unseen or out of range).
    #[inline]
    pub fn lookup(&self, raw: u32) -> u32 {
        match self.map.get(raw as usize) {
            Some(&id) if id != Self::ABSENT => id,
            _ => self.unk,
        }
    }

    /// Maps a whole stream.
    pub fn encode(&self, raw: &[u32]) -> Vec<u32> {
        raw.iter().map(|&t| self.lookup(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_top_k_in_frequency_order() {
        // raw 7 appears 3x, raw 2 appears 2x, raw 9 appears 1x.
        let tokens = [7u32, 2, 7, 9, 2, 7];
        let v = Vocab::build(&tokens, 2);
        assert_eq!(v.size(), 3); // 2 kept + UNK
        assert_eq!(v.lookup(7), 0);
        assert_eq!(v.lookup(2), 1);
        assert_eq!(v.lookup(9), v.unk());
        assert_eq!(v.lookup(12345), v.unk());
    }

    #[test]
    fn coverage_reported() {
        let tokens = [0u32, 0, 0, 0, 0, 0, 0, 0, 0, 1]; // 90% rank 0
        let v = Vocab::build(&tokens, 1);
        assert!((v.coverage() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn encode_maps_stream() {
        let tokens = [5u32, 5, 6, 7];
        let v = Vocab::build(&tokens, 1);
        let enc = v.encode(&tokens);
        assert_eq!(enc, vec![0, 0, v.unk(), v.unk()]);
    }

    #[test]
    fn identity_vocab_is_transparent() {
        let v = Vocab::identity(98);
        assert_eq!(v.size(), 98);
        assert_eq!(v.lookup(0), 0);
        assert_eq!(v.lookup(97), 97);
        assert!((v.coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipfian_stream_high_coverage_with_small_vocab() {
        // The 99%-coverage claim of §IV-A, in miniature: a Zipfian stream
        // over 50 K types should be >90% covered by its top 5 K.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let dist = zipf::ZipfMandelbrot::new(50_000, 1.5625, 3.5);
        let mut rng = StdRng::seed_from_u64(11);
        let tokens: Vec<u32> = (0..200_000).map(|_| dist.sample(&mut rng) as u32).collect();
        let v = Vocab::build(&tokens, 5_000);
        assert!(v.coverage() > 0.9, "coverage {}", v.coverage());
    }

    #[test]
    fn ids_are_dense_and_bounded() {
        let tokens = [3u32, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let v = Vocab::build(&tokens, 4);
        let enc = v.encode(&tokens);
        assert!(enc.iter().all(|&t| t < v.size() as u32));
    }
}
