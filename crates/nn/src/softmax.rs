//! Full softmax + cross-entropy — the char LM's output layer.
//!
//! §V-B: "seeding technique was not used for character LM as the
//! vocabulary size is small, hence full softmax was used instead of
//! sampled softmax layer." The probability of word `w` at step `t` is
//! `exp(o_w) / Σ_v exp(o_v)` (§II-A); the loss is mean negative
//! log-likelihood, whose exponential is the perplexity reported in every
//! accuracy figure.

use tensor::ops::log_sum_exp;
use tensor::Matrix;

/// Result of a fused softmax + cross-entropy forward/backward.
#[derive(Debug, Clone)]
pub struct SoftmaxLoss {
    /// Mean negative log-likelihood over the batch (nats).
    pub loss: f64,
    /// `∂L/∂logits`, shape `n×V`, already divided by `n`.
    pub dlogits: Matrix,
}

/// Computes mean cross-entropy of `logits` (`n×V`) against `targets`
/// (`n` class ids) and its gradient in one pass.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[u32]) -> SoftmaxLoss {
    let n = logits.rows();
    let v = logits.cols();
    assert_eq!(targets.len(), n, "target count mismatch");
    assert!(n > 0, "empty batch");

    let mut dlogits = Matrix::zeros(n, v);
    let inv_n = 1.0 / n as f32;
    let mut total = 0.0f64;
    #[allow(clippy::needless_range_loop)] // i indexes logits, targets and dlogits in lockstep
    for i in 0..n {
        let row = logits.row(i);
        let t = targets[i] as usize;
        assert!(t < v, "target {t} out of range");
        let lse = log_sum_exp(row);
        total += (lse - row[t]) as f64;
        let drow = dlogits.row_mut(i);
        for (j, (&x, d)) in row.iter().zip(drow.iter_mut()).enumerate() {
            let p = (x - lse).exp();
            *d = (p - if j == t { 1.0 } else { 0.0 }) * inv_n;
        }
    }
    SoftmaxLoss {
        loss: total / n as f64,
        dlogits,
    }
}

/// Perplexity of a mean NLL (nats): `exp(loss)`.
pub fn perplexity(mean_nll: f64) -> f64 {
    mean_nll.exp()
}

/// Bits-per-character of a mean NLL (nats): `loss / ln 2` — the metric
/// §V-D compares against [21] ("1.208 BPC vs 1.218").
pub fn bits_per_char(mean_nll: f64) -> f64 {
    mean_nll / std::f64::consts::LN_2
}

/// The paper's §V-C compression-ratio metric: a perplexity `p` implies
/// `log2(p)` bits per character, i.e. a ratio of `bits_per_source_char /
/// log2(p)` against a `bits_per_source_char`-bit encoding (16 for the
/// UTF-16-style 2-byte Chinese chars the paper's arithmetic implies).
pub fn compression_ratio(perplexity: f64, bits_per_source_char: f64) -> f64 {
    bits_per_source_char / perplexity.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_loss_is_log_v() {
        let logits = Matrix::zeros(4, 10);
        let out = softmax_cross_entropy(&logits, &[0, 3, 5, 9]);
        assert!((out.loss - (10.0f64).ln()).abs() < 1e-6);
        assert!((perplexity(out.loss) - 10.0).abs() < 1e-4);
    }

    #[test]
    fn confident_correct_prediction_low_loss() {
        let mut logits = Matrix::zeros(1, 5);
        logits.set(0, 2, 20.0);
        let out = softmax_cross_entropy(&logits, &[2]);
        assert!(out.loss < 1e-6);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let out = softmax_cross_entropy(&logits, &[0, 2]);
        for i in 0..2 {
            let s: f32 = out.dlogits.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Matrix::from_vec(2, 4, vec![0.5, -1.0, 2.0, 0.0, 1.0, 1.0, -0.5, 0.3]);
        let targets = [2u32, 0];
        let out = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..8 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &targets).loss
                - softmax_cross_entropy(&lm, &targets).loss) as f32
                / (2.0 * eps);
            assert!(
                (out.dlogits.as_slice()[i] - num).abs() < 1e-3,
                "dlogits[{i}]"
            );
        }
    }

    #[test]
    fn stable_under_huge_logits() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 0, 1e4);
        logits.set(0, 1, 1e4);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.dlogits.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn bpc_and_compression_ratio() {
        // §V-D: perplexity 2^1.11 has BPC 1.11.
        let nll = 1.11 * std::f64::consts::LN_2;
        assert!((bits_per_char(nll) - 1.11).abs() < 1e-12);
        // §V-C: "perplexity of 11.1 equates to compression ratio of 6.3"
        // against ~22 bits/char (93.12 GB / 34.36 G chars ≈ 2.71 B/char).
        let bits_per_char_tieba = 93.12e9 * 8.0 / 34.36e9;
        let ratio = compression_ratio(11.1, bits_per_char_tieba);
        assert!((ratio - 6.3).abs() < 0.15, "ratio {ratio}");
        // And [21]'s: BPC 1.11 on 8-bit text ⇒ ratio ≈ 7 (paper says 6.8
        // from corpus-size arithmetic).
        let r21 = compression_ratio(2f64.powf(1.11), 8.0);
        assert!((r21 - 6.8).abs() < 0.5, "r21 {r21}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_target_panics() {
        let logits = Matrix::zeros(1, 3);
        softmax_cross_entropy(&logits, &[3]);
    }
}
