//! LSTM layer with truncated-BPTT backward — the word LM's recurrent
//! core (§IV-B: "one LSTM layer with 2048 cells").
//!
//! Processing is timestep-major: the layer consumes one `b×D` input per
//! step and runs the standard cell
//!
//! ```text
//! z = x_t·Wx + h_{t−1}·Wh + b          (b×4H, gate order [i f g o])
//! i, f, o = σ(·);  g = tanh(·)
//! c_t = f ∘ c_{t−1} + i ∘ g
//! h_t = o ∘ tanh(c_t)
//! ```
//!
//! State is zero-initialised per window (truncated BPTT over the
//! `seq_len`-token windows the batcher produces). The forget-gate bias is
//! initialised to 1, the standard trick for gradient flow.

use tensor::ops::{dsigmoid_from_y, dtanh_from_y, sigmoid};
use tensor::{init, Matrix};

/// One LSTM layer's parameters.
#[derive(Debug, Clone)]
pub struct LstmLayer {
    wx: Matrix,
    wh: Matrix,
    b: Vec<f32>,
    hidden: usize,
}

/// Forward-pass activations kept for backward.
#[derive(Debug)]
pub struct LstmCache {
    /// Inputs per step (`b×D`).
    xs: Vec<Matrix>,
    /// Post-activation gates per step (`b×4H`, order [i f g o]).
    gates: Vec<Matrix>,
    /// Cell states per step (`b×H`), including the initial zero state at
    /// index 0 (so `cs[t+1]` is the state after step `t`).
    cs: Vec<Matrix>,
    /// Hidden states, same indexing as `cs`.
    hs: Vec<Matrix>,
}

/// Dense gradients of an [`LstmLayer`].
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// `∂L/∂Wx`.
    pub dwx: Matrix,
    /// `∂L/∂Wh`.
    pub dwh: Matrix,
    /// `∂L/∂b`.
    pub db: Vec<f32>,
}

impl LstmLayer {
    /// Xavier-initialised layer mapping `input_dim → hidden`.
    pub fn new<R: rand::Rng + ?Sized>(rng: &mut R, input_dim: usize, hidden: usize) -> Self {
        let wx = init::xavier(rng, input_dim, 4 * hidden);
        let wh = init::xavier(rng, hidden, 4 * hidden);
        let mut b = vec![0.0f32; 4 * hidden];
        // Forget-gate bias = 1.
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        Self { wx, wh, b, hidden }
    }

    /// Hidden size `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input dimension `D`.
    pub fn input_dim(&self) -> usize {
        self.wx.rows()
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.wx.len() + self.wh.len() + self.b.len()
    }

    /// Zeroed gradient holder.
    pub fn zero_grads(&self) -> LstmGrads {
        LstmGrads {
            dwx: Matrix::zeros(self.wx.rows(), self.wx.cols()),
            dwh: Matrix::zeros(self.wh.rows(), self.wh.cols()),
            db: vec![0.0; self.b.len()],
        }
    }

    /// Runs the layer over `xs` (one `b×D` matrix per step) from zero
    /// state; returns per-step hidden states and the backward cache.
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, LstmCache) {
        assert!(!xs.is_empty(), "empty sequence");
        let b = xs[0].rows();
        let h = self.hidden;
        let mut cache = LstmCache {
            xs: xs.to_vec(),
            gates: Vec::with_capacity(xs.len()),
            cs: vec![Matrix::zeros(b, h)],
            hs: vec![Matrix::zeros(b, h)],
        };
        for x in xs {
            assert_eq!(x.rows(), b, "inconsistent batch size");
            assert_eq!(x.cols(), self.input_dim(), "input dim mismatch");
            let h_prev = cache.hs.last().unwrap();
            let c_prev = cache.cs.last().unwrap();

            let mut z = x.matmul(&self.wx);
            let zh = h_prev.matmul(&self.wh);
            z.add_assign(&zh);
            z.add_row_bias(&self.b);

            // Activate in place: [i f g o].
            let mut c_t = Matrix::zeros(b, h);
            let mut h_t = Matrix::zeros(b, h);
            for r in 0..b {
                let zr = z.row_mut(r);
                for j in 0..h {
                    zr[j] = sigmoid(zr[j]); // i
                    zr[h + j] = sigmoid(zr[h + j]); // f
                    zr[2 * h + j] = zr[2 * h + j].tanh(); // g
                    zr[3 * h + j] = sigmoid(zr[3 * h + j]); // o
                }
                let cp = c_prev.row(r);
                let cr = c_t.row_mut(r);
                for j in 0..h {
                    cr[j] = zr[h + j] * cp[j] + zr[j] * zr[2 * h + j];
                }
                let hr = h_t.row_mut(r);
                for j in 0..h {
                    hr[j] = zr[3 * h + j] * cr[j].tanh();
                }
            }
            cache.gates.push(z);
            cache.cs.push(c_t);
            cache.hs.push(h_t);
        }
        let hs_out = cache.hs[1..].to_vec();
        (hs_out, cache)
    }

    /// Back-propagates per-step upstream gradients `dhs` through the
    /// cached forward pass; returns per-step input gradients and the
    /// parameter gradients.
    pub fn backward(&self, cache: &LstmCache, dhs: &[Matrix]) -> (Vec<Matrix>, LstmGrads) {
        let steps = cache.gates.len();
        assert_eq!(dhs.len(), steps, "upstream step count mismatch");
        let b = cache.xs[0].rows();
        let h = self.hidden;

        let mut grads = self.zero_grads();
        let mut dxs: Vec<Matrix> = (0..steps)
            .map(|_| Matrix::zeros(b, self.input_dim()))
            .collect();
        let mut dh_carry = Matrix::zeros(b, h);
        let mut dc_carry = Matrix::zeros(b, h);

        for t in (0..steps).rev() {
            let gates = &cache.gates[t];
            let c_t = &cache.cs[t + 1];
            let c_prev = &cache.cs[t];
            let h_prev = &cache.hs[t];

            // dz holds pre-activation gate gradients, layout [i f g o].
            let mut dz = Matrix::zeros(b, 4 * h);
            for r in 0..b {
                let g = gates.row(r);
                let ct = c_t.row(r);
                let cp = c_prev.row(r);
                let dh_up = dhs[t].row(r);
                let dh_c = dh_carry.row(r);
                let dc_c = dc_carry.row(r);
                let dzr = dz.row_mut(r);
                for j in 0..h {
                    let dh = dh_up[j] + dh_c[j];
                    let tc = ct[j].tanh();
                    let o = g[3 * h + j];
                    // do, then dc via h = o·tanh(c).
                    let d_o = dh * tc;
                    let dc = dh * o * dtanh_from_y(tc) + dc_c[j];
                    let i = g[j];
                    let f = g[h + j];
                    let gg = g[2 * h + j];
                    dzr[j] = dc * gg * dsigmoid_from_y(i);
                    dzr[h + j] = dc * cp[j] * dsigmoid_from_y(f);
                    dzr[2 * h + j] = dc * i * dtanh_from_y(gg);
                    dzr[3 * h + j] = d_o * dsigmoid_from_y(o);
                }
            }
            // New carries: dc_{t−1} = dc · f (recompute dc per element).
            for r in 0..b {
                let g = gates.row(r);
                let ct = c_t.row(r);
                let dh_up = dhs[t].row(r);
                let dh_c = dh_carry.row(r);
                let dc_c = dc_carry.row(r);
                let mut new_dc = vec![0.0f32; h];
                for j in 0..h {
                    let dh = dh_up[j] + dh_c[j];
                    let tc = ct[j].tanh();
                    let o = g[3 * h + j];
                    let dc = dh * o * dtanh_from_y(tc) + dc_c[j];
                    new_dc[j] = dc * g[h + j];
                }
                dc_carry.row_mut(r).copy_from_slice(&new_dc);
            }

            // Parameter and input gradients.
            grads.dwx.add_assign(&cache.xs[t].transpose_a_matmul(&dz));
            grads.dwh.add_assign(&h_prev.transpose_a_matmul(&dz));
            for (acc, v) in grads.db.iter_mut().zip(dz.sum_rows()) {
                *acc += v;
            }
            dxs[t] = dz.matmul_transpose_b(&self.wx);
            dh_carry = dz.matmul_transpose_b(&self.wh);
        }
        (dxs, grads)
    }

    /// SGD step.
    pub fn apply(&mut self, grads: &LstmGrads, lr: f32) {
        self.wx.axpy(-lr, &grads.dwx);
        self.wh.axpy(-lr, &grads.dwh);
        for (b, &g) in self.b.iter_mut().zip(&grads.db) {
            *b -= lr * g;
        }
    }

    /// Appends `(dwx, dwh, db)` to a flat buffer (fixed layout).
    pub fn flatten_grads(grads: &LstmGrads, out: &mut Vec<f32>) {
        out.extend_from_slice(grads.dwx.as_slice());
        out.extend_from_slice(grads.dwh.as_slice());
        out.extend_from_slice(&grads.db);
    }

    /// Appends the layer's parameters `(wx, wh, b)` to `out`, in the
    /// same fixed layout as [`LstmLayer::flatten_grads`] — the basis of
    /// bit-exact checkpoint snapshots.
    pub fn flatten_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.wx.as_slice());
        out.extend_from_slice(self.wh.as_slice());
        out.extend_from_slice(&self.b);
    }

    /// Overwrites the layer's parameters from `flat` at `offset` (the
    /// [`LstmLayer::flatten_params`] layout); returns the new offset.
    pub fn load_params(&mut self, flat: &[f32], offset: usize) -> usize {
        let nwx = self.wx.len();
        let nwh = self.wh.len();
        let nb = self.b.len();
        self.wx
            .as_mut_slice()
            .copy_from_slice(&flat[offset..offset + nwx]);
        self.wh
            .as_mut_slice()
            .copy_from_slice(&flat[offset + nwx..offset + nwx + nwh]);
        self.b
            .copy_from_slice(&flat[offset + nwx + nwh..offset + nwx + nwh + nb]);
        offset + nwx + nwh + nb
    }

    /// Restores gradients from the flat buffer; returns the new offset.
    pub fn unflatten_grads(&self, flat: &[f32], offset: usize, grads: &mut LstmGrads) -> usize {
        let nwx = self.wx.len();
        let nwh = self.wh.len();
        let nb = self.b.len();
        grads
            .dwx
            .as_mut_slice()
            .copy_from_slice(&flat[offset..offset + nwx]);
        grads
            .dwh
            .as_mut_slice()
            .copy_from_slice(&flat[offset + nwx..offset + nwx + nwh]);
        grads
            .db
            .copy_from_slice(&flat[offset + nwx + nwh..offset + nwx + nwh + nb]);
        offset + nwx + nwh + nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_steps(rng: &mut StdRng, t: usize, b: usize, d: usize) -> Vec<Matrix> {
        (0..t)
            .map(|_| Matrix::from_vec(b, d, (0..b * d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect()
    }

    fn sq_loss(hs: &[Matrix]) -> f64 {
        hs.iter().map(|h| h.norm_sq() / 2.0).sum()
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = LstmLayer::new(&mut rng, 3, 5);
        let xs = rand_steps(&mut rng, 4, 2, 3);
        let (hs, _) = layer.forward(&xs);
        assert_eq!(hs.len(), 4);
        assert_eq!(hs[0].rows(), 2);
        assert_eq!(hs[0].cols(), 5);
    }

    #[test]
    fn hidden_states_bounded() {
        // h = o·tanh(c) with σ, tanh keeps |h| < 1... c can grow, but
        // tanh(c) is in (−1, 1) and o in (0, 1).
        let mut rng = StdRng::seed_from_u64(2);
        let layer = LstmLayer::new(&mut rng, 4, 6);
        let xs = rand_steps(&mut rng, 20, 3, 4);
        let (hs, _) = layer.forward(&xs);
        for h in &hs {
            assert!(h.as_slice().iter().all(|&v| v.abs() < 1.0));
        }
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let layer = LstmLayer::new(&mut StdRng::seed_from_u64(3), 2, 4);
        assert!(layer.b[4..8].iter().all(|&v| v == 1.0));
        assert!(layer.b[..4].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = LstmLayer::new(&mut rng, 3, 4);
        let xs = rand_steps(&mut rng, 3, 2, 3);
        let (hs, cache) = layer.forward(&xs);
        let dhs: Vec<Matrix> = hs.clone(); // loss = Σ‖h‖²/2 ⇒ dL/dh = h
        let (dxs, grads) = layer.backward(&cache, &dhs);

        let eps = 1e-3f32;
        let loss_of = |l: &LstmLayer, xs: &[Matrix]| {
            let (hs, _) = l.forward(xs);
            sq_loss(&hs)
        };

        // Wx probes.
        for i in [0usize, 5, 20, 47] {
            let orig = layer.wx.as_slice()[i];
            layer.wx.as_mut_slice()[i] = orig + eps;
            let lp = loss_of(&layer, &xs);
            layer.wx.as_mut_slice()[i] = orig - eps;
            let lm = loss_of(&layer, &xs);
            layer.wx.as_mut_slice()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = grads.dwx.as_slice()[i];
            assert!((ana - num).abs() < 3e-2, "dwx[{i}]: {ana} vs {num}");
        }
        // Wh probes.
        for i in [0usize, 17, 63] {
            let orig = layer.wh.as_slice()[i];
            layer.wh.as_mut_slice()[i] = orig + eps;
            let lp = loss_of(&layer, &xs);
            layer.wh.as_mut_slice()[i] = orig - eps;
            let lm = loss_of(&layer, &xs);
            layer.wh.as_mut_slice()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = grads.dwh.as_slice()[i];
            assert!((ana - num).abs() < 3e-2, "dwh[{i}]: {ana} vs {num}");
        }
        // Bias probes (include a forget-gate entry).
        for i in [0usize, 5, 10, 15] {
            let orig = layer.b[i];
            layer.b[i] = orig + eps;
            let lp = loss_of(&layer, &xs);
            layer.b[i] = orig - eps;
            let lm = loss_of(&layer, &xs);
            layer.b[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((grads.db[i] - num).abs() < 3e-2, "db[{i}]");
        }
        // Input probes across timesteps.
        for t in 0..3 {
            for i in [0usize, 3] {
                let mut xs2: Vec<Matrix> = xs.clone();
                xs2[t].as_mut_slice()[i] += eps;
                let lp = loss_of(&layer, &xs2);
                xs2[t].as_mut_slice()[i] -= 2.0 * eps;
                let lm = loss_of(&layer, &xs2);
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                let ana = dxs[t].as_slice()[i];
                assert!((ana - num).abs() < 3e-2, "dx[{t}][{i}]: {ana} vs {num}");
            }
        }
    }

    #[test]
    fn training_reduces_state_norm() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = LstmLayer::new(&mut rng, 3, 4);
        let xs = rand_steps(&mut rng, 5, 4, 3);
        let (hs0, _) = layer.forward(&xs);
        let before = sq_loss(&hs0);
        for _ in 0..30 {
            let (hs, cache) = layer.forward(&xs);
            let (_, grads) = layer.backward(&cache, &hs);
            layer.apply(&grads, 0.1);
        }
        let (hs1, _) = layer.forward(&xs);
        assert!(sq_loss(&hs1) < before * 0.5);
    }

    #[test]
    fn flatten_round_trip() {
        let mut rng = StdRng::seed_from_u64(9);
        let layer = LstmLayer::new(&mut rng, 3, 4);
        let xs = rand_steps(&mut rng, 2, 2, 3);
        let (hs, cache) = layer.forward(&xs);
        let (_, grads) = layer.backward(&cache, &hs);
        let mut flat = Vec::new();
        LstmLayer::flatten_grads(&grads, &mut flat);
        assert_eq!(flat.len(), layer.param_count());
        let mut restored = layer.zero_grads();
        let end = layer.unflatten_grads(&flat, 0, &mut restored);
        assert_eq!(end, flat.len());
        assert_eq!(restored.dwx.as_slice(), grads.dwx.as_slice());
        assert_eq!(restored.dwh.as_slice(), grads.dwh.as_slice());
        assert_eq!(restored.db, grads.db);
    }

    #[test]
    fn param_count_matches_paper_model() {
        // §IV-B word LM: D = 512 (projection feeds back), H = 2048.
        let layer = LstmLayer::new(&mut StdRng::seed_from_u64(0), 512, 2048);
        assert_eq!(
            layer.param_count(),
            512 * 4 * 2048 + 2048 * 4 * 2048 + 4 * 2048
        );
    }
}
