//! Dynamic loss scaling for reduced-precision training (§III-C).
//!
//! The compression technique borrows from mixed-precision training
//! (Micikevicius et al., the paper's [33]): multiply the loss by a factor
//! `F` before backprop so small gradients survive FP16, divide before
//! applying. Static factors (256–1024, as the paper uses) work until a
//! gradient spike overflows; *dynamic* scaling — the standard production
//! refinement — backs the factor off on overflow and regrows it after a
//! run of clean steps.

/// Dynamic loss scaler with multiplicative grow/backoff.
#[derive(Debug, Clone)]
pub struct DynamicLossScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    good_steps: u32,
    max_scale: f32,
}

impl DynamicLossScaler {
    /// Standard configuration: start at `initial` (e.g. 512), double
    /// after 200 clean steps, halve on overflow, cap at 2¹⁶.
    pub fn new(initial: f32) -> Self {
        assert!(initial > 0.0, "scale must be positive");
        Self {
            scale: initial,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 200,
            good_steps: 0,
            max_scale: 65536.0,
        }
    }

    /// The current scaling factor to multiply the loss (or gradients) by.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Checks a gradient buffer for overflow (NaN/Inf), unscales it in
    /// place if clean, and updates the factor. Returns `true` if the
    /// step should be applied, `false` if it must be skipped.
    pub fn unscale_and_update(&mut self, grads: &mut [f32]) -> bool {
        let overflow = grads.iter().any(|g| !g.is_finite());
        if overflow {
            self.scale = (self.scale * self.backoff_factor).max(1.0);
            self.good_steps = 0;
            return false;
        }
        let inv = 1.0 / self.scale;
        for g in grads.iter_mut() {
            *g *= inv;
        }
        self.good_steps += 1;
        if self.good_steps >= self.growth_interval {
            self.scale = (self.scale * self.growth_factor).min(self.max_scale);
            self.good_steps = 0;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_steps_unscale() {
        let mut s = DynamicLossScaler::new(512.0);
        let mut g = vec![512.0f32, -1024.0];
        assert!(s.unscale_and_update(&mut g));
        assert_eq!(g, vec![1.0, -2.0]);
    }

    #[test]
    fn overflow_backs_off_and_skips() {
        let mut s = DynamicLossScaler::new(512.0);
        let mut g = vec![1.0f32, f32::INFINITY];
        assert!(!s.unscale_and_update(&mut g));
        assert_eq!(s.scale(), 256.0);
        // Buffer untouched on skip.
        assert!(g[1].is_infinite());
        let mut g2 = vec![f32::NAN];
        assert!(!s.unscale_and_update(&mut g2));
        assert_eq!(s.scale(), 128.0);
    }

    #[test]
    fn grows_after_interval() {
        let mut s = DynamicLossScaler::new(512.0);
        for _ in 0..200 {
            let mut g = vec![1.0f32];
            assert!(s.unscale_and_update(&mut g));
        }
        assert_eq!(s.scale(), 1024.0);
    }

    #[test]
    fn scale_bounded() {
        let mut s = DynamicLossScaler::new(65536.0);
        for _ in 0..400 {
            let mut g = vec![1.0f32];
            s.unscale_and_update(&mut g);
        }
        assert!(s.scale() <= 65536.0);
        // And never below 1 on repeated overflow.
        for _ in 0..40 {
            let mut g = vec![f32::NAN];
            s.unscale_and_update(&mut g);
        }
        assert!(s.scale() >= 1.0);
    }

    #[test]
    fn overflow_resets_growth_counter() {
        let mut s = DynamicLossScaler::new(512.0);
        for _ in 0..199 {
            let mut g = vec![1.0f32];
            s.unscale_and_update(&mut g);
        }
        let mut bad = vec![f32::INFINITY];
        s.unscale_and_update(&mut bad);
        assert_eq!(s.scale(), 256.0);
        // 199 more clean steps must NOT trigger growth yet.
        for _ in 0..199 {
            let mut g = vec![1.0f32];
            s.unscale_and_update(&mut g);
        }
        assert_eq!(s.scale(), 256.0);
    }
}
