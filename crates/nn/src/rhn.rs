//! Recurrent Highway Network — the char LM's recurrent core.
//!
//! §IV-B: "a recurrent highway network (RHN) layer of depth 10, each with
//! 1792 LSTM cells … 213 million parameters" (the architecture of
//! Hestness et al. / Zilly et al.). We implement the coupled-gate RHN:
//! per timestep the state passes through `L` micro-layers
//!
//! ```text
//! h_l = tanh(x·Wh·[l=0] + s_{l−1}·Rh_l + bh_l)
//! t_l = σ   (x·Wt·[l=0] + s_{l−1}·Rt_l + bt_l)
//! s_l = h_l ∘ t_l + s_{l−1} ∘ (1 − t_l)
//! ```
//!
//! with the carry gate coupled to the transform gate (`c = 1 − t`).
//! Transform-gate biases start at −2 so the network initially carries,
//! the standard RHN depth-stability trick.

use tensor::ops::{dsigmoid_from_y, dtanh_from_y, sigmoid};
use tensor::{init, Matrix};

/// One RHN layer's parameters.
#[derive(Debug, Clone)]
pub struct RhnLayer {
    wx_h: Matrix,
    wx_t: Matrix,
    r_h: Vec<Matrix>,
    r_t: Vec<Matrix>,
    b_h: Vec<Vec<f32>>,
    b_t: Vec<Vec<f32>>,
    hidden: usize,
}

/// Cached activations of one forward pass.
#[derive(Debug)]
pub struct RhnCache {
    xs: Vec<Matrix>,
    /// `s_in[t][l]`: state entering micro-layer `l` at step `t` (`b×H`).
    s_in: Vec<Vec<Matrix>>,
    /// `hcand[t][l]`: tanh candidate.
    hcand: Vec<Vec<Matrix>>,
    /// `tgate[t][l]`: transform gate.
    tgate: Vec<Vec<Matrix>>,
}

/// Dense gradients of an [`RhnLayer`].
#[derive(Debug, Clone)]
pub struct RhnGrads {
    /// Input-to-candidate weights gradient.
    pub dwx_h: Matrix,
    /// Input-to-transform weights gradient.
    pub dwx_t: Matrix,
    /// Recurrent candidate weights gradients per depth.
    pub dr_h: Vec<Matrix>,
    /// Recurrent transform weights gradients per depth.
    pub dr_t: Vec<Matrix>,
    /// Candidate bias gradients per depth.
    pub db_h: Vec<Vec<f32>>,
    /// Transform bias gradients per depth.
    pub db_t: Vec<Vec<f32>>,
}

impl RhnLayer {
    /// Creates a depth-`depth` RHN mapping `input_dim → hidden`.
    pub fn new<R: rand::Rng + ?Sized>(
        rng: &mut R,
        input_dim: usize,
        hidden: usize,
        depth: usize,
    ) -> Self {
        assert!(depth >= 1, "RHN needs at least one micro-layer");
        Self {
            wx_h: init::xavier(rng, input_dim, hidden),
            wx_t: init::xavier(rng, input_dim, hidden),
            r_h: (0..depth)
                .map(|_| init::xavier(rng, hidden, hidden))
                .collect(),
            r_t: (0..depth)
                .map(|_| init::xavier(rng, hidden, hidden))
                .collect(),
            b_h: (0..depth).map(|_| vec![0.0; hidden]).collect(),
            b_t: (0..depth).map(|_| vec![-2.0; hidden]).collect(),
            hidden,
        }
    }

    /// Recurrence depth `L`.
    pub fn depth(&self) -> usize {
        self.r_h.len()
    }

    /// Hidden size `H`.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input dimension `D`.
    pub fn input_dim(&self) -> usize {
        self.wx_h.rows()
    }

    /// Number of parameters — matches the paper's 213 M at
    /// `(D=1792, H=1792, L=10)` plus embedding/softmax.
    pub fn param_count(&self) -> usize {
        let l = self.depth();
        self.wx_h.len() + self.wx_t.len() + l * (2 * self.hidden * self.hidden + 2 * self.hidden)
    }

    /// Zeroed gradient holder.
    pub fn zero_grads(&self) -> RhnGrads {
        let h = self.hidden;
        let l = self.depth();
        RhnGrads {
            dwx_h: Matrix::zeros(self.wx_h.rows(), h),
            dwx_t: Matrix::zeros(self.wx_t.rows(), h),
            dr_h: (0..l).map(|_| Matrix::zeros(h, h)).collect(),
            dr_t: (0..l).map(|_| Matrix::zeros(h, h)).collect(),
            db_h: (0..l).map(|_| vec![0.0; h]).collect(),
            db_t: (0..l).map(|_| vec![0.0; h]).collect(),
        }
    }

    /// Runs the layer over the per-step inputs from zero state.
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, RhnCache) {
        assert!(!xs.is_empty(), "empty sequence");
        let b = xs[0].rows();
        let h = self.hidden;
        let depth = self.depth();

        let mut cache = RhnCache {
            xs: xs.to_vec(),
            s_in: Vec::with_capacity(xs.len()),
            hcand: Vec::with_capacity(xs.len()),
            tgate: Vec::with_capacity(xs.len()),
        };
        let mut outputs = Vec::with_capacity(xs.len());
        let mut s = Matrix::zeros(b, h);
        for x in xs {
            assert_eq!(x.cols(), self.input_dim(), "input dim mismatch");
            // Input projections computed once per step.
            let xh = x.matmul(&self.wx_h);
            let xt = x.matmul(&self.wx_t);
            let mut s_ins = Vec::with_capacity(depth);
            let mut hcands = Vec::with_capacity(depth);
            let mut tgates = Vec::with_capacity(depth);
            for l in 0..depth {
                let mut zh = s.matmul(&self.r_h[l]);
                let mut zt = s.matmul(&self.r_t[l]);
                if l == 0 {
                    zh.add_assign(&xh);
                    zt.add_assign(&xt);
                }
                zh.add_row_bias(&self.b_h[l]);
                zt.add_row_bias(&self.b_t[l]);
                for v in zh.as_mut_slice() {
                    *v = v.tanh();
                }
                for v in zt.as_mut_slice() {
                    *v = sigmoid(*v);
                }
                let mut s_next = Matrix::zeros(b, h);
                for ((sn, (&hc, &tg)), &sp) in s_next
                    .as_mut_slice()
                    .iter_mut()
                    .zip(zh.as_slice().iter().zip(zt.as_slice()))
                    .zip(s.as_slice())
                {
                    *sn = hc * tg + sp * (1.0 - tg);
                }
                s_ins.push(s);
                hcands.push(zh);
                tgates.push(zt);
                s = s_next;
            }
            cache.s_in.push(s_ins);
            cache.hcand.push(hcands);
            cache.tgate.push(tgates);
            outputs.push(s.clone());
        }
        (outputs, cache)
    }

    /// Back-propagates through depth and time.
    pub fn backward(&self, cache: &RhnCache, dhs: &[Matrix]) -> (Vec<Matrix>, RhnGrads) {
        let steps = cache.xs.len();
        assert_eq!(dhs.len(), steps, "upstream step count mismatch");
        let b = cache.xs[0].rows();
        let depth = self.depth();

        let mut grads = self.zero_grads();
        let mut dxs: Vec<Matrix> = (0..steps)
            .map(|_| Matrix::zeros(b, self.input_dim()))
            .collect();
        let mut ds_time = Matrix::zeros(b, self.hidden);

        for t in (0..steps).rev() {
            let mut ds = dhs[t].clone();
            ds.add_assign(&ds_time);
            for l in (0..depth).rev() {
                let s_in = &cache.s_in[t][l];
                let hc = &cache.hcand[t][l];
                let tg = &cache.tgate[t][l];

                // Pointwise gate gradients.
                let mut dzh = Matrix::zeros(b, self.hidden);
                let mut dzt = Matrix::zeros(b, self.hidden);
                let mut ds_in = Matrix::zeros(b, self.hidden);
                let n = ds.len();
                {
                    let dsv = ds.as_slice();
                    let hcv = hc.as_slice();
                    let tgv = tg.as_slice();
                    let siv = s_in.as_slice();
                    let dzhv = dzh.as_mut_slice();
                    let dztv = dzt.as_mut_slice();
                    let dsiv = ds_in.as_mut_slice();
                    for i in 0..n {
                        let d = dsv[i];
                        let dhc = d * tgv[i];
                        let dtg = d * (hcv[i] - siv[i]);
                        dsiv[i] = d * (1.0 - tgv[i]);
                        dzhv[i] = dhc * dtanh_from_y(hcv[i]);
                        dztv[i] = dtg * dsigmoid_from_y(tgv[i]);
                    }
                }

                grads.dr_h[l].add_assign(&s_in.transpose_a_matmul(&dzh));
                grads.dr_t[l].add_assign(&s_in.transpose_a_matmul(&dzt));
                for (acc, v) in grads.db_h[l].iter_mut().zip(dzh.sum_rows()) {
                    *acc += v;
                }
                for (acc, v) in grads.db_t[l].iter_mut().zip(dzt.sum_rows()) {
                    *acc += v;
                }
                ds_in.add_assign(&dzh.matmul_transpose_b(&self.r_h[l]));
                ds_in.add_assign(&dzt.matmul_transpose_b(&self.r_t[l]));
                if l == 0 {
                    grads
                        .dwx_h
                        .add_assign(&cache.xs[t].transpose_a_matmul(&dzh));
                    grads
                        .dwx_t
                        .add_assign(&cache.xs[t].transpose_a_matmul(&dzt));
                    dxs[t].add_assign(&dzh.matmul_transpose_b(&self.wx_h));
                    dxs[t].add_assign(&dzt.matmul_transpose_b(&self.wx_t));
                }
                ds = ds_in;
            }
            ds_time = ds;
        }
        (dxs, grads)
    }

    /// SGD step with optional weight decay (the paper uses "Adam with
    /// weight decay" for the char LM; decay applies to weights, not
    /// biases).
    pub fn apply(&mut self, grads: &RhnGrads, lr: f32, weight_decay: f32) {
        let decay = 1.0 - lr * weight_decay;
        self.wx_h.scale(decay);
        self.wx_t.scale(decay);
        self.wx_h.axpy(-lr, &grads.dwx_h);
        self.wx_t.axpy(-lr, &grads.dwx_t);
        for l in 0..self.depth() {
            self.r_h[l].scale(decay);
            self.r_t[l].scale(decay);
            self.r_h[l].axpy(-lr, &grads.dr_h[l]);
            self.r_t[l].axpy(-lr, &grads.dr_t[l]);
            for (b, &g) in self.b_h[l].iter_mut().zip(&grads.db_h[l]) {
                *b -= lr * g;
            }
            for (b, &g) in self.b_t[l].iter_mut().zip(&grads.db_t[l]) {
                *b -= lr * g;
            }
        }
    }

    /// Appends all gradients to a flat buffer (fixed layout).
    pub fn flatten_grads(grads: &RhnGrads, out: &mut Vec<f32>) {
        out.extend_from_slice(grads.dwx_h.as_slice());
        out.extend_from_slice(grads.dwx_t.as_slice());
        for l in 0..grads.dr_h.len() {
            out.extend_from_slice(grads.dr_h[l].as_slice());
            out.extend_from_slice(grads.dr_t[l].as_slice());
            out.extend_from_slice(&grads.db_h[l]);
            out.extend_from_slice(&grads.db_t[l]);
        }
    }

    /// Appends the layer's parameters to `out`, in the same fixed
    /// layout as [`RhnLayer::flatten_grads`] — the basis of bit-exact
    /// checkpoint snapshots.
    pub fn flatten_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.wx_h.as_slice());
        out.extend_from_slice(self.wx_t.as_slice());
        for l in 0..self.depth() {
            out.extend_from_slice(self.r_h[l].as_slice());
            out.extend_from_slice(self.r_t[l].as_slice());
            out.extend_from_slice(&self.b_h[l]);
            out.extend_from_slice(&self.b_t[l]);
        }
    }

    /// Overwrites the layer's parameters from `flat` at `offset` (the
    /// [`RhnLayer::flatten_params`] layout); returns the new offset.
    pub fn load_params(&mut self, flat: &[f32], mut offset: usize) -> usize {
        let mut take = |dst: &mut [f32]| {
            dst.copy_from_slice(&flat[offset..offset + dst.len()]);
            offset += dst.len();
        };
        take(self.wx_h.as_mut_slice());
        take(self.wx_t.as_mut_slice());
        for l in 0..self.r_h.len() {
            take(self.r_h[l].as_mut_slice());
            take(self.r_t[l].as_mut_slice());
            take(&mut self.b_h[l]);
            take(&mut self.b_t[l]);
        }
        offset
    }

    /// Restores gradients from the flat buffer; returns the new offset.
    pub fn unflatten_grads(&self, flat: &[f32], mut offset: usize, grads: &mut RhnGrads) -> usize {
        let take = |flat: &[f32], offset: &mut usize, n: usize| -> std::ops::Range<usize> {
            let r = *offset..*offset + n;
            assert!(r.end <= flat.len(), "flat buffer too short");
            *offset += n;
            r
        };
        let n = self.wx_h.len();
        grads
            .dwx_h
            .as_mut_slice()
            .copy_from_slice(&flat[take(flat, &mut offset, n)]);
        grads
            .dwx_t
            .as_mut_slice()
            .copy_from_slice(&flat[take(flat, &mut offset, n)]);
        for l in 0..self.depth() {
            let hh = self.hidden * self.hidden;
            grads.dr_h[l]
                .as_mut_slice()
                .copy_from_slice(&flat[take(flat, &mut offset, hh)]);
            grads.dr_t[l]
                .as_mut_slice()
                .copy_from_slice(&flat[take(flat, &mut offset, hh)]);
            grads.db_h[l].copy_from_slice(&flat[take(flat, &mut offset, self.hidden)]);
            grads.db_t[l].copy_from_slice(&flat[take(flat, &mut offset, self.hidden)]);
        }
        offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_steps(rng: &mut StdRng, t: usize, b: usize, d: usize) -> Vec<Matrix> {
        (0..t)
            .map(|_| Matrix::from_vec(b, d, (0..b * d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect()
    }

    fn sq_loss(hs: &[Matrix]) -> f64 {
        hs.iter().map(|h| h.norm_sq() / 2.0).sum()
    }

    #[test]
    fn forward_shapes_and_depth() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = RhnLayer::new(&mut rng, 3, 5, 4);
        assert_eq!(layer.depth(), 4);
        let xs = rand_steps(&mut rng, 3, 2, 3);
        let (hs, cache) = layer.forward(&xs);
        assert_eq!(hs.len(), 3);
        assert_eq!(hs[0].rows(), 2);
        assert_eq!(hs[0].cols(), 5);
        assert_eq!(cache.s_in[0].len(), 4);
    }

    #[test]
    fn carry_bias_keeps_early_state_small() {
        // bt = −2 ⇒ transform gate ≈ 0.12, so the initial zero state
        // mostly carries: outputs start small.
        let mut rng = StdRng::seed_from_u64(2);
        let layer = RhnLayer::new(&mut rng, 4, 8, 3);
        let xs = rand_steps(&mut rng, 1, 2, 4);
        let (hs, _) = layer.forward(&xs);
        let max = hs[0].as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max < 0.6, "max {max}");
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = RhnLayer::new(&mut rng, 3, 4, 3);
        let xs = rand_steps(&mut rng, 2, 2, 3);
        let (hs, cache) = layer.forward(&xs);
        let (dxs, grads) = layer.backward(&cache, &hs);

        let eps = 1e-3f32;
        let loss_of = |l: &RhnLayer, xs: &[Matrix]| {
            let (hs, _) = l.forward(xs);
            sq_loss(&hs)
        };

        // wx_h / wx_t probes.
        for i in [0usize, 5, 11] {
            let orig = layer.wx_h.as_slice()[i];
            layer.wx_h.as_mut_slice()[i] = orig + eps;
            let lp = loss_of(&layer, &xs);
            layer.wx_h.as_mut_slice()[i] = orig - eps;
            let lm = loss_of(&layer, &xs);
            layer.wx_h.as_mut_slice()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((grads.dwx_h.as_slice()[i] - num).abs() < 2e-2, "dwx_h[{i}]");
        }
        // Recurrent weights at each depth.
        for l in 0..3 {
            for i in [0usize, 7, 15] {
                let orig = layer.r_h[l].as_slice()[i];
                layer.r_h[l].as_mut_slice()[i] = orig + eps;
                let lp = loss_of(&layer, &xs);
                layer.r_h[l].as_mut_slice()[i] = orig - eps;
                let lm = loss_of(&layer, &xs);
                layer.r_h[l].as_mut_slice()[i] = orig;
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!(
                    (grads.dr_h[l].as_slice()[i] - num).abs() < 2e-2,
                    "dr_h[{l}][{i}]"
                );
                let orig = layer.r_t[l].as_slice()[i];
                layer.r_t[l].as_mut_slice()[i] = orig + eps;
                let lp = loss_of(&layer, &xs);
                layer.r_t[l].as_mut_slice()[i] = orig - eps;
                let lm = loss_of(&layer, &xs);
                layer.r_t[l].as_mut_slice()[i] = orig;
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!(
                    (grads.dr_t[l].as_slice()[i] - num).abs() < 2e-2,
                    "dr_t[{l}][{i}]"
                );
            }
            // Biases.
            for i in [0usize, 3] {
                let orig = layer.b_t[l][i];
                layer.b_t[l][i] = orig + eps;
                let lp = loss_of(&layer, &xs);
                layer.b_t[l][i] = orig - eps;
                let lm = loss_of(&layer, &xs);
                layer.b_t[l][i] = orig;
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!((grads.db_t[l][i] - num).abs() < 2e-2, "db_t[{l}][{i}]");
            }
        }
        // Inputs.
        for t in 0..2 {
            for i in [0usize, 4] {
                let mut xs2 = xs.clone();
                xs2[t].as_mut_slice()[i] += eps;
                let lp = loss_of(&layer, &xs2);
                xs2[t].as_mut_slice()[i] -= 2.0 * eps;
                let lm = loss_of(&layer, &xs2);
                let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
                assert!((dxs[t].as_slice()[i] - num).abs() < 2e-2, "dx[{t}][{i}]");
            }
        }
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut layer = RhnLayer::new(&mut rng, 3, 4, 2);
        let xs = rand_steps(&mut rng, 4, 4, 3);
        let (hs0, _) = layer.forward(&xs);
        let before = sq_loss(&hs0);
        for _ in 0..40 {
            let (hs, cache) = layer.forward(&xs);
            let (_, grads) = layer.backward(&cache, &hs);
            layer.apply(&grads, 0.1, 0.0);
        }
        let (hs1, _) = layer.forward(&xs);
        assert!(sq_loss(&hs1) < before * 0.6);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = RhnLayer::new(&mut rng, 2, 3, 2);
        let norm0 = layer.wx_h.norm_sq();
        let grads = layer.zero_grads();
        layer.apply(&grads, 0.1, 0.5);
        assert!(layer.wx_h.norm_sq() < norm0);
    }

    #[test]
    fn flatten_round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        let layer = RhnLayer::new(&mut rng, 3, 4, 3);
        let xs = rand_steps(&mut rng, 2, 2, 3);
        let (hs, cache) = layer.forward(&xs);
        let (_, grads) = layer.backward(&cache, &hs);
        let mut flat = Vec::new();
        RhnLayer::flatten_grads(&grads, &mut flat);
        assert_eq!(flat.len(), layer.param_count());
        let mut restored = layer.zero_grads();
        let end = layer.unflatten_grads(&flat, 0, &mut restored);
        assert_eq!(end, flat.len());
        for l in 0..3 {
            assert_eq!(restored.dr_h[l].as_slice(), grads.dr_h[l].as_slice());
            assert_eq!(restored.db_t[l], grads.db_t[l]);
        }
    }

    #[test]
    fn paper_scale_param_count() {
        // §IV-B: depth-10 RHN with 1792 cells ⇒ recurrent params alone
        // are 10 · 2 · 1792² ≈ 64 M; with 1792-dim inputs, ~70 M in the
        // recurrent stack (the 213 M total includes the 15 K-char softmax
        // in the Tieba config and embeddings).
        let layer = RhnLayer::new(&mut StdRng::seed_from_u64(0), 1792, 1792, 10);
        let expected = 2 * 1792 * 1792 + 10 * (2 * 1792 * 1792 + 2 * 1792);
        assert_eq!(layer.param_count(), expected);
    }
}
