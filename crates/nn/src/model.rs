//! The paper's two model assemblies (§IV-B).
//!
//! * [`WordLm`]: input embedding → LSTM → projection → output embedding
//!   with sampled softmax. Embedding gradients (input *and* output) come
//!   back as token-aligned [`SparseGrad`]s; LSTM + projection gradients
//!   come back as one flat dense buffer ready for ALLREDUCE.
//! * [`CharLm`]: input embedding → RHN → full-softmax output layer. Only
//!   the input embedding is sparse; the output layer is dense (the
//!   alphabet is small enough for a full softmax — §V-B).
//!
//! Neither model applies its own embedding updates: gradient exchange and
//! application is the `lm` crate's job, because *how* those gradients
//! cross GPUs is the paper's whole subject.

use crate::embedding::{Embedding, SparseGrad};
use crate::linear::{Linear, LinearGrads};
use crate::lstm::LstmLayer;
use crate::rhn::RhnLayer;
use crate::sampled_softmax::{full_softmax_eval_loss, SampledSoftmax};
use crate::softmax::softmax_cross_entropy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Matrix;

/// A batch in the timestep-major layout the recurrent layers consume.
#[derive(Debug, Clone)]
pub struct SeqBatch {
    /// Input token ids, timestep-major: index `t·batch + lane`.
    pub tokens: Vec<u32>,
    /// Next-token targets in the same order.
    pub targets: Vec<u32>,
    /// Lanes per step.
    pub batch: usize,
    /// Steps.
    pub steps: usize,
}

impl SeqBatch {
    /// Converts from the lane-major layout `[lane][position]` that the
    /// corpus batcher produces.
    pub fn from_lane_major(inputs: &[u32], targets: &[u32], batch: usize, seq_len: usize) -> Self {
        assert_eq!(inputs.len(), batch * seq_len);
        assert_eq!(targets.len(), batch * seq_len);
        let mut tok = Vec::with_capacity(inputs.len());
        let mut tgt = Vec::with_capacity(targets.len());
        for t in 0..seq_len {
            for lane in 0..batch {
                tok.push(inputs[lane * seq_len + t]);
                tgt.push(targets[lane * seq_len + t]);
            }
        }
        Self {
            tokens: tok,
            targets: tgt,
            batch,
            steps: seq_len,
        }
    }

    /// Token ids of step `t` across lanes.
    pub fn step_tokens(&self, t: usize) -> &[u32] {
        &self.tokens[t * self.batch..(t + 1) * self.batch]
    }

    /// Total tokens (`K = batch · steps`).
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// Hyper-parameters of the word LM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordLmConfig {
    /// Vocabulary size `V` (the paper uses 100 K).
    pub vocab: usize,
    /// Input embedding dimension `D`.
    pub embed_dim: usize,
    /// LSTM cells `H` (the paper uses 2048).
    pub hidden: usize,
    /// Projection dimension `P` (the paper uses 512) — also the output
    /// embedding dimension.
    pub proj_dim: usize,
    /// Sampled-softmax candidates per step `S` (the paper uses 1024).
    pub samples: usize,
}

impl WordLmConfig {
    /// A laptop-scale configuration preserving all structural ratios.
    pub fn small(vocab: usize) -> Self {
        Self {
            vocab,
            embed_dim: 32,
            hidden: 64,
            proj_dim: 32,
            samples: 64.min(vocab / 2).max(1),
        }
    }
}

/// Gradients of one word-LM training step.
#[derive(Debug, Clone)]
pub struct WordLmGrads {
    /// Mean NLL over the sampled-softmax candidate set (nats).
    pub loss: f64,
    /// Input-embedding gradient (token-aligned, duplicates included).
    pub input_grad: SparseGrad,
    /// Output-embedding gradient (targets then candidates).
    pub output_grad: SparseGrad,
    /// Flat dense gradients: LSTM then projection, fixed layout.
    pub dense: Vec<f32>,
    /// Candidates drawn this step (for diagnostics / seeding analysis).
    pub candidates: Vec<u32>,
}

/// The word language model.
#[derive(Debug, Clone)]
pub struct WordLm {
    cfg: WordLmConfig,
    embed: Embedding,
    lstm: LstmLayer,
    proj: Linear,
    out_embed: Embedding,
    softmax: SampledSoftmax,
}

impl WordLm {
    /// Deterministically initialises the model from `seed` (all data-
    /// parallel replicas must start identical, §II-B).
    pub fn new(seed: u64, cfg: WordLmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            embed: Embedding::new(&mut rng, cfg.vocab, cfg.embed_dim),
            lstm: LstmLayer::new(&mut rng, cfg.embed_dim, cfg.hidden),
            proj: Linear::new(&mut rng, cfg.hidden, cfg.proj_dim),
            out_embed: Embedding::new(&mut rng, cfg.vocab, cfg.proj_dim),
            softmax: SampledSoftmax::new(cfg.vocab, cfg.samples),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WordLmConfig {
        &self.cfg
    }

    /// Input embedding table.
    pub fn input_embedding(&self) -> &Embedding {
        &self.embed
    }

    /// Mutable input embedding table (for exchange-strategy updates).
    pub fn input_embedding_mut(&mut self) -> &mut Embedding {
        &mut self.embed
    }

    /// Output embedding table.
    pub fn output_embedding(&self) -> &Embedding {
        &self.out_embed
    }

    /// Mutable output embedding table.
    pub fn output_embedding_mut(&mut self) -> &mut Embedding {
        &mut self.out_embed
    }

    /// The sampled-softmax layer (seeding strategies draw through it).
    pub fn softmax(&self) -> &SampledSoftmax {
        &self.softmax
    }

    /// Size of the flat dense-gradient buffer.
    pub fn dense_param_count(&self) -> usize {
        self.lstm.param_count() + self.proj.param_count()
    }

    /// Total parameters including both embedding tables.
    pub fn param_count(&self) -> usize {
        self.dense_param_count() + 2 * self.cfg.vocab * self.cfg.embed_dim.max(self.cfg.proj_dim)
    }

    /// Forward + backward with candidates drawn from `rng`.
    pub fn forward_backward<R: Rng + ?Sized>(&self, batch: &SeqBatch, rng: &mut R) -> WordLmGrads {
        let cands = self.softmax.draw_candidates(rng);
        self.forward_backward_with_candidates(batch, cands)
    }

    /// Forward + backward with an explicit candidate set (what the
    /// seeding strategies pass in).
    pub fn forward_backward_with_candidates(
        &self,
        batch: &SeqBatch,
        candidates: Vec<u32>,
    ) -> WordLmGrads {
        let (p_all, h_all, cache, xs_shape) = self.forward_hidden(batch);
        let out = self.softmax.forward_backward_with_candidates(
            &p_all,
            &batch.targets,
            &self.out_embed,
            candidates,
        );

        // Back through projection.
        let (dh_all, proj_grads) = self.proj.backward(&h_all, &out.dh);

        // Back through LSTM (split t-major rows back into steps).
        let dhs: Vec<Matrix> = (0..batch.steps)
            .map(|t| {
                let mut m = Matrix::zeros(batch.batch, self.cfg.hidden);
                for lane in 0..batch.batch {
                    m.row_mut(lane)
                        .copy_from_slice(dh_all.row(t * batch.batch + lane));
                }
                m
            })
            .collect();
        let (dxs, lstm_grads) = self.lstm.backward(&cache, &dhs);
        let _ = xs_shape;

        // Input-embedding gradient in token order (t-major, matching
        // batch.tokens).
        let mut dx_all = Matrix::zeros(batch.len(), self.cfg.embed_dim);
        for (t, dx) in dxs.iter().enumerate() {
            for lane in 0..batch.batch {
                dx_all
                    .row_mut(t * batch.batch + lane)
                    .copy_from_slice(dx.row(lane));
            }
        }
        let input_grad = self.embed.backward(&batch.tokens, dx_all);

        let mut dense = Vec::with_capacity(self.dense_param_count());
        LstmLayer::flatten_grads(&lstm_grads, &mut dense);
        Linear::flatten_grads(&proj_grads, &mut dense);

        WordLmGrads {
            loss: out.loss,
            input_grad,
            output_grad: out.grad,
            dense,
            candidates: out.candidates,
        }
    }

    /// Full-softmax validation loss (mean NLL, nats).
    pub fn eval_loss(&self, batch: &SeqBatch) -> f64 {
        let (p_all, _, _, _) = self.forward_hidden(batch);
        full_softmax_eval_loss(&p_all, &batch.targets, &self.out_embed)
    }

    /// Number of f32 values in a [`WordLm::param_vector`] snapshot.
    pub fn param_vector_len(&self) -> usize {
        self.embed.weights().len()
            + self.lstm.param_count()
            + self.proj.param_count()
            + self.out_embed.weights().len()
    }

    /// Snapshots every parameter into one flat vector in a fixed layout
    /// (input embedding, LSTM, projection, output embedding). The bytes
    /// of the result are the model's exact state: loading them back via
    /// [`WordLm::load_param_vector`] is a bit-identical restore.
    pub fn param_vector(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_vector_len());
        out.extend_from_slice(self.embed.weights().as_slice());
        self.lstm.flatten_params(&mut out);
        self.proj.flatten_params(&mut out);
        out.extend_from_slice(self.out_embed.weights().as_slice());
        debug_assert_eq!(out.len(), self.param_vector_len());
        out
    }

    /// Restores every parameter from a [`WordLm::param_vector`]
    /// snapshot. Panics if `flat` has the wrong length for this
    /// architecture.
    pub fn load_param_vector(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_vector_len(), "param size mismatch");
        let ne = self.embed.weights().len();
        self.embed
            .weights_mut()
            .as_mut_slice()
            .copy_from_slice(&flat[..ne]);
        let off = self.lstm.load_params(flat, ne);
        let off = self.proj.load_params(flat, off);
        self.out_embed
            .weights_mut()
            .as_mut_slice()
            .copy_from_slice(&flat[off..]);
    }

    /// Applies the flat dense gradient with SGD at rate `lr`.
    pub fn apply_dense(&mut self, flat: &[f32], lr: f32) {
        assert_eq!(flat.len(), self.dense_param_count(), "dense size mismatch");
        let mut lstm_grads = self.lstm.zero_grads();
        let off = self.lstm.unflatten_grads(flat, 0, &mut lstm_grads);
        let mut proj_grads = LinearGrads {
            dw: Matrix::zeros(self.proj.in_dim(), self.proj.out_dim()),
            db: vec![0.0; self.proj.out_dim()],
        };
        let end = self.proj.unflatten_grads(flat, off, &mut proj_grads);
        debug_assert_eq!(end, flat.len());
        self.lstm.apply(&lstm_grads, lr);
        self.proj.apply(&proj_grads, lr);
    }

    /// Shared forward pass: returns `(projection output, lstm output
    /// concat, lstm cache, step count)` with rows in t-major order.
    fn forward_hidden(&self, batch: &SeqBatch) -> (Matrix, Matrix, crate::lstm::LstmCache, usize) {
        assert!(!batch.is_empty(), "empty batch");
        let xs: Vec<Matrix> = (0..batch.steps)
            .map(|t| self.embed.forward(batch.step_tokens(t)))
            .collect();
        let (hs, cache) = self.lstm.forward(&xs);
        let mut h_all = Matrix::zeros(batch.len(), self.cfg.hidden);
        for (t, h) in hs.iter().enumerate() {
            for lane in 0..batch.batch {
                h_all
                    .row_mut(t * batch.batch + lane)
                    .copy_from_slice(h.row(lane));
            }
        }
        let p_all = self.proj.forward(&h_all);
        (p_all, h_all, cache, batch.steps)
    }
}

/// Hyper-parameters of the char LM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharLmConfig {
    /// Alphabet size (98 English / 15,437 Tieba).
    pub vocab: usize,
    /// Input embedding dimension.
    pub embed_dim: usize,
    /// RHN cells (the paper uses 1792).
    pub hidden: usize,
    /// RHN recurrence depth (the paper uses 10).
    pub depth: usize,
}

impl CharLmConfig {
    /// A laptop-scale configuration preserving the architecture.
    pub fn small(vocab: usize) -> Self {
        Self {
            vocab,
            embed_dim: 24,
            hidden: 48,
            depth: 3,
        }
    }
}

/// Gradients of one char-LM training step.
#[derive(Debug, Clone)]
pub struct CharLmGrads {
    /// Mean NLL (nats); `exp` → perplexity, `/ln 2` → BPC.
    pub loss: f64,
    /// Input-embedding gradient (token-aligned).
    pub input_grad: SparseGrad,
    /// Flat dense gradients: RHN then output layer, fixed layout.
    pub dense: Vec<f32>,
}

/// The character language model.
#[derive(Debug, Clone)]
pub struct CharLm {
    cfg: CharLmConfig,
    embed: Embedding,
    rhn: RhnLayer,
    out: Linear,
}

impl CharLm {
    /// Deterministic init from `seed`.
    pub fn new(seed: u64, cfg: CharLmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            embed: Embedding::new(&mut rng, cfg.vocab, cfg.embed_dim),
            rhn: RhnLayer::new(&mut rng, cfg.embed_dim, cfg.hidden, cfg.depth),
            out: Linear::new(&mut rng, cfg.hidden, cfg.vocab),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CharLmConfig {
        &self.cfg
    }

    /// Input embedding table.
    pub fn input_embedding(&self) -> &Embedding {
        &self.embed
    }

    /// Mutable input embedding table.
    pub fn input_embedding_mut(&mut self) -> &mut Embedding {
        &mut self.embed
    }

    /// Size of the flat dense-gradient buffer.
    pub fn dense_param_count(&self) -> usize {
        self.rhn.param_count() + self.out.param_count()
    }

    /// Forward + backward over one batch.
    pub fn forward_backward(&self, batch: &SeqBatch) -> CharLmGrads {
        assert!(!batch.is_empty(), "empty batch");
        let xs: Vec<Matrix> = (0..batch.steps)
            .map(|t| self.embed.forward(batch.step_tokens(t)))
            .collect();
        let (hs, cache) = self.rhn.forward(&xs);
        let mut h_all = Matrix::zeros(batch.len(), self.cfg.hidden);
        for (t, h) in hs.iter().enumerate() {
            for lane in 0..batch.batch {
                h_all
                    .row_mut(t * batch.batch + lane)
                    .copy_from_slice(h.row(lane));
            }
        }
        let logits = self.out.forward(&h_all);
        let sm = softmax_cross_entropy(&logits, &batch.targets);
        let (dh_all, out_grads) = self.out.backward(&h_all, &sm.dlogits);

        let dhs: Vec<Matrix> = (0..batch.steps)
            .map(|t| {
                let mut m = Matrix::zeros(batch.batch, self.cfg.hidden);
                for lane in 0..batch.batch {
                    m.row_mut(lane)
                        .copy_from_slice(dh_all.row(t * batch.batch + lane));
                }
                m
            })
            .collect();
        let (dxs, rhn_grads) = self.rhn.backward(&cache, &dhs);

        let mut dx_all = Matrix::zeros(batch.len(), self.cfg.embed_dim);
        for (t, dx) in dxs.iter().enumerate() {
            for lane in 0..batch.batch {
                dx_all
                    .row_mut(t * batch.batch + lane)
                    .copy_from_slice(dx.row(lane));
            }
        }
        let input_grad = self.embed.backward(&batch.tokens, dx_all);

        let mut dense = Vec::with_capacity(self.dense_param_count());
        RhnLayer::flatten_grads(&rhn_grads, &mut dense);
        Linear::flatten_grads(&out_grads, &mut dense);

        CharLmGrads {
            loss: sm.loss,
            input_grad,
            dense,
        }
    }

    /// Validation loss (mean NLL, nats).
    pub fn eval_loss(&self, batch: &SeqBatch) -> f64 {
        let xs: Vec<Matrix> = (0..batch.steps)
            .map(|t| self.embed.forward(batch.step_tokens(t)))
            .collect();
        let (hs, _) = self.rhn.forward(&xs);
        let mut h_all = Matrix::zeros(batch.len(), self.cfg.hidden);
        for (t, h) in hs.iter().enumerate() {
            for lane in 0..batch.batch {
                h_all
                    .row_mut(t * batch.batch + lane)
                    .copy_from_slice(h.row(lane));
            }
        }
        let logits = self.out.forward(&h_all);
        softmax_cross_entropy(&logits, &batch.targets).loss
    }

    /// Number of f32 values in a [`CharLm::param_vector`] snapshot.
    pub fn param_vector_len(&self) -> usize {
        self.embed.weights().len() + self.rhn.param_count() + self.out.param_count()
    }

    /// Snapshots every parameter into one flat vector in a fixed layout
    /// (input embedding, RHN, output layer) — see
    /// [`WordLm::param_vector`].
    pub fn param_vector(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_vector_len());
        out.extend_from_slice(self.embed.weights().as_slice());
        self.rhn.flatten_params(&mut out);
        self.out.flatten_params(&mut out);
        debug_assert_eq!(out.len(), self.param_vector_len());
        out
    }

    /// Restores every parameter from a [`CharLm::param_vector`]
    /// snapshot. Panics if `flat` has the wrong length for this
    /// architecture.
    pub fn load_param_vector(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_vector_len(), "param size mismatch");
        let ne = self.embed.weights().len();
        self.embed
            .weights_mut()
            .as_mut_slice()
            .copy_from_slice(&flat[..ne]);
        let off = self.rhn.load_params(flat, ne);
        let end = self.out.load_params(flat, off);
        debug_assert_eq!(end, flat.len());
    }

    /// Applies the flat dense gradient with SGD at rate `lr`.
    pub fn apply_dense(&mut self, flat: &[f32], lr: f32) {
        assert_eq!(flat.len(), self.dense_param_count(), "dense size mismatch");
        let mut rhn_grads = self.rhn.zero_grads();
        let off = self.rhn.unflatten_grads(flat, 0, &mut rhn_grads);
        let mut out_grads = LinearGrads {
            dw: Matrix::zeros(self.out.in_dim(), self.out.out_dim()),
            db: vec![0.0; self.out.out_dim()],
        };
        let end = self.out.unflatten_grads(flat, off, &mut out_grads);
        debug_assert_eq!(end, flat.len());
        self.rhn.apply(&rhn_grads, lr, 0.0);
        self.out.apply(&out_grads, lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_batch(vocab: usize, batch: usize, seq_len: usize, seed: u64) -> SeqBatch {
        // A predictable stream: target is (token + 1) mod vocab.
        let mut rng = StdRng::seed_from_u64(seed);
        let inputs: Vec<u32> = (0..batch * seq_len)
            .map(|_| rng.gen_range(0..vocab as u32))
            .collect();
        let targets: Vec<u32> = inputs.iter().map(|&t| (t + 1) % vocab as u32).collect();
        SeqBatch::from_lane_major(&inputs, &targets, batch, seq_len)
    }

    #[test]
    fn seq_batch_transposes_lane_major() {
        let inputs = [1u32, 2, 3, 4, 5, 6]; // 2 lanes × 3 steps
        let targets = [10u32, 20, 30, 40, 50, 60];
        let b = SeqBatch::from_lane_major(&inputs, &targets, 2, 3);
        assert_eq!(b.tokens, vec![1, 4, 2, 5, 3, 6]);
        assert_eq!(b.targets, vec![10, 40, 20, 50, 30, 60]);
        assert_eq!(b.step_tokens(1), &[2, 5]);
    }

    #[test]
    fn word_lm_deterministic_init() {
        let cfg = WordLmConfig::small(100);
        let a = WordLm::new(7, cfg);
        let b = WordLm::new(7, cfg);
        assert_eq!(
            a.input_embedding().weights().as_slice(),
            b.input_embedding().weights().as_slice()
        );
        assert_eq!(
            a.output_embedding().weights().as_slice(),
            b.output_embedding().weights().as_slice()
        );
    }

    #[test]
    fn word_lm_initial_eval_near_log_v() {
        let cfg = WordLmConfig::small(200);
        let m = WordLm::new(1, cfg);
        let batch = toy_batch(200, 4, 6, 2);
        let loss = m.eval_loss(&batch);
        assert!((loss - (200f64).ln()).abs() < 1.0, "loss {loss}");
    }

    #[test]
    fn word_lm_learns_deterministic_pattern() {
        let vocab = 30;
        let cfg = WordLmConfig::small(vocab);
        let mut m = WordLm::new(3, cfg);
        let batch = toy_batch(vocab, 4, 8, 5);
        let mut rng = StdRng::seed_from_u64(11);
        let before = m.eval_loss(&batch);
        for _ in 0..200 {
            let grads = m.forward_backward(&batch, &mut rng);
            // Single-GPU path: apply everything locally.
            let red_in = grads.input_grad.local_reduce();
            m.input_embedding_mut()
                .apply_rows(&red_in.indices, &red_in.rows, 0.5);
            let red_out = grads.output_grad.local_reduce();
            m.output_embedding_mut()
                .apply_rows(&red_out.indices, &red_out.rows, 0.5);
            m.apply_dense(&grads.dense, 0.5);
        }
        let after = m.eval_loss(&batch);
        assert!(after < before * 0.7, "before {before:.3}, after {after:.3}");
    }

    #[test]
    fn word_lm_grads_shapes() {
        let cfg = WordLmConfig::small(100);
        let m = WordLm::new(1, cfg);
        let batch = toy_batch(100, 3, 5, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let g = m.forward_backward(&batch, &mut rng);
        assert_eq!(g.input_grad.indices.len(), 15);
        assert_eq!(g.input_grad.rows.rows(), 15);
        assert_eq!(g.input_grad.rows.cols(), cfg.embed_dim);
        assert_eq!(g.output_grad.indices.len(), 15 + cfg.samples);
        assert_eq!(g.dense.len(), m.dense_param_count());
        assert!(g.loss.is_finite());
    }

    #[test]
    fn char_lm_initial_eval_near_log_v() {
        let cfg = CharLmConfig::small(64);
        let m = CharLm::new(1, cfg);
        let batch = toy_batch(64, 4, 6, 3);
        let loss = m.eval_loss(&batch);
        assert!((loss - (64f64).ln()).abs() < 1.0, "loss {loss}");
    }

    #[test]
    fn char_lm_learns_deterministic_pattern() {
        let vocab = 20;
        let cfg = CharLmConfig::small(vocab);
        let mut m = CharLm::new(5, cfg);
        let batch = toy_batch(vocab, 4, 8, 9);
        let before = m.eval_loss(&batch);
        for _ in 0..200 {
            let grads = m.forward_backward(&batch);
            let red = grads.input_grad.local_reduce();
            m.input_embedding_mut()
                .apply_rows(&red.indices, &red.rows, 0.5);
            m.apply_dense(&grads.dense, 0.5);
        }
        let after = m.eval_loss(&batch);
        assert!(after < before * 0.7, "before {before:.3} after {after:.3}");
    }

    #[test]
    fn char_lm_train_loss_matches_eval_at_same_params() {
        // Full softmax: forward_backward's loss must equal eval_loss.
        let cfg = CharLmConfig::small(32);
        let m = CharLm::new(2, cfg);
        let batch = toy_batch(32, 2, 4, 1);
        let g = m.forward_backward(&batch);
        let e = m.eval_loss(&batch);
        assert!((g.loss - e).abs() < 1e-9);
    }

    #[test]
    fn word_lm_param_vector_round_trips_bitwise() {
        let cfg = WordLmConfig::small(80);
        let src = WordLm::new(9, cfg);
        let snap = src.param_vector();
        assert_eq!(snap.len(), src.param_vector_len());
        // A differently-initialised model becomes bit-identical on load.
        let mut dst = WordLm::new(10, cfg);
        assert_ne!(
            src.input_embedding().weights().as_slice(),
            dst.input_embedding().weights().as_slice()
        );
        dst.load_param_vector(&snap);
        let back = dst.param_vector();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&snap), bits(&back));
        // Behavioural identity, not just byte identity.
        let batch = toy_batch(80, 3, 5, 4);
        assert_eq!(
            src.eval_loss(&batch).to_bits(),
            dst.eval_loss(&batch).to_bits()
        );
    }

    #[test]
    fn char_lm_param_vector_round_trips_bitwise() {
        let cfg = CharLmConfig::small(40);
        let src = CharLm::new(3, cfg);
        let snap = src.param_vector();
        assert_eq!(snap.len(), src.param_vector_len());
        let mut dst = CharLm::new(4, cfg);
        dst.load_param_vector(&snap);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&snap), bits(&dst.param_vector()));
        let batch = toy_batch(40, 2, 6, 8);
        assert_eq!(
            src.eval_loss(&batch).to_bits(),
            dst.eval_loss(&batch).to_bits()
        );
    }

    #[test]
    fn dense_apply_rejects_wrong_size() {
        let cfg = WordLmConfig::small(50);
        let mut m = WordLm::new(1, cfg);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            m.apply_dense(&[0.0; 3], 0.1);
        }));
        assert!(r.is_err());
    }
}
