//! Inverted dropout (used by the char LM per §IV-B: "Adam with weight
//! decay and dropout").
//!
//! Inverted scaling (divide by keep probability at train time) keeps the
//! eval path a no-op. The mask is returned so backward can reuse it.

use rand::Rng;
use tensor::Matrix;

/// Applies inverted dropout in place; returns the 0/scale mask used so
/// the backward pass can apply the identical mask.
pub fn dropout_forward<R: Rng + ?Sized>(rng: &mut R, x: &mut Matrix, p_drop: f32) -> Vec<f32> {
    assert!((0.0..1.0).contains(&p_drop), "drop probability in [0, 1)");
    if p_drop == 0.0 {
        return vec![1.0; x.len()];
    }
    let keep = 1.0 - p_drop;
    let scale = 1.0 / keep;
    let mut mask = Vec::with_capacity(x.len());
    for v in x.as_mut_slice() {
        let m = if rng.gen::<f32>() < keep { scale } else { 0.0 };
        *v *= m;
        mask.push(m);
    }
    mask
}

/// Applies the stored mask to the upstream gradient in place.
pub fn dropout_backward(dy: &mut Matrix, mask: &[f32]) {
    assert_eq!(dy.len(), mask.len(), "mask size mismatch");
    for (d, &m) in dy.as_mut_slice().iter_mut().zip(mask) {
        *d *= m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_drop_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let mask = dropout_forward(&mut rng, &mut x, 0.0);
        assert_eq!(x.as_slice(), &[1., 2., 3., 4.]);
        assert!(mask.iter().all(|&m| m == 1.0));
    }

    #[test]
    fn expected_value_preserved() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut x = Matrix::from_vec(1, n, vec![1.0; n]);
        dropout_forward(&mut rng, &mut x, 0.3);
        let mean: f32 = x.as_slice().iter().sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn roughly_p_fraction_zeroed() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let mut x = Matrix::from_vec(1, n, vec![1.0; n]);
        dropout_forward(&mut rng, &mut x, 0.5);
        let zeros = x.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f64 / n as f64 - 0.5).abs() < 0.05);
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut x = Matrix::from_vec(1, 8, vec![1.0; 8]);
        let mask = dropout_forward(&mut rng, &mut x, 0.5);
        let mut dy = Matrix::from_vec(1, 8, vec![1.0; 8]);
        dropout_backward(&mut dy, &mask);
        // Gradient flows exactly where activations survived.
        for (g, v) in dy.as_slice().iter().zip(x.as_slice()) {
            assert_eq!(*g == 0.0, *v == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn full_drop_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut x = Matrix::zeros(1, 1);
        dropout_forward(&mut rng, &mut x, 1.0);
    }
}
