//! Multi-layer LSTM stack with inter-layer dropout.
//!
//! The word-LM literature the paper builds on (Jozefowicz et al.,
//! §IV-B's [36]) stacks LSTM layers; the paper's main configuration is a
//! single layer, but the system must support deeper stacks to cover the
//! architectures in its comparison set. Gradients of every layer flatten
//! into one buffer for a single fused ALLREDUCE.

use crate::lstm::{LstmCache, LstmGrads, LstmLayer};
use tensor::Matrix;

/// A stack of LSTM layers applied in sequence per timestep.
#[derive(Debug, Clone)]
pub struct LstmStack {
    layers: Vec<LstmLayer>,
}

/// Per-layer caches of one forward pass.
pub struct LstmStackCache {
    caches: Vec<LstmCache>,
}

impl LstmStack {
    /// Builds `depth` layers: the first maps `input_dim → hidden`, the
    /// rest `hidden → hidden`.
    pub fn new<R: rand::Rng + ?Sized>(
        rng: &mut R,
        input_dim: usize,
        hidden: usize,
        depth: usize,
    ) -> Self {
        assert!(depth >= 1, "stack needs at least one layer");
        let mut layers = Vec::with_capacity(depth);
        layers.push(LstmLayer::new(rng, input_dim, hidden));
        for _ in 1..depth {
            layers.push(LstmLayer::new(rng, hidden, hidden));
        }
        Self { layers }
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Hidden size.
    pub fn hidden(&self) -> usize {
        self.layers[0].hidden()
    }

    /// Total parameters across layers.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Runs the stack; returns the top layer's per-step states and the
    /// caches needed for backward.
    pub fn forward(&self, xs: &[Matrix]) -> (Vec<Matrix>, LstmStackCache) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut hs: Vec<Matrix> = xs.to_vec();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&hs);
            caches.push(cache);
            hs = out;
        }
        (hs, LstmStackCache { caches })
    }

    /// Back-propagates; returns input gradients and per-layer parameter
    /// gradients (bottom layer first).
    pub fn backward(
        &self,
        cache: &LstmStackCache,
        dhs: &[Matrix],
    ) -> (Vec<Matrix>, Vec<LstmGrads>) {
        let mut grads = vec![None; self.layers.len()];
        let mut d: Vec<Matrix> = dhs.to_vec();
        for (i, layer) in self.layers.iter().enumerate().rev() {
            let (dx, g) = layer.backward(&cache.caches[i], &d);
            grads[i] = Some(g);
            d = dx;
        }
        (d, grads.into_iter().map(Option::unwrap).collect())
    }

    /// SGD step on every layer.
    pub fn apply(&mut self, grads: &[LstmGrads], lr: f32) {
        assert_eq!(grads.len(), self.layers.len());
        for (layer, g) in self.layers.iter_mut().zip(grads) {
            layer.apply(g, lr);
        }
    }

    /// Appends all layers' gradients to one flat buffer.
    pub fn flatten_grads(grads: &[LstmGrads], out: &mut Vec<f32>) {
        for g in grads {
            LstmLayer::flatten_grads(g, out);
        }
    }

    /// Restores per-layer gradients from the flat buffer; returns the
    /// new offset.
    pub fn unflatten_grads(
        &self,
        flat: &[f32],
        mut offset: usize,
        grads: &mut [LstmGrads],
    ) -> usize {
        assert_eq!(grads.len(), self.layers.len());
        for (layer, g) in self.layers.iter().zip(grads.iter_mut()) {
            offset = layer.unflatten_grads(flat, offset, g);
        }
        offset
    }

    /// Zeroed gradient holders for every layer.
    pub fn zero_grads(&self) -> Vec<LstmGrads> {
        self.layers.iter().map(|l| l.zero_grads()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_steps(rng: &mut StdRng, t: usize, b: usize, d: usize) -> Vec<Matrix> {
        (0..t)
            .map(|_| Matrix::from_vec(b, d, (0..b * d).map(|_| rng.gen_range(-1.0..1.0)).collect()))
            .collect()
    }

    fn sq_loss(hs: &[Matrix]) -> f64 {
        hs.iter().map(|h| h.norm_sq() / 2.0).sum()
    }

    #[test]
    fn single_layer_stack_matches_layer() {
        let mut rng = StdRng::seed_from_u64(1);
        let stack = LstmStack::new(&mut rng, 3, 4, 1);
        let mut rng2 = StdRng::seed_from_u64(1);
        let layer = LstmLayer::new(&mut rng2, 3, 4);
        let mut rng3 = StdRng::seed_from_u64(9);
        let xs = rand_steps(&mut rng3, 3, 2, 3);
        let (hs_stack, _) = stack.forward(&xs);
        let (hs_layer, _) = layer.forward(&xs);
        for (a, b) in hs_stack.iter().zip(&hs_layer) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn deep_stack_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        let stack = LstmStack::new(&mut rng, 5, 7, 3);
        assert_eq!(stack.depth(), 3);
        let xs = rand_steps(&mut rng, 4, 2, 5);
        let (hs, _) = stack.forward(&xs);
        assert_eq!(hs.len(), 4);
        assert_eq!(hs[0].cols(), 7);
    }

    #[test]
    fn stack_gradients_match_numerical() {
        let mut rng = StdRng::seed_from_u64(3);
        let stack = LstmStack::new(&mut rng, 3, 4, 2);
        let xs = rand_steps(&mut rng, 2, 2, 3);
        let (hs, cache) = stack.forward(&xs);
        let (dxs, grads) = stack.backward(&cache, &hs);
        assert_eq!(grads.len(), 2);

        let eps = 1e-3f32;
        // Probe a bottom-layer weight through the flat buffer.
        let mut flat = Vec::new();
        LstmStack::flatten_grads(&grads, &mut flat);
        assert_eq!(flat.len(), stack.param_count());

        // Input gradient check (goes through both layers).
        for i in [0usize, 4] {
            let mut xs2 = xs.clone();
            xs2[0].as_mut_slice()[i] += eps;
            let lp = {
                let (h, _) = stack.forward(&xs2);
                sq_loss(&h)
            };
            xs2[0].as_mut_slice()[i] -= 2.0 * eps;
            let lm = {
                let (h, _) = stack.forward(&xs2);
                sq_loss(&h)
            };
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = dxs[0].as_slice()[i];
            assert!((ana - num).abs() < 3e-2, "dx[0][{i}]: {ana} vs {num}");
        }
    }

    #[test]
    fn stack_trains() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut stack = LstmStack::new(&mut rng, 3, 4, 2);
        let xs = rand_steps(&mut rng, 4, 3, 3);
        let (h0, _) = stack.forward(&xs);
        let before = sq_loss(&h0);
        for _ in 0..150 {
            let (hs, cache) = stack.forward(&xs);
            let (_, grads) = stack.backward(&cache, &hs);
            stack.apply(&grads, 0.1);
        }
        let (h1, _) = stack.forward(&xs);
        assert!(sq_loss(&h1) < before * 0.6);
    }

    #[test]
    fn flatten_round_trip() {
        let mut rng = StdRng::seed_from_u64(7);
        let stack = LstmStack::new(&mut rng, 3, 4, 3);
        let xs = rand_steps(&mut rng, 2, 2, 3);
        let (hs, cache) = stack.forward(&xs);
        let (_, grads) = stack.backward(&cache, &hs);
        let mut flat = Vec::new();
        LstmStack::flatten_grads(&grads, &mut flat);
        let mut restored = stack.zero_grads();
        let end = stack.unflatten_grads(&flat, 0, &mut restored);
        assert_eq!(end, flat.len());
        for (a, b) in grads.iter().zip(&restored) {
            assert_eq!(a.dwx.as_slice(), b.dwx.as_slice());
            assert_eq!(a.db, b.db);
        }
    }
}
