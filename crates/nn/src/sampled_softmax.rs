//! Sampled softmax — the word LM's output layer (§II-A, §IV-B).
//!
//! Computing the full softmax over a 100 K-word vocabulary dominates the
//! word LM's cost, so the paper (following Jean et al. / TF's
//! `sampled_softmax_loss`) scores only `S` randomly drawn candidate words
//! plus the true target per position, drawn from the **log-uniform**
//! (Zipfian) candidate distribution, with the standard `−ln(S·Q(w))`
//! expected-count correction and accidental-hit masking.
//!
//! Two details matter for the paper's techniques:
//!
//! * The candidate set is drawn from a *caller-supplied RNG* — this is
//!   the hook the seeding strategy (§III-B) uses: GPUs sharing a seed
//!   draw identical candidate sets, shrinking the union of sampled words
//!   that the output-embedding exchange must move.
//! * The backward pass returns a token-aligned [`SparseGrad`] over the
//!   output embedding table (targets first, then candidates), exactly the
//!   shape the exchange strategies operate on.

use crate::embedding::{Embedding, SparseGrad};
use rand::Rng;
use std::collections::HashSet;
use tensor::ops::log_sum_exp;
use tensor::Matrix;
use zipf::LogUniform;

/// Sampled-softmax layer over an external output-embedding table.
#[derive(Debug, Clone)]
pub struct SampledSoftmax {
    sampler: LogUniform,
    samples: usize,
}

/// Result of one sampled-softmax forward/backward.
#[derive(Debug, Clone)]
pub struct SampledSoftmaxOutput {
    /// Mean negative log-likelihood over the candidate set (nats).
    pub loss: f64,
    /// `∂L/∂h`, shape `n×P`.
    pub dh: Matrix,
    /// Sparse gradient over the output embedding table. Indices are the
    /// `n` targets followed by the `S` candidates.
    pub grad: SparseGrad,
    /// The candidate word ids drawn this step (size `S`, unique).
    pub candidates: Vec<u32>,
}

impl SampledSoftmax {
    /// Creates the layer for a vocabulary of `vocab` words drawing
    /// `samples` candidates per step.
    pub fn new(vocab: usize, samples: usize) -> Self {
        assert!(samples >= 1, "need at least one sample");
        assert!(
            samples < vocab,
            "sample count {samples} must be below vocabulary {vocab}"
        );
        Self {
            sampler: LogUniform::new(vocab),
            samples,
        }
    }

    /// Number of candidates per step (`S`).
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Draws `S` *unique* candidates from the log-uniform distribution
    /// using the supplied RNG (rejection sampling; cheap since `S ≪ V`).
    pub fn draw_candidates<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u32> {
        let mut seen = HashSet::with_capacity(self.samples * 2);
        let mut out = Vec::with_capacity(self.samples);
        while out.len() < self.samples {
            let c = self.sampler.sample(rng) as u32;
            if seen.insert(c) {
                out.push(c);
            }
        }
        out
    }

    /// Convenience: draw candidates and run
    /// [`SampledSoftmax::forward_backward_with_candidates`].
    pub fn forward_backward<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        h: &Matrix,
        targets: &[u32],
        table: &Embedding,
    ) -> SampledSoftmaxOutput {
        let cands = self.draw_candidates(rng);
        self.forward_backward_with_candidates(h, targets, table, cands)
    }

    /// Scores `h` (`n×P`) against the true targets plus the given
    /// candidate set and back-propagates the mean cross-entropy.
    ///
    /// Per row the class list is `[target_i, cand_0 … cand_{S−1}]`; each
    /// logit gets the `−ln(S·Q(w))` correction; candidates equal to the
    /// row's target are masked to `−1e9` (accidental-hit removal).
    pub fn forward_backward_with_candidates(
        &self,
        h: &Matrix,
        targets: &[u32],
        table: &Embedding,
        candidates: Vec<u32>,
    ) -> SampledSoftmaxOutput {
        let n = h.rows();
        let p = h.cols();
        let s = candidates.len();
        assert_eq!(targets.len(), n, "target count mismatch");
        assert_eq!(table.dim(), p, "table dim mismatch");
        assert!(n > 0, "empty batch");

        // Gather candidate embedding rows once (shared across rows).
        let cand_rows = table.forward(&candidates);
        let cand_corr: Vec<f32> = candidates
            .iter()
            .map(|&c| (s as f64 * self.sampler.prob(c as usize)).ln() as f32)
            .collect();

        let inv_n = 1.0 / n as f32;
        let mut total = 0.0f64;
        let mut dh = Matrix::zeros(n, p);
        // Sparse grad: one row per target occurrence + one per candidate.
        let mut grad_rows = Matrix::zeros(n + s, p);
        let mut indices = Vec::with_capacity(n + s);
        indices.extend_from_slice(targets);
        indices.extend_from_slice(&candidates);

        let mut logits = vec![0.0f32; s + 1];
        #[allow(clippy::needless_range_loop)] // i indexes h, targets, dh and grad_rows in lockstep
        for i in 0..n {
            let hi = h.row(i);
            let t = targets[i];
            let t_row = table.weights().row(t as usize);

            // True-class logit with correction.
            let mut dot = 0.0f32;
            for (&a, &b) in hi.iter().zip(t_row) {
                dot += a * b;
            }
            let t_corr = (s as f64 * self.sampler.prob(t as usize)).ln() as f32;
            logits[0] = dot - t_corr;

            // Candidate logits.
            for j in 0..s {
                if candidates[j] == t {
                    logits[j + 1] = -1e9; // accidental hit
                    continue;
                }
                let cr = cand_rows.row(j);
                let mut d = 0.0f32;
                for (&a, &b) in hi.iter().zip(cr) {
                    d += a * b;
                }
                logits[j + 1] = d - cand_corr[j];
            }

            let lse = log_sum_exp(&logits);
            total += (lse - logits[0]) as f64;

            // dlogit_j = (softmax_j − 1[j == true]) / n; accumulate into
            // dh and the sparse table gradient.
            for j in 0..=s {
                if j >= 1 && candidates[j - 1] == t {
                    continue; // masked logit: exactly zero gradient
                }
                let pj = (logits[j] - lse).exp();
                let dlogit = (pj - if j == 0 { 1.0 } else { 0.0 }) * inv_n;
                if dlogit == 0.0 {
                    continue;
                }
                let class_row: &[f32] = if j == 0 { t_row } else { cand_rows.row(j - 1) };
                for ((dhv, &hv), &cv) in dh.row_mut(i).iter_mut().zip(hi).zip(class_row) {
                    *dhv += dlogit * cv;
                    let _ = hv;
                }
                let grad_idx = if j == 0 { i } else { n + j - 1 };
                let gr = grad_rows.row_mut(grad_idx);
                for (g, &hv) in gr.iter_mut().zip(hi) {
                    *g += dlogit * hv;
                }
            }
        }

        SampledSoftmaxOutput {
            loss: total / n as f64,
            dh,
            grad: SparseGrad {
                indices,
                rows: grad_rows,
            },
            candidates,
        }
    }
}

/// Full-vocabulary evaluation loss (mean NLL, nats) for validation:
/// `logits = h · Eᵀ`, exact softmax. Used to report perplexity — the
/// paper evaluates with the true distribution even when training with
/// sampled softmax.
pub fn full_softmax_eval_loss(h: &Matrix, targets: &[u32], table: &Embedding) -> f64 {
    let logits = h.matmul_transpose_b(table.weights());
    crate::softmax::softmax_cross_entropy(&logits, targets).loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::init;

    fn setup(vocab: usize, p: usize, n: usize, seed: u64) -> (Embedding, Matrix, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let table = Embedding::new(&mut rng, vocab, p);
        let h = init::uniform(&mut rng, n, p, 1.0);
        let targets: Vec<u32> = (0..n).map(|i| (i * 7 % vocab) as u32).collect();
        (table, h, targets)
    }

    #[test]
    fn candidates_unique_and_in_range() {
        let ss = SampledSoftmax::new(1000, 50);
        let mut rng = StdRng::seed_from_u64(1);
        let c = ss.draw_candidates(&mut rng);
        assert_eq!(c.len(), 50);
        let set: HashSet<u32> = c.iter().copied().collect();
        assert_eq!(set.len(), 50);
        assert!(c.iter().all(|&x| x < 1000));
    }

    #[test]
    fn same_seed_same_candidates() {
        // The mechanism seeding (§III-B) relies on.
        let ss = SampledSoftmax::new(5000, 64);
        let a = ss.draw_candidates(&mut StdRng::seed_from_u64(42));
        let b = ss.draw_candidates(&mut StdRng::seed_from_u64(42));
        let c = ss.draw_candidates(&mut StdRng::seed_from_u64(43));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn candidates_skew_zipfian() {
        // Log-uniform sampling favours frequent (low-id) words.
        let ss = SampledSoftmax::new(100_000, 200);
        let mut rng = StdRng::seed_from_u64(2);
        let mut low = 0usize;
        for _ in 0..20 {
            let c = ss.draw_candidates(&mut rng);
            low += c.iter().filter(|&&x| x < 1000).count();
        }
        // Under uniform sampling the expectation would be 40 of 4000.
        assert!(low > 400, "low-rank count {low}");
    }

    #[test]
    fn loss_decreases_with_training_signal() {
        let (mut table, h, targets) = setup(500, 8, 16, 3);
        let ss = SampledSoftmax::new(500, 32);
        let mut rng = StdRng::seed_from_u64(9);
        let first = ss.forward_backward(&mut rng, &h, &targets, &table);
        // Apply the sparse gradient a few times; loss on the same
        // candidates must drop.
        let cands = first.candidates.clone();
        let mut last = first.loss;
        for _ in 0..25 {
            let out = ss.forward_backward_with_candidates(&h, &targets, &table, cands.clone());
            let red = out.grad.local_reduce();
            table.apply_rows(&red.indices, &red.rows, 0.5);
            last = out.loss;
        }
        assert!(last < first.loss * 0.8, "first {} last {last}", first.loss);
    }

    #[test]
    fn table_gradient_matches_numerical() {
        let (table, h, targets) = setup(50, 4, 3, 11);
        let ss = SampledSoftmax::new(50, 8);
        let cands = ss.draw_candidates(&mut StdRng::seed_from_u64(5));
        let out = ss.forward_backward_with_candidates(&h, &targets, &table, cands.clone());
        let red = out.grad.local_reduce();

        // Build a dense view of the analytic table gradient.
        let mut dense = Matrix::zeros(50, 4);
        for (i, &idx) in red.indices.iter().enumerate() {
            for (d, &g) in dense.row_mut(idx as usize).iter_mut().zip(red.rows.row(i)) {
                *d += g;
            }
        }

        let eps = 1e-3f32;
        let loss_at = |t: &Embedding| {
            ss.forward_backward_with_candidates(&h, &targets, t, cands.clone())
                .loss
        };
        // Probe the target rows and two candidate rows.
        let mut probes: Vec<u32> = targets.clone();
        probes.push(cands[0]);
        probes.push(cands[3]);
        for &row in &probes {
            for col in 0..4 {
                let mut tp = table.clone();
                tp.weights_mut().row_mut(row as usize)[col] += eps;
                let mut tm = table.clone();
                tm.weights_mut().row_mut(row as usize)[col] -= eps;
                let num = ((loss_at(&tp) - loss_at(&tm)) / (2.0 * eps as f64)) as f32;
                let ana = dense.get(row as usize, col);
                assert!(
                    (ana - num).abs() < 2e-3,
                    "row {row} col {col}: analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn dh_matches_numerical() {
        let (table, h, targets) = setup(40, 4, 3, 13);
        let ss = SampledSoftmax::new(40, 6);
        let cands = ss.draw_candidates(&mut StdRng::seed_from_u64(8));
        let out = ss.forward_backward_with_candidates(&h, &targets, &table, cands.clone());
        let eps = 1e-3f32;
        for i in 0..h.len() {
            let mut hp = h.clone();
            hp.as_mut_slice()[i] += eps;
            let mut hm = h.clone();
            hm.as_mut_slice()[i] -= eps;
            let lp = ss
                .forward_backward_with_candidates(&hp, &targets, &table, cands.clone())
                .loss;
            let lm = ss
                .forward_backward_with_candidates(&hm, &targets, &table, cands.clone())
                .loss;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            let ana = out.dh.as_slice()[i];
            assert!((ana - num).abs() < 2e-3, "dh[{i}]: {ana} vs {num}");
        }
    }

    #[test]
    fn accidental_hits_masked() {
        let (table, h, _) = setup(30, 4, 2, 17);
        let ss = SampledSoftmax::new(30, 4);
        // Force candidate 0 to equal row 0's target.
        let targets = vec![7u32, 9];
        let cands = vec![7u32, 1, 2, 3];
        let out = ss.forward_backward_with_candidates(&h, &targets, &table, cands);
        assert!(out.loss.is_finite());
        // Row 0's target gradient row must exist; candidate 7's gradient
        // only receives contributions from row 1.
        assert_eq!(out.grad.indices[0], 7);
        assert_eq!(out.grad.indices[2], 7); // candidate position
    }

    #[test]
    fn full_eval_matches_sampled_direction() {
        // Full-softmax eval loss should be ≥ 0 and finite.
        let (table, h, targets) = setup(100, 8, 10, 19);
        let loss = full_softmax_eval_loss(&h, &targets, &table);
        assert!(loss.is_finite() && loss > 0.0);
        // Near-uniform random embeddings score close to ln V.
        assert!((loss - (100.0f64).ln()).abs() < 1.5, "loss {loss}");
    }

    #[test]
    #[should_panic(expected = "below vocabulary")]
    fn too_many_samples_rejected() {
        SampledSoftmax::new(10, 10);
    }
}
