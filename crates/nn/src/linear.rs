//! Fully-connected projection layer.
//!
//! The word LM projects the 2048-cell LSTM state down to 512 dimensions
//! before the output embedding (the "projection" of Jozefowicz et al.
//! that §IV-B adopts); the char LM projects RHN state to the alphabet.

use tensor::{init, Matrix};

/// `y = x·W + b`, with `W: in×out`, `b: out`.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
}

/// Gradients of a [`Linear`] layer from one backward pass.
#[derive(Debug, Clone)]
pub struct LinearGrads {
    /// `∂L/∂W`, same shape as `W`.
    pub dw: Matrix,
    /// `∂L/∂b`.
    pub db: Vec<f32>,
}

impl Linear {
    /// Xavier-initialised layer.
    pub fn new<R: rand::Rng + ?Sized>(rng: &mut R, in_dim: usize, out_dim: usize) -> Self {
        Self {
            w: init::xavier(rng, in_dim, out_dim),
            b: vec![0.0; out_dim],
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Read access to the weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Number of parameters (weights + bias).
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }

    /// Forward: `x (n×in) → n×out`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.in_dim(), "input dim mismatch");
        let mut y = x.matmul(&self.w);
        y.add_row_bias(&self.b);
        y
    }

    /// Backward: given the forward input `x` and `∂L/∂y`, returns
    /// `(∂L/∂x, grads)`.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> (Matrix, LinearGrads) {
        assert_eq!(dy.cols(), self.out_dim());
        assert_eq!(x.rows(), dy.rows());
        let dx = dy.matmul_transpose_b(&self.w);
        let dw = x.transpose_a_matmul(dy);
        let db = dy.sum_rows();
        (dx, LinearGrads { dw, db })
    }

    /// SGD step.
    pub fn apply(&mut self, grads: &LinearGrads, lr: f32) {
        self.w.axpy(-lr, &grads.dw);
        for (b, &g) in self.b.iter_mut().zip(&grads.db) {
            *b -= lr * g;
        }
    }

    /// Flattens `(dw, db)` into one contiguous buffer for ALLREDUCE, in
    /// a fixed layout (`dw` row-major then `db`).
    pub fn flatten_grads(grads: &LinearGrads, out: &mut Vec<f32>) {
        out.extend_from_slice(grads.dw.as_slice());
        out.extend_from_slice(&grads.db);
    }

    /// Appends the layer's parameters `(w, b)` to `out`, in the same
    /// fixed layout as [`Linear::flatten_grads`] — the basis of
    /// bit-exact checkpoint snapshots.
    pub fn flatten_params(&self, out: &mut Vec<f32>) {
        out.extend_from_slice(self.w.as_slice());
        out.extend_from_slice(&self.b);
    }

    /// Overwrites the layer's parameters from `flat` at `offset` (the
    /// [`Linear::flatten_params`] layout); returns the new offset.
    pub fn load_params(&mut self, flat: &[f32], offset: usize) -> usize {
        let nw = self.w.len();
        let nb = self.b.len();
        self.w
            .as_mut_slice()
            .copy_from_slice(&flat[offset..offset + nw]);
        self.b.copy_from_slice(&flat[offset + nw..offset + nw + nb]);
        offset + nw + nb
    }

    /// Reads gradients back from the flat buffer at `offset`; returns the
    /// new offset.
    pub fn unflatten_grads(&self, flat: &[f32], offset: usize, grads: &mut LinearGrads) -> usize {
        let nw = self.w.len();
        grads
            .dw
            .as_mut_slice()
            .copy_from_slice(&flat[offset..offset + nw]);
        let nb = self.b.len();
        grads
            .db
            .copy_from_slice(&flat[offset + nw..offset + nw + nb]);
        offset + nw + nb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rand_matrix(rng: &mut StdRng, r: usize, c: usize) -> Matrix {
        Matrix::from_vec(r, c, (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    #[test]
    fn forward_known_values() {
        let mut l = Linear::new(&mut StdRng::seed_from_u64(0), 2, 2);
        l.w = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        l.b = vec![10., 20.];
        let x = Matrix::from_vec(1, 2, vec![1., 1.]);
        let y = l.forward(&x);
        assert_eq!(y.as_slice(), &[14., 26.]);
    }

    /// Central-difference numerical gradient check of the full layer.
    #[test]
    fn gradients_match_numerical() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = Linear::new(&mut rng, 3, 2);
        let x = rand_matrix(&mut rng, 4, 3);
        // Loss = sum(y^2)/2 so dL/dy = y.
        let y = l.forward(&x);
        let (dx, grads) = l.backward(&x, &y);

        let eps = 1e-3f32;
        let loss = |l: &Linear, x: &Matrix| -> f64 {
            let y = l.forward(x);
            y.as_slice()
                .iter()
                .map(|&v| (v as f64) * (v as f64) / 2.0)
                .sum()
        };

        // Check dW.
        for i in [0usize, 2, 5] {
            let orig = l.w.as_slice()[i];
            l.w.as_mut_slice()[i] = orig + eps;
            let lp = loss(&l, &x);
            l.w.as_mut_slice()[i] = orig - eps;
            let lm = loss(&l, &x);
            l.w.as_mut_slice()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (grads.dw.as_slice()[i] - num).abs() < 2e-2,
                "dw[{i}]: analytic {} vs numeric {num}",
                grads.dw.as_slice()[i]
            );
        }
        // Check db.
        for i in 0..2 {
            let orig = l.b[i];
            l.b[i] = orig + eps;
            let lp = loss(&l, &x);
            l.b[i] = orig - eps;
            let lm = loss(&l, &x);
            l.b[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((grads.db[i] - num).abs() < 2e-2);
        }
        // Check dx.
        let mut x2 = x.clone();
        for i in [0usize, 7, 11] {
            let orig = x2.as_slice()[i];
            x2.as_mut_slice()[i] = orig + eps;
            let lp = loss(&l, &x2);
            x2.as_mut_slice()[i] = orig - eps;
            let lm = loss(&l, &x2);
            x2.as_mut_slice()[i] = orig;
            let num = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!((dx.as_slice()[i] - num).abs() < 2e-2);
        }
    }

    #[test]
    fn apply_moves_against_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut l = Linear::new(&mut rng, 2, 2);
        let x = rand_matrix(&mut rng, 8, 2);
        let before: f64 = l.forward(&x).norm_sq();
        for _ in 0..20 {
            let y = l.forward(&x);
            let (_, grads) = l.backward(&x, &y);
            l.apply(&grads, 0.05);
        }
        let after: f64 = l.forward(&x).norm_sq();
        assert!(after < before * 0.5, "before {before}, after {after}");
    }

    #[test]
    fn flatten_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let l = Linear::new(&mut rng, 3, 4);
        let x = rand_matrix(&mut rng, 2, 3);
        let y = l.forward(&x);
        let (_, grads) = l.backward(&x, &y);
        let mut flat = vec![99.0f32]; // offset 1
        Linear::flatten_grads(&grads, &mut flat);
        let mut restored = LinearGrads {
            dw: Matrix::zeros(3, 4),
            db: vec![0.0; 4],
        };
        let end = l.unflatten_grads(&flat, 1, &mut restored);
        assert_eq!(end, flat.len());
        assert_eq!(restored.dw.as_slice(), grads.dw.as_slice());
        assert_eq!(restored.db, grads.db);
    }

    #[test]
    fn param_count() {
        let l = Linear::new(&mut StdRng::seed_from_u64(0), 512, 2048);
        assert_eq!(l.param_count(), 512 * 2048 + 2048);
    }
}
