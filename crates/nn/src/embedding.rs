//! Embedding layers and their sparse gradients.
//!
//! The forward pass is the gather of Figure 2: token `w` at position `i`
//! copies row `w` of the `V×D` table into row `i` of the dense `K×D`
//! activation matrix. The backward pass is the scatter-accumulate of
//! §II-A: row `i` of the `K×D` gradient must be *added* into row `w` of
//! the table — and because tokens repeat, updates to the same row must
//! accumulate (the serialisation hazard the paper's uniqueness scheme
//! eliminates).
//!
//! Crucially for the paper, the backward pass here does **not** touch the
//! table: it returns a [`SparseGrad`] (token indices + token-aligned
//! gradient rows). How that gradient crosses GPUs — dense ALLGATHER or
//! the unique scheme — is the `lm` crate's business.

use tensor::{init, Matrix};

/// A `V×D` embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    weights: Matrix,
}

/// Token-aligned sparse gradient for an embedding table: row `i` of
/// `rows` is the gradient for table row `indices[i]`. Indices may repeat.
#[derive(Debug, Clone)]
pub struct SparseGrad {
    /// Table row per gradient row (the paper's vector `J`).
    pub indices: Vec<u32>,
    /// One `D`-dim gradient per token occurrence (the paper's `∆`).
    pub rows: Matrix,
}

impl SparseGrad {
    /// Locally reduces duplicate indices (step 2 of §III-A): gradient
    /// rows with equal indices are summed, order of first occurrence is
    /// preserved. Returns `(Ĵ, ∆̂)` with `Ĵ` duplicate-free.
    ///
    /// ```
    /// use nn::SparseGrad;
    /// use tensor::Matrix;
    /// // The repeated token "a" from the paper's Figure 2 example.
    /// let grad = SparseGrad {
    ///     indices: vec![1, 1],
    ///     rows: Matrix::from_vec(2, 2, vec![1.0, 2.0, 10.0, 20.0]),
    /// };
    /// let reduced = grad.local_reduce();
    /// assert_eq!(reduced.indices, vec![1]);
    /// assert_eq!(reduced.rows.row(0), &[11.0, 22.0]);
    /// ```
    pub fn local_reduce(&self) -> SparseGrad {
        let d = self.rows.cols();
        let mut first_slot: std::collections::HashMap<u32, usize> =
            std::collections::HashMap::new();
        let mut indices = Vec::new();
        let mut rows_data: Vec<f32> = Vec::new();
        for (i, &idx) in self.indices.iter().enumerate() {
            match first_slot.get(&idx) {
                Some(&slot) => {
                    let dst = &mut rows_data[slot * d..(slot + 1) * d];
                    for (a, &b) in dst.iter_mut().zip(self.rows.row(i)) {
                        *a += b;
                    }
                }
                None => {
                    first_slot.insert(idx, indices.len());
                    indices.push(idx);
                    rows_data.extend_from_slice(self.rows.row(i));
                }
            }
        }
        let n = indices.len();
        SparseGrad {
            indices,
            rows: Matrix::from_vec(n, d, rows_data),
        }
    }

    /// Number of gradient rows.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if there are no gradient rows.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

impl Embedding {
    /// Creates a table with `U(−1/√D, 1/√D)` init.
    pub fn new<R: rand::Rng + ?Sized>(rng: &mut R, vocab: usize, dim: usize) -> Self {
        Self {
            weights: init::embedding(rng, vocab, dim),
        }
    }

    /// Wraps an existing table.
    pub fn from_matrix(weights: Matrix) -> Self {
        Self { weights }
    }

    /// Vocabulary size `V`.
    pub fn vocab(&self) -> usize {
        self.weights.rows()
    }

    /// Embedding dimension `D`.
    pub fn dim(&self) -> usize {
        self.weights.cols()
    }

    /// Read access to the table.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// Mutable access to the table (used by exchange strategies when
    /// applying synchronized updates).
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.weights
    }

    /// Forward gather: returns the `len(tokens)×D` activation matrix.
    pub fn forward(&self, tokens: &[u32]) -> Matrix {
        let d = self.dim();
        let mut out = Matrix::zeros(tokens.len(), d);
        for (i, &t) in tokens.iter().enumerate() {
            assert!((t as usize) < self.vocab(), "token {t} out of vocabulary");
            out.row_mut(i).copy_from_slice(self.weights.row(t as usize));
        }
        out
    }

    /// Packages the dense upstream gradient as a [`SparseGrad`]; the
    /// caller keeps responsibility for applying it to the table.
    pub fn backward(&self, tokens: &[u32], upstream: Matrix) -> SparseGrad {
        assert_eq!(tokens.len(), upstream.rows(), "token/grad row mismatch");
        assert_eq!(upstream.cols(), self.dim(), "grad dim mismatch");
        SparseGrad {
            indices: tokens.to_vec(),
            rows: upstream,
        }
    }

    /// SGD-style in-place update: `W[idx] -= lr · row` for each pair.
    /// With duplicate-free indices (post-reduction) each table row is
    /// touched once — the race-free property §III-A points out.
    pub fn apply_rows(&mut self, indices: &[u32], rows: &Matrix, lr: f32) {
        assert_eq!(indices.len(), rows.rows());
        assert_eq!(rows.cols(), self.dim());
        for (i, &idx) in indices.iter().enumerate() {
            let dst = self.weights.row_mut(idx as usize);
            for (w, &g) in dst.iter_mut().zip(rows.row(i)) {
                *w -= lr * g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table() -> Embedding {
        // 5 words, D = 3, rows are recognisable.
        let w = Matrix::from_vec(
            5,
            3,
            vec![
                0., 0., 0., //
                1., 1., 1., //
                2., 2., 2., //
                3., 3., 3., //
                4., 4., 4.,
            ],
        );
        Embedding::from_matrix(w)
    }

    #[test]
    fn forward_gathers_rows() {
        let e = table();
        // The paper's "I want a pen and a" example: repeated token "a".
        let out = e.forward(&[4, 1, 0, 3, 2, 0]);
        assert_eq!(out.row(0), &[4., 4., 4.]);
        assert_eq!(out.row(2), &[0., 0., 0.]);
        assert_eq!(out.row(5), &[0., 0., 0.]); // "a" again
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn forward_rejects_oov() {
        table().forward(&[5]);
    }

    #[test]
    fn local_reduce_accumulates_duplicates() {
        let grad = SparseGrad {
            indices: vec![3, 1, 3, 3],
            rows: Matrix::from_vec(4, 2, vec![1., 1., 5., 5., 2., 2., 4., 4.]),
        };
        let reduced = grad.local_reduce();
        assert_eq!(reduced.indices, vec![3, 1]);
        assert_eq!(reduced.rows.row(0), &[7., 7.]); // 1+2+4
        assert_eq!(reduced.rows.row(1), &[5., 5.]);
    }

    #[test]
    fn local_reduce_no_duplicates_is_identity() {
        let grad = SparseGrad {
            indices: vec![2, 0, 4],
            rows: Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]),
        };
        let reduced = grad.local_reduce();
        assert_eq!(reduced.indices, grad.indices);
        assert_eq!(reduced.rows.as_slice(), grad.rows.as_slice());
    }

    #[test]
    fn apply_rows_subtracts_scaled_gradient() {
        let mut e = table();
        let rows = Matrix::from_vec(2, 3, vec![1., 1., 1., 2., 2., 2.]);
        e.apply_rows(&[0, 4], &rows, 0.5);
        assert_eq!(e.weights().row(0), &[-0.5, -0.5, -0.5]);
        assert_eq!(e.weights().row(4), &[3., 3., 3.]);
        assert_eq!(e.weights().row(2), &[2., 2., 2.]); // untouched
    }

    #[test]
    fn reduce_then_apply_equals_apply_duplicates() {
        // The uniqueness invariant in miniature: applying the reduced
        // gradient equals applying the raw duplicated gradient.
        let grad = SparseGrad {
            indices: vec![1, 1, 2],
            rows: Matrix::from_vec(3, 3, vec![1., 0., 0., 0., 1., 0., 9., 9., 9.]),
        };
        let mut a = table();
        a.apply_rows(&grad.indices, &grad.rows, 0.1);
        let mut b = table();
        let red = grad.local_reduce();
        b.apply_rows(&red.indices, &red.rows, 0.1);
        assert!(a.weights().max_abs_diff(b.weights()) < 1e-6);
    }

    #[test]
    fn backward_is_token_aligned() {
        let e = table();
        let up = Matrix::from_vec(2, 3, vec![0.5; 6]);
        let g = e.backward(&[2, 2], up);
        assert_eq!(g.indices, vec![2, 2]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn new_is_seed_deterministic() {
        let a = Embedding::new(&mut StdRng::seed_from_u64(1), 10, 4);
        let b = Embedding::new(&mut StdRng::seed_from_u64(1), 10, 4);
        assert_eq!(a.weights().as_slice(), b.weights().as_slice());
    }
}
