//! Optimizers: SGD (word LM) and Adam (char LM), plus the paper's
//! `lr · ln(nodes)` learning-rate scaling rule.
//!
//! §IV-B: the word LM uses SGD with base lr 0.2 scaled by `ln |nodes|`;
//! the char LM uses Adam (with weight decay applied in the layer) at base
//! lr 1e-3 with the same node scaling. Both decay by 0.85–0.95 per epoch.

use tensor::Matrix;

/// Plain SGD on flat parameter/gradient buffers.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Current learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD at the given rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr }
    }

    /// `param -= lr · grad` over flat slices.
    pub fn step_flat(&self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len());
        for (p, &g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
    }

    /// Matrix convenience.
    pub fn step(&self, params: &mut Matrix, grads: &Matrix) {
        params.axpy(-self.lr, grads);
    }

    /// Applies an epoch decay factor (paper: 0.85–0.95).
    pub fn decay(&mut self, factor: f32) {
        assert!(factor > 0.0 && factor <= 1.0);
        self.lr *= factor;
    }
}

/// Adam with bias correction; state sized for one flat parameter buffer.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Standard Adam (β₁ = 0.9, β₂ = 0.999, ε = 1e-8) over `n` params.
    pub fn new(n: usize, lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies an epoch decay factor.
    pub fn decay(&mut self, factor: f32) {
        assert!(factor > 0.0 && factor <= 1.0);
        self.lr *= factor;
    }

    /// One Adam step over flat buffers.
    pub fn step_flat(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "state size mismatch");
        assert_eq!(params.len(), grads.len());
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let mhat = self.m[i] / b1c;
            let vhat = self.v[i] / b2c;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// The paper's learning-rate scaling rule: base lr (for one 8-GPU node)
/// multiplied by `ln(nodes)` for multi-node jobs (§IV-B, §V-A: "0.2 ×
/// log_e(|nodes|)", e.g. factor 0.41 … ≈ 2.07 at 64 GPUs on 8-GPU nodes).
pub fn scaled_lr(base: f32, gpus: usize, gpus_per_node: usize) -> f32 {
    assert!(gpus >= 1 && gpus_per_node >= 1);
    let nodes = gpus.div_ceil(gpus_per_node).max(1);
    if nodes <= 1 {
        base
    } else {
        base * (nodes as f32).ln()
    }
}

/// Global-norm gradient clipping over a flat buffer; returns the norm
/// before clipping.
pub fn clip_by_global_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0);
    let norm = grads
        .iter()
        .map(|&g| (g as f64) * (g as f64))
        .sum::<f64>()
        .sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            *g *= scale;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let sgd = Sgd::new(0.1);
        let mut p = vec![1.0f32, -1.0];
        sgd.step_flat(&mut p, &[2.0, -2.0]);
        assert_eq!(p, vec![0.8, -0.8]);
    }

    #[test]
    fn sgd_decay() {
        let mut sgd = Sgd::new(0.2);
        sgd.decay(0.9);
        assert!((sgd.lr - 0.18).abs() < 1e-7);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // minimise f(x) = (x − 3)²
        let mut adam = Adam::new(1, 0.1);
        let mut x = vec![0.0f32];
        for _ in 0..500 {
            let g = 2.0 * (x[0] - 3.0);
            adam.step_flat(&mut x, &[g]);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x = {}", x[0]);
    }

    #[test]
    fn adam_faster_than_sgd_on_illconditioned() {
        // f(x, y) = 100x² + y²: Adam's per-coordinate scaling wins.
        let run_adam = || {
            let mut adam = Adam::new(2, 0.05);
            let mut p = vec![1.0f32, 1.0];
            for _ in 0..200 {
                let g = [200.0 * p[0], 2.0 * p[1]];
                adam.step_flat(&mut p, &g);
            }
            (100.0 * p[0] * p[0] + p[1] * p[1]) as f64
        };
        let run_sgd = || {
            let sgd = Sgd::new(0.004); // near stability limit for 100x²
            let mut p = vec![1.0f32, 1.0];
            for _ in 0..200 {
                let g = [200.0 * p[0], 2.0 * p[1]];
                sgd.step_flat(&mut p, &g);
            }
            (100.0 * p[0] * p[0] + p[1] * p[1]) as f64
        };
        assert!(run_adam() < run_sgd());
    }

    #[test]
    fn lr_scaling_matches_paper_numbers() {
        // 8 GPUs = 1 node: base. 64 GPUs = 8 nodes: ln 8 ≈ 2.08.
        assert_eq!(scaled_lr(0.2, 8, 8), 0.2);
        let lr64 = scaled_lr(0.2, 64, 8);
        assert!((lr64 - 0.2 * (8f32).ln()).abs() < 1e-6);
        assert!((lr64 / 0.2 - 2.08).abs() < 0.01);
        // §V-A quotes "0.41 for 64 GPUs" as the *learning rate* (0.2 ×
        // ln 8 ≈ 0.416).
        assert!((lr64 - 0.416).abs() < 0.01);
        // Char LM: 1e-3 base → "2.07 × 10−3 for 64 GPUs".
        let c = scaled_lr(1e-3, 64, 8);
        assert!((c - 2.07e-3).abs() < 2e-5, "c {c}");
    }

    #[test]
    fn clipping_preserves_direction() {
        let mut g = vec![3.0f32, 4.0];
        let norm = clip_by_global_norm(&mut g, 1.0);
        assert!((norm - 5.0).abs() < 1e-6);
        assert!((g[0] - 0.6).abs() < 1e-6);
        assert!((g[1] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn clipping_noop_below_threshold() {
        let mut g = vec![0.3f32, 0.4];
        clip_by_global_norm(&mut g, 1.0);
        assert_eq!(g, vec![0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "state size mismatch")]
    fn adam_size_mismatch_panics() {
        let mut adam = Adam::new(2, 0.1);
        let mut p = vec![0.0f32; 3];
        adam.step_flat(&mut p, &[0.0; 3]);
    }
}
