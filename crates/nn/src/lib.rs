//! From-scratch neural language-model layers for `zipf-lm`.
//!
//! The paper's two test models (§IV-B) are:
//!
//! * a **word LM**: input embedding → 1× LSTM (2048 cells) → projection
//!   (512) → output embedding + **sampled softmax** (1024 samples/GPU),
//!   trained with SGD;
//! * a **char LM**: a depth-10 **Recurrent Highway Network** (1792 cells,
//!   213 M parameters) with a full softmax, trained with Adam.
//!
//! This crate implements those architectures with exact analytic
//! backprop (every layer is verified against numerical gradients in its
//! tests) and exposes the gradient structure the paper's techniques act
//! on: embedding layers produce *sparse, token-aligned* gradients
//! ([`embedding::SparseGrad`]) that the `lm` crate exchanges across GPUs
//! by ALLGATHER (baseline) or the uniqueness scheme, while all other
//! parameters produce dense gradients exchanged by ALLREDUCE.

pub mod dropout;
pub mod embedding;
pub mod linear;
pub mod loss_scale;
pub mod lstm;
pub mod lstm_stack;
pub mod model;
pub mod optimizer;
pub mod rhn;
pub mod sampled_softmax;
pub mod softmax;

pub use embedding::{Embedding, SparseGrad};
pub use linear::Linear;
pub use loss_scale::DynamicLossScaler;
pub use lstm::LstmLayer;
pub use lstm_stack::LstmStack;
pub use model::{CharLm, CharLmGrads, WordLm, WordLmGrads};
pub use optimizer::{Adam, Sgd};
pub use rhn::RhnLayer;
pub use sampled_softmax::{SampledSoftmax, SampledSoftmaxOutput};
