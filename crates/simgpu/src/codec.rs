//! Pluggable wire codecs for collective payloads.
//!
//! The paper stops its exchange-volume reduction at FP32→FP16
//! compression-scaling (§III-C). ZipCCL-style stacks go one step
//! further: *lossless* compression of collective payloads, exploiting
//! the low-entropy exponent distribution of gradient values and the
//! small deltas of gathered index lists. This module provides that
//! ladder as a [`WireCodec`] trait plus four rungs:
//!
//! * [`IdentityCodec`] — raw little-endian bytes, the baseline.
//! * [`F16ScaledCodec`] — FP16 bits on the wire (§III-C). **Lossy**;
//!   kept so the ladder covers the paper's own rung, but never selected
//!   by [`WireCodecId`] (training reaches FP16 through
//!   `Method::compression`, which owns the loss-scaling story).
//! * [`DeltaVarintCodec`] — lossless index codec: zigzag deltas between
//!   consecutive `u32` values, LEB128 varint-coded. Gathered unique
//!   index lists are near-sorted with small vocab-bounded gaps, so most
//!   deltas fit one byte.
//! * [`ExpPackCodec`] — lossless gradient codec: the distinct exponent
//!   bytes of an `f32` payload form a small dictionary; each value is
//!   stored as a dictionary index plus its raw 24-bit sign+mantissa
//!   field (bitplane packing of the exponent plane).
//!
//! # Never-expand framing
//!
//! Every codec guarantees `encoded_len ≤ 4·n` for an `n`-element
//! payload: the encoder computes the packed form and falls back to raw
//! little-endian bytes (exactly `4·n`) whenever packing would not win.
//! Decoders disambiguate by length — an emitted packed form is always
//! strictly shorter than raw, so `len == 4·n` *is* the raw marker. This
//! is what lets the traffic recorder claim "compressed bytes ≤ identity
//! bytes on every collective" unconditionally.
//!
//! # Bit-exactness contract
//!
//! Lossless codecs round-trip **bit**-identically: arbitrary `u32`
//! values and arbitrary `f32` bit patterns — NaN payloads, −0.0,
//! subnormals — survive encode→decode exactly (`tests/codec_roundtrip.rs`
//! proves this by proptest). Training with a lossless codec is therefore
//! bit-identical to the identity codec in losses, parameters and
//! checkpoints; only wire bytes and simulated time change.
//!
//! Decoders never panic on truncated or corrupt input: every failure is
//! a typed [`CodecError`].

use std::fmt;

/// Decode-side failure. Decoders return these instead of panicking on
/// malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the declared element count was decoded.
    Truncated,
    /// Input is structurally invalid for the declared element count.
    Corrupt(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "encoded payload truncated"),
            CodecError::Corrupt(detail) => write!(f, "encoded payload corrupt: {detail}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// A wire codec: how a collective payload is turned into bytes on the
/// interconnect. Implementations must uphold two contracts:
///
/// * `encoded_len_*` equals the exact byte length `encode_*` produces
///   for the same payload (it is the analytic charging function used by
///   the traffic recorder and the cost model).
/// * `encoded_len_*` never exceeds `4 · payload.len()` (never-expand).
///
/// Decoders take the element count out of band — the receiver of a
/// collective always knows how many elements to expect from the
/// collective's metadata, which (like rendezvous metadata generally) is
/// not charged as wire bytes. Decoded values are **appended** to `out`.
pub trait WireCodec: Sync {
    /// Stable short name used in errors, traces and bench artifacts.
    fn name(&self) -> &'static str;

    /// Exact encoded size of `data` in bytes, without encoding.
    fn encoded_len_u32(&self, data: &[u32]) -> u64;
    fn encode_u32(&self, data: &[u32], out: &mut Vec<u8>);
    fn decode_u32(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) -> Result<(), CodecError>;

    /// Exact encoded size of `data` in bytes, without encoding.
    fn encoded_len_f32(&self, data: &[f32]) -> u64;
    fn encode_f32(&self, data: &[f32], out: &mut Vec<u8>);
    fn decode_f32(&self, bytes: &[u8], n: usize, out: &mut Vec<f32>) -> Result<(), CodecError>;

    /// Modelled encode/decode throughput in raw payload bytes per
    /// second, for the cost model's volume-vs-compute tradeoff. The
    /// identity codec reports infinity (zero codec time).
    fn throughput_bps(&self) -> f64;
}

/// Modelled throughput of [`DeltaVarintCodec`] (raw payload bytes/s).
pub const DELTA_VARINT_BPS: f64 = 16.0e9;
/// Modelled throughput of [`ExpPackCodec`] (raw payload bytes/s).
pub const EXP_PACK_BPS: f64 = 12.0e9;
/// Modelled throughput of [`F16ScaledCodec`] (raw payload bytes/s).
pub const F16_SCALED_BPS: f64 = 40.0e9;

/// Static codec instances, so call sites can hold `&'static dyn WireCodec`.
pub static IDENTITY: IdentityCodec = IdentityCodec;
pub static DELTA_VARINT: DeltaVarintCodec = DeltaVarintCodec;
pub static EXP_PACK: ExpPackCodec = ExpPackCodec;
pub static F16_SCALED: F16ScaledCodec = F16ScaledCodec;

/// Which wire codec a run uses, as carried by `CommConfig::codec`.
/// Only the identity and the *lossless* rungs are selectable: the lossy
/// FP16 rung stays expressed through `Method::compression` exactly as
/// before, and composes with the index codec (indices are `u32` either
/// way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireCodecId {
    /// Raw bytes on the wire (the seed behaviour).
    #[default]
    Identity,
    /// Delta+varint the ALLGATHERed unique-index lists; gradients raw.
    LosslessIndex,
    /// Exponent-pack the gradient ALLREDUCE payloads; indices raw.
    LosslessGrad,
    /// Both lossless rungs at once.
    Lossless,
}

impl WireCodecId {
    /// Codec applied to `u32` index ALLGATHERs, if any.
    pub fn index_codec(self) -> Option<&'static dyn WireCodec> {
        match self {
            WireCodecId::LosslessIndex | WireCodecId::Lossless => Some(&DELTA_VARINT),
            _ => None,
        }
    }

    /// Codec applied to `f32` gradient ALLREDUCEs, if any. Callers must
    /// still give `Method::compression` precedence: an FP16 wire is
    /// already 2 bytes/element and owns its own accounting.
    pub fn grad_codec(self) -> Option<&'static dyn WireCodec> {
        match self {
            WireCodecId::LosslessGrad | WireCodecId::Lossless => Some(&EXP_PACK),
            _ => None,
        }
    }

    /// Stable name used in bench artifacts and docs.
    pub fn name(self) -> &'static str {
        match self {
            WireCodecId::Identity => "identity",
            WireCodecId::LosslessIndex => "lossless-index",
            WireCodecId::LosslessGrad => "lossless-grad",
            WireCodecId::Lossless => "lossless",
        }
    }

    /// The two lossless rungs plus their composition — every selectable
    /// codec that must be bit-exact (test/bench sweep helper).
    pub fn lossless_ladder() -> [WireCodecId; 3] {
        [
            WireCodecId::LosslessIndex,
            WireCodecId::LosslessGrad,
            WireCodecId::Lossless,
        ]
    }
}

// ---------------------------------------------------------------------------
// Raw little-endian helpers (the shared fallback framing).

fn encode_raw_u32(data: &[u32], out: &mut Vec<u8>) {
    out.reserve(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn decode_raw_u32(bytes: &[u8], out: &mut Vec<u32>) {
    out.reserve(bytes.len() / 4);
    for c in bytes.chunks_exact(4) {
        out.push(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
    }
}

fn encode_raw_f32(data: &[f32], out: &mut Vec<u8>) {
    out.reserve(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn decode_raw_f32(bytes: &[u8], out: &mut Vec<f32>) {
    out.reserve(bytes.len() / 4);
    for c in bytes.chunks_exact(4) {
        out.push(f32::from_bits(u32::from_le_bytes([c[0], c[1], c[2], c[3]])));
    }
}

// ---------------------------------------------------------------------------
// Identity

/// Raw little-endian bytes: 4 bytes per element, zero codec time.
pub struct IdentityCodec;

impl WireCodec for IdentityCodec {
    fn name(&self) -> &'static str {
        "identity"
    }

    fn encoded_len_u32(&self, data: &[u32]) -> u64 {
        data.len() as u64 * 4
    }

    fn encode_u32(&self, data: &[u32], out: &mut Vec<u8>) {
        encode_raw_u32(data, out);
    }

    fn decode_u32(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) -> Result<(), CodecError> {
        if bytes.len() != n * 4 {
            return Err(if bytes.len() < n * 4 {
                CodecError::Truncated
            } else {
                CodecError::Corrupt("trailing bytes after raw u32 payload")
            });
        }
        decode_raw_u32(bytes, out);
        Ok(())
    }

    fn encoded_len_f32(&self, data: &[f32]) -> u64 {
        data.len() as u64 * 4
    }

    fn encode_f32(&self, data: &[f32], out: &mut Vec<u8>) {
        encode_raw_f32(data, out);
    }

    fn decode_f32(&self, bytes: &[u8], n: usize, out: &mut Vec<f32>) -> Result<(), CodecError> {
        if bytes.len() != n * 4 {
            return Err(if bytes.len() < n * 4 {
                CodecError::Truncated
            } else {
                CodecError::Corrupt("trailing bytes after raw f32 payload")
            });
        }
        decode_raw_f32(bytes, out);
        Ok(())
    }

    fn throughput_bps(&self) -> f64 {
        f64::INFINITY
    }
}

// ---------------------------------------------------------------------------
// F16 scaled (lossy — §III-C's rung, for ladder completeness)

/// FP16 bits on the wire: 2 bytes per element, round-to-nearest-even
/// truncation on encode, exact widening on decode. **Lossy** — not
/// selectable through [`WireCodecId`]; training reaches FP16 through
/// `Method::compression`. `u32` payloads pass through raw.
pub struct F16ScaledCodec;

impl WireCodec for F16ScaledCodec {
    fn name(&self) -> &'static str {
        "f16-scaled"
    }

    fn encoded_len_u32(&self, data: &[u32]) -> u64 {
        data.len() as u64 * 4
    }

    fn encode_u32(&self, data: &[u32], out: &mut Vec<u8>) {
        encode_raw_u32(data, out);
    }

    fn decode_u32(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) -> Result<(), CodecError> {
        IDENTITY.decode_u32(bytes, n, out)
    }

    fn encoded_len_f32(&self, data: &[f32]) -> u64 {
        data.len() as u64 * 2
    }

    fn encode_f32(&self, data: &[f32], out: &mut Vec<u8>) {
        out.reserve(data.len() * 2);
        for v in data {
            out.extend_from_slice(&crate::comm::f32_to_f16_bits(*v).to_le_bytes());
        }
    }

    fn decode_f32(&self, bytes: &[u8], n: usize, out: &mut Vec<f32>) -> Result<(), CodecError> {
        if bytes.len() != n * 2 {
            return Err(if bytes.len() < n * 2 {
                CodecError::Truncated
            } else {
                CodecError::Corrupt("trailing bytes after f16 payload")
            });
        }
        out.reserve(n);
        for c in bytes.chunks_exact(2) {
            out.push(crate::comm::f16_bits_to_f32(u16::from_le_bytes([
                c[0], c[1],
            ])));
        }
        Ok(())
    }

    fn throughput_bps(&self) -> f64 {
        F16_SCALED_BPS
    }
}

// ---------------------------------------------------------------------------
// Delta + varint (lossless index codec)

fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

fn varint_len(mut z: u64) -> u64 {
    let mut len = 1;
    while z >= 0x80 {
        z >>= 7;
        len += 1;
    }
    len
}

fn push_varint(mut z: u64, out: &mut Vec<u8>) {
    while z >= 0x80 {
        out.push((z & 0x7f) as u8 | 0x80);
        z >>= 7;
    }
    out.push(z as u8);
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut z = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift == 63 && b > 1 {
            return Err(CodecError::Corrupt("varint overflows 64 bits"));
        }
        z |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(z);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt("varint longer than 10 bytes"));
        }
    }
}

/// Exact packed (pre-fallback) delta+varint size of `data` in bytes.
fn delta_varint_packed_len(data: &[u32]) -> u64 {
    let mut prev = 0i64;
    let mut len = 0u64;
    for &v in data {
        len += varint_len(zigzag(i64::from(v) - prev));
        prev = i64::from(v);
    }
    len
}

/// Analytic encoded size of `data` under [`DeltaVarintCodec`], with the
/// never-expand raw fallback applied. Exported so tests and the
/// exchange layer can predict recorder charges without encoding.
pub fn delta_varint_len(data: &[u32]) -> u64 {
    delta_varint_packed_len(data).min(data.len() as u64 * 4)
}

/// Lossless `u32` index codec: consecutive deltas (signed, so unsorted
/// lists still round-trip), zigzag-mapped and LEB128 varint-coded, with
/// the raw fallback whenever packing would not be strictly smaller.
/// `f32` payloads pass through raw — this rung compresses index lists
/// only.
pub struct DeltaVarintCodec;

impl WireCodec for DeltaVarintCodec {
    fn name(&self) -> &'static str {
        "delta-varint"
    }

    fn encoded_len_u32(&self, data: &[u32]) -> u64 {
        delta_varint_len(data)
    }

    fn encode_u32(&self, data: &[u32], out: &mut Vec<u8>) {
        let raw = data.len() as u64 * 4;
        if delta_varint_packed_len(data) >= raw {
            encode_raw_u32(data, out);
            return;
        }
        let mut prev = 0i64;
        for &v in data {
            push_varint(zigzag(i64::from(v) - prev), out);
            prev = i64::from(v);
        }
    }

    fn decode_u32(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) -> Result<(), CodecError> {
        if bytes.len() == n * 4 {
            decode_raw_u32(bytes, out);
            return Ok(());
        }
        let mut pos = 0usize;
        let mut prev = 0i64;
        out.reserve(n);
        for _ in 0..n {
            let v = prev
                .checked_add(unzigzag(read_varint(bytes, &mut pos)?))
                .ok_or(CodecError::Corrupt("delta sequence overflows"))?;
            if v < 0 || v > i64::from(u32::MAX) {
                return Err(CodecError::Corrupt("delta sequence leaves u32 range"));
            }
            out.push(v as u32);
            prev = v;
        }
        if pos != bytes.len() {
            return Err(CodecError::Corrupt("trailing bytes after delta payload"));
        }
        Ok(())
    }

    fn encoded_len_f32(&self, data: &[f32]) -> u64 {
        data.len() as u64 * 4
    }

    fn encode_f32(&self, data: &[f32], out: &mut Vec<u8>) {
        encode_raw_f32(data, out);
    }

    fn decode_f32(&self, bytes: &[u8], n: usize, out: &mut Vec<f32>) -> Result<(), CodecError> {
        IDENTITY.decode_f32(bytes, n, out)
    }

    fn throughput_bps(&self) -> f64 {
        DELTA_VARINT_BPS
    }
}

// ---------------------------------------------------------------------------
// Exponent pack (lossless gradient codec)

fn exp_index_bits(k: usize) -> u32 {
    if k <= 1 {
        0
    } else {
        usize::BITS - (k - 1).leading_zeros()
    }
}

/// Distinct exponent bytes of `data`, ascending. Returns `None` when
/// all 256 exponents occur (the dictionary index no longer fits `u8`
/// and packing cannot win anyway).
fn exp_dictionary(data: &[f32]) -> Option<Vec<u8>> {
    let mut seen = [false; 256];
    for v in data {
        seen[(v.to_bits() >> 23 & 0xff) as usize] = true;
    }
    let dict: Vec<u8> = (0u16..256)
        .filter(|&e| seen[e as usize])
        .map(|e| e as u8)
        .collect();
    if dict.len() == 256 {
        None
    } else {
        Some(dict)
    }
}

fn exp_packed_len(n: usize, k: usize) -> u64 {
    let b = u64::from(exp_index_bits(k));
    1 + k as u64 + (n as u64 * b).div_ceil(8) + 3 * n as u64
}

/// Analytic encoded size of `data` under [`ExpPackCodec`], with the
/// never-expand raw fallback applied. Exported so tests and the
/// exchange layer can predict recorder charges without encoding.
pub fn exp_pack_len(data: &[f32]) -> u64 {
    let raw = data.len() as u64 * 4;
    match exp_dictionary(data) {
        Some(dict) => exp_packed_len(data.len(), dict.len()).min(raw),
        None => raw,
    }
}

/// LSB-first bit writer over a byte vector.
struct BitWriter<'a> {
    out: &'a mut Vec<u8>,
    acc: u64,
    bits: u32,
}

impl<'a> BitWriter<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        BitWriter {
            out,
            acc: 0,
            bits: 0,
        }
    }

    fn push(&mut self, value: u64, width: u32) {
        self.acc |= value << self.bits;
        self.bits += width;
        while self.bits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.bits -= 8;
        }
    }

    fn finish(self) {
        if self.bits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
    }
}

/// LSB-first bit reader over a byte slice.
struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    acc: u64,
    bits: u32,
}

impl<'a> BitReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            acc: 0,
            bits: 0,
        }
    }

    fn read(&mut self, width: u32) -> Result<u64, CodecError> {
        while self.bits < width {
            let b = *self.bytes.get(self.pos).ok_or(CodecError::Truncated)?;
            self.pos += 1;
            self.acc |= u64::from(b) << self.bits;
            self.bits += 8;
        }
        let v = self.acc & ((1u64 << width) - 1);
        self.acc >>= width;
        self.bits -= width;
        Ok(v)
    }
}

/// Lossless `f32` gradient codec: bitplane-packs the exponent plane.
///
/// Packed layout (all fields LSB-first, little-endian):
///
/// ```text
/// [k: u8]                      distinct exponent count, 1 ≤ k ≤ 255
/// [dict: k bytes]              the exponent bytes, strictly ascending
/// [idx: ceil(n·b/8) bytes]     per-value dictionary index, b = ⌈log2 k⌉
/// [tail: 3·n bytes]            per-value (sign << 23) | mantissa
/// ```
///
/// Gradient payloads cluster in a few dozen exponents, so `b` ≈ 4–6
/// bits and the packed size ≈ (25+b)/32 of raw. Exact round-trip of
/// every `f32` bit pattern — sign, NaN payload, subnormal mantissa —
/// because the sign+mantissa field is stored verbatim. `u32` payloads
/// pass through raw — this rung compresses gradient rows only.
pub struct ExpPackCodec;

impl WireCodec for ExpPackCodec {
    fn name(&self) -> &'static str {
        "exp-pack"
    }

    fn encoded_len_u32(&self, data: &[u32]) -> u64 {
        data.len() as u64 * 4
    }

    fn encode_u32(&self, data: &[u32], out: &mut Vec<u8>) {
        encode_raw_u32(data, out);
    }

    fn decode_u32(&self, bytes: &[u8], n: usize, out: &mut Vec<u32>) -> Result<(), CodecError> {
        IDENTITY.decode_u32(bytes, n, out)
    }

    fn encoded_len_f32(&self, data: &[f32]) -> u64 {
        exp_pack_len(data)
    }

    fn encode_f32(&self, data: &[f32], out: &mut Vec<u8>) {
        let n = data.len();
        let raw = n as u64 * 4;
        let dict = match exp_dictionary(data) {
            Some(dict) if exp_packed_len(n, dict.len()) < raw => dict,
            _ => {
                encode_raw_f32(data, out);
                return;
            }
        };
        let k = dict.len();
        let b = exp_index_bits(k);
        let mut slot = [0u8; 256];
        for (i, &e) in dict.iter().enumerate() {
            slot[e as usize] = i as u8;
        }
        out.reserve(exp_packed_len(n, k) as usize);
        out.push(k as u8);
        out.extend_from_slice(&dict);
        let mut bw = BitWriter::new(out);
        for v in data {
            bw.push(u64::from(slot[(v.to_bits() >> 23 & 0xff) as usize]), b);
        }
        bw.finish();
        for v in data {
            let bits = v.to_bits();
            let field = (bits >> 31 << 23) | (bits & 0x7f_ffff);
            out.extend_from_slice(&field.to_le_bytes()[..3]);
        }
    }

    fn decode_f32(&self, bytes: &[u8], n: usize, out: &mut Vec<f32>) -> Result<(), CodecError> {
        if bytes.len() == n * 4 {
            decode_raw_f32(bytes, out);
            return Ok(());
        }
        let &k = bytes.first().ok_or(CodecError::Truncated)?;
        let k = k as usize;
        if k == 0 {
            return Err(CodecError::Corrupt("empty exponent dictionary"));
        }
        let dict = bytes.get(1..1 + k).ok_or(CodecError::Truncated)?;
        if !dict.windows(2).all(|w| w[0] < w[1]) {
            return Err(CodecError::Corrupt("exponent dictionary not ascending"));
        }
        let b = exp_index_bits(k);
        let idx_bytes = (n as u64 * u64::from(b)).div_ceil(8) as usize;
        let idx_end = 1 + k + idx_bytes;
        let total = idx_end + 3 * n;
        if bytes.len() < total {
            return Err(CodecError::Truncated);
        }
        if bytes.len() > total {
            return Err(CodecError::Corrupt("trailing bytes after exp-pack payload"));
        }
        let mut br = BitReader::new(&bytes[1 + k..idx_end]);
        out.reserve(n);
        for t in bytes[idx_end..].chunks_exact(3) {
            let code = if b == 0 { 0 } else { br.read(b)? as usize };
            if code >= k {
                return Err(CodecError::Corrupt("exponent index out of dictionary"));
            }
            let field = u32::from_le_bytes([t[0], t[1], t[2], 0]);
            let bits = (field >> 23 << 31) | (u32::from(dict[code]) << 23) | (field & 0x7f_ffff);
            out.push(f32::from_bits(bits));
        }
        Ok(())
    }

    fn throughput_bps(&self) -> f64 {
        EXP_PACK_BPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u32(codec: &dyn WireCodec, data: &[u32]) {
        let mut bytes = Vec::new();
        codec.encode_u32(data, &mut bytes);
        assert_eq!(
            bytes.len() as u64,
            codec.encoded_len_u32(data),
            "len contract"
        );
        assert!(bytes.len() as u64 <= data.len() as u64 * 4, "never-expand");
        let mut back = Vec::new();
        codec
            .decode_u32(&bytes, data.len(), &mut back)
            .expect("decode");
        assert_eq!(back, data);
    }

    fn roundtrip_f32(codec: &dyn WireCodec, data: &[f32]) {
        let mut bytes = Vec::new();
        codec.encode_f32(data, &mut bytes);
        assert_eq!(
            bytes.len() as u64,
            codec.encoded_len_f32(data),
            "len contract"
        );
        assert!(bytes.len() as u64 <= data.len() as u64 * 4, "never-expand");
        let mut back = Vec::new();
        codec
            .decode_f32(&bytes, data.len(), &mut back)
            .expect("decode");
        let want: Vec<u32> = data.iter().map(|v| v.to_bits()).collect();
        let got: Vec<u32> = back.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, want, "bit-exact round-trip");
    }

    #[test]
    fn identity_roundtrips_raw() {
        roundtrip_u32(&IDENTITY, &[]);
        roundtrip_u32(&IDENTITY, &[7]);
        roundtrip_u32(&IDENTITY, &[0, u32::MAX, 1, 1]);
        roundtrip_f32(&IDENTITY, &[]);
        roundtrip_f32(&IDENTITY, &[1.5, -0.0, f32::NAN, f32::MIN_POSITIVE / 2.0]);
    }

    #[test]
    fn delta_varint_roundtrips_sorted_and_unsorted() {
        roundtrip_u32(&DELTA_VARINT, &[]);
        roundtrip_u32(&DELTA_VARINT, &[0]);
        roundtrip_u32(&DELTA_VARINT, &[u32::MAX]);
        roundtrip_u32(&DELTA_VARINT, &[1, 2, 3, 5, 8, 13, 21]);
        roundtrip_u32(&DELTA_VARINT, &[9, 2, 5, 7, 0, 1, u32::MAX, 0]);
    }

    #[test]
    fn delta_varint_compresses_dense_index_lists() {
        let data: Vec<u32> = (0..1024u32).map(|i| i * 3 % 257).collect();
        assert!(delta_varint_len(&data) * 2 < data.len() as u64 * 4);
        roundtrip_u32(&DELTA_VARINT, &data);
    }

    #[test]
    fn exp_pack_roundtrips_hostile_bit_patterns() {
        roundtrip_f32(&EXP_PACK, &[]);
        roundtrip_f32(&EXP_PACK, &[0.0]);
        let hostile = [
            0.0,
            -0.0,
            f32::NAN,
            f32::from_bits(0x7fc0_dead), // NaN payload
            f32::from_bits(0xffc0_0001),
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
            f32::from_bits(1), // smallest subnormal
            f32::from_bits(0x807f_ffff),
            1.0e-3,
            -2.5e8,
        ];
        roundtrip_f32(&EXP_PACK, &hostile);
    }

    #[test]
    fn exp_pack_compresses_exponent_clustered_payloads() {
        let data: Vec<f32> = (0..512).map(|i| (i as f32 - 256.0) * 1.0e-3).collect();
        let enc = exp_pack_len(&data);
        assert!(enc < data.len() as u64 * 4, "{enc} vs {}", data.len() * 4);
        roundtrip_f32(&EXP_PACK, &data);
    }

    #[test]
    fn decoders_reject_truncated_and_corrupt_input() {
        let data: Vec<u32> = (0..64u32).collect();
        let mut bytes = Vec::new();
        DELTA_VARINT.encode_u32(&data, &mut bytes);
        let mut out = Vec::new();
        assert_eq!(
            DELTA_VARINT.decode_u32(&bytes[..bytes.len() - 1], data.len(), &mut out),
            Err(CodecError::Truncated)
        );
        out.clear();
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(matches!(
            DELTA_VARINT.decode_u32(&longer, data.len(), &mut out),
            Err(CodecError::Corrupt(_))
        ));

        let grads: Vec<f32> = (0..64).map(|i| i as f32 * 0.125).collect();
        let mut gbytes = Vec::new();
        EXP_PACK.encode_f32(&grads, &mut gbytes);
        out.clear();
        let mut gout = Vec::new();
        assert_eq!(
            EXP_PACK.decode_f32(&gbytes[..3], grads.len(), &mut gout),
            Err(CodecError::Truncated)
        );
        let mut corrupt = gbytes.clone();
        corrupt[1] = 0xff; // dictionary no longer ascending
        gout.clear();
        assert!(matches!(
            EXP_PACK.decode_f32(&corrupt, grads.len(), &mut gout),
            Err(CodecError::Corrupt(_))
        ));
    }

    #[test]
    fn f16_codec_halves_bytes_and_widens_exactly() {
        let data = [1.0f32, -2.5, 0.5];
        assert_eq!(F16_SCALED.encoded_len_f32(&data), 6);
        let mut bytes = Vec::new();
        F16_SCALED.encode_f32(&data, &mut bytes);
        let mut back = Vec::new();
        F16_SCALED
            .decode_f32(&bytes, data.len(), &mut back)
            .unwrap();
        assert_eq!(back, data, "f16-exact values survive the lossy rung");
    }

    #[test]
    fn codec_id_ladder_exposes_the_right_rungs() {
        assert!(WireCodecId::default().index_codec().is_none());
        assert!(WireCodecId::default().grad_codec().is_none());
        assert!(WireCodecId::LosslessIndex.index_codec().is_some());
        assert!(WireCodecId::LosslessIndex.grad_codec().is_none());
        assert!(WireCodecId::LosslessGrad.grad_codec().is_some());
        assert!(WireCodecId::Lossless.index_codec().is_some());
        assert!(WireCodecId::Lossless.grad_codec().is_some());
        for id in WireCodecId::lossless_ladder() {
            assert_ne!(id, WireCodecId::Identity);
        }
    }
}
