//! Bounded worker pool for rank execution.
//!
//! The paper's cluster runs 50 nodes × 8 GPUs (192 GPUs in Table V's
//! weak-scaling column), but a thread-per-rank simulator that *pins* an
//! OS thread per rank stops scaling long before that on a small CI
//! machine. The fix is a counting semaphore — a [`RunGate`] — that
//! bounds how many rank threads *run* concurrently: every rank still
//! owns a (cheap, small-stack) OS thread for its program state, but a
//! rank must hold one of `cap` run slots to execute. At every
//! collective rendezvous the rank releases its slot before parking on
//! the group barrier and re-acquires it afterwards, so parked ranks
//! cost no CPU and the set of *runnable* ranks never exceeds the pool
//! cap. This makes world sizes of 48–192 practical in tests and
//! benches on a single-digit-core box.
//!
//! The gate deliberately bounds *concurrency*, not thread count: rank
//! program state (deep in a training step, holding model buffers) is
//! exactly what a stack is, so re-using threads as stacks and gating
//! execution is the same scheduling structure as a task pool with
//! parked coroutines, without needing an async runtime. Stacks are
//! spawned small (see [`run_ranks`]) to keep 192 ranks affordable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Counting semaphore bounding how many ranks run concurrently.
///
/// Slots are released while a rank is parked at a collective rendezvous
/// and re-acquired on wake-up; [`peak_running`](RunGate::peak_running)
/// records the high-water mark of concurrently running ranks so tests
/// can assert the bound held (`peak_running() <= cap()`).
#[derive(Debug)]
pub struct RunGate {
    cap: usize,
    available: Mutex<usize>,
    cvar: Condvar,
    running: AtomicUsize,
    peak: AtomicUsize,
}

impl RunGate {
    /// A gate with `cap` run slots (`cap` is clamped to at least 1).
    pub fn new(cap: usize) -> Arc<Self> {
        let cap = cap.max(1);
        Arc::new(Self {
            cap,
            available: Mutex::new(cap),
            cvar: Condvar::new(),
            running: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        })
    }

    /// Number of run slots.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Ranks currently holding a run slot.
    pub fn running(&self) -> usize {
        self.running.load(Ordering::Relaxed)
    }

    /// High-water mark of concurrently running ranks over the gate's
    /// lifetime. The scheduling invariant is `peak_running() <= cap()`.
    pub fn peak_running(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Blocks until a run slot is free, then takes it.
    pub(crate) fn acquire(&self) {
        let mut avail = lock_ignore_poison(&self.available);
        while *avail == 0 {
            avail = match self.cvar.wait(avail) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        *avail -= 1;
        // `running`/`peak` are updated under the slot mutex, so the
        // count is exact, not a racy approximation.
        let now = self.running.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Returns a run slot. Saturates at `cap`, so a stray release (a
    /// rank that never held a slot, e.g. in an ungated helper) can
    /// never inflate the budget past the configured bound.
    pub(crate) fn release(&self) {
        let mut avail = lock_ignore_poison(&self.available);
        if *avail < self.cap {
            *avail += 1;
            self.running.fetch_sub(1, Ordering::Relaxed);
        }
        drop(avail);
        self.cvar.notify_all();
    }
}

/// RAII run-slot held for the duration of a rank body; acquired by
/// [`run_ranks`] before the rank's closure runs and released on drop
/// (including on panic, so a dying rank can never leak the pool dry).
pub(crate) struct SlotGuard(Option<Arc<RunGate>>);

impl SlotGuard {
    pub(crate) fn occupy(gate: Option<Arc<RunGate>>) -> Self {
        if let Some(g) = &gate {
            g.acquire();
        }
        Self(gate)
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        if let Some(g) = &self.0 {
            g.release();
        }
    }
}

/// Stack size for rank threads spawned by [`run_ranks`]: rank bodies
/// are iterative (no deep recursion), so 2 MiB is generous while
/// keeping 192 ranks cheap.
pub const RANK_STACK_BYTES: usize = 2 * 1024 * 1024;

/// Runs `f` once per rank, each on its own (small-stack) thread, and
/// returns the per-rank results in rank order.
///
/// If the ranks' group carries a [`RunGate`] (see
/// `CommGroup::create_pooled`), each rank acquires a run slot before
/// its body starts and holds it except while parked at a collective
/// rendezvous — bounding concurrent execution at the pool cap no
/// matter how large the world is. Ungated ranks just run.
///
/// Panics in a rank body propagate (after every other rank has been
/// joined or has panicked too).
pub fn run_ranks<T, F>(ranks: Vec<crate::comm::Rank>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(crate::comm::Rank) -> T + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                let f = &f;
                std::thread::Builder::new()
                    .stack_size(RANK_STACK_BYTES)
                    .spawn_scoped(s, move || {
                        let _slot = SlotGuard::occupy(rank.run_gate());
                        f(rank)
                    })
                    .expect("spawn rank thread")
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_bounds_and_tracks_peak() {
        let gate = RunGate::new(3);
        assert_eq!(gate.cap(), 3);
        gate.acquire();
        gate.acquire();
        assert_eq!(gate.running(), 2);
        gate.release();
        gate.acquire();
        gate.acquire();
        assert_eq!(gate.running(), 3);
        assert_eq!(gate.peak_running(), 3);
        gate.release();
        gate.release();
        gate.release();
        assert_eq!(gate.running(), 0);
        assert_eq!(gate.peak_running(), 3);
    }

    #[test]
    fn release_saturates_at_cap() {
        let gate = RunGate::new(2);
        // Stray releases must not mint extra slots.
        gate.release();
        gate.release();
        gate.acquire();
        gate.acquire();
        assert_eq!(gate.running(), 2);
        assert_eq!(gate.peak_running(), 2);
    }

    #[test]
    fn zero_cap_clamps_to_one() {
        let gate = RunGate::new(0);
        assert_eq!(gate.cap(), 1);
        gate.acquire();
        gate.release();
    }

    #[test]
    fn contended_acquire_never_exceeds_cap() {
        let gate = RunGate::new(2);
        std::thread::scope(|s| {
            for _ in 0..16 {
                let gate = Arc::clone(&gate);
                s.spawn(move || {
                    for _ in 0..50 {
                        gate.acquire();
                        assert!(gate.running() <= 2);
                        gate.release();
                    }
                });
            }
        });
        assert_eq!(gate.running(), 0);
        assert!(gate.peak_running() <= 2);
    }
}
