//! Per-rank structured tracing: span records, ring-buffer recorder and
//! the Chrome-trace exporter.
//!
//! The simulator already *measures* (traffic recorder, phase timers) and
//! *models* (α–β cost) — this module makes individual events visible.
//! Each rank owns one [`TraceRecorder`]: a pre-allocated ring buffer of
//! [`TraceEvent`]s written by that rank's thread only, so the hot path
//! takes no lock and performs no allocation. When the buffer fills, the
//! oldest events are overwritten and counted in `dropped` — recording
//! never blocks and never grows.
//!
//! Two clocks coexist deliberately:
//!
//! * **wall-clock nanoseconds** (`t_start_ns` / `t_end_ns`, measured
//!   from the recorder's origin `Instant`) order events for the
//!   `chrome://tracing` timeline — they rank the *implementation*;
//! * **simulated picoseconds** (see [`secs_to_ps`]) carry the α–β cost
//!   model's attribution in exact integer arithmetic — they rank the
//!   *modelled fabric*. `zipf_lm`'s `TimeAttribution` buckets are sums
//!   of these and reconcile exactly against the step's simulated time.
//!
//! [`chrome_trace_json`] serialises a set of per-rank [`TraceLog`]s into
//! the Trace Event Format (load via `chrome://tracing` or Perfetto):
//! every rank gets two tracks, one for work spans and one for barrier
//! waits, so skew is visible as aligned gaps.

use std::time::Instant;

/// What a [`TraceEvent`] spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Local forward/backward model work.
    Compute,
    /// Index (and, for the baseline path, row) ALLGATHER.
    Gather,
    /// Local duplicate reduction / global unique-set derivation.
    Unique,
    /// Scatter of reduced rows into the canonical `Ug×D` layout.
    Scatter,
    /// Ring ALLREDUCE (dense gradients, `Ug×D` matrix, scalar loss).
    AllReduce,
    /// Wall-clock time this rank spent parked in `AbortBarrier::wait`.
    BarrierWait,
    /// Injected `FaultPlan` straggler delay served by this rank.
    StragglerDelay,
    /// Application of the synchronised update to the local table.
    Apply,
    /// Elastic-recovery stall: wall-clock between a failure being
    /// observed and the shrunken world resuming from a checkpoint
    /// (appended by the recovery driver, not recorded on the hot path).
    Recovery,
}

impl SpanKind {
    /// Stable display name (also the Chrome-trace event name).
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Compute => "Compute",
            SpanKind::Gather => "Gather",
            SpanKind::Unique => "Unique",
            SpanKind::Scatter => "Scatter",
            SpanKind::AllReduce => "AllReduce",
            SpanKind::BarrierWait => "BarrierWait",
            SpanKind::StragglerDelay => "StragglerDelay",
            SpanKind::Apply => "Apply",
            SpanKind::Recovery => "Recovery",
        }
    }
}

/// One recorded span on one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Rank that recorded the span.
    pub rank: u32,
    /// Global training step the span belongs to.
    pub step: u64,
    /// Span kind.
    pub span: SpanKind,
    /// Wall-clock start, nanoseconds since the recorder's origin.
    pub t_start_ns: u64,
    /// Wall-clock end, nanoseconds since the recorder's origin.
    pub t_end_ns: u64,
    /// Wire bytes this rank put on the fabric during the span (0 for
    /// local work). Summed over all ranks' events these reconcile
    /// exactly with the group's `TrafficRecorder` totals.
    pub bytes: u64,
}

impl TraceEvent {
    /// Span duration in wall-clock nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }
}

/// A finished rank's trace: events in chronological record order.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Rank the log belongs to.
    pub rank: u32,
    /// Recorded events, oldest first.
    pub events: Vec<TraceEvent>,
    /// Events overwritten because the ring filled.
    pub dropped: u64,
}

impl TraceLog {
    /// Total wire bytes across all recorded events.
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.bytes).sum()
    }

    /// Summed wall-clock duration of all spans of `kind`.
    pub fn span_ns(&self, kind: SpanKind) -> u64 {
        self.events
            .iter()
            .filter(|e| e.span == kind)
            .map(TraceEvent::duration_ns)
            .sum()
    }
}

/// Per-rank span recorder: single-writer ring buffer, no locks, no
/// steady-state allocation.
///
/// The buffer is allocated once at construction; `record` either pushes
/// (while filling) or overwrites the oldest slot (once full), bumping
/// `dropped`. Timestamps come from one origin `Instant` per recorder,
/// so all logs of one run share a clock when the recorders are created
/// from [`TraceRecorder::group`].
#[derive(Debug)]
pub struct TraceRecorder {
    rank: u32,
    origin: Instant,
    step: u64,
    events: Vec<TraceEvent>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl TraceRecorder {
    /// A recorder for `rank` holding at most `capacity` events
    /// (clamped to ≥ 1), with its own clock origin.
    pub fn new(rank: u32, capacity: usize) -> Self {
        Self::with_origin(rank, capacity, Instant::now())
    }

    /// A recorder whose timestamps count from `origin` — use one shared
    /// origin per run so ranks' timelines align.
    pub fn with_origin(rank: u32, capacity: usize, origin: Instant) -> Self {
        let capacity = capacity.max(1);
        Self {
            rank,
            origin,
            step: 0,
            events: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// One recorder per rank, all sharing a single clock origin.
    pub fn group(world: usize, capacity: usize) -> Vec<TraceRecorder> {
        let origin = Instant::now();
        (0..world)
            .map(|r| Self::with_origin(r as u32, capacity, origin))
            .collect()
    }

    /// Rank this recorder belongs to.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Nanoseconds since the recorder's origin.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stamps subsequent events with `step`, so call sites below the
    /// trainer (the exchange phases) need no step plumbing.
    pub fn set_step(&mut self, step: u64) {
        self.step = step;
    }

    /// Records one span. O(1), lock-free, allocation-free once the ring
    /// reached capacity (and the ring never exceeds it).
    pub fn record(&mut self, span: SpanKind, t_start_ns: u64, t_end_ns: u64, bytes: u64) {
        let event = TraceEvent {
            rank: self.rank,
            step: self.step,
            span,
            t_start_ns,
            t_end_ns,
            bytes,
        };
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.events[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Convenience: records a span ending now that began `start_ns`
    /// (a value from an earlier [`TraceRecorder::now_ns`] call).
    pub fn record_since(&mut self, span: SpanKind, start_ns: u64, bytes: u64) {
        let end = self.now_ns();
        self.record(span, start_ns, end, bytes);
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the recorder, un-rotating the ring so the returned log
    /// is oldest-first even after wraparound.
    pub fn finish(mut self) -> TraceLog {
        if self.dropped > 0 {
            self.events.rotate_left(self.head);
        }
        TraceLog {
            rank: self.rank,
            events: self.events,
            dropped: self.dropped,
        }
    }
}

/// Converts cost-model seconds to integer picoseconds.
///
/// Attribution arithmetic happens on these integers: each α–β term is
/// quantised *individually*, so sums of terms equal the sum of their
/// quantisations by construction — the reconciliation invariant
/// (`TimeAttribution` buckets summing exactly to a step's simulated
/// time) needs no epsilon.
pub fn secs_to_ps(secs: f64) -> u64 {
    (secs.max(0.0) * 1e12).round() as u64
}

/// Microsecond string with nanosecond precision (`ns/1000.ns%1000`),
/// via integer math so output is bit-stable across platforms.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn push_meta(out: &mut String, first: &mut bool, tid: u64, name: &str, sort_index: u64) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str(&format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
         \"args\":{{\"name\":\"{name}\"}}}},\
         {{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
         \"args\":{{\"sort_index\":{sort_index}}}}}"
    ));
}

/// One Chrome Trace counter series: a named track of `(t_ns, value)`
/// points rendered as a "C"-phase event each, so tracing UIs plot the
/// trend (wire bytes per step, unique-set size per step, …) alongside
/// the span tracks without external scripts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterTrack {
    /// Track (and series) name shown by the tracing UI.
    pub name: &'static str,
    /// `(wall-clock ns since origin, value)` samples in display order.
    pub points: Vec<(u64, u64)>,
}

/// Serialises per-rank logs into Chrome Trace Event Format JSON.
///
/// Load the string (saved as a `.json` file) in `chrome://tracing` or
/// <https://ui.perfetto.dev>. Track layout: rank `r`'s work spans live
/// on `tid = 2r` ("rank r"), its [`SpanKind::BarrierWait`] spans on
/// `tid = 2r + 1` ("rank r waits"), declared in ascending rank order.
/// Timestamps are microseconds with nanosecond precision; each event's
/// `args` carry its step and wire bytes. Output is byte-stable for
/// identical input logs (golden-tested in `tests/telemetry_golden.rs`).
///
/// A log with `dropped > 0` additionally carries one
/// `trace_truncated` metadata event on its work track naming the
/// overwritten-span count, so a truncated trace is never silently
/// trusted (logs with `dropped == 0` serialise exactly as before).
pub fn chrome_trace_json(logs: &[TraceLog]) -> String {
    chrome_trace_json_with_counters(logs, &[])
}

/// [`chrome_trace_json`] plus counter tracks: each [`CounterTrack`]
/// point becomes a `"ph":"C"` event on `tid = 0`, named after the
/// track, after the span events. With an empty `counters` slice the
/// output is byte-identical to [`chrome_trace_json`].
pub fn chrome_trace_json_with_counters(logs: &[TraceLog], counters: &[CounterTrack]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for log in logs {
        let r = u64::from(log.rank);
        push_meta(&mut out, &mut first, 2 * r, &format!("rank {r}"), 2 * r);
        push_meta(
            &mut out,
            &mut first,
            2 * r + 1,
            &format!("rank {r} waits"),
            2 * r + 1,
        );
    }
    for log in logs {
        if log.dropped > 0 {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"trace_truncated\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"rank\":{},\"dropped\":{}}}}}",
                2 * u64::from(log.rank),
                log.rank,
                log.dropped,
            ));
        }
    }
    for log in logs {
        for e in &log.events {
            if !first {
                out.push(',');
            }
            first = false;
            let tid = match e.span {
                SpanKind::BarrierWait => 2 * u64::from(e.rank) + 1,
                _ => 2 * u64::from(e.rank),
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"step\":{},\"bytes\":{}}}}}",
                e.span.label(),
                micros(e.t_start_ns),
                micros(e.duration_ns()),
                e.step,
                e.bytes,
            ));
        }
    }
    for track in counters {
        for &(t_ns, value) in &track.points {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"sim\",\"ph\":\"C\",\"pid\":0,\"tid\":0,\
                 \"ts\":{},\"args\":{{\"{}\":{}}}}}",
                track.name,
                micros(t_ns),
                track.name,
                value,
            ));
        }
    }
    out.push_str("]}");
    out
}

/// Which execution stream of the modelled step a [`SimSpan`] occupies.
///
/// The overlapped step schedule runs two streams per rank: the compute
/// stream (forward/backward, then the gradient application) and the
/// comm stream (the serialized collective ops). A comm span whose
/// interval intersects a compute span *is* the overlap — the hidden
/// time the `overlapped_ps` attribution bucket counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimStream {
    /// Local model work and gradient application.
    Compute,
    /// Collective operations (serialized per rank).
    Comm,
}

/// One op instance on a rank's *simulated* step timeline, positioned in
/// integer picoseconds since the start of the run — the cost model's
/// clock, not wall clock. Produced by the trainer's step schedule and
/// rendered by [`sim_trace_json`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimSpan {
    /// Rank the span belongs to.
    pub rank: u32,
    /// Global training step.
    pub step: u64,
    /// Stream the span occupies (one Chrome track per stream per rank).
    pub stream: SimStream,
    /// Stable op name (e.g. `"DenseAllReduce"`).
    pub label: &'static str,
    /// Bucket index within the op family (0 for unbucketed ops).
    pub bucket: u32,
    /// Simulated start, picoseconds since run start.
    pub t_start_ps: u64,
    /// Simulated end, picoseconds since run start.
    pub t_end_ps: u64,
}

/// Microsecond string with picosecond precision (`ps/1e6.ps%1e6`), via
/// integer math so output is bit-stable across platforms.
fn micros_ps(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

/// Serialises simulated-schedule spans into Chrome Trace Event Format
/// JSON (load in `chrome://tracing` or Perfetto, like
/// [`chrome_trace_json`] — but this timeline is the *cost model's*, in
/// exact picoseconds, not wall clock). Track layout: rank `r`'s compute
/// stream on `tid = 2r` ("rank r compute"), its comm stream on
/// `tid = 2r + 1` ("rank r comm"), declared in first-appearance order —
/// so overlapped collectives render as comm spans running concurrently
/// with the compute span directly above them. Byte-stable for identical
/// input.
pub fn sim_trace_json(spans: &[SimSpan]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut seen: Vec<u32> = Vec::new();
    for s in spans {
        if !seen.contains(&s.rank) {
            seen.push(s.rank);
        }
    }
    for &r in &seen {
        let r = u64::from(r);
        push_meta(
            &mut out,
            &mut first,
            2 * r,
            &format!("rank {r} compute"),
            2 * r,
        );
        push_meta(
            &mut out,
            &mut first,
            2 * r + 1,
            &format!("rank {r} comm"),
            2 * r + 1,
        );
    }
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let tid = match s.stream {
            SimStream::Compute => 2 * u64::from(s.rank),
            SimStream::Comm => 2 * u64::from(s.rank) + 1,
        };
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"sched\",\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\
             \"ts\":{},\"dur\":{},\"args\":{{\"step\":{},\"bucket\":{}}}}}",
            s.label,
            micros_ps(s.t_start_ps),
            micros_ps(s.t_end_ps.saturating_sub(s.t_start_ps)),
            s.step,
            s.bucket,
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_fills_then_overwrites_oldest() {
        let mut rec = TraceRecorder::new(3, 4);
        for i in 0..6u64 {
            rec.set_step(i);
            rec.record(SpanKind::Compute, i * 10, i * 10 + 5, i);
        }
        assert_eq!(rec.len(), 4);
        assert_eq!(rec.dropped(), 2);
        let log = rec.finish();
        // Oldest-first after un-rotation: steps 2..6 survive.
        let steps: Vec<u64> = log.events.iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![2, 3, 4, 5]);
        assert_eq!(log.dropped, 2);
        assert_eq!(log.total_bytes(), 2 + 3 + 4 + 5);
        assert!(log.events.iter().all(|e| e.rank == 3));
    }

    #[test]
    fn capacity_never_exceeded_and_no_realloc() {
        let mut rec = TraceRecorder::new(0, 8);
        let cap = rec.events.capacity();
        for _ in 0..100 {
            rec.record(SpanKind::Gather, 0, 1, 2);
        }
        assert_eq!(rec.len(), 8);
        assert_eq!(rec.events.capacity(), cap, "ring must not reallocate");
        assert_eq!(rec.dropped(), 92);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut rec = TraceRecorder::new(0, 0);
        rec.record(SpanKind::Apply, 1, 2, 0);
        rec.record(SpanKind::Apply, 3, 4, 0);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.dropped(), 1);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let rec = TraceRecorder::new(0, 4);
        let a = rec.now_ns();
        let b = rec.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn group_shares_an_origin() {
        let recs = TraceRecorder::group(3, 16);
        assert_eq!(recs.len(), 3);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.rank(), i as u32);
            assert_eq!(r.origin, recs[0].origin);
        }
    }

    #[test]
    fn secs_to_ps_quantises_exactly() {
        assert_eq!(secs_to_ps(0.0), 0);
        assert_eq!(secs_to_ps(1.0), 1_000_000_000_000);
        assert_eq!(secs_to_ps(2.5e-6), 2_500_000);
        assert_eq!(secs_to_ps(-1.0), 0, "negative time clamps to zero");
    }

    #[test]
    fn span_ns_sums_by_kind() {
        let mut rec = TraceRecorder::new(0, 8);
        rec.record(SpanKind::Gather, 0, 10, 0);
        rec.record(SpanKind::Apply, 10, 15, 0);
        rec.record(SpanKind::Gather, 15, 30, 0);
        let log = rec.finish();
        assert_eq!(log.span_ns(SpanKind::Gather), 25);
        assert_eq!(log.span_ns(SpanKind::Apply), 5);
        assert_eq!(log.span_ns(SpanKind::AllReduce), 0);
    }

    #[test]
    fn sim_json_routes_streams_and_keeps_ps_precision() {
        let spans = [
            SimSpan {
                rank: 0,
                step: 3,
                stream: SimStream::Compute,
                label: "Compute",
                bucket: 0,
                t_start_ps: 0,
                t_end_ps: 2_000_001,
            },
            SimSpan {
                rank: 0,
                step: 3,
                stream: SimStream::Comm,
                label: "DenseAllReduce",
                bucket: 1,
                t_start_ps: 1_000_000,
                t_end_ps: 1_500_007,
            },
        ];
        let json = sim_trace_json(&spans);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"rank 0 compute\""));
        assert!(json.contains("\"name\":\"rank 0 comm\""));
        // Compute on tid 0, comm on tid 1; ps precision survives as
        // six fractional digits of the microsecond timestamps.
        assert!(json.contains("\"name\":\"Compute\",\"cat\":\"sched\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0.000000,\"dur\":2.000001"));
        assert!(json.contains("\"name\":\"DenseAllReduce\",\"cat\":\"sched\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1.000000,\"dur\":0.500007"));
        assert!(json.contains("\"args\":{\"step\":3,\"bucket\":1}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(sim_trace_json(&[]).ends_with("[]}"));
    }

    #[test]
    fn chrome_json_is_wellformed_and_routes_waits() {
        let mut rec = TraceRecorder::new(1, 8);
        rec.set_step(7);
        rec.record(SpanKind::AllReduce, 1000, 2500, 64);
        rec.record(SpanKind::BarrierWait, 2500, 3000, 0);
        let json = chrome_trace_json(&[rec.finish()]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Work span on tid 2, wait span on tid 3.
        assert!(json
            .contains("\"name\":\"AllReduce\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":0,\"tid\":2"));
        assert!(json
            .contains("\"name\":\"BarrierWait\",\"cat\":\"sim\",\"ph\":\"X\",\"pid\":0,\"tid\":3"));
        assert!(json.contains("\"ts\":1.000,\"dur\":1.500"));
        assert!(json.contains("\"args\":{\"step\":7,\"bytes\":64}"));
        assert!(json.contains("\"name\":\"rank 1\""));
        assert!(json.contains("\"name\":\"rank 1 waits\""));
        // Balanced braces — cheap well-formedness proxy.
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
    }

    #[test]
    fn dropped_spans_surface_as_metadata_only_when_nonzero() {
        let clean = TraceLog {
            rank: 0,
            events: vec![],
            dropped: 0,
        };
        assert!(!chrome_trace_json(std::slice::from_ref(&clean)).contains("trace_truncated"));
        let truncated = TraceLog {
            rank: 2,
            events: vec![],
            dropped: 17,
        };
        let json = chrome_trace_json(&[clean, truncated]);
        assert!(json.contains(
            "{\"name\":\"trace_truncated\",\"ph\":\"M\",\"pid\":0,\"tid\":4,\
             \"args\":{\"rank\":2,\"dropped\":17}}"
        ));
        assert_eq!(json.matches("trace_truncated").count(), 1);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn counter_tracks_emit_c_phase_events() {
        let track = CounterTrack {
            name: "wire_bytes_per_step",
            points: vec![(1000, 64), (2000, 128)],
        };
        let json = chrome_trace_json_with_counters(&[], &[track]);
        assert!(json.contains(
            "{\"name\":\"wire_bytes_per_step\",\"cat\":\"sim\",\"ph\":\"C\",\"pid\":0,\
             \"tid\":0,\"ts\":1.000,\"args\":{\"wire_bytes_per_step\":64}}"
        ));
        assert!(json.contains("\"ts\":2.000,\"args\":{\"wire_bytes_per_step\":128}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // No counters → byte-identical to the plain exporter.
        assert_eq!(
            chrome_trace_json_with_counters(&[], &[]),
            chrome_trace_json(&[])
        );
    }
}
