//! Simulated multi-GPU cluster substrate.
//!
//! The paper ran on a 50-node cluster of 8× Titan X GPUs connected by
//! PCIe (intra-node) and Infiniband FDR (inter-node), driving collectives
//! through CUDA-aware MPI. This crate recreates that execution
//! environment on one machine:
//!
//! * [`device::Device`] — a simulated GPU: an id plus a memory accountant
//!   with capacity, live usage, peak tracking and out-of-memory errors
//!   (how the paper's baseline dies beyond 24 GPUs).
//! * [`comm`] — a thread-group communicator with **real** data-moving
//!   collectives: ring ALLREDUCE (reduce-scatter + all-gather phases,
//!   exactly the algorithm of Gibiansky's ring-allreduce the paper cites),
//!   variable-size ALLGATHER, broadcast, barrier, plus FP16-on-the-wire
//!   variants for the paper's compression technique.
//! * [`traffic::TrafficRecorder`] — counts every byte a collective moves,
//!   so experiments can assert the paper's Θ(G·K·D) vs Θ(G·K + Ug·D)
//!   communication claims on measured data.
//! * [`fault::FaultPlan`] — declarative fault injection (rank death at
//!   step N, stragglers, asymmetric per-rank memory limits); together
//!   with the communicator's abort flag it turns "one rank failed" into
//!   a typed [`comm::CommError`] on every peer instead of a deadlock.
//! * [`hw::HardwareConfig`] — Table II hardware presets (Titan X cluster;
//!   the V100/NVLink system of §V-D).
//! * [`cost`] — the α–β (latency–bandwidth) model translating byte
//!   volumes and FLOP counts into simulated wall-clock seconds.
//! * [`trace`] — per-rank structured tracing: a lock-free span recorder
//!   (ring buffer of [`trace::TraceEvent`]s) plus a Chrome-trace JSON
//!   exporter, so individual collectives, barrier waits and injected
//!   straggler delays are visible per rank, not just in aggregates.
//!
//! * [`metrics`] — per-rank fleet metrics: counters, gauges and
//!   log-bucketed histograms with deterministic bucket boundaries, so
//!   cross-rank and cross-run merges are exact (merged == pooled), plus
//!   a byte-stable Prometheus text exporter.
//! * [`pool::RunGate`] / [`pool::run_ranks`] — a bounded worker pool so
//!   hundreds of ranks multiplex over ~num_cpus OS-thread run slots,
//!   parking slot-free at collectives (paper-scale worlds of 48–192
//!   ranks in tests and benches).
//!
//! Threads stand in for GPUs: one (small-stack) thread per rank holds
//! the rank's program state; collectives are rendezvous-style, moving
//! every payload through shared sender-indexed slots, so communication
//! volume is measured, not assumed — and split per interconnect
//! [`traffic::Tier`] (PCIe within a node, Infiniband between nodes).

pub mod codec;
pub mod comm;
pub mod cost;
pub mod device;
pub mod fault;
pub mod hw;
pub mod metrics;
pub mod pool;
pub mod timing;
pub mod trace;
pub mod traffic;

pub use codec::{
    delta_varint_len, exp_pack_len, CodecError, DeltaVarintCodec, ExpPackCodec, F16ScaledCodec,
    IdentityCodec, WireCodec, WireCodecId,
};
pub use comm::{
    chunk_range, f16_bits_to_f32, f32_to_f16_bits, hierarchical_allreduce_send_bytes,
    hierarchical_allreduce_send_bytes_parts, peer_exchange_tier_bytes, ring_allreduce_send_bytes,
    ring_allreduce_send_bytes_parts, ring_send_tier, AbortOnDrop, BarrierDeadline, CommError,
    CommGroup, Rank,
};
pub use cost::CostModel;
pub use device::{Allocation, Device, OomError};
pub use fault::{DiskFault, DiskFaultPlan, FaultPlan};
pub use hw::HardwareConfig;
pub use metrics::{
    bucket_bounds, bucket_index, CounterId, GaugeId, Histogram, HistogramId, MetricsRegistry,
    HIST_BUCKETS, HIST_SUB_BUCKETS,
};
pub use pool::{run_ranks, RunGate};
pub use timing::PhaseTimer;
pub use trace::{
    chrome_trace_json, chrome_trace_json_with_counters, secs_to_ps, sim_trace_json, CounterTrack,
    SimSpan, SimStream, SpanKind, TraceEvent, TraceLog, TraceRecorder,
};
pub use traffic::{Tier, TierBytes, TrafficRecorder, TrafficSnapshot};
