//! Simulated multi-GPU cluster substrate.
//!
//! The paper ran on a 50-node cluster of 8× Titan X GPUs connected by
//! PCIe (intra-node) and Infiniband FDR (inter-node), driving collectives
//! through CUDA-aware MPI. This crate recreates that execution
//! environment on one machine:
//!
//! * [`device::Device`] — a simulated GPU: an id plus a memory accountant
//!   with capacity, live usage, peak tracking and out-of-memory errors
//!   (how the paper's baseline dies beyond 24 GPUs).
//! * [`comm`] — a thread-group communicator with **real** data-moving
//!   collectives: ring ALLREDUCE (reduce-scatter + all-gather phases,
//!   exactly the algorithm of Gibiansky's ring-allreduce the paper cites),
//!   variable-size ALLGATHER, broadcast, barrier, plus FP16-on-the-wire
//!   variants for the paper's compression technique.
//! * [`traffic::TrafficRecorder`] — counts every byte a collective moves,
//!   so experiments can assert the paper's Θ(G·K·D) vs Θ(G·K + Ug·D)
//!   communication claims on measured data.
//! * [`fault::FaultPlan`] — declarative fault injection (rank death at
//!   step N, stragglers, asymmetric per-rank memory limits); together
//!   with the communicator's abort flag it turns "one rank failed" into
//!   a typed [`comm::CommError`] on every peer instead of a deadlock.
//! * [`hw::HardwareConfig`] — Table II hardware presets (Titan X cluster;
//!   the V100/NVLink system of §V-D).
//! * [`cost`] — the α–β (latency–bandwidth) model translating byte
//!   volumes and FLOP counts into simulated wall-clock seconds.
//! * [`trace`] — per-rank structured tracing: a lock-free span recorder
//!   (ring buffer of [`trace::TraceEvent`]s) plus a Chrome-trace JSON
//!   exporter, so individual collectives, barrier waits and injected
//!   straggler delays are visible per rank, not just in aggregates.
//!
//! Threads stand in for GPUs: one OS thread per rank, shared-memory
//! mailboxes for links. Every collective really moves the payload through
//! per-step mailboxes, so communication volume is measured, not assumed.

pub mod comm;
pub mod cost;
pub mod device;
pub mod fault;
pub mod hw;
pub mod timing;
pub mod trace;
pub mod traffic;

pub use comm::{
    f16_bits_to_f32, f32_to_f16_bits, ring_allreduce_send_bytes, AbortOnDrop, CommError, CommGroup,
    Rank,
};
pub use cost::CostModel;
pub use device::{Allocation, Device, OomError};
pub use fault::FaultPlan;
pub use hw::HardwareConfig;
pub use timing::PhaseTimer;
pub use trace::{chrome_trace_json, secs_to_ps, SpanKind, TraceEvent, TraceLog, TraceRecorder};
pub use traffic::{TrafficRecorder, TrafficSnapshot};
