//! Fleet metrics: counters, gauges and exactly-mergeable histograms.
//!
//! The tracing layer (PR 3) answers "what happened on this rank, in
//! order"; this module answers the distributional questions the paper's
//! tables are made of — p50/p95/p99 step time, wire bytes by tier,
//! attribution totals — in a form that **merges exactly**. Every rank
//! owns a private [`MetricsRegistry`] (no locks, no allocation on the
//! hot path once a series exists); the trainer merges them after the
//! run. The invariant that makes cross-rank and cross-run rollups
//! trustworthy:
//!
//! > merging per-rank histograms == histogramming the pooled samples
//!
//! which holds *exactly* (not approximately) because bucketing is a
//! pure function of the sample value — deterministic log-spaced bucket
//! boundaries shared by construction, never rescaled or re-centred at
//! runtime. Property-tested in `tests/property_invariants.rs`.
//!
//! [`Histogram`] is HDR-style: below [`HIST_SUB_BUCKETS`] every integer
//! has its own bucket; above, each power-of-two octave is split into
//! [`HIST_SUB_BUCKETS`] sub-buckets, so the relative quantile error is
//! bounded by `1 / HIST_SUB_BUCKETS` (12.5%) while the whole `u64`
//! range fits in [`HIST_BUCKETS`] fixed slots. Values are whatever
//! integers the caller chooses — the trainer records integer
//! picoseconds and bytes.
//!
//! [`prometheus_text`](MetricsRegistry::prometheus_text) renders the
//! registry in Prometheus text exposition format, byte-stable for
//! identical contents (golden-tested in `tests/telemetry_golden.rs`).

/// Sub-buckets per power-of-two octave (and the denominator of the
/// relative-error bound).
pub const HIST_SUB_BUCKETS: u64 = 8;

/// log2 of [`HIST_SUB_BUCKETS`].
const SUB_BITS: u32 = 3;

/// Total bucket count covering all of `u64`.
///
/// Index layout: values `< 8` map to their own index; a value with most
/// significant bit `m ≥ 3` maps to group `m − 2`, sub-bucket
/// `(v >> (m−3)) & 7`, i.e. index `((m − 2) << 3) | sub`. The largest
/// group is `m = 63` → indices 488..=495.
pub const HIST_BUCKETS: usize = 496;

/// Bucket index for a sample value. Pure function — the whole merge
/// story rests on this never depending on histogram state.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < HIST_SUB_BUCKETS {
        v as usize
    } else {
        let m = 63 - v.leading_zeros();
        let sub = (v >> (m - SUB_BITS)) & (HIST_SUB_BUCKETS - 1);
        (((m - SUB_BITS + 1) << SUB_BITS) | sub as u32) as usize
    }
}

/// Inclusive `[lower, upper]` value range of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    debug_assert!(i < HIST_BUCKETS);
    if i < 2 * HIST_SUB_BUCKETS as usize {
        // Groups 0 and 1: one value per bucket.
        (i as u64, i as u64)
    } else {
        let g = (i as u64) >> SUB_BITS;
        let sub = i as u64 & (HIST_SUB_BUCKETS - 1);
        let shift = (g - 1) as u32;
        let lower = (HIST_SUB_BUCKETS + sub) << shift;
        let width = 1u64 << shift;
        (lower, lower + (width - 1))
    }
}

/// A fixed-layout log-bucketed histogram over `u64` samples.
///
/// Because bucket boundaries are compile-time constants,
/// [`merge`](Histogram::merge) is plain per-bucket count addition and
/// is *exactly* equivalent to having observed both sample streams into
/// one histogram. `min`, `max`, `count` and `sum` are tracked exactly;
/// quantiles are bucket upper bounds clamped into `[min, max]`, so the
/// relative error of any reported quantile is ≤ `1/HIST_SUB_BUCKETS`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram (all [`HIST_BUCKETS`] slots allocated up
    /// front, so `observe` never allocates).
    pub fn new() -> Self {
        Self {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. O(1), allocation-free.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact smallest sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact largest sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self`. Exactly equivalent to observing
    /// `other`'s samples here — the merged-equals-pooled law.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket holding the sample of rank `⌈q·count⌉`, clamped into
    /// `[min, max]`. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, upper) = bucket_bounds(i);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(upper_bound, count)`, ascending — the
    /// exporter's iteration order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bounds(i).1, c))
    }
}

/// Handle to a counter series (index into the owning registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a gauge series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a histogram series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// One rank's metric series: monotonically-increasing counters
/// (cross-rank merge: addition), gauges (merge: maximum — so a
/// globally-shared snapshot value recorded by every rank merges
/// idempotently), and [`Histogram`]s (merge: exact).
///
/// Series are keyed by `&'static str` names; registering an existing
/// name returns the existing handle. Hot paths hold the typed id and
/// update by index — O(1), no hashing, no allocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or finds) the counter `name`.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| *n == name) {
            return CounterId(i);
        }
        self.counters.push((name, 0));
        CounterId(self.counters.len() - 1)
    }

    /// Adds `delta` to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId, delta: u64) {
        self.counters[id.0].1 += delta;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Registers (or finds) the gauge `name`.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| *n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name, 0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Raises a gauge to `v` if larger (gauges merge by max, so sets
    /// follow the same law).
    #[inline]
    pub fn gauge_max(&mut self, id: GaugeId, v: u64) {
        let g = &mut self.gauges[id.0].1;
        *g = (*g).max(v);
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].1
    }

    /// Registers (or finds) the histogram `name`.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| *n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name, Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// Records one sample into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        self.histograms[id.0].1.observe(v);
    }

    /// Borrow a histogram by handle.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Look up a series by name (for reports and tests).
    pub fn find_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Look up a counter by name.
    pub fn find_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn find_gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Folds `other` into `self` by series name: counters add, gauges
    /// take the max, histograms merge exactly. Series unseen here are
    /// adopted, so merging a fleet of per-rank registries into an empty
    /// one yields the fleet rollup.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for &(name, v) in &other.counters {
            let id = self.counter(name);
            self.inc(id, v);
        }
        for &(name, v) in &other.gauges {
            let id = self.gauge(name);
            self.gauge_max(id, v);
        }
        for (name, h) in &other.histograms {
            let id = self.histogram(name);
            self.histograms[id.0].1.merge(h);
        }
    }

    /// Prometheus text exposition of every series, sorted by name
    /// within each type (counters, then gauges, then histograms), each
    /// name prefixed `zlm_`. Histograms render cumulative `le` buckets
    /// (only non-empty boundaries, then `+Inf`), `_sum` and `_count`.
    /// Byte-stable for identical registry contents.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut counters: Vec<_> = self.counters.iter().collect();
        counters.sort_by_key(|(n, _)| *n);
        for (name, v) in counters {
            out.push_str(&format!(
                "# TYPE zlm_{name} counter\nzlm_{name} {v}\n",
                name = name,
                v = v
            ));
        }
        let mut gauges: Vec<_> = self.gauges.iter().collect();
        gauges.sort_by_key(|(n, _)| *n);
        for (name, v) in gauges {
            out.push_str(&format!(
                "# TYPE zlm_{name} gauge\nzlm_{name} {v}\n",
                name = name,
                v = v
            ));
        }
        let mut hists: Vec<_> = self.histograms.iter().collect();
        hists.sort_by_key(|(n, _)| *n);
        for (name, h) in hists {
            out.push_str(&format!("# TYPE zlm_{name} histogram\n"));
            let mut cum = 0u64;
            for (upper, c) in h.nonzero_buckets() {
                cum += c;
                out.push_str(&format!("zlm_{name}_bucket{{le=\"{upper}\"}} {cum}\n"));
            }
            out.push_str(&format!(
                "zlm_{name}_bucket{{le=\"+Inf\"}} {count}\nzlm_{name}_sum {sum}\nzlm_{name}_count {count}\n",
                name = name,
                sum = h.sum(),
                count = h.count(),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_u64_and_bounds_invert_it() {
        // Every bucket's bounds map back to that bucket, bounds tile
        // the axis with no gap or overlap, and extremes are in range.
        let mut prev_upper: Option<u64> = None;
        for i in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(bucket_index(lo), i, "lower bound of {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of {i}");
            if let Some(p) = prev_upper {
                assert_eq!(lo, p + 1, "gap/overlap before bucket {i}");
            }
            prev_upper = Some(hi);
        }
        assert_eq!(prev_upper, Some(u64::MAX), "buckets must tile u64");
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn relative_bucket_error_is_bounded() {
        // For any v ≥ 8, the bucket upper bound overestimates v by at
        // most a factor of 1 + 1/8.
        for &v in &[8u64, 100, 12_345, 1 << 40, u64::MAX / 3] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
            let err = (hi - lo) as f64 / lo as f64;
            assert!(err <= 1.0 / HIST_SUB_BUCKETS as f64, "v={v} err={err}");
        }
    }

    #[test]
    fn merge_equals_pooled() {
        let samples_a = [0u64, 1, 7, 8, 9, 1000, 1 << 50];
        let samples_b = [3u64, 1000, u64::MAX, 42];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut pooled = Histogram::new();
        for &v in &samples_a {
            a.observe(v);
            pooled.observe(v);
        }
        for &v in &samples_b {
            b.observe(v);
            pooled.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, pooled);
    }

    #[test]
    fn quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        let max = h.quantile(1.0);
        assert!(p50 <= p95 && p95 <= p99 && p99 <= max);
        assert_eq!(max, 1000, "p100 is the exact max");
        assert!((500..=563).contains(&p50), "p50={p50}");
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn registry_handles_are_stable_and_merge_follows_type_laws() {
        let mut a = MetricsRegistry::new();
        let c = a.counter("steps");
        assert_eq!(a.counter("steps"), c, "re-registering returns same id");
        a.inc(c, 3);
        let g = a.gauge("peak_bytes");
        a.gauge_max(g, 100);
        a.gauge_max(g, 40);
        assert_eq!(a.gauge_value(g), 100, "gauge_max never lowers");
        let h = a.histogram("step_ps");
        a.observe(h, 10);

        let mut b = MetricsRegistry::new();
        let c2 = b.counter("steps");
        b.inc(c2, 5);
        let g2 = b.gauge("peak_bytes");
        b.gauge_max(g2, 70);
        let h2 = b.histogram("step_ps");
        b.observe(h2, 20);
        let extra = b.counter("only_in_b");
        b.inc(extra, 1);

        a.merge(&b);
        assert_eq!(a.find_counter("steps"), Some(8));
        assert_eq!(a.find_gauge("peak_bytes"), Some(100));
        assert_eq!(a.find_counter("only_in_b"), Some(1));
        let merged = a.find_histogram("step_ps").unwrap();
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.min(), Some(10));
        assert_eq!(merged.max(), Some(20));
    }

    #[test]
    fn prometheus_text_is_sorted_and_cumulative() {
        let mut r = MetricsRegistry::new();
        let b = r.counter("b_total");
        let a = r.counter("a_total");
        r.inc(a, 1);
        r.inc(b, 2);
        let h = r.histogram("lat_ps");
        r.observe(h, 5);
        r.observe(h, 5);
        r.observe(h, 100);
        let text = r.prometheus_text();
        let a_pos = text.find("zlm_a_total 1").unwrap();
        let b_pos = text.find("zlm_b_total 2").unwrap();
        assert!(a_pos < b_pos, "counters sorted by name");
        assert!(text.contains("zlm_lat_ps_bucket{le=\"5\"} 2\n"));
        // 100 lands in bucket [96, 103]; cumulative count includes
        // the two 5s.
        assert!(text.contains("zlm_lat_ps_bucket{le=\"103\"} 3\n"));
        assert!(text.contains("zlm_lat_ps_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("zlm_lat_ps_sum 110\n"));
        assert!(text.contains("zlm_lat_ps_count 3\n"));
        // Byte-stable: same contents, same text.
        assert_eq!(text, r.prometheus_text());
    }
}
