//! Thread-group collectives with real data movement.
//!
//! One OS thread per simulated GPU rank. Collectives are SPMD: every rank
//! calls the same operation in the same order (exactly the MPI contract
//! the paper's TensorFlow+MPI stack obeys). Data moves through per-rank
//! mailboxes guarded by mutexes, with `std::sync::Barrier` separating the
//! write / read phases of each algorithm step, so all payload bytes are
//! genuinely transported and counted.
//!
//! ALLREDUCE uses the bandwidth-optimal **ring algorithm** the paper
//! cites (Gibiansky, "Bringing HPC techniques to deep learning"): a
//! reduce-scatter pass followed by an all-gather pass, `2(G−1)` steps
//! total, each rank sending `2(G−1)/G · n` elements overall.
//!
//! FP16 variants implement §III-C: payloads are multiplied by a scaling
//! factor, down-cast to binary16 for every hop, up-cast and un-scaled on
//! receipt — so quantisation error accumulates per hop exactly as a real
//! FP16 wire format would impose.
//!
//! ## Failure model
//!
//! Synchronous collectives deadlock if one rank stops calling them: every
//! peer blocks on the step barrier forever. The group therefore carries a
//! group-wide **abort flag**, and every barrier inside every collective is
//! abort-checking: [`Rank::abort`] (or a dropped, still-armed
//! [`AbortOnDrop`] guard — the RAII net for early returns and panics
//! between collectives) records the first failed rank and wakes all
//! waiters. Every collective returns `Result<_, CommError>`, and a
//! surviving rank is guaranteed to observe `Err` no later than its next
//! barrier crossing — bounded time, no stranded threads. The abort is
//! permanent: a poisoned group cannot be revived, matching the MPI
//! convention that a communicator with a dead member is unusable.

use crate::traffic::{TrafficRecorder, TrafficSnapshot};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::Instant;

/// Thin wrapper over `std::sync::Mutex` with `parking_lot`-style
/// `lock()` ergonomics (no `Result`). A poisoned lock is recovered
/// rather than propagated: mailbox payloads are plain data that stay
/// valid even if a peer rank panicked mid-step, and the panicking rank
/// already aborts the whole test via its joined thread.
#[derive(Debug, Default)]
struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A collective failed because some rank poisoned the group.
///
/// Carries the *first* failure only: later aborts lose the race and keep
/// the original attribution, so every surviving rank reports the same
/// root cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommError {
    /// Rank whose failure poisoned the group.
    pub failed_rank: usize,
    /// Human-readable description of that first failure.
    pub reason: String,
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "collective aborted: rank {} failed ({})",
            self.failed_rank, self.reason
        )
    }
}

impl std::error::Error for CommError {}

/// Barrier state behind the abort-aware barrier's mutex.
#[derive(Debug, Default)]
struct BarrierState {
    /// Ranks parked in the current round.
    arrived: usize,
    /// Incremented each time a round completes; waiters key on it.
    generation: u64,
    /// First failure, if any. Permanent once set.
    abort: Option<CommError>,
}

/// `std::sync::Barrier` with an escape hatch: [`AbortBarrier::abort`]
/// wakes every parked waiter and makes this and all future waits return
/// the recorded [`CommError`] immediately. This is what converts "one
/// rank died" from an eternal hang into typed error propagation.
#[derive(Debug)]
struct AbortBarrier {
    world: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

impl AbortBarrier {
    fn new(world: usize) -> Self {
        Self {
            world,
            state: Mutex::new(BarrierState::default()),
            cvar: Condvar::new(),
        }
    }

    /// Parks until all `world` ranks arrive, or until the group aborts.
    fn wait(&self) -> Result<(), CommError> {
        let mut st = self.state.lock();
        if let Some(e) = &st.abort {
            return Err(e.clone());
        }
        st.arrived += 1;
        if st.arrived == self.world {
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        loop {
            st = self
                .cvar
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Generation first: if the round completed before the abort
            // landed, this barrier crossing succeeded — the caller will
            // observe the abort at its next crossing.
            if st.generation != gen {
                return Ok(());
            }
            if let Some(e) = &st.abort {
                return Err(e.clone());
            }
        }
    }

    /// Poisons the group (first failure wins) and wakes all waiters.
    fn abort(&self, err: CommError) {
        let mut st = self.state.lock();
        if st.abort.is_none() {
            st.abort = Some(err);
        }
        self.cvar.notify_all();
    }

    /// The recorded failure, if the group is poisoned.
    fn status(&self) -> Option<CommError> {
        self.state.lock().abort.clone()
    }
}

/// Converts f32 to IEEE binary16 bits (round-to-nearest-even).
///
/// Duplicated from `tensor::f16` to keep `simgpu` free of the tensor
/// dependency (the substrate layers must stay acyclic); the two are
/// cross-checked bit-for-bit in `tests/f16_crosscheck.rs`.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        let nan = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        let half_exp = ((unbiased + 15) as u16) << 10;
        let half_mant = (mant >> 13) as u16;
        let round = mant & 0x1fff;
        let mut out = sign | half_exp | half_mant;
        if round > 0x1000 || (round == 0x1000 && (half_mant & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    if unbiased >= -25 {
        let full = mant | 0x0080_0000;
        let shift = (-unbiased - 1) as u32; // 13 + (−14 − unbiased)
        let half_mant = (full >> shift) as u16;
        let mask = (1u32 << shift) - 1;
        let round = full & mask;
        let halfway = 1u32 << (shift - 1);
        let mut out = sign | half_mant;
        if round > halfway || (round == halfway && (half_mant & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    sign
}

/// Converts binary16 bits to f32 (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let bits = h as u32;
    let sign = (bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1f;
    let mant = bits & 0x03ff;
    let out = if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else if exp != 0 {
        sign | ((exp + 112) << 23) | (mant << 13)
    } else if mant != 0 {
        let mut m = mant;
        let mut e: u32 = 113;
        while m & 0x0400 == 0 {
            m <<= 1;
            e -= 1;
        }
        sign | (e << 23) | ((m & 0x03ff) << 13)
    } else {
        sign
    };
    f32::from_bits(out)
}

/// Shared state of one communicator group.
struct GroupCore {
    world: usize,
    barrier: AbortBarrier,
    /// Receiver-indexed mailboxes for ring steps (single writer per step).
    mailbox_f32: Vec<Mutex<Vec<f32>>>,
    mailbox_u16: Vec<Mutex<Vec<u16>>>,
    /// Sender-indexed tables for gather-style collectives.
    gather_u32: Vec<Mutex<Vec<u32>>>,
    gather_f32: Vec<Mutex<Vec<f32>>>,
    gather_u16: Vec<Mutex<Vec<u16>>>,
    gather_f64: Vec<Mutex<Vec<f64>>>,
    traffic: TrafficRecorder,
}

/// Factory for communicator groups.
///
/// ```
/// use simgpu::CommGroup;
/// let ranks = CommGroup::create(4);
/// let sums: Vec<f32> = std::thread::scope(|s| {
///     let handles: Vec<_> = ranks
///         .into_iter()
///         .map(|rank| s.spawn(move || {
///             let mut v = vec![rank.rank() as f32; 8];
///             rank.all_reduce_sum(&mut v).expect("no rank aborted");
///             v[0]
///         }))
///         .collect();
///     handles.into_iter().map(|h| h.join().unwrap()).collect()
/// });
/// assert_eq!(sums, vec![6.0; 4]); // 0+1+2+3 on every rank
/// ```
pub struct CommGroup;

impl CommGroup {
    /// Creates a group of `world` ranks. Hand each [`Rank`] to its own
    /// thread; all collectives must then be called by *every* rank.
    pub fn create(world: usize) -> Vec<Rank> {
        assert!(world >= 1, "group needs at least one rank");
        let core = Arc::new(GroupCore {
            world,
            barrier: AbortBarrier::new(world),
            mailbox_f32: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            mailbox_u16: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            gather_u32: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            gather_f32: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            gather_u16: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            gather_f64: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            traffic: TrafficRecorder::new(),
        });
        (0..world)
            .map(|rank| Rank {
                rank,
                core: Arc::clone(&core),
                wait_ns: None,
            })
            .collect()
    }
}

/// One rank's handle into the group.
pub struct Rank {
    rank: usize,
    core: Arc<GroupCore>,
    /// Opt-in barrier-wait accounting (see [`Rank::enable_wait_tracking`]).
    /// `None` by default so the hot path pays a single branch, no timing.
    wait_ns: Option<AtomicU64>,
}

/// Chunk boundaries for the ring algorithm: `G` nearly-equal ranges.
fn chunk_range(n: usize, world: usize, chunk: usize) -> std::ops::Range<usize> {
    let lo = chunk * n / world;
    let hi = (chunk + 1) * n / world;
    lo..hi
}

/// Exact bytes `rank` sends during one ring ALLREDUCE over `n` elements
/// of `elem_bytes` each — iterating the same chunk schedule as
/// [`Rank::all_reduce_sum`] / [`Rank::all_reduce_sum_f16`], so analytic
/// wire accounting can match the [`TrafficRecorder`] to the byte even
/// when `n` does not divide evenly by `world`.
pub fn ring_allreduce_send_bytes(n: usize, world: usize, rank: usize, elem_bytes: u64) -> u64 {
    if world <= 1 {
        return 0;
    }
    let g = world;
    let r = rank;
    let mut elems = 0u64;
    for s in 0..g - 1 {
        // Reduce-scatter send at step s, then all-gather send at step s.
        elems += chunk_range(n, g, (r + g - s) % g).len() as u64;
        elems += chunk_range(n, g, (r + 1 + g - s) % g).len() as u64;
    }
    elems * elem_bytes
}

impl Rank {
    /// This rank's id in `0..world()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size `G`.
    pub fn world(&self) -> usize {
        self.core.world
    }

    /// Synchronises all ranks; `Err` if any rank aborted the group.
    pub fn barrier(&self) -> Result<(), CommError> {
        match &self.wait_ns {
            None => self.core.barrier.wait(),
            Some(counter) => {
                let start = Instant::now();
                let res = self.core.barrier.wait();
                let waited = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                counter.fetch_add(waited, Ordering::Relaxed);
                res
            }
        }
    }

    /// Turns on wall-clock accounting of the time this rank spends
    /// parked in [`Rank::barrier`] — and therefore inside every
    /// collective, which all synchronise through it. Off by default:
    /// the untracked barrier is exactly the pre-existing code path.
    pub fn enable_wait_tracking(&mut self) {
        self.wait_ns = Some(AtomicU64::new(0));
    }

    /// Nanoseconds spent blocked at barriers since the previous call
    /// (the counter resets to zero). Always 0 while tracking is off.
    pub fn take_barrier_wait_ns(&self) -> u64 {
        self.wait_ns
            .as_ref()
            .map_or(0, |c| c.swap(0, Ordering::Relaxed))
    }

    /// Poisons the group on behalf of this rank: all peers blocked in a
    /// collective wake with `Err`, and every future collective fails
    /// immediately. Idempotent; the first abort's attribution wins.
    pub fn abort(&self, reason: impl Into<String>) {
        self.core.barrier.abort(CommError {
            failed_rank: self.rank,
            reason: reason.into(),
        });
    }

    /// Cheap non-blocking poll: `Err` if the group is poisoned. Lets
    /// long local compute phases between collectives bail out early.
    pub fn check_abort(&self) -> Result<(), CommError> {
        match self.core.barrier.status() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// RAII failure net: the returned guard [`Rank::abort`]s the group
    /// with `reason` when dropped, unless [`AbortOnDrop::disarm`]ed
    /// first. Arm it on entry to a rank's work loop so an early `return`
    /// or a panic between collectives poisons the group instead of
    /// stranding every peer at the next barrier.
    pub fn abort_on_drop(&self, reason: impl Into<String>) -> AbortOnDrop<'_> {
        AbortOnDrop {
            rank: self,
            reason: reason.into(),
            armed: true,
        }
    }

    /// Snapshot of the group's cumulative traffic counters.
    pub fn traffic(&self) -> TrafficSnapshot {
        self.core.traffic.snapshot()
    }

    /// Resets the group traffic counters (call from every rank — it
    /// barriers internally so the reset is race-free).
    pub fn reset_traffic(&self) -> Result<(), CommError> {
        self.barrier()?;
        if self.rank == 0 {
            self.core.traffic.reset();
        }
        self.barrier()
    }

    /// Ring ALLREDUCE (sum) over `data`; on return every rank holds the
    /// elementwise sum across all ranks. All ranks must pass equal-length
    /// buffers. `Err` (with the buffer in an unspecified partial state)
    /// if any rank aborts the group mid-collective.
    pub fn all_reduce_sum(&self, data: &mut [f32]) -> Result<(), CommError> {
        let g = self.core.world;
        if self.rank == 0 {
            self.core.traffic.count_allreduce_op();
        }
        if g == 1 {
            return Ok(());
        }
        let n = data.len();
        let r = self.rank;
        let next = (r + 1) % g;

        // Phase 1: reduce-scatter. At step s, send chunk (r − s) mod G,
        // receive chunk (r − s − 1) mod G and accumulate.
        for s in 0..g - 1 {
            let send_chunk = (r + g - s) % g;
            let range = chunk_range(n, g, send_chunk);
            {
                let mut mb = self.core.mailbox_f32[next].lock();
                mb.clear();
                mb.extend_from_slice(&data[range.clone()]);
            }
            self.core.traffic.record_allreduce((range.len() * 4) as u64);
            self.barrier()?;
            let recv_chunk = (r + g - s - 1) % g;
            let rr = chunk_range(n, g, recv_chunk);
            {
                let mb = self.core.mailbox_f32[r].lock();
                for (d, &m) in data[rr].iter_mut().zip(mb.iter()) {
                    *d += m;
                }
            }
            self.barrier()?;
        }

        // Phase 2: all-gather of the reduced chunks. After reduce-scatter,
        // rank r owns chunk (r + 1) mod G fully reduced.
        for s in 0..g - 1 {
            let send_chunk = (r + 1 + g - s) % g;
            let range = chunk_range(n, g, send_chunk);
            {
                let mut mb = self.core.mailbox_f32[next].lock();
                mb.clear();
                mb.extend_from_slice(&data[range.clone()]);
            }
            self.core.traffic.record_allreduce((range.len() * 4) as u64);
            self.barrier()?;
            let recv_chunk = (r + g - s) % g;
            let rr = chunk_range(n, g, recv_chunk);
            {
                let mb = self.core.mailbox_f32[r].lock();
                data[rr].copy_from_slice(&mb);
            }
            self.barrier()?;
        }
        Ok(())
    }

    /// Ring ALLREDUCE with FP16 wire compression and compression-scaling
    /// (§III-C): each hop multiplies by `scale`, down-casts to binary16,
    /// and the receiver up-casts and divides. Halves wire bytes relative
    /// to [`Rank::all_reduce_sum`]; quantisation error accumulates per
    /// hop as on real FP16 interconnect paths.
    pub fn all_reduce_sum_f16(&self, data: &mut [f32], scale: f32) -> Result<(), CommError> {
        assert!(scale > 0.0, "compression scale must be positive");
        let g = self.core.world;
        if self.rank == 0 {
            self.core.traffic.count_allreduce_op();
        }
        if g == 1 {
            return Ok(());
        }
        let n = data.len();
        let r = self.rank;
        let next = (r + 1) % g;
        let inv = 1.0 / scale;

        for s in 0..g - 1 {
            let send_chunk = (r + g - s) % g;
            let range = chunk_range(n, g, send_chunk);
            {
                let mut mb = self.core.mailbox_u16[next].lock();
                mb.clear();
                mb.extend(
                    data[range.clone()]
                        .iter()
                        .map(|&x| f32_to_f16_bits(x * scale)),
                );
            }
            self.core.traffic.record_allreduce((range.len() * 2) as u64);
            self.barrier()?;
            let recv_chunk = (r + g - s - 1) % g;
            let rr = chunk_range(n, g, recv_chunk);
            {
                let mb = self.core.mailbox_u16[r].lock();
                for (d, &h) in data[rr].iter_mut().zip(mb.iter()) {
                    *d += f16_bits_to_f32(h) * inv;
                }
            }
            self.barrier()?;
        }

        // Quantise the owned (fully-reduced) chunk before distributing so
        // every rank ends with bit-identical values — mirroring real FP16
        // pipelines where the canonical value is the wire value.
        {
            let owned = chunk_range(n, g, (r + 1) % g);
            for x in &mut data[owned] {
                *x = f16_bits_to_f32(f32_to_f16_bits(*x * scale)) * inv;
            }
        }

        for s in 0..g - 1 {
            let send_chunk = (r + 1 + g - s) % g;
            let range = chunk_range(n, g, send_chunk);
            {
                let mut mb = self.core.mailbox_u16[next].lock();
                mb.clear();
                mb.extend(
                    data[range.clone()]
                        .iter()
                        .map(|&x| f32_to_f16_bits(x * scale)),
                );
            }
            self.core.traffic.record_allreduce((range.len() * 2) as u64);
            self.barrier()?;
            let recv_chunk = (r + g - s) % g;
            let rr = chunk_range(n, g, recv_chunk);
            {
                let mb = self.core.mailbox_u16[r].lock();
                for (d, &h) in data[rr].iter_mut().zip(mb.iter()) {
                    *d = f16_bits_to_f32(h) * inv;
                }
            }
            self.barrier()?;
        }
        Ok(())
    }

    /// Variable-size ALLGATHER of `u32` payloads: returns every rank's
    /// contribution concatenated in rank order (identical on all ranks).
    /// This is the cheap index exchange at the heart of the paper's
    /// uniqueness technique — `Θ(G·K)` elements instead of `Θ(G·K·D)`.
    pub fn all_gather_u32(&self, local: &[u32]) -> Result<Vec<u32>, CommError> {
        let mut out = Vec::new();
        self.all_gather_u32_into(local, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Rank::all_gather_u32`]: the result replaces
    /// `out`'s contents, reusing its capacity (hot loops pass the same
    /// buffer every step so steady state performs zero heap allocation).
    pub fn all_gather_u32_into(&self, local: &[u32], out: &mut Vec<u32>) -> Result<(), CommError> {
        if self.rank == 0 {
            self.core.traffic.count_allgather_op();
        }
        let g = self.core.world;
        {
            let mut slot = self.core.gather_u32[self.rank].lock();
            slot.clear();
            slot.extend_from_slice(local);
        }
        // Each rank's payload travels to G−1 peers.
        self.core
            .traffic
            .record_allgather((local.len() * 4 * (g - 1)) as u64);
        self.barrier()?;
        out.clear();
        for s in 0..g {
            out.extend_from_slice(&self.core.gather_u32[s].lock());
        }
        self.barrier()
    }

    /// Variable-size ALLGATHER of `f32` payloads, rank order — the
    /// paper's *baseline* dense gradient exchange (`Θ(G·K·D)` memory and
    /// wire bytes).
    pub fn all_gather_f32(&self, local: &[f32]) -> Result<Vec<f32>, CommError> {
        let mut out = Vec::new();
        self.all_gather_f32_into(local, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Rank::all_gather_f32`], reusing `out`'s capacity.
    pub fn all_gather_f32_into(&self, local: &[f32], out: &mut Vec<f32>) -> Result<(), CommError> {
        if self.rank == 0 {
            self.core.traffic.count_allgather_op();
        }
        let g = self.core.world;
        {
            let mut slot = self.core.gather_f32[self.rank].lock();
            slot.clear();
            slot.extend_from_slice(local);
        }
        self.core
            .traffic
            .record_allgather((local.len() * 4 * (g - 1)) as u64);
        self.barrier()?;
        out.clear();
        for s in 0..g {
            out.extend_from_slice(&self.core.gather_f32[s].lock());
        }
        self.barrier()
    }

    /// FP16-compressed ALLGATHER of `f32` payloads with compression
    /// scaling — the baseline exchange under §III-C compression.
    pub fn all_gather_f16(&self, local: &[f32], scale: f32) -> Result<Vec<f32>, CommError> {
        let mut out = Vec::new();
        self.all_gather_f16_into(local, scale, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Rank::all_gather_f16`], reusing `out`'s capacity.
    pub fn all_gather_f16_into(
        &self,
        local: &[f32],
        scale: f32,
        out: &mut Vec<f32>,
    ) -> Result<(), CommError> {
        assert!(scale > 0.0, "compression scale must be positive");
        if self.rank == 0 {
            self.core.traffic.count_allgather_op();
        }
        let g = self.core.world;
        {
            let mut slot = self.core.gather_u16[self.rank].lock();
            slot.clear();
            slot.extend(local.iter().map(|&x| f32_to_f16_bits(x * scale)));
        }
        self.core
            .traffic
            .record_allgather((local.len() * 2 * (g - 1)) as u64);
        self.barrier()?;
        let inv = 1.0 / scale;
        out.clear();
        for s in 0..g {
            let slot = self.core.gather_u16[s].lock();
            out.extend(slot.iter().map(|&h| f16_bits_to_f32(h) * inv));
        }
        self.barrier()
    }

    /// Sums one scalar across ranks in rank order (deterministic) — used
    /// for loss averaging and metric reduction.
    pub fn all_reduce_scalar_f64(&self, v: f64) -> Result<f64, CommError> {
        let g = self.core.world;
        {
            let mut slot = self.core.gather_f64[self.rank].lock();
            slot.clear();
            slot.push(v);
        }
        self.core.traffic.record_allreduce((8 * (g - 1)) as u64);
        self.barrier()?;
        let mut sum = 0.0;
        for s in 0..g {
            sum += self.core.gather_f64[s].lock()[0];
        }
        self.barrier()?;
        Ok(sum)
    }

    /// Reduce-scatter (sum): after the call, this rank holds the fully
    /// reduced chunk `chunk_range(n, G, (rank + 1) % G)` of the buffer in
    /// place (other regions hold partial sums and must be treated as
    /// scratch). This is the first phase of the ring ALLREDUCE exposed on
    /// its own, the building block of hierarchical schedules.
    pub fn reduce_scatter_sum(
        &self,
        data: &mut [f32],
    ) -> Result<std::ops::Range<usize>, CommError> {
        let g = self.core.world;
        let n = data.len();
        let r = self.rank;
        if g == 1 {
            return Ok(0..n);
        }
        let next = (r + 1) % g;
        for s in 0..g - 1 {
            let send_chunk = (r + g - s) % g;
            let range = chunk_range(n, g, send_chunk);
            {
                let mut mb = self.core.mailbox_f32[next].lock();
                mb.clear();
                mb.extend_from_slice(&data[range.clone()]);
            }
            self.core.traffic.record_allreduce((range.len() * 4) as u64);
            self.barrier()?;
            let recv_chunk = (r + g - s - 1) % g;
            let rr = chunk_range(n, g, recv_chunk);
            {
                let mb = self.core.mailbox_f32[r].lock();
                for (d, &m) in data[rr].iter_mut().zip(mb.iter()) {
                    *d += m;
                }
            }
            self.barrier()?;
        }
        Ok(chunk_range(n, g, (r + 1) % g))
    }

    /// Hierarchical ALLREDUCE for a cluster of `gpus_per_node`-GPU nodes:
    /// (1) reduce to each node's leader over the "fast" intra-node links,
    /// (2) ring-ALLREDUCE across leaders only (the expensive inter-node
    /// hop moves `Θ(n)` once per node instead of per GPU), (3) broadcast
    /// within each node. Falls back to the flat ring when the group fits
    /// in one node.
    ///
    /// Node `i` owns ranks `[i·gpus_per_node, (i+1)·gpus_per_node)`;
    /// groups whose size is not a multiple of `gpus_per_node` get a
    /// smaller last node.
    pub fn all_reduce_sum_hierarchical(
        &self,
        data: &mut [f32],
        gpus_per_node: usize,
    ) -> Result<(), CommError> {
        assert!(gpus_per_node >= 1, "need at least one GPU per node");
        let g = self.core.world;
        if g <= gpus_per_node {
            return self.all_reduce_sum(data);
        }
        let r = self.rank;
        let node = r / gpus_per_node;
        let leader = node * gpus_per_node;
        let node_end = (leader + gpus_per_node).min(g);

        // Phase 1: node-local reduction to the leader through the
        // leader's gather slot (each member posts, leader accumulates).
        {
            let mut slot = self.core.gather_f32[r].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        if r != leader {
            self.core.traffic.record_allreduce((data.len() * 4) as u64);
        }
        self.barrier()?;
        if r == leader {
            for member in leader + 1..node_end {
                let slot = self.core.gather_f32[member].lock();
                for (d, &m) in data.iter_mut().zip(slot.iter()) {
                    *d += m;
                }
            }
        }
        self.barrier()?;

        // Phase 2: leaders ring-reduce among themselves through the
        // leader-indexed mailboxes. Non-leaders just keep the barriers.
        let n_nodes = g.div_ceil(gpus_per_node);
        let n = data.len();
        for s in 0..n_nodes - 1 {
            if r == leader {
                let next_leader = ((node + 1) % n_nodes) * gpus_per_node;
                let send_chunk = (node + n_nodes - s) % n_nodes;
                let range = chunk_range(n, n_nodes, send_chunk);
                let mut mb = self.core.mailbox_f32[next_leader].lock();
                mb.clear();
                mb.extend_from_slice(&data[range.clone()]);
                self.core.traffic.record_allreduce((range.len() * 4) as u64);
            }
            self.barrier()?;
            if r == leader {
                let recv_chunk = (node + n_nodes - s - 1) % n_nodes;
                let rr = chunk_range(n, n_nodes, recv_chunk);
                let mb = self.core.mailbox_f32[r].lock();
                for (d, &m) in data[rr].iter_mut().zip(mb.iter()) {
                    *d += m;
                }
            }
            self.barrier()?;
        }
        for s in 0..n_nodes - 1 {
            if r == leader {
                let next_leader = ((node + 1) % n_nodes) * gpus_per_node;
                let send_chunk = (node + 1 + n_nodes - s) % n_nodes;
                let range = chunk_range(n, n_nodes, send_chunk);
                let mut mb = self.core.mailbox_f32[next_leader].lock();
                mb.clear();
                mb.extend_from_slice(&data[range.clone()]);
                self.core.traffic.record_allreduce((range.len() * 4) as u64);
            }
            self.barrier()?;
            if r == leader {
                let recv_chunk = (node + n_nodes - s) % n_nodes;
                let rr = chunk_range(n, n_nodes, recv_chunk);
                let mb = self.core.mailbox_f32[r].lock();
                data[rr].copy_from_slice(&mb);
            }
            self.barrier()?;
        }

        // Phase 3: node-local broadcast from the leader.
        if r == leader {
            let mut slot = self.core.gather_f32[leader].lock();
            slot.clear();
            slot.extend_from_slice(data);
            self.core
                .traffic
                .record_allreduce((data.len() * (node_end - leader - 1) * 4) as u64);
        }
        self.barrier()?;
        if r != leader {
            let slot = self.core.gather_f32[leader].lock();
            data.copy_from_slice(&slot);
        }
        self.barrier()
    }

    /// Broadcasts `data` from `root` to all ranks.
    pub fn broadcast_f32(&self, data: &mut Vec<f32>, root: usize) -> Result<(), CommError> {
        assert!(root < self.core.world, "root out of range");
        if self.rank == 0 {
            self.core.traffic.count_broadcast_op();
        }
        let g = self.core.world;
        if self.rank == root {
            let mut slot = self.core.gather_f32[root].lock();
            slot.clear();
            slot.extend_from_slice(data);
            self.core
                .traffic
                .record_broadcast((data.len() * 4 * (g - 1)) as u64);
        }
        self.barrier()?;
        if self.rank != root {
            let slot = self.core.gather_f32[root].lock();
            data.clear();
            data.extend_from_slice(&slot);
        }
        self.barrier()
    }
}

/// RAII group-poisoning guard returned by [`Rank::abort_on_drop`].
///
/// While armed, dropping the guard aborts the whole group with the
/// configured reason — exactly what must happen when a rank unwinds (an
/// `?` early return, a panic) between collectives, because its peers
/// would otherwise block forever at their next barrier. Call
/// [`AbortOnDrop::disarm`] on the success path.
pub struct AbortOnDrop<'a> {
    rank: &'a Rank,
    reason: String,
    armed: bool,
}

impl AbortOnDrop<'_> {
    /// Defuses the guard: dropping it no longer aborts the group.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for AbortOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.rank.abort(std::mem::take(&mut self.reason));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` on every rank of a fresh group, returning rank results.
    fn run_group<T: Send>(world: usize, f: impl Fn(Rank) -> T + Sync) -> Vec<T> {
        let ranks = CommGroup::create(world);
        let mut out: Vec<Option<T>> = (0..world).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for rank in ranks {
                let f = &f;
                handles.push(s.spawn(move || f(rank)));
            }
            for (i, h) in handles.into_iter().enumerate() {
                out[i] = Some(h.join().expect("rank thread panicked"));
            }
        });
        out.into_iter().map(Option::unwrap).collect()
    }

    #[test]
    fn f16_helpers_round_trip_known_values() {
        for &x in &[0.0f32, 1.0, -2.5, 65504.0, 6.1e-5, -0.125] {
            let h = f32_to_f16_bits(x);
            let back = f16_bits_to_f32(h);
            assert!((back - x).abs() <= x.abs() * 1e-3 + 1e-7, "{x} -> {back}");
        }
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0)), 1.0);
    }

    #[test]
    fn all_reduce_matches_serial_sum() {
        for world in [1usize, 2, 3, 4, 7, 8] {
            let n = 37;
            let results = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r * 100) as f32).collect();
                rank.all_reduce_sum(&mut data).unwrap();
                data
            });
            let expected: Vec<f32> = (0..n)
                .map(|i| (0..world).map(|r| (i + r * 100) as f32).sum())
                .collect();
            for (r, res) in results.iter().enumerate() {
                for (a, b) in res.iter().zip(&expected) {
                    assert!((a - b).abs() < 1e-3, "world {world} rank {r}");
                }
            }
        }
    }

    #[test]
    fn all_reduce_ranks_agree_exactly() {
        let results = run_group(5, |rank| {
            let r = rank.rank();
            let mut data: Vec<f32> = (0..23).map(|i| (i as f32 * 0.37) + r as f32).collect();
            rank.all_reduce_sum(&mut data).unwrap();
            data
        });
        for r in 1..5 {
            assert_eq!(results[0], results[r], "rank {r} diverged");
        }
    }

    #[test]
    fn all_reduce_short_buffer_smaller_than_world() {
        // n < G exercises empty chunks.
        let results = run_group(8, |rank| {
            let mut data = vec![rank.rank() as f32; 3];
            rank.all_reduce_sum(&mut data).unwrap();
            data
        });
        let expected = (0..8).sum::<usize>() as f32;
        for res in &results {
            assert!(res.iter().all(|&x| (x - expected).abs() < 1e-4));
        }
    }

    #[test]
    fn all_reduce_f16_approximates_sum() {
        let world = 4;
        let n = 64;
        let results = run_group(world, |rank| {
            let r = rank.rank();
            let mut data: Vec<f32> = (0..n).map(|i| 0.01 * (i as f32 + r as f32)).collect();
            rank.all_reduce_sum_f16(&mut data, 512.0).unwrap();
            data
        });
        let expected: Vec<f32> = (0..n)
            .map(|i| (0..world).map(|r| 0.01 * (i as f32 + r as f32)).sum())
            .collect();
        for res in &results {
            for (a, b) in res.iter().zip(&expected) {
                assert!((a - b).abs() < b.abs() * 0.01 + 1e-3, "{a} vs {b}");
            }
        }
        // All ranks agree bit-exactly after the gather phase.
        for r in 1..world {
            assert_eq!(results[0], results[r]);
        }
    }

    #[test]
    fn all_gather_u32_preserves_rank_order_and_varying_sizes() {
        let results = run_group(4, |rank| {
            let r = rank.rank() as u32;
            let local: Vec<u32> = (0..=r).map(|i| r * 10 + i).collect(); // size r+1
            rank.all_gather_u32(&local).unwrap()
        });
        let expected = vec![0u32, 10, 11, 20, 21, 22, 30, 31, 32, 33];
        for res in &results {
            assert_eq!(res, &expected);
        }
    }

    #[test]
    fn all_gather_f32_baseline() {
        let results = run_group(3, |rank| {
            let local = vec![rank.rank() as f32; 2];
            rank.all_gather_f32(&local).unwrap()
        });
        for res in &results {
            assert_eq!(res, &vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn all_gather_f16_compresses_but_preserves_values() {
        let results = run_group(2, |rank| {
            let local = vec![0.5 + rank.rank() as f32, -0.25];
            rank.all_gather_f16(&local, 256.0).unwrap()
        });
        for res in &results {
            assert!((res[0] - 0.5).abs() < 1e-3);
            assert!((res[2] - 1.5).abs() < 1e-3);
            assert!((res[1] + 0.25).abs() < 1e-3);
        }
    }

    #[test]
    fn scalar_reduce_deterministic() {
        let results = run_group(6, |rank| {
            rank.all_reduce_scalar_f64(rank.rank() as f64 + 0.5)
                .unwrap()
        });
        for res in &results {
            assert_eq!(*res, 18.0); // 0.5+1.5+...+5.5
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let results = run_group(4, |rank| {
            let mut data = if rank.rank() == 2 {
                vec![9.0f32, 8.0, 7.0]
            } else {
                vec![]
            };
            rank.broadcast_f32(&mut data, 2).unwrap();
            data
        });
        for res in &results {
            assert_eq!(res, &vec![9.0, 8.0, 7.0]);
        }
    }

    #[test]
    fn traffic_counts_ring_volume() {
        let world = 4;
        let n = 100usize;
        let results = run_group(world, |rank| {
            let mut data = vec![1.0f32; n];
            rank.reset_traffic().unwrap();
            rank.all_reduce_sum(&mut data).unwrap();
            rank.traffic()
        });
        // Ring: each rank sends 2(G−1) chunks of ~n/G floats.
        let expected = (2 * (world - 1) * n / world * 4 * world) as u64;
        let got = results[0].allreduce_bytes;
        assert!(
            (got as i64 - expected as i64).unsigned_abs() <= (world * world * 8) as u64,
            "got {got}, expected ~{expected}"
        );
        assert_eq!(results[0].allreduce_ops, 1);
    }

    #[test]
    fn traffic_f16_is_half_of_f32() {
        let world = 4;
        let n = 128usize; // divisible by world so chunks are even
        let f32_bytes = run_group(world, |rank| {
            let mut data = vec![1.0f32; n];
            rank.all_reduce_sum(&mut data).unwrap();
            rank.traffic().allreduce_bytes
        })[0];
        let f16_bytes = run_group(world, |rank| {
            let mut data = vec![1.0f32; n];
            rank.all_reduce_sum_f16(&mut data, 512.0).unwrap();
            rank.traffic().allreduce_bytes
        })[0];
        assert_eq!(f16_bytes * 2, f32_bytes);
    }

    #[test]
    fn repeated_collectives_do_not_deadlock() {
        let results = run_group(4, |rank| {
            let mut acc = 0.0f64;
            for i in 0..50 {
                let mut v = vec![i as f32; 8];
                rank.all_reduce_sum(&mut v).unwrap();
                let g = rank.all_gather_u32(&[rank.rank() as u32]).unwrap();
                acc += v[0] as f64 + g.len() as f64;
            }
            acc
        });
        for r in &results {
            assert_eq!(*r, results[0]);
        }
    }

    #[test]
    fn reduce_scatter_owned_chunk_is_fully_reduced() {
        for world in [1usize, 2, 4, 6] {
            let n = 25;
            let results = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i * (r + 1)) as f32).collect();
                let owned = rank.reduce_scatter_sum(&mut data).unwrap();
                (owned, data)
            });
            let sum_factor: f32 = (1..=world).map(|x| x as f32).sum();
            for (owned, data) in &results {
                for i in owned.clone() {
                    let expected = i as f32 * sum_factor;
                    assert!(
                        (data[i] - expected).abs() < 1e-3,
                        "world {world} idx {i}: {} vs {expected}",
                        data[i]
                    );
                }
            }
            // Owned chunks partition the buffer across ranks.
            let mut covered: Vec<usize> = results.iter().flat_map(|(o, _)| o.clone()).collect();
            covered.sort_unstable();
            covered.dedup();
            assert_eq!(covered.len(), n);
        }
    }

    #[test]
    fn hierarchical_allreduce_matches_flat() {
        for (world, per_node) in [(4usize, 2usize), (6, 2), (8, 4), (8, 3), (5, 2), (8, 8)] {
            let n = 33;
            let flat = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r * 10) as f32 * 0.5).collect();
                rank.all_reduce_sum(&mut data).unwrap();
                data
            });
            let hier = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r * 10) as f32 * 0.5).collect();
                rank.all_reduce_sum_hierarchical(&mut data, per_node)
                    .unwrap();
                data
            });
            for (w, h) in hier.iter().enumerate() {
                for i in 0..n {
                    assert!(
                        (flat[0][i] - h[i]).abs() < 1e-3,
                        "world {world}/{per_node} rank {w} idx {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn hierarchical_moves_fewer_leader_hops() {
        // With 8 ranks in 2 nodes, only the 2 leaders speak "inter-node";
        // traffic recorded is below the flat ring's for the same payload
        // per additional member.
        let n = 4096usize;
        let flat = run_group(8, |rank| {
            let mut data = vec![1.0f32; n];
            rank.all_reduce_sum(&mut data).unwrap();
            rank.traffic().allreduce_bytes
        })[0];
        let hier = run_group(8, |rank| {
            let mut data = vec![1.0f32; n];
            rank.all_reduce_sum_hierarchical(&mut data, 4).unwrap();
            rank.traffic().allreduce_bytes
        })[0];
        // Both are Θ(G·n); the point is correctness of accounting, and
        // that the leader ring is only 2 wide (2·(2−1)/2·n per leader).
        assert!(hier > 0 && flat > 0);
        let leader_ring = n as u64 * 4; // 2·(2−1)/2 · n · 4B
        assert!(hier as i64 - leader_ring as i64 > 0);
    }

    #[test]
    fn chunk_ranges_partition_buffer() {
        for n in [0usize, 1, 5, 17, 64] {
            for g in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                for c in 0..g {
                    let r = chunk_range(n, g, c);
                    assert_eq!(r.start, covered);
                    covered = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn all_reduce_empty_buffer_is_noop() {
        // n == 0: every chunk is empty; the ring must still complete
        // (all barriers hit) and leave the buffer empty on every rank.
        for world in [1usize, 2, 5] {
            let results = run_group(world, |rank| {
                let mut data: Vec<f32> = Vec::new();
                rank.all_reduce_sum(&mut data).unwrap();
                let mut data16: Vec<f32> = Vec::new();
                rank.all_reduce_sum_f16(&mut data16, 512.0).unwrap();
                (data.len(), data16.len())
            });
            for r in &results {
                assert_eq!(*r, (0, 0));
            }
        }
    }

    #[test]
    fn all_reduce_f16_short_buffer_smaller_than_world() {
        // n < G on the compressed ring: most chunks are empty.
        let world = 8;
        let results = run_group(world, |rank| {
            let mut data = vec![rank.rank() as f32; 3];
            rank.all_reduce_sum_f16(&mut data, 256.0).unwrap();
            data
        });
        let expected = (0..8).sum::<usize>() as f32;
        for res in &results {
            assert!(
                res.iter().all(|&x| (x - expected).abs() < expected * 0.01),
                "{res:?}"
            );
        }
        for r in 1..world {
            assert_eq!(results[0], results[r], "rank {r} diverged");
        }
    }

    #[test]
    fn all_reduce_non_divisible_chunks_exact_and_compressed() {
        // n deliberately not a multiple of G: chunk sizes differ by one
        // and both rings must still sum correctly on every rank.
        for (world, n) in [(4usize, 7usize), (8, 13), (3, 100), (7, 95)] {
            let exact = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r) as f32).collect();
                rank.all_reduce_sum(&mut data).unwrap();
                data
            });
            let expected: Vec<f32> = (0..n)
                .map(|i| (0..world).map(|r| (i + r) as f32).sum())
                .collect();
            for res in &exact {
                for (a, b) in res.iter().zip(&expected) {
                    assert!((a - b).abs() < 1e-3, "world {world} n {n}: {a} vs {b}");
                }
            }
            let compressed = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r) as f32).collect();
                rank.all_reduce_sum_f16(&mut data, 16.0).unwrap();
                data
            });
            for res in &compressed {
                for (a, b) in res.iter().zip(&expected) {
                    assert!(
                        (a - b).abs() <= b.abs() * 0.01 + 1e-2,
                        "world {world} n {n}: {a} vs {b}"
                    );
                }
            }
            for r in 1..world {
                assert_eq!(compressed[0], compressed[r]);
            }
        }
    }

    #[test]
    fn all_gather_empty_slices() {
        // Every rank empty, and a mix of empty/non-empty contributions
        // (the `equivalence_with_empty_contributions` scenario at the
        // comm layer).
        let all_empty = run_group(3, |rank| {
            let u = rank.all_gather_u32(&[]).unwrap();
            let f = rank.all_gather_f32(&[]).unwrap();
            let h = rank.all_gather_f16(&[], 512.0).unwrap();
            (u.len(), f.len(), h.len())
        });
        for r in &all_empty {
            assert_eq!(*r, (0, 0, 0));
        }

        let mixed = run_group(3, |rank| {
            let local: Vec<u32> = if rank.rank() == 1 {
                vec![]
            } else {
                vec![rank.rank() as u32 * 10]
            };
            rank.all_gather_u32(&local).unwrap()
        });
        for res in &mixed {
            assert_eq!(res, &vec![0u32, 20]);
        }
    }

    #[test]
    fn gather_into_variants_match_and_reuse_capacity() {
        let results = run_group(4, |rank| {
            let r = rank.rank() as u32;
            let local: Vec<u32> = (0..=r).map(|i| r * 10 + i).collect();
            let rows: Vec<f32> = (0..3).map(|i| (r * 10 + i) as f32).collect();
            let mut u = Vec::new();
            let mut f = Vec::new();
            let mut h = Vec::new();
            // Repeated calls into the same buffers must not grow past
            // the first call's capacity (zero steady-state allocation).
            rank.all_gather_u32_into(&local, &mut u).unwrap();
            rank.all_gather_f32_into(&rows, &mut f).unwrap();
            rank.all_gather_f16_into(&rows, 512.0, &mut h).unwrap();
            let (cu, cf, ch) = (u.capacity(), f.capacity(), h.capacity());
            for _ in 0..5 {
                rank.all_gather_u32_into(&local, &mut u).unwrap();
                rank.all_gather_f32_into(&rows, &mut f).unwrap();
                rank.all_gather_f16_into(&rows, 512.0, &mut h).unwrap();
            }
            assert_eq!(u.capacity(), cu);
            assert_eq!(f.capacity(), cf);
            assert_eq!(h.capacity(), ch);
            (u.clone(), rank.all_gather_u32(&local).unwrap(), f, h)
        });
        for (into_u, ret_u, f, h) in &results {
            assert_eq!(into_u, ret_u, "into/returning variants disagree");
            assert_eq!(f.len(), 12);
            assert_eq!(h.len(), 12);
            for (a, b) in f.iter().zip(h) {
                assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-3);
            }
        }
    }

    #[test]
    fn ring_send_bytes_helper_matches_recorder_exactly() {
        // The analytic per-rank helper must reproduce the traffic
        // recorder to the byte, including non-divisible chunk sizes.
        for (world, n) in [
            (2usize, 10usize),
            (4, 7),
            (8, 13),
            (8, 4096),
            (5, 0),
            (3, 2),
        ] {
            for &elem in &[4u64, 2] {
                let measured = run_group(world, |rank| {
                    rank.reset_traffic().unwrap();
                    let mut data = vec![1.0f32; n];
                    if elem == 4 {
                        rank.all_reduce_sum(&mut data).unwrap();
                    } else {
                        rank.all_reduce_sum_f16(&mut data, 512.0).unwrap();
                    }
                    rank.traffic().allreduce_bytes
                })[0];
                let analytic: u64 = (0..world)
                    .map(|r| ring_allreduce_send_bytes(n, world, r, elem))
                    .sum();
                assert_eq!(
                    analytic, measured,
                    "world {world} n {n} elem {elem}: analytic {analytic} vs measured {measured}"
                );
            }
        }
    }

    #[test]
    fn abort_wakes_blocked_barrier_waiters_with_failed_rank() {
        let results = run_group(3, |rank| {
            if rank.rank() == 2 {
                rank.abort("simulated failure");
                Ok(())
            } else {
                rank.barrier()
            }
        });
        for (r, res) in results.iter().enumerate() {
            if r == 2 {
                assert_eq!(*res, Ok(()));
            } else {
                let err = res.clone().unwrap_err();
                assert_eq!(err.failed_rank, 2);
                assert_eq!(err.reason, "simulated failure");
            }
        }
    }

    #[test]
    fn collectives_error_after_peer_abort() {
        let results = run_group(4, |rank| {
            if rank.rank() == 1 {
                rank.abort("rank 1 died");
                return Vec::new();
            }
            let mut errs = Vec::new();
            let mut data = vec![1.0f32; 8];
            errs.push(rank.all_reduce_sum(&mut data).unwrap_err());
            errs.push(rank.all_gather_u32(&[7]).unwrap_err());
            errs.push(rank.all_reduce_scalar_f64(1.0).unwrap_err());
            errs.push(rank.barrier().unwrap_err());
            errs
        });
        for (r, errs) in results.iter().enumerate() {
            if r == 1 {
                continue;
            }
            assert_eq!(errs.len(), 4);
            for e in errs {
                assert_eq!(e.failed_rank, 1, "rank {r} misattributed: {e}");
            }
        }
    }

    #[test]
    fn abort_on_drop_poisons_group_on_early_return() {
        let results = run_group(2, |rank| {
            if rank.rank() == 0 {
                let _guard = rank.abort_on_drop("rank 0 unwound");
                // Early return drops the armed guard, as a `?` would.
                return Ok(());
            }
            rank.barrier()
        });
        assert_eq!(results[0], Ok(()));
        let err = results[1].clone().unwrap_err();
        assert_eq!(err.failed_rank, 0);
        assert_eq!(err.reason, "rank 0 unwound");
    }

    #[test]
    fn disarmed_guard_does_not_poison_group() {
        let results = run_group(3, |rank| {
            let guard = rank.abort_on_drop("should never fire");
            let mut data = vec![rank.rank() as f32; 4];
            let res = rank.all_reduce_sum(&mut data);
            guard.disarm();
            res
        });
        for res in results {
            assert_eq!(res, Ok(()));
        }
    }

    #[test]
    fn first_failure_wins_attribution() {
        let results = run_group(3, |rank| match rank.rank() {
            0 => {
                rank.abort("root cause");
                rank.check_abort()
            }
            1 => {
                // Deterministically lose the race: only abort after
                // rank 0's poison is already visible.
                while rank.check_abort().is_ok() {
                    std::thread::yield_now();
                }
                rank.abort("echo failure");
                rank.check_abort()
            }
            _ => {
                while rank.check_abort().is_ok() {
                    std::thread::yield_now();
                }
                rank.check_abort()
            }
        });
        for res in results {
            let err = res.unwrap_err();
            assert_eq!(err.failed_rank, 0);
            assert_eq!(err.reason, "root cause");
        }
    }

    #[test]
    fn poisoned_group_stays_poisoned() {
        let results = run_group(2, |rank| {
            if rank.rank() == 0 {
                rank.abort("permanent");
            } else {
                while rank.check_abort().is_ok() {
                    std::thread::yield_now();
                }
            }
            // Every subsequent collective fails immediately.
            let a = rank.barrier().unwrap_err();
            let b = rank.all_gather_f32(&[1.0]).unwrap_err();
            (a, b)
        });
        for (a, b) in results {
            assert_eq!(a.failed_rank, 0);
            assert_eq!(b, a);
        }
    }

    #[test]
    fn wait_tracking_off_reads_zero() {
        let waited = run_group(2, |rank| {
            rank.barrier().unwrap();
            rank.take_barrier_wait_ns()
        });
        assert_eq!(waited, vec![0, 0]);
    }

    #[test]
    fn wait_tracking_measures_a_slow_peer() {
        let delay = std::time::Duration::from_millis(20);
        let waited = run_group(2, |rank| {
            let mut rank = rank;
            rank.enable_wait_tracking();
            if rank.rank() == 1 {
                std::thread::sleep(delay);
            }
            rank.barrier().unwrap();
            rank.take_barrier_wait_ns()
        });
        // Rank 0 parked for roughly the peer's sleep; the sleeper itself
        // barely waits. take() drains: a second read must be zero.
        assert!(
            waited[0] >= delay.as_nanos() as u64 / 2,
            "rank 0 waited only {} ns",
            waited[0]
        );
        assert!(waited[0] > waited[1]);
        let drained = run_group(1, |rank| {
            let mut rank = rank;
            rank.enable_wait_tracking();
            rank.barrier().unwrap();
            let first = rank.take_barrier_wait_ns();
            (first, rank.take_barrier_wait_ns())
        });
        assert_eq!(drained[0].1, 0, "counter must reset on take");
    }
}
