//! Thread-group collectives with real data movement and two-tier
//! topology-aware wire accounting.
//!
//! One OS thread per simulated GPU rank (optionally multiplexed over a
//! bounded run-slot pool — see [`crate::pool`]). Collectives are SPMD:
//! every rank calls the same operation in the same order (exactly the
//! MPI contract the paper's TensorFlow+MPI stack obeys).
//!
//! ## Execution model: rendezvous collectives
//!
//! Every collective is a **rendezvous**: each rank publishes its
//! contribution to a sender-indexed slot, all ranks meet at one
//! abort-aware barrier where the *last arriver* executes the group-wide
//! reduction, and each rank then copies the result out. This is O(1)
//! synchronisation rounds per collective regardless of world size —
//! what makes 192-rank groups practical on a small machine — and all
//! payload bytes still genuinely move through shared memory.
//!
//! Reductions are computed in **canonical ascending rank order**
//! (left-associated, rank 0 first) no matter which wire schedule is
//! being modelled, so the flat ring and the hierarchical two-tier
//! schedule produce bit-identical results by construction.
//!
//! ## Wire model: what the accounting charges
//!
//! Byte accounting follows the *modelled* schedule, not the rendezvous
//! mechanics. The flat ALLREDUCE charges the bandwidth-optimal **ring
//! algorithm** the paper cites (Gibiansky, "Bringing HPC techniques to
//! deep learning"): reduce-scatter + all-gather, `2(G−1)` steps, each
//! rank sending `2(G−1)/G · n` elements. The hierarchical ALLREDUCE
//! charges a four-phase two-tier schedule (intra-node ring
//! reduce-scatter, chunk hand-off to the node leader, leader ring over
//! the Infiniband tier, intra-node broadcast). Every charge lands in a
//! per-[`Tier`] bucket that exactly matches the analytic helpers
//! ([`ring_allreduce_send_bytes`], [`hierarchical_allreduce_send_bytes`]),
//! so analytic == recorded holds to the byte, per tier.
//!
//! FP16 variants implement §III-C: the reduction emulates the ring's
//! per-hop quantisation (multiply by a scaling factor, down-cast to
//! binary16, up-cast and un-scale at the receiver) in canonical hop
//! order, so quantisation error accumulates per hop exactly as a real
//! FP16 wire format would impose, and wire bytes are halved.
//!
//! ## Failure model
//!
//! Synchronous collectives deadlock if one rank stops calling them: every
//! peer blocks on the step barrier forever. The group therefore carries a
//! group-wide **abort flag**, and every barrier inside every collective is
//! abort-checking: [`Rank::abort`] (or a dropped, still-armed
//! [`AbortOnDrop`] guard — the RAII net for early returns and panics
//! between collectives) records the first failed rank and wakes all
//! waiters. Every collective returns `Result<_, CommError>`, and a
//! surviving rank is guaranteed to observe `Err` no later than its next
//! barrier crossing — bounded time, no stranded threads. The abort is
//! permanent: a poisoned group cannot be revived, matching the MPI
//! convention that a communicator with a dead member is unusable.

use crate::codec::WireCodec;
use crate::pool::RunGate;
use crate::traffic::{Tier, TierBytes, TrafficRecorder, TrafficSnapshot};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};
use std::time::Instant;

/// Thin wrapper over `std::sync::Mutex` with `parking_lot`-style
/// `lock()` ergonomics (no `Result`). A poisoned lock is recovered
/// rather than propagated: mailbox payloads are plain data that stay
/// valid even if a peer rank panicked mid-step, and the panicking rank
/// already aborts the whole test via its joined thread.
#[derive(Debug, Default)]
struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A collective failed because some rank poisoned the group.
///
/// Carries the *first* failure only: later aborts lose the race and keep
/// the original attribution, so every surviving rank reports the same
/// root cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A rank announced its own failure (or a decoder attributed a
    /// corrupt frame to its sender) and poisoned the group.
    Abort {
        /// Rank whose failure poisoned the group.
        failed_rank: usize,
        /// Human-readable description of that first failure.
        reason: String,
    },
    /// A barrier deadline expired: some peer went silent *without*
    /// aborting (a hung rank), so the waiter gave up after the
    /// configured retries instead of parking forever.
    Timeout {
        /// The rank that gave up waiting (the hung peer is unknowable —
        /// any subset of the group may be silent).
        rank: usize,
        /// Total simulated wait across all retry slices, picoseconds.
        waited_ps: u64,
    },
}

impl CommError {
    /// The legacy poison-the-group constructor.
    pub fn abort(failed_rank: usize, reason: impl Into<String>) -> Self {
        CommError::Abort {
            failed_rank,
            reason: reason.into(),
        }
    }

    /// Rank this error attributes: the failed rank for aborts, the
    /// waiter that gave up for timeouts.
    pub fn failed_rank(&self) -> usize {
        match self {
            CommError::Abort { failed_rank, .. } => *failed_rank,
            CommError::Timeout { rank, .. } => *rank,
        }
    }

    /// Human-readable description of the failure.
    pub fn reason(&self) -> String {
        match self {
            CommError::Abort { reason, .. } => reason.clone(),
            CommError::Timeout { waited_ps, .. } => {
                format!("barrier deadline expired after {waited_ps} ps (silent peer)")
            }
        }
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Abort {
                failed_rank,
                reason,
            } => write!(
                f,
                "collective aborted: rank {failed_rank} failed ({reason})"
            ),
            CommError::Timeout { rank, waited_ps } => write!(
                f,
                "collective timed out: rank {rank} waited {waited_ps} ps for a silent peer"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Deadline policy for the abort barrier: how long a rank parks waiting
/// for peers before concluding the group contains a silent (hung) rank.
///
/// Each retry doubles the wait slice (bounded exponential backoff), so
/// the total wall budget is `timeout · (2^(retries+1) − 1)`. With no
/// deadline configured the barrier parks forever — the pre-existing
/// behaviour, correct when every fault announces itself via
/// [`Rank::abort`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierDeadline {
    /// First wait slice; doubles on each retry.
    pub timeout: std::time::Duration,
    /// Number of *additional* timed waits after the first expires.
    pub retries: u32,
}

/// Barrier state behind the abort-aware barrier's mutex.
#[derive(Debug, Default)]
struct BarrierState {
    /// Ranks parked in the current round.
    arrived: usize,
    /// Incremented each time a round completes; waiters key on it.
    generation: u64,
    /// First failure, if any. Permanent once set.
    abort: Option<CommError>,
}

/// `std::sync::Barrier` with an escape hatch: [`AbortBarrier::abort`]
/// wakes every parked waiter and makes this and all future waits return
/// the recorded [`CommError`] immediately. This is what converts "one
/// rank died" from an eternal hang into typed error propagation.
#[derive(Debug)]
struct AbortBarrier {
    world: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
    /// When set, parked waiters give up after the retry budget and
    /// poison the group with [`CommError::Timeout`] instead of hanging
    /// on a silent peer.
    deadline: Option<BarrierDeadline>,
}

impl AbortBarrier {
    fn new(world: usize, deadline: Option<BarrierDeadline>) -> Self {
        Self {
            world,
            state: Mutex::new(BarrierState::default()),
            cvar: Condvar::new(),
            deadline,
        }
    }

    /// Parks until all `world` ranks arrive, or until the group aborts.
    /// The **last arriver** runs `leader_work` before releasing the
    /// round — this is the rendezvous hook every collective uses to
    /// compute its reduction exactly once, with all inputs published
    /// and no rank able to race ahead (peers are parked until the
    /// generation bumps, which happens strictly after `leader_work`).
    ///
    /// `leader_work` runs under the barrier mutex; concurrent
    /// [`AbortBarrier::abort`] calls block for its duration, which is
    /// safe (abort only needs to set the flag and wake waiters, and
    /// every waiter is still parked here anyway).
    fn wait_leader<F: FnOnce()>(&self, rank: usize, leader_work: F) -> Result<(), CommError> {
        let mut st = self.state.lock();
        if let Some(e) = &st.abort {
            return Err(e.clone());
        }
        st.arrived += 1;
        if st.arrived == self.world {
            leader_work();
            st.arrived = 0;
            st.generation = st.generation.wrapping_add(1);
            self.cvar.notify_all();
            return Ok(());
        }
        let gen = st.generation;
        // Retry budget for the deadline path: the first slice plus
        // `retries` doubled slices. Spurious wakeups and abort/round
        // completions are handled inside the loop either way.
        let mut slice = self.deadline.map(|d| d.timeout);
        let mut attempts_left = self.deadline.map_or(0, |d| d.retries);
        let mut waited = std::time::Duration::ZERO;
        loop {
            let timed_out = match slice {
                None => {
                    st = self
                        .cvar
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    false
                }
                Some(dur) => {
                    let (guard, res) = self
                        .cvar
                        .wait_timeout(st, dur)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    st = guard;
                    res.timed_out()
                }
            };
            // Generation first: if the round completed before the abort
            // landed, this barrier crossing succeeded — the caller will
            // observe the abort at its next crossing.
            if st.generation != gen {
                return Ok(());
            }
            if let Some(e) = &st.abort {
                return Err(e.clone());
            }
            if timed_out {
                let dur = slice.expect("timed_out implies a deadline slice");
                waited += dur;
                if attempts_left == 0 {
                    // Out of retries: the group contains a silent peer.
                    // Poison it (first failure wins — a racing abort
                    // keeps its attribution) and fail typed.
                    let err = CommError::Timeout {
                        rank,
                        waited_ps: waited.as_nanos().saturating_mul(1000).min(u64::MAX as u128)
                            as u64,
                    };
                    if st.abort.is_none() {
                        st.abort = Some(err);
                    }
                    let recorded = st.abort.clone().expect("abort just recorded");
                    self.cvar.notify_all();
                    return Err(recorded);
                }
                attempts_left -= 1;
                slice = Some(dur.saturating_mul(2));
            }
        }
    }

    /// Poisons the group (first failure wins) and wakes all waiters.
    fn abort(&self, err: CommError) {
        let mut st = self.state.lock();
        if st.abort.is_none() {
            st.abort = Some(err);
        }
        self.cvar.notify_all();
    }

    /// The recorded failure, if the group is poisoned.
    fn status(&self) -> Option<CommError> {
        self.state.lock().abort.clone()
    }
}

/// Converts f32 to IEEE binary16 bits (round-to-nearest-even).
///
/// Duplicated from `tensor::f16` to keep `simgpu` free of the tensor
/// dependency (the substrate layers must stay acyclic); the two are
/// cross-checked bit-for-bit in `tests/f16_crosscheck.rs`.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;
    if exp == 0xff {
        let nan = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        let half_exp = ((unbiased + 15) as u16) << 10;
        let half_mant = (mant >> 13) as u16;
        let round = mant & 0x1fff;
        let mut out = sign | half_exp | half_mant;
        if round > 0x1000 || (round == 0x1000 && (half_mant & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    if unbiased >= -25 {
        let full = mant | 0x0080_0000;
        let shift = (-unbiased - 1) as u32; // 13 + (−14 − unbiased)
        let half_mant = (full >> shift) as u16;
        let mask = (1u32 << shift) - 1;
        let round = full & mask;
        let halfway = 1u32 << (shift - 1);
        let mut out = sign | half_mant;
        if round > halfway || (round == halfway && (half_mant & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    sign
}

/// Converts binary16 bits to f32 (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let bits = h as u32;
    let sign = (bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1f;
    let mant = bits & 0x03ff;
    let out = if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else if exp != 0 {
        sign | ((exp + 112) << 23) | (mant << 13)
    } else if mant != 0 {
        let mut m = mant;
        let mut e: u32 = 113;
        while m & 0x0400 == 0 {
            m <<= 1;
            e -= 1;
        }
        sign | (e << 23) | ((m & 0x03ff) << 13)
    } else {
        sign
    };
    f32::from_bits(out)
}

/// Shared state of one communicator group.
struct GroupCore {
    world: usize,
    /// Node size for tier attribution: rank `r` lives on node
    /// `r / gpus_per_node`. Legacy groups are created single-node
    /// (`gpus_per_node == world`), so every byte lands intra-node.
    gpus_per_node: usize,
    barrier: AbortBarrier,
    /// Sender-indexed tables for gather-style collectives.
    gather_u32: Vec<Mutex<Vec<u32>>>,
    gather_f32: Vec<Mutex<Vec<f32>>>,
    gather_u16: Vec<Mutex<Vec<u16>>>,
    gather_f64: Vec<Mutex<Vec<f64>>>,
    /// Sender-indexed byte mailboxes for codec-framed collectives:
    /// `(element_count, encoded_bytes)` per sender.
    gather_bytes: Vec<Mutex<(usize, Vec<u8>)>>,
    /// Reduction result written by the rendezvous leader, read by all.
    reduce_f32: Mutex<Vec<f32>>,
    /// Optional bounded run pool: ranks release their run slot while
    /// parked at the rendezvous and re-acquire it on wake-up.
    gate: Option<Arc<RunGate>>,
    traffic: TrafficRecorder,
}

/// Factory for communicator groups.
///
/// ```
/// use simgpu::CommGroup;
/// let ranks = CommGroup::create(4);
/// let sums: Vec<f32> = std::thread::scope(|s| {
///     let handles: Vec<_> = ranks
///         .into_iter()
///         .map(|rank| s.spawn(move || {
///             let mut v = vec![rank.rank() as f32; 8];
///             rank.all_reduce_sum(&mut v).expect("no rank aborted");
///             v[0]
///         }))
///         .collect();
///     handles.into_iter().map(|h| h.join().unwrap()).collect()
/// });
/// assert_eq!(sums, vec![6.0; 4]); // 0+1+2+3 on every rank
/// ```
pub struct CommGroup;

impl CommGroup {
    /// Creates a group of `world` ranks. Hand each [`Rank`] to its own
    /// thread; all collectives must then be called by *every* rank.
    ///
    /// The group is single-node for tier attribution (all bytes count
    /// as intra-node); use [`CommGroup::create_with_topology`] to model
    /// a multi-node cluster.
    pub fn create(world: usize) -> Vec<Rank> {
        Self::create_with_topology(world, world)
    }

    /// Creates a group whose ranks are laid out `gpus_per_node` per
    /// node (node `i` owns ranks `[i·gpus_per_node, (i+1)·gpus_per_node)`,
    /// with a smaller last node when the division is ragged). The
    /// topology only affects which [`Tier`] bucket each collective's
    /// bytes are charged to — results are identical on any topology.
    pub fn create_with_topology(world: usize, gpus_per_node: usize) -> Vec<Rank> {
        Self::build(world, gpus_per_node, None, None)
    }

    /// Creates a topology-aware group whose ranks multiplex over a
    /// bounded run pool of `pool_workers` slots (clamped to at least 1).
    /// Spawn the ranks with [`crate::pool::run_ranks`]: each rank holds
    /// a run slot while executing and parks slot-free at collective
    /// rendezvous, so at most `pool_workers` ranks ever run
    /// concurrently no matter how large `world` is.
    pub fn create_pooled(world: usize, gpus_per_node: usize, pool_workers: usize) -> Vec<Rank> {
        Self::build(world, gpus_per_node, Some(RunGate::new(pool_workers)), None)
    }

    /// Fully-parameterised constructor: topology, optional bounded pool
    /// (`pool_workers == 0` means unpooled), and an optional barrier
    /// deadline that converts silent-peer hangs into
    /// [`CommError::Timeout`] after a bounded retry/backoff budget.
    pub fn create_full(
        world: usize,
        gpus_per_node: usize,
        pool_workers: usize,
        deadline: Option<BarrierDeadline>,
    ) -> Vec<Rank> {
        let gate = (pool_workers > 0).then(|| RunGate::new(pool_workers));
        Self::build(world, gpus_per_node, gate, deadline)
    }

    fn build(
        world: usize,
        gpus_per_node: usize,
        gate: Option<Arc<RunGate>>,
        deadline: Option<BarrierDeadline>,
    ) -> Vec<Rank> {
        assert!(world >= 1, "group needs at least one rank");
        assert!(
            gpus_per_node >= 1,
            "topology needs at least one GPU per node"
        );
        let core = Arc::new(GroupCore {
            world,
            gpus_per_node,
            barrier: AbortBarrier::new(world, deadline),
            gather_u32: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            gather_f32: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            gather_u16: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            gather_f64: (0..world).map(|_| Mutex::new(Vec::new())).collect(),
            gather_bytes: (0..world).map(|_| Mutex::new((0, Vec::new()))).collect(),
            reduce_f32: Mutex::new(Vec::new()),
            gate,
            traffic: TrafficRecorder::new(),
        });
        (0..world)
            .map(|rank| Rank {
                rank,
                core: Arc::clone(&core),
                wait_ns: None,
                corrupt_next_frame: std::sync::atomic::AtomicBool::new(false),
            })
            .collect()
    }
}

/// In-flight frame damage for the transient wire-corruption fault: the
/// frame is torn (emptied), or grows a stray byte when already empty.
///
/// Tearing — not bit-flipping — is the modelled fault because it is
/// *detectable by construction* for every codec: a non-empty payload
/// decoded from zero bytes is a guaranteed `Truncated`, and a stray
/// byte on an empty payload is guaranteed trailing garbage. A flipped
/// bit inside an identity (raw) frame would instead decode silently
/// into wrong values — the wire layer has no CRC (that lives in the
/// checkpoint frames), so the harness injects the fault class the
/// framing can actually catch.
fn corrupt_frame(frame: &mut Vec<u8>) {
    if frame.is_empty() {
        frame.push(0xA5);
    } else {
        frame.clear();
    }
}

/// One rank's handle into the group.
pub struct Rank {
    rank: usize,
    core: Arc<GroupCore>,
    /// Opt-in barrier-wait accounting (see [`Rank::enable_wait_tracking`]).
    /// `None` by default so the hot path pays a single branch, no timing.
    wait_ns: Option<AtomicU64>,
    /// One-shot wire-corruption latch (see
    /// [`Rank::corrupt_next_codec_frame`]): when armed, the next codec
    /// frame this rank publishes is damaged in flight.
    corrupt_next_frame: std::sync::atomic::AtomicBool,
}

/// Chunk boundaries for the ring algorithm: `G` nearly-equal ranges.
/// Public so analytic wire accounting (and its tests) can price
/// per-chunk codec-encoded lengths over the exact same partition the
/// collectives use.
pub fn chunk_range(n: usize, world: usize, chunk: usize) -> std::ops::Range<usize> {
    let lo = chunk * n / world;
    let hi = (chunk + 1) * n / world;
    lo..hi
}

/// Exact bytes `rank` sends during one ring ALLREDUCE over `n` elements
/// of `elem_bytes` each — iterating the same chunk schedule as
/// [`Rank::all_reduce_sum`] / [`Rank::all_reduce_sum_f16`], so analytic
/// wire accounting can match the [`TrafficRecorder`] to the byte even
/// when `n` does not divide evenly by `world`.
pub fn ring_allreduce_send_bytes(n: usize, world: usize, rank: usize, elem_bytes: u64) -> u64 {
    ring_allreduce_send_bytes_parts(world, rank, |parts, c| {
        chunk_range(n, parts, c).len() as u64 * elem_bytes
    })
}

/// Closure-parameterised [`ring_allreduce_send_bytes`]: iterates the
/// identical chunk schedule but prices each transmitted chunk through
/// `chunk_bytes(parts, chunk)` — the wire bytes of chunk `chunk` of the
/// `parts`-way partition of the payload. With the raw closure
/// `|parts, c| chunk_range(n, parts, c).len() as u64 * elem_bytes` this
/// reproduces the identity accounting exactly; wire codecs substitute
/// the encoded length of each chunk of the *reduced* payload (the
/// steady-state re-encode model — see `codec`), which is identical on
/// every rank, so analytic == recorded still holds per tier.
pub fn ring_allreduce_send_bytes_parts<F: Fn(usize, usize) -> u64>(
    world: usize,
    rank: usize,
    chunk_bytes: F,
) -> u64 {
    if world <= 1 {
        return 0;
    }
    let g = world;
    let r = rank;
    let mut bytes = 0u64;
    for s in 0..g - 1 {
        // Reduce-scatter send at step s, then all-gather send at step s.
        bytes += chunk_bytes(g, (r + g - s) % g);
        bytes += chunk_bytes(g, (r + 1 + g - s) % g);
    }
    bytes
}

/// Elements `rank` sends during the reduce-scatter half of the ring
/// schedule alone (the byte model of [`Rank::reduce_scatter_sum`] and of
/// the hierarchical schedule's intra-node phase 1).
fn ring_reduce_scatter_send_elems(n: usize, world: usize, rank: usize) -> u64 {
    if world <= 1 {
        return 0;
    }
    (0..world - 1)
        .map(|s| chunk_range(n, world, (rank + world - s) % world).len() as u64)
        .sum()
}

/// Closure-parameterised reduce-scatter half of the ring schedule (see
/// [`ring_allreduce_send_bytes_parts`] for the closure contract).
fn ring_reduce_scatter_send_bytes_parts<F: Fn(usize, usize) -> u64>(
    world: usize,
    rank: usize,
    chunk_bytes: F,
) -> u64 {
    if world <= 1 {
        return 0;
    }
    (0..world - 1)
        .map(|s| chunk_bytes(world, (rank + world - s) % world))
        .sum()
}

/// The [`Tier`] of the flat ring link `rank → (rank + 1) % world` on a
/// cluster of `gpus_per_node`-GPU nodes: intra-node unless the link
/// crosses a node boundary (including the wrap-around link whenever the
/// group spans more than one node).
pub fn ring_send_tier(world: usize, gpus_per_node: usize, rank: usize) -> Tier {
    assert!(
        gpus_per_node >= 1,
        "topology needs at least one GPU per node"
    );
    let next = (rank + 1) % world;
    if rank / gpus_per_node == next / gpus_per_node {
        Tier::Intra
    } else {
        Tier::Inter
    }
}

/// Tier split of a peer-to-peer exchange pattern where `rank` sends
/// `payload_bytes` to every other rank directly (ALLGATHER, scalar
/// reduce, broadcast root): peers on `rank`'s own node receive over the
/// intra tier, all others over the inter tier.
pub fn peer_exchange_tier_bytes(
    world: usize,
    gpus_per_node: usize,
    rank: usize,
    payload_bytes: u64,
) -> TierBytes {
    assert!(
        gpus_per_node >= 1,
        "topology needs at least one GPU per node"
    );
    if world <= 1 {
        return TierBytes::default();
    }
    let node = rank / gpus_per_node;
    let node_size = gpus_per_node.min(world - node * gpus_per_node);
    TierBytes {
        intra: payload_bytes * (node_size as u64 - 1),
        inter: payload_bytes * (world - node_size) as u64,
    }
}

/// Exact per-tier bytes `rank` sends during one hierarchical ALLREDUCE
/// over `n` elements of `elem_bytes` each, on a cluster of
/// `gpus_per_node`-GPU nodes — the analytic mirror of
/// [`Rank::all_reduce_sum_hierarchical`]'s recorder charges, phase by
/// phase, so per-tier analytic == recorded holds to the byte even on
/// ragged worlds (`world % gpus_per_node != 0`).
///
/// The modelled schedule:
/// 1. intra-node ring reduce-scatter over the node's `m` members
///    (each member sends `(m−1)/m · n` elements, intra tier);
/// 2. each non-leader hands its owned fully-node-reduced chunk to the
///    node leader (intra tier);
/// 3. leaders run a flat ring ALLREDUCE over the `⌈world/gpus_per_node⌉`
///    nodes (inter tier — the only traffic on the Infiniband pipe);
/// 4. each leader broadcasts the final `n` elements to its `m−1`
///    members (intra tier).
///
/// Groups that fit in one node (`world <= gpus_per_node`) fall back to
/// the flat ring, all intra.
pub fn hierarchical_allreduce_send_bytes(
    n: usize,
    world: usize,
    gpus_per_node: usize,
    rank: usize,
    elem_bytes: u64,
) -> TierBytes {
    hierarchical_allreduce_send_bytes_parts(world, gpus_per_node, rank, |parts, c| {
        chunk_range(n, parts, c).len() as u64 * elem_bytes
    })
}

/// Closure-parameterised [`hierarchical_allreduce_send_bytes`]: the
/// identical four-phase schedule, pricing every transmitted chunk
/// through `chunk_bytes(parts, chunk)` — the wire bytes of chunk
/// `chunk` of the `parts`-way partition of the payload (phase 4's full
/// payload is chunk 0 of the 1-way partition). See
/// [`ring_allreduce_send_bytes_parts`] for the closure contract.
pub fn hierarchical_allreduce_send_bytes_parts<F: Fn(usize, usize) -> u64>(
    world: usize,
    gpus_per_node: usize,
    rank: usize,
    chunk_bytes: F,
) -> TierBytes {
    assert!(
        gpus_per_node >= 1,
        "topology needs at least one GPU per node"
    );
    if world <= 1 {
        return TierBytes::default();
    }
    if world <= gpus_per_node {
        return TierBytes {
            intra: ring_allreduce_send_bytes_parts(world, rank, chunk_bytes),
            inter: 0,
        };
    }
    let node = rank / gpus_per_node;
    let leader = node * gpus_per_node;
    let m = gpus_per_node.min(world - leader);
    let j = rank - leader;
    let n_nodes = world.div_ceil(gpus_per_node);
    // Phase 1: intra-node ring reduce-scatter over m members.
    let mut intra = ring_reduce_scatter_send_bytes_parts(m, j, &chunk_bytes);
    if rank != leader {
        // Phase 2: hand the owned chunk to the leader.
        intra += chunk_bytes(m, (j + 1) % m);
    } else {
        // Phase 4: broadcast the result to the other members.
        intra += chunk_bytes(1, 0) * (m as u64 - 1);
    }
    // Phase 3: leaders-only flat ring across nodes.
    let inter = if rank == leader {
        ring_allreduce_send_bytes_parts(n_nodes, node, &chunk_bytes)
    } else {
        0
    };
    TierBytes { intra, inter }
}

/// Canonical rendezvous reduction: left-associated elementwise sum in
/// ascending rank order, written into the group's result buffer. Runs
/// exactly once per collective, by the barrier's last arriver.
fn leader_sum_f32(core: &GroupCore) {
    let mut acc = core.reduce_f32.lock();
    {
        let first = core.gather_f32[0].lock();
        acc.clear();
        acc.extend_from_slice(&first);
    }
    for s in 1..core.world {
        let slot = core.gather_f32[s].lock();
        for (a, &x) in acc.iter_mut().zip(slot.iter()) {
            *a += x;
        }
    }
}

/// Canonical rendezvous reduction emulating the FP16 ring's per-hop
/// quantisation (§III-C): the running partial is scaled, down-cast to
/// binary16, up-cast and un-scaled at every hop — `G−1` hops in
/// canonical ascending order, then one final wire-quantisation so the
/// distributed value is the wire value, bit-identical on every rank.
fn leader_sum_f16_emulated(core: &GroupCore, scale: f32) {
    let inv = 1.0 / scale;
    let mut acc = core.reduce_f32.lock();
    {
        let first = core.gather_f32[0].lock();
        acc.clear();
        acc.extend_from_slice(&first);
    }
    for s in 1..core.world {
        let slot = core.gather_f32[s].lock();
        for (a, &x) in acc.iter_mut().zip(slot.iter()) {
            *a = x + f16_bits_to_f32(f32_to_f16_bits(*a * scale)) * inv;
        }
    }
    for a in acc.iter_mut() {
        *a = f16_bits_to_f32(f32_to_f16_bits(*a * scale)) * inv;
    }
}

impl Rank {
    /// This rank's id in `0..world()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size `G`.
    pub fn world(&self) -> usize {
        self.core.world
    }

    /// Node size used for tier attribution (`world` for single-node
    /// legacy groups).
    pub fn gpus_per_node(&self) -> usize {
        self.core.gpus_per_node
    }

    /// The group's bounded run pool, if it was created with
    /// [`CommGroup::create_pooled`]. Exposed so tests can assert the
    /// scheduling invariant `peak_running() <= cap()`.
    pub fn run_gate(&self) -> Option<Arc<RunGate>> {
        self.core.gate.clone()
    }

    /// Synchronises all ranks; `Err` if any rank aborted the group.
    pub fn barrier(&self) -> Result<(), CommError> {
        self.sync_leader(|| {})
    }

    /// The rendezvous every collective funnels through: release the run
    /// slot (parked ranks must not occupy the bounded pool), meet at
    /// the abort-aware barrier — where the last arriver runs
    /// `leader_work` — then re-acquire a slot before resuming.
    ///
    /// The leader computes slot-free by design: when it runs, every
    /// other rank is parked inside this same barrier, so the pool
    /// bound on *runnable* ranks still holds.
    fn sync_leader<F: FnOnce()>(&self, leader_work: F) -> Result<(), CommError> {
        if let Some(gate) = &self.core.gate {
            gate.release();
        }
        let res = match &self.wait_ns {
            None => self.core.barrier.wait_leader(self.rank, leader_work),
            Some(counter) => {
                let start = Instant::now();
                let res = self.core.barrier.wait_leader(self.rank, leader_work);
                let waited = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                counter.fetch_add(waited, Ordering::Relaxed);
                res
            }
        };
        if let Some(gate) = &self.core.gate {
            gate.acquire();
        }
        res
    }

    /// Turns on wall-clock accounting of the time this rank spends
    /// parked in [`Rank::barrier`] — and therefore inside every
    /// collective, which all synchronise through it. Off by default:
    /// the untracked barrier is exactly the pre-existing code path.
    pub fn enable_wait_tracking(&mut self) {
        self.wait_ns = Some(AtomicU64::new(0));
    }

    /// Nanoseconds spent blocked at barriers since the previous call
    /// (the counter resets to zero). Always 0 while tracking is off.
    pub fn take_barrier_wait_ns(&self) -> u64 {
        self.wait_ns
            .as_ref()
            .map_or(0, |c| c.swap(0, Ordering::Relaxed))
    }

    /// Poisons the group on behalf of this rank: all peers blocked in a
    /// collective wake with `Err`, and every future collective fails
    /// immediately. Idempotent; the first abort's attribution wins.
    pub fn abort(&self, reason: impl Into<String>) {
        self.core.barrier.abort(CommError::abort(self.rank, reason));
    }

    /// Arms the one-shot wire-corruption latch: the next codec frame
    /// this rank publishes into a collective is damaged in flight (its
    /// final byte is torn off; an empty frame instead grows a stray
    /// byte). Because every codec's framing disambiguates packed from
    /// raw *by length*, the damage is guaranteed to surface as a typed
    /// [`crate::codec::CodecError`] at each decoder — never a silent
    /// wrong answer — which poisons the group attributed to this rank.
    pub fn corrupt_next_codec_frame(&self) {
        self.corrupt_next_frame
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Consumes the wire-corruption latch (true at most once per arm).
    fn take_corrupt_frame(&self) -> bool {
        self.corrupt_next_frame
            .swap(false, std::sync::atomic::Ordering::Relaxed)
    }

    /// Cheap non-blocking poll: `Err` if the group is poisoned. Lets
    /// long local compute phases between collectives bail out early.
    pub fn check_abort(&self) -> Result<(), CommError> {
        match self.core.barrier.status() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// RAII failure net: the returned guard [`Rank::abort`]s the group
    /// with `reason` when dropped, unless [`AbortOnDrop::disarm`]ed
    /// first. Arm it on entry to a rank's work loop so an early `return`
    /// or a panic between collectives poisons the group instead of
    /// stranding every peer at the next barrier.
    pub fn abort_on_drop(&self, reason: impl Into<String>) -> AbortOnDrop<'_> {
        AbortOnDrop {
            rank: self,
            reason: reason.into(),
            armed: true,
        }
    }

    /// Snapshot of the group's cumulative traffic counters.
    pub fn traffic(&self) -> TrafficSnapshot {
        self.core.traffic.snapshot()
    }

    /// Resets the group traffic counters (call from every rank — it
    /// barriers internally so the reset is race-free).
    pub fn reset_traffic(&self) -> Result<(), CommError> {
        self.barrier()?;
        if self.rank == 0 {
            self.core.traffic.reset();
        }
        self.barrier()
    }

    /// ALLREDUCE (sum) over `data`; on return every rank holds the
    /// elementwise sum across all ranks, computed in canonical ascending
    /// rank order (bit-identical on every rank and under every wire
    /// schedule). All ranks must pass equal-length buffers. `Err` (with
    /// the buffer in an unspecified partial state) if any rank aborts
    /// the group mid-collective.
    ///
    /// Wire accounting charges the flat ring schedule: this rank's
    /// `2(G−1)/G · n` elements land on the tier of its ring link
    /// `r → r+1` under the group topology.
    pub fn all_reduce_sum(&self, data: &mut [f32]) -> Result<(), CommError> {
        let g = self.core.world;
        if self.rank == 0 {
            self.core.traffic.count_allreduce_op();
        }
        if g == 1 {
            return Ok(());
        }
        let n = data.len();
        let r = self.rank;
        {
            let mut slot = self.core.gather_f32[r].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        self.core.traffic.record_allreduce_tier(
            ring_send_tier(g, self.core.gpus_per_node, r),
            ring_allreduce_send_bytes(n, g, r, 4),
        );
        let core = &self.core;
        self.sync_leader(|| leader_sum_f32(core))?;
        data.copy_from_slice(&self.core.reduce_f32.lock());
        // No departure barrier needed: a peer still copying this result
        // cannot be overtaken, because the next rendezvous's leader work
        // only runs once *every* rank has finished here and arrived there.
        Ok(())
    }

    /// ALLREDUCE with FP16 wire compression and compression-scaling
    /// (§III-C): the reduction emulates the compressed ring hop by hop —
    /// every hop multiplies the running partial by `scale`, down-casts
    /// to binary16, and the receiver up-casts and divides, with a final
    /// wire-quantisation so the distributed value *is* the wire value.
    /// Halves wire bytes relative to [`Rank::all_reduce_sum`];
    /// quantisation error accumulates per hop as on real FP16
    /// interconnect paths, and every rank ends bit-identical.
    pub fn all_reduce_sum_f16(&self, data: &mut [f32], scale: f32) -> Result<(), CommError> {
        assert!(scale > 0.0, "compression scale must be positive");
        let g = self.core.world;
        if self.rank == 0 {
            self.core.traffic.count_allreduce_op();
        }
        if g == 1 {
            return Ok(());
        }
        let n = data.len();
        let r = self.rank;
        {
            let mut slot = self.core.gather_f32[r].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        // Exactly half the f32 ring's bytes: same chunk schedule, 2-byte
        // elements.
        self.core.traffic.record_allreduce_tier(
            ring_send_tier(g, self.core.gpus_per_node, r),
            ring_allreduce_send_bytes(n, g, r, 2),
        );
        let core = &self.core;
        self.sync_leader(|| leader_sum_f16_emulated(core, scale))?;
        data.copy_from_slice(&self.core.reduce_f32.lock());
        Ok(())
    }

    /// Variable-size ALLGATHER of `u32` payloads: returns every rank's
    /// contribution concatenated in rank order (identical on all ranks).
    /// This is the cheap index exchange at the heart of the paper's
    /// uniqueness technique — `Θ(G·K)` elements instead of `Θ(G·K·D)`.
    pub fn all_gather_u32(&self, local: &[u32]) -> Result<Vec<u32>, CommError> {
        let mut out = Vec::new();
        self.all_gather_u32_into(local, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Rank::all_gather_u32`]: the result replaces
    /// `out`'s contents, reusing its capacity (hot loops pass the same
    /// buffer every step so steady state performs zero heap allocation).
    pub fn all_gather_u32_into(&self, local: &[u32], out: &mut Vec<u32>) -> Result<(), CommError> {
        if self.rank == 0 {
            self.core.traffic.count_allgather_op();
        }
        let g = self.core.world;
        {
            let mut slot = self.core.gather_u32[self.rank].lock();
            slot.clear();
            slot.extend_from_slice(local);
        }
        // Each rank's payload travels to G−1 peers: same-node peers over
        // the intra tier, the rest over the inter tier.
        self.core
            .traffic
            .record_allgather_split(peer_exchange_tier_bytes(
                g,
                self.core.gpus_per_node,
                self.rank,
                (local.len() * 4) as u64,
            ));
        self.barrier()?;
        out.clear();
        for s in 0..g {
            out.extend_from_slice(&self.core.gather_u32[s].lock());
        }
        self.barrier()
    }

    /// Variable-size ALLGATHER of `f32` payloads, rank order — the
    /// paper's *baseline* dense gradient exchange (`Θ(G·K·D)` memory and
    /// wire bytes).
    pub fn all_gather_f32(&self, local: &[f32]) -> Result<Vec<f32>, CommError> {
        let mut out = Vec::new();
        self.all_gather_f32_into(local, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Rank::all_gather_f32`], reusing `out`'s capacity.
    pub fn all_gather_f32_into(&self, local: &[f32], out: &mut Vec<f32>) -> Result<(), CommError> {
        if self.rank == 0 {
            self.core.traffic.count_allgather_op();
        }
        let g = self.core.world;
        {
            let mut slot = self.core.gather_f32[self.rank].lock();
            slot.clear();
            slot.extend_from_slice(local);
        }
        self.core
            .traffic
            .record_allgather_split(peer_exchange_tier_bytes(
                g,
                self.core.gpus_per_node,
                self.rank,
                (local.len() * 4) as u64,
            ));
        self.barrier()?;
        out.clear();
        for s in 0..g {
            out.extend_from_slice(&self.core.gather_f32[s].lock());
        }
        self.barrier()
    }

    /// FP16-compressed ALLGATHER of `f32` payloads with compression
    /// scaling — the baseline exchange under §III-C compression.
    pub fn all_gather_f16(&self, local: &[f32], scale: f32) -> Result<Vec<f32>, CommError> {
        let mut out = Vec::new();
        self.all_gather_f16_into(local, scale, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Rank::all_gather_f16`], reusing `out`'s capacity.
    pub fn all_gather_f16_into(
        &self,
        local: &[f32],
        scale: f32,
        out: &mut Vec<f32>,
    ) -> Result<(), CommError> {
        assert!(scale > 0.0, "compression scale must be positive");
        if self.rank == 0 {
            self.core.traffic.count_allgather_op();
        }
        let g = self.core.world;
        {
            let mut slot = self.core.gather_u16[self.rank].lock();
            slot.clear();
            slot.extend(local.iter().map(|&x| f32_to_f16_bits(x * scale)));
        }
        self.core
            .traffic
            .record_allgather_split(peer_exchange_tier_bytes(
                g,
                self.core.gpus_per_node,
                self.rank,
                (local.len() * 2) as u64,
            ));
        self.barrier()?;
        let inv = 1.0 / scale;
        out.clear();
        for s in 0..g {
            let slot = self.core.gather_u16[s].lock();
            out.extend(slot.iter().map(|&h| f16_bits_to_f32(h) * inv));
        }
        self.barrier()
    }

    /// Sums one scalar across ranks in rank order (deterministic) — used
    /// for loss averaging and metric reduction.
    pub fn all_reduce_scalar_f64(&self, v: f64) -> Result<f64, CommError> {
        let g = self.core.world;
        {
            let mut slot = self.core.gather_f64[self.rank].lock();
            slot.clear();
            slot.push(v);
        }
        self.core
            .traffic
            .record_allreduce_split(peer_exchange_tier_bytes(
                g,
                self.core.gpus_per_node,
                self.rank,
                8,
            ));
        self.barrier()?;
        let mut sum = 0.0;
        for s in 0..g {
            sum += self.core.gather_f64[s].lock()[0];
        }
        self.barrier()?;
        Ok(sum)
    }

    /// Reduce-scatter (sum): after the call, this rank holds the fully
    /// reduced chunk `chunk_range(n, G, (rank + 1) % G)` of the buffer in
    /// place (other regions are untouched input and must be treated as
    /// scratch). This is the first phase of the ring ALLREDUCE exposed on
    /// its own, the building block of hierarchical schedules; the owned
    /// chunk is the canonical ascending-rank sum, identical to the same
    /// region after [`Rank::all_reduce_sum`]. Wire accounting charges
    /// the reduce-scatter half of the ring schedule.
    pub fn reduce_scatter_sum(
        &self,
        data: &mut [f32],
    ) -> Result<std::ops::Range<usize>, CommError> {
        let g = self.core.world;
        let n = data.len();
        let r = self.rank;
        if g == 1 {
            return Ok(0..n);
        }
        {
            let mut slot = self.core.gather_f32[r].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        self.core.traffic.record_allreduce_tier(
            ring_send_tier(g, self.core.gpus_per_node, r),
            ring_reduce_scatter_send_elems(n, g, r) * 4,
        );
        let core = &self.core;
        self.sync_leader(|| leader_sum_f32(core))?;
        let owned = chunk_range(n, g, (r + 1) % g);
        data[owned.clone()].copy_from_slice(&self.core.reduce_f32.lock()[owned.clone()]);
        Ok(owned)
    }

    /// Hierarchical two-tier ALLREDUCE for a cluster of
    /// `gpus_per_node`-GPU nodes, the schedule of §V-C: (1) intra-node
    /// ring reduce-scatter over PCIe, (2) owned-chunk hand-off to the
    /// node leader, (3) flat ring ALLREDUCE across leaders only — the
    /// expensive Infiniband hop moves `Θ(n)` once per node instead of
    /// per GPU — and (4) intra-node broadcast. Falls back to the flat
    /// ring when the group fits in one node.
    ///
    /// The *result* is the canonical ascending-rank sum, bit-identical
    /// to [`Rank::all_reduce_sum`] on every rank; the schedule above is
    /// what the per-tier wire accounting charges, phase by phase,
    /// mirroring [`hierarchical_allreduce_send_bytes`] exactly (ragged
    /// last nodes included). Node `i` owns ranks
    /// `[i·gpus_per_node, (i+1)·gpus_per_node)`.
    ///
    /// `gpus_per_node == 0` is an invalid topology and yields a typed
    /// [`CommError`] on every rank — recoverable, the group is *not*
    /// poisoned (all ranks pass the same argument under SPMD, so all
    /// observe the same error and stay in lockstep).
    pub fn all_reduce_sum_hierarchical(
        &self,
        data: &mut [f32],
        gpus_per_node: usize,
    ) -> Result<(), CommError> {
        if gpus_per_node == 0 {
            return Err(CommError::abort(
                self.rank,
                "invalid topology: gpus_per_node must be at least 1",
            ));
        }
        let g = self.core.world;
        if g <= gpus_per_node {
            return self.all_reduce_sum(data);
        }
        if self.rank == 0 {
            self.core.traffic.count_allreduce_op();
        }
        let r = self.rank;
        {
            let mut slot = self.core.gather_f32[r].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        self.core
            .traffic
            .record_allreduce_split(hierarchical_allreduce_send_bytes(
                data.len(),
                g,
                gpus_per_node,
                r,
                4,
            ));
        let core = &self.core;
        self.sync_leader(|| leader_sum_f32(core))?;
        data.copy_from_slice(&self.core.reduce_f32.lock());
        Ok(())
    }

    /// Hierarchical two-tier ALLREDUCE with FP16 wire compression and
    /// compression-scaling: the §V-C schedule of
    /// [`Rank::all_reduce_sum_hierarchical`] carrying the 2-byte wire
    /// format of [`Rank::all_reduce_sum_f16`]. The reduction emulates
    /// the compressed hops in canonical ascending-rank order, so the
    /// *result* is bit-identical to the flat f16 ring on every rank —
    /// topology only changes which links the bytes traverse. Wire
    /// accounting charges [`hierarchical_allreduce_send_bytes`] at
    /// 2 bytes per element, phase by phase per tier. Falls back to the
    /// flat f16 ring when the group fits in one node; `gpus_per_node ==
    /// 0` yields the same recoverable typed [`CommError`] as the f32
    /// variant.
    pub fn all_reduce_sum_f16_hierarchical(
        &self,
        data: &mut [f32],
        scale: f32,
        gpus_per_node: usize,
    ) -> Result<(), CommError> {
        assert!(scale > 0.0, "compression scale must be positive");
        if gpus_per_node == 0 {
            return Err(CommError::abort(
                self.rank,
                "invalid topology: gpus_per_node must be at least 1",
            ));
        }
        let g = self.core.world;
        if g <= gpus_per_node {
            return self.all_reduce_sum_f16(data, scale);
        }
        if self.rank == 0 {
            self.core.traffic.count_allreduce_op();
        }
        let r = self.rank;
        {
            let mut slot = self.core.gather_f32[r].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        self.core
            .traffic
            .record_allreduce_split(hierarchical_allreduce_send_bytes(
                data.len(),
                g,
                gpus_per_node,
                r,
                2,
            ));
        let core = &self.core;
        self.sync_leader(|| leader_sum_f16_emulated(core, scale))?;
        data.copy_from_slice(&self.core.reduce_f32.lock());
        Ok(())
    }

    /// Broadcasts `data` from `root` to all ranks.
    pub fn broadcast_f32(&self, data: &mut Vec<f32>, root: usize) -> Result<(), CommError> {
        assert!(root < self.core.world, "root out of range");
        if self.rank == 0 {
            self.core.traffic.count_broadcast_op();
        }
        let g = self.core.world;
        if self.rank == root {
            let mut slot = self.core.gather_f32[root].lock();
            slot.clear();
            slot.extend_from_slice(data);
            self.core
                .traffic
                .record_broadcast_split(peer_exchange_tier_bytes(
                    g,
                    self.core.gpus_per_node,
                    root,
                    (data.len() * 4) as u64,
                ));
        }
        self.barrier()?;
        if self.rank != root {
            let slot = self.core.gather_f32[root].lock();
            data.clear();
            data.extend_from_slice(&slot);
        }
        self.barrier()
    }

    /// Poisons the group with a codec decode failure and returns the
    /// typed error — malformed wire bytes must never panic a rank, and
    /// peers blocked at the next rendezvous must observe the failure.
    ///
    /// The failure is attributed to `sender`, the rank whose published
    /// frame failed to decode — not the decoding rank — so every
    /// decoder names the *same* culprit and elastic recovery can shrink
    /// around it deterministically.
    fn codec_abort(
        &self,
        sender: usize,
        codec: &dyn WireCodec,
        err: crate::codec::CodecError,
    ) -> CommError {
        let e = CommError::abort(
            sender,
            format!("wire codec {} decode failed: {err}", codec.name()),
        );
        self.core.barrier.abort(e.clone());
        e
    }

    /// Codec-framed variable-size ALLGATHER of `u32` payloads: each
    /// rank's contribution crosses the wire in `codec`-encoded form and
    /// every receiver decodes all senders, so the result is genuinely
    /// reconstructed from wire bytes (a lossy or broken codec would be
    /// caught by the bit-identity tests, a malformed payload yields a
    /// typed [`CommError`]). Wire accounting charges this rank's
    /// *encoded* payload length to `G−1` peers, split per tier exactly
    /// like [`Rank::all_gather_u32_into`] — so the charge is
    /// `peer_exchange_tier_bytes(G, gpus_per_node, rank,
    /// codec.encoded_len_u32(local))`, never more than the identity
    /// charge (codecs never expand).
    pub fn all_gather_u32_codec_into(
        &self,
        local: &[u32],
        codec: &dyn WireCodec,
        out: &mut Vec<u32>,
    ) -> Result<(), CommError> {
        if self.rank == 0 {
            self.core.traffic.count_allgather_op();
        }
        let g = self.core.world;
        let enc_len = {
            let mut slot = self.core.gather_bytes[self.rank].lock();
            slot.0 = local.len();
            slot.1.clear();
            codec.encode_u32(local, &mut slot.1);
            if self.take_corrupt_frame() {
                corrupt_frame(&mut slot.1);
            }
            slot.1.len() as u64
        };
        self.core
            .traffic
            .record_allgather_split(peer_exchange_tier_bytes(
                g,
                self.core.gpus_per_node,
                self.rank,
                enc_len,
            ));
        self.barrier()?;
        out.clear();
        for s in 0..g {
            let slot = self.core.gather_bytes[s].lock();
            if let Err(e) = codec.decode_u32(&slot.1, slot.0, out) {
                drop(slot);
                return Err(self.codec_abort(s, codec, e));
            }
        }
        self.barrier()
    }

    /// ALLREDUCE (sum) with a lossless wire codec: the reduction itself
    /// is the canonical ascending-rank sum of [`Rank::all_reduce_sum`]
    /// (bit-identical results under every wire schedule), and the
    /// distributed result is then passed chunk-by-chunk through a real
    /// `codec` encode→decode round-trip — modelling the all-gather phase
    /// delivering encoded chunks, so a codec that is not bit-exact
    /// visibly corrupts training instead of silently compressing.
    ///
    /// Wire accounting charges the **steady-state re-encode model**:
    /// every chunk transmission of the flat ring schedule is priced at
    /// the encoded length of the *reduced* chunk, which is identical on
    /// every rank — so the charge equals
    /// [`ring_allreduce_send_bytes_parts`] over
    /// `codec.encoded_len_f32(&data[chunk])` and analytic == recorded
    /// holds to the byte.
    pub fn all_reduce_sum_codec(
        &self,
        data: &mut [f32],
        codec: &dyn WireCodec,
    ) -> Result<(), CommError> {
        let g = self.core.world;
        if self.rank == 0 {
            self.core.traffic.count_allreduce_op();
        }
        if g == 1 {
            return Ok(());
        }
        let n = data.len();
        let r = self.rank;
        {
            let mut slot = self.core.gather_f32[r].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        let core = &self.core;
        self.sync_leader(|| leader_sum_f32(core))?;
        data.copy_from_slice(&self.core.reduce_f32.lock());
        self.codec_roundtrip_chunks(data, codec)?;
        self.core.traffic.record_allreduce_tier(
            ring_send_tier(g, self.core.gpus_per_node, r),
            ring_allreduce_send_bytes_parts(g, r, |parts, c| {
                codec.encoded_len_f32(&data[chunk_range(n, parts, c)])
            }),
        );
        Ok(())
    }

    /// Hierarchical two-tier ALLREDUCE with a lossless wire codec: the
    /// §V-C schedule of [`Rank::all_reduce_sum_hierarchical`], priced
    /// per tier at encoded chunk lengths
    /// ([`hierarchical_allreduce_send_bytes_parts`] over
    /// `codec.encoded_len_f32`), with the same reduced-payload
    /// encode→decode round-trip as [`Rank::all_reduce_sum_codec`] — so
    /// flat and hierarchical stay bit-identical and analytic == recorded
    /// holds per tier. Falls back to the flat codec ring when the group
    /// fits in one node; `gpus_per_node == 0` yields the recoverable
    /// typed [`CommError`] of the identity variants.
    pub fn all_reduce_sum_hierarchical_codec(
        &self,
        data: &mut [f32],
        codec: &dyn WireCodec,
        gpus_per_node: usize,
    ) -> Result<(), CommError> {
        if gpus_per_node == 0 {
            return Err(CommError::abort(
                self.rank,
                "invalid topology: gpus_per_node must be at least 1",
            ));
        }
        let g = self.core.world;
        if g <= gpus_per_node {
            return self.all_reduce_sum_codec(data, codec);
        }
        if self.rank == 0 {
            self.core.traffic.count_allreduce_op();
        }
        let n = data.len();
        let r = self.rank;
        {
            let mut slot = self.core.gather_f32[r].lock();
            slot.clear();
            slot.extend_from_slice(data);
        }
        let core = &self.core;
        self.sync_leader(|| leader_sum_f32(core))?;
        data.copy_from_slice(&self.core.reduce_f32.lock());
        // The delivered payload round-trips through the codec on the
        // flat chunk partition: losslessness (not chunk boundaries) is
        // what keeps flat and hierarchical schedules bit-identical.
        self.codec_roundtrip_chunks(data, codec)?;
        self.core
            .traffic
            .record_allreduce_split(hierarchical_allreduce_send_bytes_parts(
                g,
                gpus_per_node,
                r,
                |parts, c| codec.encoded_len_f32(&data[chunk_range(n, parts, c)]),
            ));
        Ok(())
    }

    /// Passes every flat ring chunk of `data` through a real
    /// encode→decode round-trip in place. Lossless codecs make this a
    /// bit-exact no-op; anything else corrupts the payload visibly.
    fn codec_roundtrip_chunks(
        &self,
        data: &mut [f32],
        codec: &dyn WireCodec,
    ) -> Result<(), CommError> {
        let g = self.core.world;
        let n = data.len();
        let mut wire = Vec::new();
        let mut decoded: Vec<f32> = Vec::new();
        for c in 0..g {
            let range = chunk_range(n, g, c);
            wire.clear();
            codec.encode_f32(&data[range.clone()], &mut wire);
            if self.take_corrupt_frame() {
                corrupt_frame(&mut wire);
            }
            decoded.clear();
            if let Err(e) = codec.decode_f32(&wire, range.len(), &mut decoded) {
                return Err(self.codec_abort(self.rank, codec, e));
            }
            data[range].copy_from_slice(&decoded);
        }
        Ok(())
    }
}

/// RAII group-poisoning guard returned by [`Rank::abort_on_drop`].
///
/// While armed, dropping the guard aborts the whole group with the
/// configured reason — exactly what must happen when a rank unwinds (an
/// `?` early return, a panic) between collectives, because its peers
/// would otherwise block forever at their next barrier. Call
/// [`AbortOnDrop::disarm`] on the success path.
pub struct AbortOnDrop<'a> {
    rank: &'a Rank,
    reason: String,
    armed: bool,
}

impl AbortOnDrop<'_> {
    /// Defuses the guard: dropping it no longer aborts the group.
    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for AbortOnDrop<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.rank.abort(std::mem::take(&mut self.reason));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` on every rank of a fresh group, returning rank results.
    fn run_group<T: Send>(world: usize, f: impl Fn(Rank) -> T + Sync) -> Vec<T> {
        let ranks = CommGroup::create(world);
        let mut out: Vec<Option<T>> = (0..world).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for rank in ranks {
                let f = &f;
                handles.push(s.spawn(move || f(rank)));
            }
            for (i, h) in handles.into_iter().enumerate() {
                out[i] = Some(h.join().expect("rank thread panicked"));
            }
        });
        out.into_iter().map(Option::unwrap).collect()
    }

    #[test]
    fn f16_helpers_round_trip_known_values() {
        for &x in &[0.0f32, 1.0, -2.5, 65504.0, 6.1e-5, -0.125] {
            let h = f32_to_f16_bits(x);
            let back = f16_bits_to_f32(h);
            assert!((back - x).abs() <= x.abs() * 1e-3 + 1e-7, "{x} -> {back}");
        }
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1.0)), 1.0);
    }

    #[test]
    fn all_reduce_matches_serial_sum() {
        for world in [1usize, 2, 3, 4, 7, 8] {
            let n = 37;
            let results = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r * 100) as f32).collect();
                rank.all_reduce_sum(&mut data).unwrap();
                data
            });
            let expected: Vec<f32> = (0..n)
                .map(|i| (0..world).map(|r| (i + r * 100) as f32).sum())
                .collect();
            for (r, res) in results.iter().enumerate() {
                for (a, b) in res.iter().zip(&expected) {
                    assert!((a - b).abs() < 1e-3, "world {world} rank {r}");
                }
            }
        }
    }

    #[test]
    fn all_reduce_ranks_agree_exactly() {
        let results = run_group(5, |rank| {
            let r = rank.rank();
            let mut data: Vec<f32> = (0..23).map(|i| (i as f32 * 0.37) + r as f32).collect();
            rank.all_reduce_sum(&mut data).unwrap();
            data
        });
        for r in 1..5 {
            assert_eq!(results[0], results[r], "rank {r} diverged");
        }
    }

    #[test]
    fn all_reduce_short_buffer_smaller_than_world() {
        // n < G exercises empty chunks.
        let results = run_group(8, |rank| {
            let mut data = vec![rank.rank() as f32; 3];
            rank.all_reduce_sum(&mut data).unwrap();
            data
        });
        let expected = (0..8).sum::<usize>() as f32;
        for res in &results {
            assert!(res.iter().all(|&x| (x - expected).abs() < 1e-4));
        }
    }

    #[test]
    fn all_reduce_f16_approximates_sum() {
        let world = 4;
        let n = 64;
        let results = run_group(world, |rank| {
            let r = rank.rank();
            let mut data: Vec<f32> = (0..n).map(|i| 0.01 * (i as f32 + r as f32)).collect();
            rank.all_reduce_sum_f16(&mut data, 512.0).unwrap();
            data
        });
        let expected: Vec<f32> = (0..n)
            .map(|i| (0..world).map(|r| 0.01 * (i as f32 + r as f32)).sum())
            .collect();
        for res in &results {
            for (a, b) in res.iter().zip(&expected) {
                assert!((a - b).abs() < b.abs() * 0.01 + 1e-3, "{a} vs {b}");
            }
        }
        // All ranks agree bit-exactly after the gather phase.
        for r in 1..world {
            assert_eq!(results[0], results[r]);
        }
    }

    #[test]
    fn all_gather_u32_preserves_rank_order_and_varying_sizes() {
        let results = run_group(4, |rank| {
            let r = rank.rank() as u32;
            let local: Vec<u32> = (0..=r).map(|i| r * 10 + i).collect(); // size r+1
            rank.all_gather_u32(&local).unwrap()
        });
        let expected = vec![0u32, 10, 11, 20, 21, 22, 30, 31, 32, 33];
        for res in &results {
            assert_eq!(res, &expected);
        }
    }

    #[test]
    fn all_gather_f32_baseline() {
        let results = run_group(3, |rank| {
            let local = vec![rank.rank() as f32; 2];
            rank.all_gather_f32(&local).unwrap()
        });
        for res in &results {
            assert_eq!(res, &vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn all_gather_f16_compresses_but_preserves_values() {
        let results = run_group(2, |rank| {
            let local = vec![0.5 + rank.rank() as f32, -0.25];
            rank.all_gather_f16(&local, 256.0).unwrap()
        });
        for res in &results {
            assert!((res[0] - 0.5).abs() < 1e-3);
            assert!((res[2] - 1.5).abs() < 1e-3);
            assert!((res[1] + 0.25).abs() < 1e-3);
        }
    }

    #[test]
    fn scalar_reduce_deterministic() {
        let results = run_group(6, |rank| {
            rank.all_reduce_scalar_f64(rank.rank() as f64 + 0.5)
                .unwrap()
        });
        for res in &results {
            assert_eq!(*res, 18.0); // 0.5+1.5+...+5.5
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let results = run_group(4, |rank| {
            let mut data = if rank.rank() == 2 {
                vec![9.0f32, 8.0, 7.0]
            } else {
                vec![]
            };
            rank.broadcast_f32(&mut data, 2).unwrap();
            data
        });
        for res in &results {
            assert_eq!(res, &vec![9.0, 8.0, 7.0]);
        }
    }

    #[test]
    fn traffic_counts_ring_volume() {
        let world = 4;
        let n = 100usize;
        let results = run_group(world, |rank| {
            let mut data = vec![1.0f32; n];
            rank.reset_traffic().unwrap();
            rank.all_reduce_sum(&mut data).unwrap();
            rank.traffic()
        });
        // Ring: each rank sends 2(G−1) chunks of ~n/G floats.
        let expected = (2 * (world - 1) * n / world * 4 * world) as u64;
        let got = results[0].allreduce_bytes;
        assert!(
            (got as i64 - expected as i64).unsigned_abs() <= (world * world * 8) as u64,
            "got {got}, expected ~{expected}"
        );
        assert_eq!(results[0].allreduce_ops, 1);
    }

    #[test]
    fn traffic_f16_is_half_of_f32() {
        let world = 4;
        let n = 128usize; // divisible by world so chunks are even
        let f32_bytes = run_group(world, |rank| {
            let mut data = vec![1.0f32; n];
            rank.all_reduce_sum(&mut data).unwrap();
            rank.traffic().allreduce_bytes
        })[0];
        let f16_bytes = run_group(world, |rank| {
            let mut data = vec![1.0f32; n];
            rank.all_reduce_sum_f16(&mut data, 512.0).unwrap();
            rank.traffic().allreduce_bytes
        })[0];
        assert_eq!(f16_bytes * 2, f32_bytes);
    }

    #[test]
    fn repeated_collectives_do_not_deadlock() {
        let results = run_group(4, |rank| {
            let mut acc = 0.0f64;
            for i in 0..50 {
                let mut v = vec![i as f32; 8];
                rank.all_reduce_sum(&mut v).unwrap();
                let g = rank.all_gather_u32(&[rank.rank() as u32]).unwrap();
                acc += v[0] as f64 + g.len() as f64;
            }
            acc
        });
        for r in &results {
            assert_eq!(*r, results[0]);
        }
    }

    #[test]
    fn reduce_scatter_owned_chunk_is_fully_reduced() {
        for world in [1usize, 2, 4, 6] {
            let n = 25;
            let results = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i * (r + 1)) as f32).collect();
                let owned = rank.reduce_scatter_sum(&mut data).unwrap();
                (owned, data)
            });
            let sum_factor: f32 = (1..=world).map(|x| x as f32).sum();
            for (owned, data) in &results {
                for i in owned.clone() {
                    let expected = i as f32 * sum_factor;
                    assert!(
                        (data[i] - expected).abs() < 1e-3,
                        "world {world} idx {i}: {} vs {expected}",
                        data[i]
                    );
                }
            }
            // Owned chunks partition the buffer across ranks.
            let mut covered: Vec<usize> = results.iter().flat_map(|(o, _)| o.clone()).collect();
            covered.sort_unstable();
            covered.dedup();
            assert_eq!(covered.len(), n);
        }
    }

    #[test]
    fn hierarchical_allreduce_matches_flat() {
        for (world, per_node) in [(4usize, 2usize), (6, 2), (8, 4), (8, 3), (5, 2), (8, 8)] {
            let n = 33;
            let flat = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r * 10) as f32 * 0.5).collect();
                rank.all_reduce_sum(&mut data).unwrap();
                data
            });
            let hier = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r * 10) as f32 * 0.5).collect();
                rank.all_reduce_sum_hierarchical(&mut data, per_node)
                    .unwrap();
                data
            });
            for (w, h) in hier.iter().enumerate() {
                for i in 0..n {
                    assert!(
                        (flat[0][i] - h[i]).abs() < 1e-3,
                        "world {world}/{per_node} rank {w} idx {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn hierarchical_moves_fewer_leader_hops() {
        // With 8 ranks in 2 nodes, only the 2 leaders speak "inter-node";
        // traffic recorded is below the flat ring's for the same payload
        // per additional member.
        let n = 4096usize;
        let flat = run_group(8, |rank| {
            let mut data = vec![1.0f32; n];
            rank.all_reduce_sum(&mut data).unwrap();
            rank.traffic().allreduce_bytes
        })[0];
        let hier = run_group(8, |rank| {
            let mut data = vec![1.0f32; n];
            rank.all_reduce_sum_hierarchical(&mut data, 4).unwrap();
            rank.traffic().allreduce_bytes
        })[0];
        // Both are Θ(G·n); the point is correctness of accounting, and
        // that the leader ring is only 2 wide (2·(2−1)/2·n per leader).
        assert!(hier > 0 && flat > 0);
        let leader_ring = n as u64 * 4; // 2·(2−1)/2 · n · 4B
        assert!(hier as i64 - leader_ring as i64 > 0);
    }

    #[test]
    fn chunk_ranges_partition_buffer() {
        for n in [0usize, 1, 5, 17, 64] {
            for g in [1usize, 2, 3, 7, 16] {
                let mut covered = 0;
                for c in 0..g {
                    let r = chunk_range(n, g, c);
                    assert_eq!(r.start, covered);
                    covered = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn all_reduce_empty_buffer_is_noop() {
        // n == 0: every chunk is empty; the ring must still complete
        // (all barriers hit) and leave the buffer empty on every rank.
        for world in [1usize, 2, 5] {
            let results = run_group(world, |rank| {
                let mut data: Vec<f32> = Vec::new();
                rank.all_reduce_sum(&mut data).unwrap();
                let mut data16: Vec<f32> = Vec::new();
                rank.all_reduce_sum_f16(&mut data16, 512.0).unwrap();
                (data.len(), data16.len())
            });
            for r in &results {
                assert_eq!(*r, (0, 0));
            }
        }
    }

    #[test]
    fn all_reduce_f16_short_buffer_smaller_than_world() {
        // n < G on the compressed ring: most chunks are empty.
        let world = 8;
        let results = run_group(world, |rank| {
            let mut data = vec![rank.rank() as f32; 3];
            rank.all_reduce_sum_f16(&mut data, 256.0).unwrap();
            data
        });
        let expected = (0..8).sum::<usize>() as f32;
        for res in &results {
            assert!(
                res.iter().all(|&x| (x - expected).abs() < expected * 0.01),
                "{res:?}"
            );
        }
        for r in 1..world {
            assert_eq!(results[0], results[r], "rank {r} diverged");
        }
    }

    #[test]
    fn all_reduce_non_divisible_chunks_exact_and_compressed() {
        // n deliberately not a multiple of G: chunk sizes differ by one
        // and both rings must still sum correctly on every rank.
        for (world, n) in [(4usize, 7usize), (8, 13), (3, 100), (7, 95)] {
            let exact = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r) as f32).collect();
                rank.all_reduce_sum(&mut data).unwrap();
                data
            });
            let expected: Vec<f32> = (0..n)
                .map(|i| (0..world).map(|r| (i + r) as f32).sum())
                .collect();
            for res in &exact {
                for (a, b) in res.iter().zip(&expected) {
                    assert!((a - b).abs() < 1e-3, "world {world} n {n}: {a} vs {b}");
                }
            }
            let compressed = run_group(world, |rank| {
                let r = rank.rank();
                let mut data: Vec<f32> = (0..n).map(|i| (i + r) as f32).collect();
                rank.all_reduce_sum_f16(&mut data, 16.0).unwrap();
                data
            });
            for res in &compressed {
                for (a, b) in res.iter().zip(&expected) {
                    assert!(
                        (a - b).abs() <= b.abs() * 0.01 + 1e-2,
                        "world {world} n {n}: {a} vs {b}"
                    );
                }
            }
            for r in 1..world {
                assert_eq!(compressed[0], compressed[r]);
            }
        }
    }

    #[test]
    fn all_gather_empty_slices() {
        // Every rank empty, and a mix of empty/non-empty contributions
        // (the `equivalence_with_empty_contributions` scenario at the
        // comm layer).
        let all_empty = run_group(3, |rank| {
            let u = rank.all_gather_u32(&[]).unwrap();
            let f = rank.all_gather_f32(&[]).unwrap();
            let h = rank.all_gather_f16(&[], 512.0).unwrap();
            (u.len(), f.len(), h.len())
        });
        for r in &all_empty {
            assert_eq!(*r, (0, 0, 0));
        }

        let mixed = run_group(3, |rank| {
            let local: Vec<u32> = if rank.rank() == 1 {
                vec![]
            } else {
                vec![rank.rank() as u32 * 10]
            };
            rank.all_gather_u32(&local).unwrap()
        });
        for res in &mixed {
            assert_eq!(res, &vec![0u32, 20]);
        }
    }

    #[test]
    fn gather_into_variants_match_and_reuse_capacity() {
        let results = run_group(4, |rank| {
            let r = rank.rank() as u32;
            let local: Vec<u32> = (0..=r).map(|i| r * 10 + i).collect();
            let rows: Vec<f32> = (0..3).map(|i| (r * 10 + i) as f32).collect();
            let mut u = Vec::new();
            let mut f = Vec::new();
            let mut h = Vec::new();
            // Repeated calls into the same buffers must not grow past
            // the first call's capacity (zero steady-state allocation).
            rank.all_gather_u32_into(&local, &mut u).unwrap();
            rank.all_gather_f32_into(&rows, &mut f).unwrap();
            rank.all_gather_f16_into(&rows, 512.0, &mut h).unwrap();
            let (cu, cf, ch) = (u.capacity(), f.capacity(), h.capacity());
            for _ in 0..5 {
                rank.all_gather_u32_into(&local, &mut u).unwrap();
                rank.all_gather_f32_into(&rows, &mut f).unwrap();
                rank.all_gather_f16_into(&rows, 512.0, &mut h).unwrap();
            }
            assert_eq!(u.capacity(), cu);
            assert_eq!(f.capacity(), cf);
            assert_eq!(h.capacity(), ch);
            (u.clone(), rank.all_gather_u32(&local).unwrap(), f, h)
        });
        for (into_u, ret_u, f, h) in &results {
            assert_eq!(into_u, ret_u, "into/returning variants disagree");
            assert_eq!(f.len(), 12);
            assert_eq!(h.len(), 12);
            for (a, b) in f.iter().zip(h) {
                assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-3);
            }
        }
    }

    #[test]
    fn ring_send_bytes_helper_matches_recorder_exactly() {
        // The analytic per-rank helper must reproduce the traffic
        // recorder to the byte, including non-divisible chunk sizes.
        for (world, n) in [
            (2usize, 10usize),
            (4, 7),
            (8, 13),
            (8, 4096),
            (5, 0),
            (3, 2),
        ] {
            for &elem in &[4u64, 2] {
                let measured = run_group(world, |rank| {
                    rank.reset_traffic().unwrap();
                    let mut data = vec![1.0f32; n];
                    if elem == 4 {
                        rank.all_reduce_sum(&mut data).unwrap();
                    } else {
                        rank.all_reduce_sum_f16(&mut data, 512.0).unwrap();
                    }
                    rank.traffic().allreduce_bytes
                })[0];
                let analytic: u64 = (0..world)
                    .map(|r| ring_allreduce_send_bytes(n, world, r, elem))
                    .sum();
                assert_eq!(
                    analytic, measured,
                    "world {world} n {n} elem {elem}: analytic {analytic} vs measured {measured}"
                );
            }
        }
    }

    #[test]
    fn abort_wakes_blocked_barrier_waiters_with_failed_rank() {
        let results = run_group(3, |rank| {
            if rank.rank() == 2 {
                rank.abort("simulated failure");
                Ok(())
            } else {
                rank.barrier()
            }
        });
        for (r, res) in results.iter().enumerate() {
            if r == 2 {
                assert_eq!(*res, Ok(()));
            } else {
                let err = res.clone().unwrap_err();
                assert_eq!(err.failed_rank(), 2);
                assert_eq!(err.reason(), "simulated failure");
            }
        }
    }

    #[test]
    fn collectives_error_after_peer_abort() {
        let results = run_group(4, |rank| {
            if rank.rank() == 1 {
                rank.abort("rank 1 died");
                return Vec::new();
            }
            let mut errs = Vec::new();
            let mut data = vec![1.0f32; 8];
            errs.push(rank.all_reduce_sum(&mut data).unwrap_err());
            errs.push(rank.all_gather_u32(&[7]).unwrap_err());
            errs.push(rank.all_reduce_scalar_f64(1.0).unwrap_err());
            errs.push(rank.barrier().unwrap_err());
            errs
        });
        for (r, errs) in results.iter().enumerate() {
            if r == 1 {
                continue;
            }
            assert_eq!(errs.len(), 4);
            for e in errs {
                assert_eq!(e.failed_rank(), 1, "rank {r} misattributed: {e}");
            }
        }
    }

    #[test]
    fn abort_on_drop_poisons_group_on_early_return() {
        let results = run_group(2, |rank| {
            if rank.rank() == 0 {
                let _guard = rank.abort_on_drop("rank 0 unwound");
                // Early return drops the armed guard, as a `?` would.
                return Ok(());
            }
            rank.barrier()
        });
        assert_eq!(results[0], Ok(()));
        let err = results[1].clone().unwrap_err();
        assert_eq!(err.failed_rank(), 0);
        assert_eq!(err.reason(), "rank 0 unwound");
    }

    #[test]
    fn disarmed_guard_does_not_poison_group() {
        let results = run_group(3, |rank| {
            let guard = rank.abort_on_drop("should never fire");
            let mut data = vec![rank.rank() as f32; 4];
            let res = rank.all_reduce_sum(&mut data);
            guard.disarm();
            res
        });
        for res in results {
            assert_eq!(res, Ok(()));
        }
    }

    #[test]
    fn first_failure_wins_attribution() {
        let results = run_group(3, |rank| match rank.rank() {
            0 => {
                rank.abort("root cause");
                rank.check_abort()
            }
            1 => {
                // Deterministically lose the race: only abort after
                // rank 0's poison is already visible.
                while rank.check_abort().is_ok() {
                    std::thread::yield_now();
                }
                rank.abort("echo failure");
                rank.check_abort()
            }
            _ => {
                while rank.check_abort().is_ok() {
                    std::thread::yield_now();
                }
                rank.check_abort()
            }
        });
        for res in results {
            let err = res.unwrap_err();
            assert_eq!(err.failed_rank(), 0);
            assert_eq!(err.reason(), "root cause");
        }
    }

    #[test]
    fn poisoned_group_stays_poisoned() {
        let results = run_group(2, |rank| {
            if rank.rank() == 0 {
                rank.abort("permanent");
            } else {
                while rank.check_abort().is_ok() {
                    std::thread::yield_now();
                }
            }
            // Every subsequent collective fails immediately.
            let a = rank.barrier().unwrap_err();
            let b = rank.all_gather_f32(&[1.0]).unwrap_err();
            (a, b)
        });
        for (a, b) in results {
            assert_eq!(a.failed_rank(), 0);
            assert_eq!(b, a);
        }
    }

    /// Like [`run_group`] but with a barrier deadline configured.
    fn run_group_deadline<T: Send>(
        world: usize,
        deadline: BarrierDeadline,
        f: impl Fn(Rank) -> T + Sync,
    ) -> Vec<T> {
        let ranks = CommGroup::create_full(world, world, 0, Some(deadline));
        let mut out: Vec<Option<T>> = (0..world).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for rank in ranks {
                let f = &f;
                handles.push(s.spawn(move || f(rank)));
            }
            for (i, h) in handles.into_iter().enumerate() {
                out[i] = Some(h.join().expect("rank thread panicked"));
            }
        });
        out.into_iter().map(Option::unwrap).collect()
    }

    #[test]
    fn silent_peer_times_out_instead_of_hanging() {
        let deadline = BarrierDeadline {
            timeout: std::time::Duration::from_millis(5),
            retries: 2,
        };
        let results = run_group_deadline(3, deadline, |rank| {
            if rank.rank() == 2 {
                // Go silent: never call a collective, never abort.
                // Wait for the poison so the thread still joins.
                while rank.check_abort().is_ok() {
                    std::thread::yield_now();
                }
                return rank.check_abort();
            }
            rank.barrier()
        });
        // Total budget: 5 + 10 + 20 ms slices → waited_ps ≥ 35e9.
        for (r, res) in results.iter().enumerate() {
            let err = res.clone().unwrap_err();
            match err {
                CommError::Timeout { rank, waited_ps } => {
                    assert!(rank < 2, "a waiter (not the silent rank) attributes");
                    assert!(
                        waited_ps >= 35_000_000_000,
                        "rank {r}: waited_ps {waited_ps} below the slice budget"
                    );
                }
                other => panic!("rank {r}: expected Timeout, got {other}"),
            }
        }
    }

    #[test]
    fn deadline_is_inert_when_peers_arrive() {
        let deadline = BarrierDeadline {
            timeout: std::time::Duration::from_millis(1),
            retries: 0,
        };
        let sums = run_group_deadline(4, deadline, |rank| {
            let mut v = vec![rank.rank() as f32; 8];
            for _ in 0..50 {
                rank.all_reduce_sum(&mut v).expect("no one is silent");
                v.iter_mut().for_each(|x| *x /= 4.0);
            }
            v[0]
        });
        assert!(sums.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn explicit_abort_beats_pending_timeout_attribution() {
        let deadline = BarrierDeadline {
            timeout: std::time::Duration::from_millis(50),
            retries: 5,
        };
        let results = run_group_deadline(2, deadline, |rank| {
            if rank.rank() == 1 {
                // Let rank 0 park first, then announce the failure —
                // well inside the first 50 ms slice.
                std::thread::sleep(std::time::Duration::from_millis(2));
                rank.abort("announced failure");
                return rank.check_abort();
            }
            rank.barrier()
        });
        let err = results[0].clone().unwrap_err();
        assert_eq!(err, CommError::abort(1, "announced failure"));
    }

    #[test]
    fn corrupt_frame_on_allgather_names_the_sender_on_every_rank() {
        use crate::codec::WireCodecId;
        let results = run_group(3, |rank| {
            if rank.rank() == 1 {
                rank.corrupt_next_codec_frame();
            }
            let local = vec![rank.rank() as u32 * 100; 16];
            let mut out = Vec::new();
            rank.all_gather_u32_codec_into(
                &local,
                WireCodecId::Lossless
                    .index_codec()
                    .expect("lossless has an index codec"),
                &mut out,
            )
        });
        for (r, res) in results.iter().enumerate() {
            let err = res.clone().unwrap_err();
            assert_eq!(
                err.failed_rank(),
                1,
                "rank {r} must attribute the corrupt frame to its sender: {err}"
            );
            assert!(err.reason().contains("decode failed"), "{err}");
        }
    }

    #[test]
    fn corrupt_frame_on_allreduce_codec_poisons_with_sender() {
        use crate::codec::WireCodecId;
        let results = run_group(4, |rank| {
            if rank.rank() == 2 {
                rank.corrupt_next_codec_frame();
            }
            let mut data = vec![1.5f32; 32];
            // The damaged round-trip is local to rank 2, which fails
            // mid-collective; peers observe the poison no later than
            // their next barrier crossing.
            rank.all_reduce_sum_codec(
                &mut data,
                WireCodecId::Lossless
                    .grad_codec()
                    .expect("lossless has a grad codec"),
            )
            .and_then(|()| rank.barrier())
        });
        for (r, res) in results.iter().enumerate() {
            let err = res.clone().unwrap_err();
            assert_eq!(err.failed_rank(), 2, "rank {r}: {err}");
        }
    }

    #[test]
    fn corrupt_latch_is_one_shot() {
        use crate::codec::WireCodecId;
        let results = run_group(2, |rank| {
            let codec = WireCodecId::Lossless
                .index_codec()
                .expect("lossless has an index codec");
            let mut out = Vec::new();
            if rank.rank() == 0 {
                rank.corrupt_next_codec_frame();
            }
            let first = rank.all_gather_u32_codec_into(&[1, 2, 3], codec, &mut out);
            (first, rank.check_abort())
        });
        for (first, after) in &results {
            assert!(first.is_err(), "armed frame must fail the collective");
            assert!(after.is_err(), "group stays poisoned");
        }
        // The latch itself is consumed: a fresh group with no arming
        // round-trips the identical payload cleanly.
        let clean = run_group(2, |rank| {
            let mut out = Vec::new();
            rank.all_gather_u32_codec_into(
                &[1, 2, 3],
                WireCodecId::Lossless
                    .index_codec()
                    .expect("lossless has an index codec"),
                &mut out,
            )
            .map(|()| out)
        });
        for res in clean {
            assert_eq!(res.unwrap(), vec![1, 2, 3, 1, 2, 3]);
        }
    }

    #[test]
    fn wait_tracking_off_reads_zero() {
        let waited = run_group(2, |rank| {
            rank.barrier().unwrap();
            rank.take_barrier_wait_ns()
        });
        assert_eq!(waited, vec![0, 0]);
    }

    #[test]
    fn wait_tracking_measures_a_slow_peer() {
        let delay = std::time::Duration::from_millis(20);
        let waited = run_group(2, |rank| {
            let mut rank = rank;
            rank.enable_wait_tracking();
            if rank.rank() == 1 {
                std::thread::sleep(delay);
            }
            rank.barrier().unwrap();
            rank.take_barrier_wait_ns()
        });
        // Rank 0 parked for roughly the peer's sleep; the sleeper itself
        // barely waits. take() drains: a second read must be zero.
        assert!(
            waited[0] >= delay.as_nanos() as u64 / 2,
            "rank 0 waited only {} ns",
            waited[0]
        );
        assert!(waited[0] > waited[1]);
        let drained = run_group(1, |rank| {
            let mut rank = rank;
            rank.enable_wait_tracking();
            rank.barrier().unwrap();
            let first = rank.take_barrier_wait_ns();
            (first, rank.take_barrier_wait_ns())
        });
        assert_eq!(drained[0].1, 0, "counter must reset on take");
    }

    /// Like `run_group` but over an explicit-topology group.
    fn run_group_topo<T: Send>(
        world: usize,
        gpus_per_node: usize,
        f: impl Fn(Rank) -> T + Sync,
    ) -> Vec<T> {
        crate::pool::run_ranks(CommGroup::create_with_topology(world, gpus_per_node), &f)
    }

    #[test]
    fn hierarchical_gpn_zero_is_typed_error_and_recoverable() {
        // Satellite bugfix: an invalid topology must be a typed
        // CommError, not a panic — and must NOT poison the group, so
        // the same ranks can go on to run valid collectives.
        let results = run_group(4, |rank| {
            let mut data = vec![rank.rank() as f32; 5];
            let err = rank.all_reduce_sum_hierarchical(&mut data, 0).unwrap_err();
            assert_eq!(err.failed_rank(), rank.rank());
            assert!(err.reason().contains("gpus_per_node"), "{}", err.reason());
            // Group still healthy: a valid collective succeeds.
            rank.all_reduce_sum_hierarchical(&mut data, 2).unwrap();
            data[0]
        });
        for r in &results {
            assert_eq!(*r, 6.0); // 0+1+2+3
        }
    }

    #[test]
    fn hierarchical_matches_flat_bit_exactly() {
        // Canonical ascending-rank arithmetic makes the hierarchical
        // schedule bit-identical to the flat ring — including ragged
        // last nodes — not merely close.
        for (world, per_node) in [(4usize, 2usize), (6, 2), (8, 4), (8, 3), (5, 2), (9, 4)] {
            let n = 33;
            let mk =
                |r: usize| -> Vec<f32> { (0..n).map(|i| (i + r * 10) as f32 * 0.37).collect() };
            let flat = run_group(world, |rank| {
                let mut data = mk(rank.rank());
                rank.all_reduce_sum(&mut data).unwrap();
                data
            });
            let hier = run_group(world, |rank| {
                let mut data = mk(rank.rank());
                rank.all_reduce_sum_hierarchical(&mut data, per_node)
                    .unwrap();
                data
            });
            for r in 0..world {
                assert_eq!(flat[r], hier[r], "world {world}/{per_node} rank {r}");
            }
        }
    }

    #[test]
    fn hierarchical_tier_bytes_analytic_match_recorder_exactly() {
        // Satellite bugfix: per-tier analytic == recorded, to the byte,
        // separately for intra and inter — divisible and ragged worlds.
        for (world, per_node) in [
            (4usize, 2usize), // divisible
            (8, 4),           // divisible
            (8, 2),           // divisible, 4 nodes
            (7, 3),           // ragged last node of 1
            (5, 2),           // ragged last node of 1
            (9, 4),           // ragged last node of 1
            (11, 4),          // ragged last node of 3
        ] {
            for n in [0usize, 33, 128] {
                let snap = run_group(world, |rank| {
                    let mut data = vec![1.0f32; n];
                    rank.reset_traffic().unwrap();
                    rank.all_reduce_sum_hierarchical(&mut data, per_node)
                        .unwrap();
                    rank.traffic()
                })[0];
                let mut analytic = TierBytes::default();
                for r in 0..world {
                    analytic += hierarchical_allreduce_send_bytes(n, world, per_node, r, 4);
                }
                assert_eq!(
                    (snap.allreduce_intra_bytes, snap.allreduce_inter_bytes),
                    (analytic.intra, analytic.inter),
                    "world {world}/{per_node} n {n}"
                );
                // Only leaders touch the inter tier; with >1 node and
                // a non-empty payload there must be inter traffic.
                if n > 0 && world > per_node {
                    assert!(snap.allreduce_inter_bytes > 0);
                }
            }
        }
    }

    #[test]
    fn hierarchical_f16_matches_flat_f16_bit_exactly_and_accounts_per_tier() {
        // Satellite bugfix: the two-tier schedule must carry the f16
        // wire format — bit-identical to the flat f16 ring (the per-hop
        // quantisation order is canonical, not topological), with
        // per-tier analytic bytes == recorded at 2 bytes per element.
        let scale = 64.0f32;
        for (world, per_node) in [(4usize, 2usize), (6, 2), (8, 4), (5, 2), (9, 4)] {
            let n = 33;
            let mk =
                |r: usize| -> Vec<f32> { (0..n).map(|i| (i + r * 10) as f32 * 0.37).collect() };
            let flat = run_group(world, |rank| {
                let mut data = mk(rank.rank());
                rank.all_reduce_sum_f16(&mut data, scale).unwrap();
                data
            });
            let hier = run_group(world, |rank| {
                let mut data = mk(rank.rank());
                rank.all_reduce_sum_f16_hierarchical(&mut data, scale, per_node)
                    .unwrap();
                data
            });
            for r in 0..world {
                assert_eq!(flat[r], hier[r], "world {world}/{per_node} rank {r}");
            }
            let snap = run_group(world, |rank| {
                let mut data = mk(rank.rank());
                rank.reset_traffic().unwrap();
                rank.all_reduce_sum_f16_hierarchical(&mut data, scale, per_node)
                    .unwrap();
                rank.traffic()
            })[0];
            let mut analytic = TierBytes::default();
            for r in 0..world {
                analytic += hierarchical_allreduce_send_bytes(n, world, per_node, r, 2);
            }
            assert_eq!(
                (snap.allreduce_intra_bytes, snap.allreduce_inter_bytes),
                (analytic.intra, analytic.inter),
                "world {world}/{per_node}"
            );
            assert!(
                snap.allreduce_inter_bytes > 0,
                "leaders must pay the IB tier"
            );
        }
        // Invalid topology: same recoverable typed error as the f32 path.
        let results = run_group(2, |rank| {
            let mut data = vec![rank.rank() as f32; 4];
            let err = rank
                .all_reduce_sum_f16_hierarchical(&mut data, scale, 0)
                .unwrap_err();
            assert!(err.reason().contains("gpus_per_node"), "{}", err.reason());
            rank.all_reduce_sum_f16_hierarchical(&mut data, scale, 1)
                .unwrap();
            data[0]
        });
        assert_eq!(results, vec![1.0, 1.0]);
    }

    #[test]
    fn flat_ring_tier_split_follows_group_topology() {
        // A flat allreduce on a multi-node group charges each rank's
        // ring bytes to the tier of its r → r+1 link; node-boundary
        // ranks (and the wrap link) are inter.
        let (world, per_node, n) = (8usize, 4usize, 100usize);
        let snap = run_group_topo(world, per_node, |rank| {
            let mut data = vec![1.0f32; n];
            rank.all_reduce_sum(&mut data).unwrap();
            rank.traffic()
        })[0];
        let mut expect = TierBytes::default();
        for r in 0..world {
            let bytes = ring_allreduce_send_bytes(n, world, r, 4);
            match ring_send_tier(world, per_node, r) {
                Tier::Intra => expect.intra += bytes,
                Tier::Inter => expect.inter += bytes,
            }
        }
        assert_eq!(snap.allreduce_intra_bytes, expect.intra);
        assert_eq!(snap.allreduce_inter_bytes, expect.inter);
        // Ranks 3 and 7 cross node boundaries: exactly 2 of 8 ring
        // links are inter.
        assert!(expect.inter > 0 && expect.intra > expect.inter);
    }

    #[test]
    fn gather_and_scalar_tier_split_follows_group_topology() {
        let (world, per_node) = (5usize, 2usize); // nodes {0,1},{2,3},{4}
        let snap = run_group_topo(world, per_node, |rank| {
            rank.all_gather_f32(&[1.0f32; 3]).unwrap();
            rank.all_reduce_scalar_f64(1.0).unwrap();
            rank.traffic()
        })[0];
        let mut ag = TierBytes::default();
        let mut sc = TierBytes::default();
        for r in 0..world {
            ag += peer_exchange_tier_bytes(world, per_node, r, 12);
            sc += peer_exchange_tier_bytes(world, per_node, r, 8);
        }
        assert_eq!(snap.allgather_intra_bytes, ag.intra);
        assert_eq!(snap.allgather_inter_bytes, ag.inter);
        assert_eq!(snap.allreduce_intra_bytes, sc.intra);
        assert_eq!(snap.allreduce_inter_bytes, sc.inter);
        // Totals stay what the single-tier contract always said.
        assert_eq!(snap.allgather_bytes, (world * 3 * 4 * (world - 1)) as u64);
        assert_eq!(snap.allreduce_bytes, (world * 8 * (world - 1)) as u64);
    }

    #[test]
    fn reduce_scatter_charges_rs_half_of_ring() {
        let (world, n) = (4usize, 25usize);
        let snap = run_group(world, |rank| {
            let mut data = vec![1.0f32; n];
            rank.reduce_scatter_sum(&mut data).unwrap();
            rank.traffic()
        })[0];
        let expect: u64 = (0..world)
            .map(|r| ring_reduce_scatter_send_elems(n, world, r) * 4)
            .sum();
        assert_eq!(snap.allreduce_bytes, expect);
    }

    #[test]
    fn pooled_group_bounds_concurrency_and_matches_unpooled() {
        // World 16 over 2 run slots: results bit-match the ungated
        // group and the pool cap is never exceeded.
        let (world, per_node, cap, n) = (16usize, 4usize, 2usize, 41usize);
        let ranks = CommGroup::create_pooled(world, per_node, cap);
        let gate = ranks[0].run_gate().expect("pooled group has a gate");
        let body = |rank: Rank| {
            let mut flat: Vec<f32> = (0..n).map(|i| (i * (rank.rank() + 1)) as f32).collect();
            let mut hier = flat.clone();
            rank.all_reduce_sum(&mut flat).unwrap();
            rank.all_reduce_sum_hierarchical(&mut hier, rank.gpus_per_node())
                .unwrap();
            assert_eq!(flat, hier);
            flat
        };
        let pooled = crate::pool::run_ranks(ranks, body);
        assert!(
            gate.peak_running() <= cap,
            "pool bound violated: peak {} > cap {cap}",
            gate.peak_running()
        );
        assert_eq!(gate.running(), 0, "all slots returned after the run");
        let unpooled = run_group(world, body);
        assert_eq!(pooled, unpooled);
    }

    #[test]
    fn killing_a_node_leader_poisons_both_tiers_within_watchdog() {
        // Satellite: rank 4 is the leader of node 1 at gpn=4. Its death
        // mid-schedule must fail every survivor on both tiers (members
        // of its own node and leaders of other nodes alike) instead of
        // deadlocking the leader ring. Watchdog-wrapped: a regression
        // hangs the detached thread, not the harness.
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let results = run_group_topo(16, 4, |rank| -> Result<(), CommError> {
                if rank.rank() == 4 {
                    rank.abort("leader of node 1 killed");
                    return Ok(());
                }
                let mut data = vec![1.0f32; 64];
                loop {
                    // Survivors keep issuing hierarchical collectives
                    // until the poison lands (at most one rendezvous).
                    rank.all_reduce_sum_hierarchical(&mut data, 4)?;
                }
            });
            let _ = tx.send(results);
        });
        let results = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("watchdog expired: leader kill deadlocked the group");
        for (r, res) in results.iter().enumerate() {
            if r == 4 {
                assert_eq!(*res, Ok(()));
            } else {
                let err = res.clone().unwrap_err();
                assert_eq!(err.failed_rank(), 4, "rank {r} misattributed the kill");
                assert!(err.reason().contains("leader of node 1"));
            }
        }
    }

    #[test]
    fn tier_helpers_cover_edges() {
        // Single node: every ring link intra, no peer-exchange inter.
        for r in 0..4 {
            assert_eq!(ring_send_tier(4, 4, r), Tier::Intra);
            assert_eq!(ring_send_tier(4, 8, r), Tier::Intra);
        }
        // Two nodes of 2: links 1→2 and 3→0 cross.
        assert_eq!(ring_send_tier(4, 2, 0), Tier::Intra);
        assert_eq!(ring_send_tier(4, 2, 1), Tier::Inter);
        assert_eq!(ring_send_tier(4, 2, 2), Tier::Intra);
        assert_eq!(ring_send_tier(4, 2, 3), Tier::Inter);
        // Singleton world: no peers, no bytes.
        assert_eq!(peer_exchange_tier_bytes(1, 1, 0, 100), TierBytes::default());
        assert_eq!(
            hierarchical_allreduce_send_bytes(64, 1, 1, 0, 4),
            TierBytes::default()
        );
        // One-node fallback is the flat ring, all intra.
        let tb = hierarchical_allreduce_send_bytes(64, 4, 8, 1, 4);
        assert_eq!(tb.intra, ring_allreduce_send_bytes(64, 4, 1, 4));
        assert_eq!(tb.inter, 0);
        // Ragged singleton last node: its leader pays no intra bytes
        // beyond nothing (m == 1) but full inter ring bytes.
        let tb = hierarchical_allreduce_send_bytes(64, 5, 2, 4, 4);
        assert_eq!(tb.intra, 0);
        assert_eq!(tb.inter, ring_allreduce_send_bytes(64, 3, 2, 4));
    }
}
