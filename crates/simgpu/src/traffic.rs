//! Communication traffic accounting.
//!
//! Every collective in [`crate::comm`] records the bytes it moves, so the
//! paper's central communication-complexity claims — baseline ALLGATHER
//! moves `Θ(G·K·D)` while the unique scheme moves `Θ(G·K + Ug·D)` — are
//! *asserted against measured wire bytes*, not derived on paper.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters for one communicator group.
#[derive(Debug, Default)]
pub struct TrafficRecorder {
    allreduce_bytes: AtomicU64,
    allreduce_ops: AtomicU64,
    allgather_bytes: AtomicU64,
    allgather_ops: AtomicU64,
    broadcast_bytes: AtomicU64,
    broadcast_ops: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Total bytes moved by ALLREDUCE calls (sum over all ranks' sends).
    pub allreduce_bytes: u64,
    /// Number of ALLREDUCE invocations (counted once per group call).
    pub allreduce_ops: u64,
    /// Total bytes moved by ALLGATHER calls.
    pub allgather_bytes: u64,
    /// Number of ALLGATHER invocations.
    pub allgather_ops: u64,
    /// Total bytes moved by broadcasts.
    pub broadcast_bytes: u64,
    /// Number of broadcast invocations.
    pub broadcast_ops: u64,
}

impl TrafficSnapshot {
    /// Total bytes across all collective kinds.
    pub fn total_bytes(&self) -> u64 {
        self.allreduce_bytes + self.allgather_bytes + self.broadcast_bytes
    }
}

impl TrafficRecorder {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one rank's sends within an ALLREDUCE.
    pub fn record_allreduce(&self, bytes: u64) {
        self.allreduce_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts one group-wide ALLREDUCE invocation.
    pub fn count_allreduce_op(&self) {
        self.allreduce_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one rank's sends within an ALLGATHER.
    pub fn record_allgather(&self, bytes: u64) {
        self.allgather_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts one group-wide ALLGATHER invocation.
    pub fn count_allgather_op(&self) {
        self.allgather_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one rank's sends within a broadcast.
    pub fn record_broadcast(&self, bytes: u64) {
        self.broadcast_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Counts one group-wide broadcast invocation.
    pub fn count_broadcast_op(&self) {
        self.broadcast_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            allreduce_bytes: self.allreduce_bytes.load(Ordering::Relaxed),
            allreduce_ops: self.allreduce_ops.load(Ordering::Relaxed),
            allgather_bytes: self.allgather_bytes.load(Ordering::Relaxed),
            allgather_ops: self.allgather_ops.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast_bytes.load(Ordering::Relaxed),
            broadcast_ops: self.broadcast_ops.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.allreduce_bytes.store(0, Ordering::Relaxed);
        self.allreduce_ops.store(0, Ordering::Relaxed);
        self.allgather_bytes.store(0, Ordering::Relaxed);
        self.allgather_ops.store(0, Ordering::Relaxed);
        self.broadcast_bytes.store(0, Ordering::Relaxed);
        self.broadcast_ops.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let t = TrafficRecorder::new();
        t.record_allreduce(100);
        t.record_allreduce(50);
        t.count_allreduce_op();
        t.record_allgather(7);
        t.count_allgather_op();
        t.record_broadcast(3);
        let s = t.snapshot();
        assert_eq!(s.allreduce_bytes, 150);
        assert_eq!(s.allreduce_ops, 1);
        assert_eq!(s.allgather_bytes, 7);
        assert_eq!(s.broadcast_bytes, 3);
        assert_eq!(s.total_bytes(), 160);
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = TrafficRecorder::new();
        t.record_allreduce(5);
        t.reset();
        assert_eq!(t.snapshot(), TrafficSnapshot::default());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = TrafficRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.record_allreduce(1);
                    }
                });
            }
        });
        assert_eq!(t.snapshot().allreduce_bytes, 8000);
    }
}
