//! Communication traffic accounting, split by interconnect tier.
//!
//! Every collective in [`crate::comm`] records the bytes it moves, so the
//! paper's central communication-complexity claims — baseline ALLGATHER
//! moves `Θ(G·K·D)` while the unique scheme moves `Θ(G·K + Ug·D)` — are
//! *asserted against measured wire bytes*, not derived on paper.
//!
//! The paper's cluster is two-tier (PCIe within a node, Infiniband FDR
//! between nodes — Table II), and the hierarchical allreduce of §V-C
//! moves very different volumes over each tier. Counters are therefore
//! kept per [`Tier`]; the legacy flat totals in [`TrafficSnapshot`]
//! are exact sums of the two buckets, so single-tier reconciliation
//! contracts keep holding unchanged.

use std::sync::atomic::{AtomicU64, Ordering};

/// Interconnect tier a send traverses.
///
/// On the paper's Titan X cluster [`Intra`](Tier::Intra) is PCIe
/// (32 GB/s bidirectional) and [`Inter`](Tier::Inter) is Infiniband FDR
/// (15 GB/s bidirectional); see `HardwareConfig::titan_x_cluster`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Both endpoints live on the same node.
    Intra,
    /// Endpoints live on different nodes.
    Inter,
}

/// Byte volume split by tier. Returned by the analytic schedule helpers
/// in [`crate::comm`] and mirrored by the recorder buckets, so
/// "analytic == recorded" can be asserted per tier, exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TierBytes {
    /// Bytes sent over intra-node links.
    pub intra: u64,
    /// Bytes sent over inter-node links.
    pub inter: u64,
}

impl TierBytes {
    /// Sum of both tiers.
    pub fn total(&self) -> u64 {
        self.intra + self.inter
    }
}

impl std::ops::Add for TierBytes {
    type Output = TierBytes;
    fn add(self, rhs: TierBytes) -> TierBytes {
        TierBytes {
            intra: self.intra + rhs.intra,
            inter: self.inter + rhs.inter,
        }
    }
}

impl std::ops::AddAssign for TierBytes {
    fn add_assign(&mut self, rhs: TierBytes) {
        self.intra += rhs.intra;
        self.inter += rhs.inter;
    }
}

/// Shared atomic counters for one communicator group.
#[derive(Debug, Default)]
pub struct TrafficRecorder {
    allreduce_intra_bytes: AtomicU64,
    allreduce_inter_bytes: AtomicU64,
    allreduce_ops: AtomicU64,
    allgather_intra_bytes: AtomicU64,
    allgather_inter_bytes: AtomicU64,
    allgather_ops: AtomicU64,
    broadcast_intra_bytes: AtomicU64,
    broadcast_inter_bytes: AtomicU64,
    broadcast_ops: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Total bytes moved by ALLREDUCE calls (sum over all ranks' sends,
    /// both tiers; always `allreduce_intra_bytes + allreduce_inter_bytes`).
    pub allreduce_bytes: u64,
    /// ALLREDUCE bytes over intra-node links.
    pub allreduce_intra_bytes: u64,
    /// ALLREDUCE bytes over inter-node links.
    pub allreduce_inter_bytes: u64,
    /// Number of ALLREDUCE invocations (counted once per group call).
    pub allreduce_ops: u64,
    /// Total bytes moved by ALLGATHER calls (both tiers).
    pub allgather_bytes: u64,
    /// ALLGATHER bytes over intra-node links.
    pub allgather_intra_bytes: u64,
    /// ALLGATHER bytes over inter-node links.
    pub allgather_inter_bytes: u64,
    /// Number of ALLGATHER invocations.
    pub allgather_ops: u64,
    /// Total bytes moved by broadcasts (both tiers).
    pub broadcast_bytes: u64,
    /// Broadcast bytes over intra-node links.
    pub broadcast_intra_bytes: u64,
    /// Broadcast bytes over inter-node links.
    pub broadcast_inter_bytes: u64,
    /// Number of broadcast invocations.
    pub broadcast_ops: u64,
}

impl TrafficSnapshot {
    /// Total bytes across all collective kinds and tiers.
    pub fn total_bytes(&self) -> u64 {
        self.allreduce_bytes + self.allgather_bytes + self.broadcast_bytes
    }

    /// Total intra-node bytes across all collective kinds.
    pub fn intra_bytes(&self) -> u64 {
        self.allreduce_intra_bytes + self.allgather_intra_bytes + self.broadcast_intra_bytes
    }

    /// Total inter-node bytes across all collective kinds.
    pub fn inter_bytes(&self) -> u64 {
        self.allreduce_inter_bytes + self.allgather_inter_bytes + self.broadcast_inter_bytes
    }
}

impl TrafficRecorder {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one rank's sends within an ALLREDUCE on the given tier.
    pub fn record_allreduce_tier(&self, tier: Tier, bytes: u64) {
        match tier {
            Tier::Intra => &self.allreduce_intra_bytes,
            Tier::Inter => &self.allreduce_inter_bytes,
        }
        .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one rank's ALLREDUCE sends already split by tier.
    pub fn record_allreduce_split(&self, bytes: TierBytes) {
        self.record_allreduce_tier(Tier::Intra, bytes.intra);
        self.record_allreduce_tier(Tier::Inter, bytes.inter);
    }

    /// Records one rank's sends within an ALLREDUCE.
    ///
    /// Legacy single-tier entry point: charges the intra-node bucket
    /// (the pre-topology recorder modelled one node).
    pub fn record_allreduce(&self, bytes: u64) {
        self.record_allreduce_tier(Tier::Intra, bytes);
    }

    /// Counts one group-wide ALLREDUCE invocation.
    pub fn count_allreduce_op(&self) {
        self.allreduce_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one rank's sends within an ALLGATHER on the given tier.
    pub fn record_allgather_tier(&self, tier: Tier, bytes: u64) {
        match tier {
            Tier::Intra => &self.allgather_intra_bytes,
            Tier::Inter => &self.allgather_inter_bytes,
        }
        .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one rank's ALLGATHER sends already split by tier.
    pub fn record_allgather_split(&self, bytes: TierBytes) {
        self.record_allgather_tier(Tier::Intra, bytes.intra);
        self.record_allgather_tier(Tier::Inter, bytes.inter);
    }

    /// Records one rank's sends within an ALLGATHER (legacy: intra).
    pub fn record_allgather(&self, bytes: u64) {
        self.record_allgather_tier(Tier::Intra, bytes);
    }

    /// Counts one group-wide ALLGATHER invocation.
    pub fn count_allgather_op(&self) {
        self.allgather_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one rank's sends within a broadcast on the given tier.
    pub fn record_broadcast_tier(&self, tier: Tier, bytes: u64) {
        match tier {
            Tier::Intra => &self.broadcast_intra_bytes,
            Tier::Inter => &self.broadcast_inter_bytes,
        }
        .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one rank's broadcast sends already split by tier.
    pub fn record_broadcast_split(&self, bytes: TierBytes) {
        self.record_broadcast_tier(Tier::Intra, bytes.intra);
        self.record_broadcast_tier(Tier::Inter, bytes.inter);
    }

    /// Records one rank's sends within a broadcast (legacy: intra).
    pub fn record_broadcast(&self, bytes: u64) {
        self.record_broadcast_tier(Tier::Intra, bytes);
    }

    /// Counts one group-wide broadcast invocation.
    pub fn count_broadcast_op(&self) {
        self.broadcast_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> TrafficSnapshot {
        let ar_intra = self.allreduce_intra_bytes.load(Ordering::Relaxed);
        let ar_inter = self.allreduce_inter_bytes.load(Ordering::Relaxed);
        let ag_intra = self.allgather_intra_bytes.load(Ordering::Relaxed);
        let ag_inter = self.allgather_inter_bytes.load(Ordering::Relaxed);
        let bc_intra = self.broadcast_intra_bytes.load(Ordering::Relaxed);
        let bc_inter = self.broadcast_inter_bytes.load(Ordering::Relaxed);
        TrafficSnapshot {
            allreduce_bytes: ar_intra + ar_inter,
            allreduce_intra_bytes: ar_intra,
            allreduce_inter_bytes: ar_inter,
            allreduce_ops: self.allreduce_ops.load(Ordering::Relaxed),
            allgather_bytes: ag_intra + ag_inter,
            allgather_intra_bytes: ag_intra,
            allgather_inter_bytes: ag_inter,
            allgather_ops: self.allgather_ops.load(Ordering::Relaxed),
            broadcast_bytes: bc_intra + bc_inter,
            broadcast_intra_bytes: bc_intra,
            broadcast_inter_bytes: bc_inter,
            broadcast_ops: self.broadcast_ops.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.allreduce_intra_bytes.store(0, Ordering::Relaxed);
        self.allreduce_inter_bytes.store(0, Ordering::Relaxed);
        self.allreduce_ops.store(0, Ordering::Relaxed);
        self.allgather_intra_bytes.store(0, Ordering::Relaxed);
        self.allgather_inter_bytes.store(0, Ordering::Relaxed);
        self.allgather_ops.store(0, Ordering::Relaxed);
        self.broadcast_intra_bytes.store(0, Ordering::Relaxed);
        self.broadcast_inter_bytes.store(0, Ordering::Relaxed);
        self.broadcast_ops.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let t = TrafficRecorder::new();
        t.record_allreduce(100);
        t.record_allreduce(50);
        t.count_allreduce_op();
        t.record_allgather(7);
        t.count_allgather_op();
        t.record_broadcast(3);
        let s = t.snapshot();
        assert_eq!(s.allreduce_bytes, 150);
        assert_eq!(s.allreduce_ops, 1);
        assert_eq!(s.allgather_bytes, 7);
        assert_eq!(s.broadcast_bytes, 3);
        assert_eq!(s.total_bytes(), 160);
    }

    #[test]
    fn tier_buckets_sum_to_legacy_totals() {
        let t = TrafficRecorder::new();
        t.record_allreduce_tier(Tier::Intra, 30);
        t.record_allreduce_tier(Tier::Inter, 12);
        t.record_allgather_split(TierBytes { intra: 5, inter: 9 });
        t.record_broadcast_tier(Tier::Inter, 4);
        let s = t.snapshot();
        assert_eq!(s.allreduce_intra_bytes, 30);
        assert_eq!(s.allreduce_inter_bytes, 12);
        assert_eq!(s.allreduce_bytes, 42);
        assert_eq!(s.allgather_intra_bytes, 5);
        assert_eq!(s.allgather_inter_bytes, 9);
        assert_eq!(s.allgather_bytes, 14);
        assert_eq!(s.broadcast_intra_bytes, 0);
        assert_eq!(s.broadcast_inter_bytes, 4);
        assert_eq!(s.broadcast_bytes, 4);
        assert_eq!(s.intra_bytes(), 35);
        assert_eq!(s.inter_bytes(), 25);
        assert_eq!(s.total_bytes(), 60);
    }

    #[test]
    fn legacy_entry_points_charge_intra() {
        let t = TrafficRecorder::new();
        t.record_allreduce(11);
        t.record_allgather(22);
        t.record_broadcast(33);
        let s = t.snapshot();
        assert_eq!(s.intra_bytes(), 66);
        assert_eq!(s.inter_bytes(), 0);
    }

    #[test]
    fn tier_bytes_arithmetic() {
        let mut a = TierBytes { intra: 3, inter: 4 };
        let b = TierBytes {
            intra: 10,
            inter: 20,
        };
        assert_eq!((a + b).total(), 37);
        a += b;
        assert_eq!(
            a,
            TierBytes {
                intra: 13,
                inter: 24
            }
        );
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = TrafficRecorder::new();
        t.record_allreduce(5);
        t.record_allreduce_tier(Tier::Inter, 6);
        t.reset();
        assert_eq!(t.snapshot(), TrafficSnapshot::default());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let t = TrafficRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.record_allreduce(1);
                    }
                });
            }
        });
        assert_eq!(t.snapshot().allreduce_bytes, 8000);
    }
}
