//! Lightweight phase timing for collective-heavy hot loops.
//!
//! The exchange layer wants per-phase wall-clock (gather / unique /
//! scatter / allreduce / apply) without paying for anything fancier
//! than two monotonic clock reads per phase. [`PhaseTimer`] is a
//! resettable stopwatch: `lap_ns()` returns the nanoseconds since the
//! previous lap (or since construction) and restarts the lap.

use std::time::Instant;

/// A monotonic lap timer; each [`PhaseTimer::lap_ns`] call closes the
/// current lap and opens the next.
#[derive(Debug)]
pub struct PhaseTimer {
    last: Instant,
}

impl PhaseTimer {
    /// Starts the first lap.
    pub fn start() -> Self {
        PhaseTimer {
            last: Instant::now(),
        }
    }

    /// Nanoseconds since the previous lap (saturating at `u64::MAX`);
    /// restarts the lap.
    pub fn lap_ns(&mut self) -> u64 {
        let now = Instant::now();
        let dt = now.duration_since(self.last);
        self.last = now;
        u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_are_monotone_and_reset() {
        let mut t = PhaseTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let a = t.lap_ns();
        assert!(a >= 2_000_000, "lap too short: {a}");
        // Second lap measures only the time since the first.
        let b = t.lap_ns();
        assert!(b < a, "lap did not reset: {b} vs {a}");
    }
}
