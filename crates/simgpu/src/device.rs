//! Simulated GPU devices with memory accounting.
//!
//! The paper's scaling walls are memory walls: the dense ALLGATHER needs
//! `Θ(G·K·D)` bytes per GPU and blows past the Titan X's 12 GB somewhere
//! between 24 and 32 GPUs (Tables III/IV show `*` = out of memory). A
//! [`Device`] tracks live and peak usage against a capacity and returns
//! [`OomError`] exactly like `cudaMalloc` returning `cudaErrorMemoryAllocation`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Allocation failure on a simulated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Device that rejected the allocation.
    pub device: usize,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes live at the time of the request.
    pub in_use: u64,
    /// Device capacity in bytes.
    pub capacity: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device {}: out of memory (requested {} B, {} B in use of {} B)",
            self.device, self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// A simulated GPU: an id plus a memory accountant.
///
/// Thread-safe: allocation/free use atomics, so the owning rank thread
/// and observers (metrics collection) can touch it concurrently.
#[derive(Debug)]
pub struct Device {
    id: usize,
    capacity: u64,
    in_use: AtomicU64,
    peak: AtomicU64,
}

impl Device {
    /// Creates a device with the given memory capacity in bytes.
    pub fn new(id: usize, capacity: u64) -> Arc<Self> {
        Arc::new(Self {
            id,
            capacity,
            in_use: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        })
    }

    /// Device id (the MPI rank in the paper's one-GPU-per-process setup).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Attempts to allocate `bytes`; freed when the guard drops.
    pub fn try_alloc(self: &Arc<Self>, bytes: u64) -> Result<Allocation, OomError> {
        // Optimistic add, roll back on overflow: correct under contention
        // because concurrent allocators that both fit cannot jointly
        // exceed capacity after their rollbacks.
        let prev = self.in_use.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if now > self.capacity {
            self.in_use.fetch_sub(bytes, Ordering::Relaxed);
            return Err(OomError {
                device: self.id,
                requested: bytes,
                in_use: prev,
                capacity: self.capacity,
            });
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        Ok(Allocation {
            dev: Arc::clone(self),
            bytes,
        })
    }

    /// Allocation sized for `n` elements of `size_of::<T>()` bytes.
    pub fn try_alloc_elems<T>(self: &Arc<Self>, n: usize) -> Result<Allocation, OomError> {
        self.try_alloc((n * std::mem::size_of::<T>()) as u64)
    }
}

/// RAII guard for device memory; freeing happens on drop.
#[derive(Debug)]
pub struct Allocation {
    dev: Arc<Device>,
    bytes: u64,
}

impl Allocation {
    /// Size of this allocation in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The owning device's id.
    pub fn device(&self) -> usize {
        self.dev.id
    }
}

impl Drop for Allocation {
    fn drop(&mut self) {
        self.dev.in_use.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn alloc_and_free_tracks_usage() {
        let dev = Device::new(0, 12 * GB);
        let a = dev.try_alloc(4 * GB).unwrap();
        assert_eq!(dev.in_use(), 4 * GB);
        let b = dev.try_alloc(6 * GB).unwrap();
        assert_eq!(dev.in_use(), 10 * GB);
        drop(a);
        assert_eq!(dev.in_use(), 6 * GB);
        drop(b);
        assert_eq!(dev.in_use(), 0);
        assert_eq!(dev.peak(), 10 * GB);
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let dev = Device::new(3, 12 * GB);
        let _a = dev.try_alloc(10 * GB).unwrap();
        let err = dev.try_alloc(3 * GB).unwrap_err();
        assert_eq!(err.device, 3);
        assert_eq!(err.requested, 3 * GB);
        assert_eq!(err.in_use, 10 * GB);
        // Failed allocation must not leak accounting.
        assert_eq!(dev.in_use(), 10 * GB);
    }

    #[test]
    fn exact_fit_succeeds() {
        let dev = Device::new(0, 100);
        let _a = dev.try_alloc(100).unwrap();
        assert!(dev.try_alloc(1).is_err());
    }

    #[test]
    fn zero_byte_alloc_ok() {
        let dev = Device::new(0, 10);
        let a = dev.try_alloc(0).unwrap();
        assert_eq!(a.bytes(), 0);
    }

    #[test]
    fn elems_alloc_sizes_by_type() {
        let dev = Device::new(0, 1024);
        let a = dev.try_alloc_elems::<f32>(100).unwrap();
        assert_eq!(a.bytes(), 400);
        let b = dev.try_alloc_elems::<u16>(100).unwrap();
        assert_eq!(b.bytes(), 200);
    }

    #[test]
    fn peak_survives_frees() {
        let dev = Device::new(0, 1000);
        {
            let _a = dev.try_alloc(800).unwrap();
        }
        let _b = dev.try_alloc(100).unwrap();
        assert_eq!(dev.peak(), 800);
    }

    #[test]
    fn concurrent_alloc_never_exceeds_capacity() {
        let dev = Device::new(0, 1000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let dev = Arc::clone(&dev);
                s.spawn(move || {
                    for _ in 0..1000 {
                        if let Ok(a) = dev.try_alloc(300) {
                            assert!(dev.in_use() <= 1000);
                            drop(a);
                        }
                    }
                });
            }
        });
        assert_eq!(dev.in_use(), 0);
        assert!(dev.peak() <= 1000);
    }

    #[test]
    fn oom_error_displays() {
        let dev = Device::new(1, 10);
        let err = dev.try_alloc(20).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("out of memory"));
        assert!(msg.contains("device 1"));
    }
}
