//! Fault-injection plans for the simulated fabric.
//!
//! A [`FaultPlan`] describes, per rank, the failures a run must survive
//! *with a typed error rather than a hang*: a rank that dies at a given
//! step, a straggler that sleeps before every collective round, or an
//! asymmetric per-rank memory limit. The plan itself is inert data —
//! the trainer consults it at the top of each step and before device
//! allocations, and converts a triggered fault into [`crate::CommError`]
//! propagation via [`crate::Rank::abort`].
//!
//! Keeping the plan in `simgpu` (not the trainer crate) matches the
//! layering: faults are a property of the simulated hardware/fabric,
//! and any future consumer of the communicator gets the same knobs.

use std::collections::BTreeMap;
use std::time::Duration;

/// Declarative description of injected faults, keyed by rank.
///
/// Construct with [`FaultPlan::none`] and the builder methods:
///
/// ```
/// use simgpu::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::none()
///     .kill_rank(2, 5) // rank 2 dies at the start of step 5
///     .straggle(1, Duration::from_millis(2))
///     .limit_rank_memory(3, 64 * 1024);
/// assert!(plan.should_die(2, 5));
/// assert!(!plan.should_die(2, 4));
/// assert_eq!(plan.mem_limit(3), Some(64 * 1024));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// rank → first step index at which the rank dies (inclusive).
    kills: BTreeMap<usize, usize>,
    /// rank → first step index at which the rank dies *once*: unlike
    /// `kills`, a transient kill is consumed by recovery (the elastic
    /// driver drops it from the follow-up plan and renumbers the rest),
    /// so a resumed run proceeds without the dead rank instead of
    /// re-triggering the same fault forever.
    transient_kills: BTreeMap<usize, usize>,
    /// rank → artificial delay injected at the top of every step.
    stragglers: BTreeMap<usize, Duration>,
    /// rank → device capacity override in bytes.
    mem_limits: BTreeMap<usize, u64>,
    /// rank → step at which the rank goes *silent*: it stops calling
    /// collectives without aborting. Detectable only by a barrier
    /// deadline ([`crate::BarrierDeadline`]) — without one the group
    /// hangs, which is exactly the failure mode the deadline exists for.
    hangs: BTreeMap<usize, usize>,
    /// rank → step at which the rank's next published codec frame is
    /// corrupted in flight (one-shot, identity-keyed like
    /// `transient_kills`: consumed by recovery, renumbered for
    /// survivors).
    wire_corruptions: BTreeMap<usize, usize>,
}

impl FaultPlan {
    /// A plan that injects nothing. Running under `FaultPlan::none()`
    /// is behaviourally identical to not having a plan at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects no fault on any rank.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
            && self.transient_kills.is_empty()
            && self.stragglers.is_empty()
            && self.mem_limits.is_empty()
            && self.hangs.is_empty()
            && self.wire_corruptions.is_empty()
    }

    /// Kill `rank` at the start of global step `step` (0-based). The
    /// rank stops participating in collectives from that step onward,
    /// poisoning the group so peers observe the failure.
    pub fn kill_rank(mut self, rank: usize, step: usize) -> Self {
        self.kills.insert(rank, step);
        self
    }

    /// Kill `rank` at the start of global step `step` (0-based), *once*.
    ///
    /// The fault itself is indistinguishable from [`FaultPlan::kill_rank`]
    /// inside one run — the rank aborts and poisons the group. The
    /// difference is elastic-recovery semantics: a transient kill is a
    /// one-shot *event* keyed to this rank's identity. After the elastic
    /// driver shrinks the world to the survivors, the triggered entry is
    /// consumed and the remaining transient kills are renumbered to the
    /// survivors' new ranks (see `FaultPlan::remap_for_survivors`), so
    /// multi-failure schedules can be scripted against the original
    /// world. Permanent faults (`kill_rank`, `straggle`,
    /// `limit_rank_memory`) instead stay keyed to the rank *slot* and
    /// re-apply to whichever rank occupies it after the shrink — a
    /// persistently bad node rather than a one-off crash.
    pub fn kill_rank_transient(mut self, rank: usize, step: usize) -> Self {
        self.transient_kills.insert(rank, step);
        self
    }

    /// Make `rank` sleep for `delay` at the top of every step —
    /// exercises the bounded-time guarantee under skew without killing
    /// anyone.
    pub fn straggle(mut self, rank: usize, delay: Duration) -> Self {
        self.stragglers.insert(rank, delay);
        self
    }

    /// Cap `rank`'s device memory at `bytes`, overriding the uniform
    /// per-GPU budget. Asymmetric limits are the canonical way to force
    /// a *one-sided* OOM, which must surface as an error on every rank.
    pub fn limit_rank_memory(mut self, rank: usize, bytes: u64) -> Self {
        self.mem_limits.insert(rank, bytes);
        self
    }

    /// Make `rank` go *silent* at the start of global step `step`
    /// (0-based): it stops calling collectives but — unlike a kill —
    /// never aborts the group. Peers block at their next barrier until
    /// a configured [`crate::BarrierDeadline`] expires and converts the
    /// hang into [`crate::CommError::Timeout`]; without a deadline this
    /// fault deadlocks the run, by design. Slot-keyed like `kill_rank`
    /// (a persistently hung node).
    pub fn hang_rank(mut self, rank: usize, step: usize) -> Self {
        self.hangs.insert(rank, step);
        self
    }

    /// Corrupt the codec frame `rank` publishes at global step `step`
    /// (0-based), in flight, *once*. The frame damage is guaranteed to
    /// surface as a typed decode error on every receiver, attributed to
    /// the sender — so elastic recovery shrinks around the corrupting
    /// rank exactly like a transient kill. Identity-keyed and consumed
    /// by recovery (see [`FaultPlan::remap_for_survivors`]).
    pub fn corrupt_wire(mut self, rank: usize, step: usize) -> Self {
        self.wire_corruptions.insert(rank, step);
        self
    }

    /// Whether `rank` is scheduled to die at or before `step` (by a
    /// permanent or a transient kill).
    pub fn should_die(&self, rank: usize, step: usize) -> bool {
        self.kills.get(&rank).is_some_and(|&k| step >= k)
            || self.transient_kills.get(&rank).is_some_and(|&k| step >= k)
    }

    /// The step at which a *transient* kill is scheduled for `rank`.
    pub fn transient_kill_at(&self, rank: usize) -> Option<usize> {
        self.transient_kills.get(&rank).copied()
    }

    /// Whether `rank` is scheduled to go silent at or before `step`.
    pub fn should_hang(&self, rank: usize, step: usize) -> bool {
        self.hangs.get(&rank).is_some_and(|&k| step >= k)
    }

    /// The step at which `rank`'s published frame is corrupted, if any.
    pub fn wire_corruption_at(&self, rank: usize) -> Option<usize> {
        self.wire_corruptions.get(&rank).copied()
    }

    /// True when the plan schedules any hang (callers must configure a
    /// barrier deadline or accept a deadlock).
    pub fn has_hangs(&self) -> bool {
        !self.hangs.is_empty()
    }

    /// True when the plan schedules any in-flight wire corruption
    /// (callers must route gradients through a codec-framed collective
    /// for the fault to have a wire to corrupt).
    pub fn has_wire_corruptions(&self) -> bool {
        !self.wire_corruptions.is_empty()
    }

    /// The highest rank any entry of the plan targets, or `None` for an
    /// empty plan. Callers that know the world size use this to reject
    /// plans that would otherwise silently no-op (a kill/straggle/limit
    /// on `rank >= world` never fires).
    pub fn max_rank_targeted(&self) -> Option<usize> {
        [
            self.kills.keys().next_back(),
            self.transient_kills.keys().next_back(),
            self.stragglers.keys().next_back(),
            self.mem_limits.keys().next_back(),
            self.hangs.keys().next_back(),
            self.wire_corruptions.keys().next_back(),
        ]
        .into_iter()
        .flatten()
        .max()
        .copied()
    }

    /// The follow-up plan after an elastic shrink to `survivors` (old
    /// rank ids, ascending — the new rank of old rank `r` is its index
    /// in the slice).
    ///
    /// * **Transient kills** are events keyed to rank identity: entries
    ///   whose rank died (is not a survivor) are consumed; the rest are
    ///   renumbered to the survivors' new ranks.
    /// * **Permanent faults** (`kill_rank`, `straggle`,
    ///   `limit_rank_memory`) model bad *slots* and are kept under their
    ///   original keys; entries beyond the shrunken world (slots that no
    ///   longer exist) are dropped so the follow-up plan stays valid.
    pub fn remap_for_survivors(&self, survivors: &[usize]) -> FaultPlan {
        debug_assert!(survivors.windows(2).all(|w| w[0] < w[1]), "unsorted");
        let world = survivors.len();
        let slot_keyed = |m: &BTreeMap<usize, usize>| -> BTreeMap<usize, usize> {
            m.range(..world).map(|(&r, &v)| (r, v)).collect()
        };
        FaultPlan {
            kills: slot_keyed(&self.kills),
            transient_kills: self
                .transient_kills
                .iter()
                .filter_map(|(&r, &step)| {
                    survivors.binary_search(&r).ok().map(|new_r| (new_r, step))
                })
                .collect(),
            stragglers: self
                .stragglers
                .range(..world)
                .map(|(&r, &d)| (r, d))
                .collect(),
            mem_limits: self
                .mem_limits
                .range(..world)
                .map(|(&r, &b)| (r, b))
                .collect(),
            hangs: slot_keyed(&self.hangs),
            wire_corruptions: self
                .wire_corruptions
                .iter()
                .filter_map(|(&r, &step)| {
                    survivors.binary_search(&r).ok().map(|new_r| (new_r, step))
                })
                .collect(),
        }
    }

    /// The straggler delay for `rank`, if any.
    pub fn straggler_delay(&self, rank: usize) -> Option<Duration> {
        self.stragglers.get(&rank).copied()
    }

    /// The memory-capacity override for `rank`, if any.
    pub fn mem_limit(&self, rank: usize) -> Option<u64> {
        self.mem_limits.get(&rank).copied()
    }
}

/// One injected storage fault, applied to a single checkpoint write.
///
/// These model the three ways a crash or flaky disk damages an on-disk
/// checkpoint: the write is cut short (torn), a bit rots after the
/// write completes, or the file vanishes entirely. A CRC-framed store
/// must classify all three at recovery time instead of loading garbage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// The write is torn at byte `keep`: only the first `keep` bytes of
    /// the framed file reach the disk (simulating a crash mid-`write`
    /// before the atomic rename — the temp file is truncated, then
    /// renamed anyway so the damage is visible to the recovery scan).
    TornWrite {
        /// Bytes that survive; clamped to the frame length.
        keep: usize,
    },
    /// After a fully successful write, bit `bit` of byte `byte` flips
    /// (byte index wraps modulo the file length, so any value is valid).
    BitFlip {
        /// Byte offset into the framed file (taken modulo its length).
        byte: usize,
        /// Bit index 0..8 within that byte (taken modulo 8).
        bit: u8,
    },
    /// The file is unlinked after the write (checkpoint silently lost).
    Unlink,
}

/// Schedule of [`DiskFault`]s keyed by `(rank, step)`: each entry fires
/// at most once, when that rank persists its checkpoint for that step.
///
/// Held by the disk-backed checkpoint store and consumed at write time;
/// inert for steps/ranks with no entry. Kept in `simgpu::fault` beside
/// [`FaultPlan`] so every fault class a chaos schedule composes lives
/// in one module, even though the wire faults and disk faults are
/// consumed by different layers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiskFaultPlan {
    faults: BTreeMap<(usize, u64), DiskFault>,
}

impl DiskFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no disk fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Schedule `fault` for the checkpoint `rank` writes at `step`
    /// (later calls for the same `(rank, step)` override).
    pub fn inject(mut self, rank: usize, step: u64, fault: DiskFault) -> Self {
        self.faults.insert((rank, step), fault);
        self
    }

    /// Consume the fault scheduled for `(rank, step)`, if any. One-shot:
    /// a second write of the same checkpoint (e.g. after recovery
    /// replays the step) lands clean.
    pub fn take(&mut self, rank: usize, step: u64) -> Option<DiskFault> {
        self.faults.remove(&(rank, step))
    }

    /// Iterate the scheduled faults (for diagnostics / tests).
    pub fn entries(&self) -> impl Iterator<Item = (usize, u64, DiskFault)> + '_ {
        self.faults.iter().map(|(&(r, s), &f)| (r, s, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for rank in 0..8 {
            assert!(!plan.should_die(rank, 0));
            assert!(!plan.should_die(rank, 1000));
            assert_eq!(plan.straggler_delay(rank), None);
            assert_eq!(plan.mem_limit(rank), None);
        }
    }

    #[test]
    fn kill_triggers_at_and_after_step() {
        let plan = FaultPlan::none().kill_rank(2, 5);
        assert!(!plan.is_empty());
        assert!(!plan.should_die(2, 0));
        assert!(!plan.should_die(2, 4));
        assert!(plan.should_die(2, 5));
        assert!(plan.should_die(2, 99));
        assert!(!plan.should_die(1, 99), "other ranks unaffected");
    }

    #[test]
    fn transient_kill_triggers_like_permanent_within_a_run() {
        let plan = FaultPlan::none().kill_rank_transient(1, 4);
        assert!(!plan.is_empty());
        assert!(!plan.should_die(1, 3));
        assert!(plan.should_die(1, 4));
        assert!(plan.should_die(1, 10));
        assert_eq!(plan.transient_kill_at(1), Some(4));
        assert_eq!(plan.transient_kill_at(0), None);
    }

    #[test]
    fn max_rank_targeted_spans_all_fault_kinds() {
        assert_eq!(FaultPlan::none().max_rank_targeted(), None);
        let plan = FaultPlan::none()
            .kill_rank(1, 0)
            .kill_rank_transient(5, 2)
            .straggle(3, Duration::from_millis(1))
            .limit_rank_memory(2, 64);
        assert_eq!(plan.max_rank_targeted(), Some(5));
    }

    #[test]
    fn remap_consumes_dead_transients_and_renumbers_the_rest() {
        // World 4: transient kills on ranks 2 (dies) and 3 (pending).
        let plan = FaultPlan::none()
            .kill_rank_transient(2, 1)
            .kill_rank_transient(3, 7);
        let next = plan.remap_for_survivors(&[0, 1, 3]);
        // Rank 2's entry is consumed; old rank 3 is new rank 2.
        assert_eq!(next.transient_kill_at(2), Some(7));
        assert!(!next.should_die(0, 100));
        assert!(!next.should_die(1, 100));
        assert_eq!(next.max_rank_targeted(), Some(2));
    }

    #[test]
    fn remap_keeps_slot_keyed_faults_and_drops_vanished_slots() {
        let plan = FaultPlan::none()
            .kill_rank(0, 9)
            .straggle(1, Duration::from_millis(2))
            .limit_rank_memory(3, 1024);
        // Shrink 4 → 2: slots 0 and 1 remain, slot 3 no longer exists.
        let next = plan.remap_for_survivors(&[0, 2]);
        assert!(next.should_die(0, 9), "slot-keyed kill persists");
        assert_eq!(next.straggler_delay(1), Some(Duration::from_millis(2)));
        assert_eq!(next.mem_limit(3), None, "vanished slot dropped");
        assert_eq!(next.max_rank_targeted(), Some(1));
    }

    #[test]
    fn hang_and_wire_corruption_enter_plan_bookkeeping() {
        let plan = FaultPlan::none().hang_rank(3, 6).corrupt_wire(5, 2);
        assert!(!plan.is_empty());
        assert!(plan.has_hangs());
        assert!(plan.has_wire_corruptions());
        assert!(!plan.should_hang(3, 5));
        assert!(plan.should_hang(3, 6));
        assert!(!plan.should_hang(2, 100));
        assert_eq!(plan.wire_corruption_at(5), Some(2));
        assert_eq!(plan.wire_corruption_at(4), None);
        assert_eq!(plan.max_rank_targeted(), Some(5));
    }

    #[test]
    fn remap_treats_hangs_as_slots_and_corruptions_as_identities() {
        // World 4: hang on slot 3, corruptions on ranks 1 (dies) and 2.
        let plan = FaultPlan::none()
            .hang_rank(3, 9)
            .corrupt_wire(1, 3)
            .corrupt_wire(2, 8);
        let next = plan.remap_for_survivors(&[0, 2, 3]);
        // Slot 3 vanished (world is now 3), so the hang is dropped.
        assert!(!next.should_hang(3, 100));
        // Rank 1's corruption is consumed; old rank 2 is new rank 1.
        assert_eq!(next.wire_corruption_at(1), Some(8));
        assert_eq!(next.wire_corruption_at(0), None);
    }

    #[test]
    fn disk_fault_plan_is_one_shot_per_rank_step() {
        let mut plan = DiskFaultPlan::none()
            .inject(0, 4, DiskFault::TornWrite { keep: 10 })
            .inject(1, 4, DiskFault::Unlink)
            .inject(1, 4, DiskFault::BitFlip { byte: 3, bit: 7 });
        assert!(!plan.is_empty());
        assert_eq!(plan.entries().count(), 2, "same (rank, step) overrides");
        assert_eq!(plan.take(0, 4), Some(DiskFault::TornWrite { keep: 10 }));
        assert_eq!(plan.take(0, 4), None, "consumed");
        assert_eq!(plan.take(2, 4), None);
        assert_eq!(
            plan.take(1, 4),
            Some(DiskFault::BitFlip { byte: 3, bit: 7 })
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn builders_compose_per_rank() {
        let plan = FaultPlan::none()
            .kill_rank(0, 1)
            .straggle(1, Duration::from_millis(3))
            .limit_rank_memory(2, 4096)
            .limit_rank_memory(2, 8192); // later call overrides
        assert_eq!(plan.straggler_delay(1), Some(Duration::from_millis(3)));
        assert_eq!(plan.mem_limit(2), Some(8192));
        assert!(plan.should_die(0, 1));
        assert_eq!(plan.mem_limit(0), None);
    }
}
