//! Fault-injection plans for the simulated fabric.
//!
//! A [`FaultPlan`] describes, per rank, the failures a run must survive
//! *with a typed error rather than a hang*: a rank that dies at a given
//! step, a straggler that sleeps before every collective round, or an
//! asymmetric per-rank memory limit. The plan itself is inert data —
//! the trainer consults it at the top of each step and before device
//! allocations, and converts a triggered fault into [`crate::CommError`]
//! propagation via [`crate::Rank::abort`].
//!
//! Keeping the plan in `simgpu` (not the trainer crate) matches the
//! layering: faults are a property of the simulated hardware/fabric,
//! and any future consumer of the communicator gets the same knobs.

use std::collections::BTreeMap;
use std::time::Duration;

/// Declarative description of injected faults, keyed by rank.
///
/// Construct with [`FaultPlan::none`] and the builder methods:
///
/// ```
/// use simgpu::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::none()
///     .kill_rank(2, 5) // rank 2 dies at the start of step 5
///     .straggle(1, Duration::from_millis(2))
///     .limit_rank_memory(3, 64 * 1024);
/// assert!(plan.should_die(2, 5));
/// assert!(!plan.should_die(2, 4));
/// assert_eq!(plan.mem_limit(3), Some(64 * 1024));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// rank → first step index at which the rank dies (inclusive).
    kills: BTreeMap<usize, usize>,
    /// rank → artificial delay injected at the top of every step.
    stragglers: BTreeMap<usize, Duration>,
    /// rank → device capacity override in bytes.
    mem_limits: BTreeMap<usize, u64>,
}

impl FaultPlan {
    /// A plan that injects nothing. Running under `FaultPlan::none()`
    /// is behaviourally identical to not having a plan at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan injects no fault on any rank.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.stragglers.is_empty() && self.mem_limits.is_empty()
    }

    /// Kill `rank` at the start of global step `step` (0-based). The
    /// rank stops participating in collectives from that step onward,
    /// poisoning the group so peers observe the failure.
    pub fn kill_rank(mut self, rank: usize, step: usize) -> Self {
        self.kills.insert(rank, step);
        self
    }

    /// Make `rank` sleep for `delay` at the top of every step —
    /// exercises the bounded-time guarantee under skew without killing
    /// anyone.
    pub fn straggle(mut self, rank: usize, delay: Duration) -> Self {
        self.stragglers.insert(rank, delay);
        self
    }

    /// Cap `rank`'s device memory at `bytes`, overriding the uniform
    /// per-GPU budget. Asymmetric limits are the canonical way to force
    /// a *one-sided* OOM, which must surface as an error on every rank.
    pub fn limit_rank_memory(mut self, rank: usize, bytes: u64) -> Self {
        self.mem_limits.insert(rank, bytes);
        self
    }

    /// Whether `rank` is scheduled to die at or before `step`.
    pub fn should_die(&self, rank: usize, step: usize) -> bool {
        self.kills.get(&rank).is_some_and(|&k| step >= k)
    }

    /// The straggler delay for `rank`, if any.
    pub fn straggler_delay(&self, rank: usize) -> Option<Duration> {
        self.stragglers.get(&rank).copied()
    }

    /// The memory-capacity override for `rank`, if any.
    pub fn mem_limit(&self, rank: usize) -> Option<u64> {
        self.mem_limits.get(&rank).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for rank in 0..8 {
            assert!(!plan.should_die(rank, 0));
            assert!(!plan.should_die(rank, 1000));
            assert_eq!(plan.straggler_delay(rank), None);
            assert_eq!(plan.mem_limit(rank), None);
        }
    }

    #[test]
    fn kill_triggers_at_and_after_step() {
        let plan = FaultPlan::none().kill_rank(2, 5);
        assert!(!plan.is_empty());
        assert!(!plan.should_die(2, 0));
        assert!(!plan.should_die(2, 4));
        assert!(plan.should_die(2, 5));
        assert!(plan.should_die(2, 99));
        assert!(!plan.should_die(1, 99), "other ranks unaffected");
    }

    #[test]
    fn builders_compose_per_rank() {
        let plan = FaultPlan::none()
            .kill_rank(0, 1)
            .straggle(1, Duration::from_millis(3))
            .limit_rank_memory(2, 4096)
            .limit_rank_memory(2, 8192); // later call overrides
        assert_eq!(plan.straggler_delay(1), Some(Duration::from_millis(3)));
        assert_eq!(plan.mem_limit(2), Some(8192));
        assert!(plan.should_die(0, 1));
        assert_eq!(plan.mem_limit(0), None);
    }
}
