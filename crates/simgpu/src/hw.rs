//! Hardware presets — Table II of the paper, plus the V100 system of §V-D.

/// Static description of a GPU cluster for the α–β cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// GPUs per node (the paper uses 8).
    pub gpus_per_node: usize,
    /// Device memory per GPU in bytes.
    pub gpu_mem_bytes: u64,
    /// Peak FLOP/s per GPU (FP32).
    pub peak_flops: f64,
    /// Intra-node link bandwidth per GPU, bytes/s (PCIe for Titan X,
    /// NVLink for V100).
    pub intra_node_bw: f64,
    /// Inter-node bandwidth per node, bytes/s (Infiniband FDR).
    pub inter_node_bw: f64,
    /// Per-message latency within a node, seconds.
    pub intra_latency: f64,
    /// Per-message latency across nodes, seconds.
    pub inter_latency: f64,
}

impl HardwareConfig {
    /// The paper's evaluation cluster (Table II): 50 nodes, 8× GeForce
    /// GTX Titan X per node (12 GB, 6.1 TFLOP/s FP32), PCIe 32 GB/s
    /// bidirectional intra-node, Infiniband FDR 15 GB/s bidirectional
    /// inter-node.
    pub fn titan_x_cluster() -> Self {
        Self {
            name: "titanx-pcie-ibfdr",
            gpus_per_node: 8,
            gpu_mem_bytes: 12 * (1 << 30),
            peak_flops: 6.1e12,
            // Bidirectional figures halved to an effective unidirectional
            // stream rate, which is what a ring step uses.
            intra_node_bw: 16.0e9,
            inter_node_bw: 7.5e9,
            intra_latency: 10e-6,
            inter_latency: 30e-6,
        }
    }

    /// The comparison system of §V-D ([21]'s infrastructure): DGX-style
    /// V100s — 125 TFLOP/s tensor peak, 16 GB HBM2, NVLink.
    pub fn v100_dgx() -> Self {
        Self {
            name: "v100-nvlink",
            gpus_per_node: 8,
            gpu_mem_bytes: 16 * (1 << 30),
            peak_flops: 125.0e12,
            intra_node_bw: 150.0e9,
            inter_node_bw: 12.5e9,
            intra_latency: 5e-6,
            inter_latency: 20e-6,
        }
    }

    /// Number of nodes needed for `gpus` GPUs.
    pub fn nodes_for(&self, gpus: usize) -> usize {
        gpus.div_ceil(self.gpus_per_node)
    }

    /// Effective link bandwidth for a *ring* schedule spanning `gpus`
    /// GPUs. In a ring each GPU sends to exactly one neighbour per step,
    /// so only one GPU per node uses the Infiniband pipe at a time; the
    /// step rate is bounded by the slowest link on the ring.
    pub fn ring_bandwidth(&self, gpus: usize) -> f64 {
        assert!(gpus >= 1);
        if gpus <= self.gpus_per_node {
            self.intra_node_bw
        } else {
            self.inter_node_bw.min(self.intra_node_bw)
        }
    }

    /// Effective per-GPU bandwidth when *all* GPUs of a node pull remote
    /// data simultaneously (naive gather schedules): the node NIC is
    /// shared `gpus_per_node` ways.
    pub fn gather_bandwidth(&self, gpus: usize) -> f64 {
        assert!(gpus >= 1);
        if gpus <= self.gpus_per_node {
            self.intra_node_bw
        } else {
            (self.inter_node_bw / self.gpus_per_node as f64).min(self.intra_node_bw)
        }
    }

    /// Per-hop message latency for a job spanning `gpus` GPUs.
    pub fn ring_latency(&self, gpus: usize) -> f64 {
        if gpus <= self.gpus_per_node {
            self.intra_latency
        } else {
            self.inter_latency
        }
    }

    /// Aggregate peak FLOP/s for `gpus` GPUs.
    pub fn cluster_peak_flops(&self, gpus: usize) -> f64 {
        self.peak_flops * gpus as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        let hw = HardwareConfig::titan_x_cluster();
        assert_eq!(hw.gpus_per_node, 8);
        assert_eq!(hw.gpu_mem_bytes, 12 * 1024 * 1024 * 1024);
        assert!((hw.peak_flops - 6.1e12).abs() < 1.0);
    }

    #[test]
    fn nodes_round_up() {
        let hw = HardwareConfig::titan_x_cluster();
        assert_eq!(hw.nodes_for(8), 1);
        assert_eq!(hw.nodes_for(9), 2);
        assert_eq!(hw.nodes_for(64), 8);
        assert_eq!(hw.nodes_for(192), 24);
    }

    #[test]
    fn multi_node_bandwidth_is_lower() {
        let hw = HardwareConfig::titan_x_cluster();
        assert!(hw.ring_bandwidth(16) < hw.ring_bandwidth(8));
        assert!(hw.ring_latency(16) > hw.ring_latency(8));
    }

    #[test]
    fn v100_much_faster_than_titanx() {
        let t = HardwareConfig::titan_x_cluster();
        let v = HardwareConfig::v100_dgx();
        // §V-D: "41X less powerful infrastructure" (128 V100 vs 64 TitanX
        // = 16 PFLOP/s vs 0.39 PFLOP/s).
        let ratio = v.cluster_peak_flops(128) / t.cluster_peak_flops(64);
        assert!((ratio - 41.0).abs() < 1.5, "ratio {ratio}");
    }

    #[test]
    fn cluster_peak_flops_matches_paper() {
        // §V-C: "a total of 0.76 PFLOP/s using 192 GPUs" at 64% of peak
        // would be 192 * 6.1 TF * 0.64 ≈ 0.75 PF.
        let hw = HardwareConfig::titan_x_cluster();
        let achieved = hw.cluster_peak_flops(192) * 0.64;
        assert!((achieved / 1e15 - 0.76).abs() < 0.02, "{achieved}");
    }
}
