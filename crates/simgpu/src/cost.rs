//! α–β (latency–bandwidth) cost model for collectives and compute.
//!
//! Translates byte volumes and FLOP counts into simulated wall-clock
//! seconds on a [`HardwareConfig`]. Standard cost expressions:
//!
//! * ring ALLREDUCE of `n` bytes over `G` GPUs:
//!   `2(G−1)·α + 2(G−1)/G · n / β`
//! * ALLGATHER collecting `n_local` bytes from each of `G` GPUs:
//!   `(G−1)·α + (G−1) · n_local / β`
//! * compute: `flops / (peak · utilisation)`
//!
//! where `α` is per-hop latency and `β` the per-GPU effective link
//! bandwidth. These are exactly the asymptotics the paper quotes
//! (`Θ(G·K·D)` ALLGATHER vs `Θ(G·K + Ug·D)` for the unique scheme); the
//! constants come from Table II.

use crate::hw::HardwareConfig;
use crate::traffic::TierBytes;

/// Cost model bound to one hardware preset and one utilisation figure.
#[derive(Debug, Clone)]
pub struct CostModel {
    hw: HardwareConfig,
    /// Fraction of peak FLOP/s actually achieved (the paper reports 40 %
    /// for word LMs — 2.44 of 6.1 TFLOP/s — and 64 % for char LMs).
    utilization: f64,
}

impl CostModel {
    /// Creates a model; `utilization` in (0, 1].
    pub fn new(hw: HardwareConfig, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        Self { hw, utilization }
    }

    /// The underlying hardware description.
    pub fn hardware(&self) -> &HardwareConfig {
        &self.hw
    }

    /// Seconds for a ring ALLREDUCE of `bytes` over `gpus` GPUs.
    pub fn allreduce_time(&self, bytes: u64, gpus: usize) -> f64 {
        assert!(gpus >= 1);
        if gpus == 1 {
            return 0.0;
        }
        let g = gpus as f64;
        let alpha = self.hw.ring_latency(gpus);
        let beta = self.hw.ring_bandwidth(gpus);
        2.0 * (g - 1.0) * alpha + 2.0 * (g - 1.0) / g * bytes as f64 / beta
    }

    /// Seconds *rank `rank`* spends in a ring ALLREDUCE of `n_elems`
    /// elements of `elem_bytes` each over `gpus` GPUs: the shared
    /// `2(G−1)·α` latency term plus this rank's exact wire bytes from
    /// the ring's own chunk schedule
    /// ([`crate::comm::ring_allreduce_send_bytes`]). Unlike
    /// [`CostModel::allreduce_time`], which uses the idealised
    /// `2(G−1)/G·n` volume, this stays exact when `n_elems` does not
    /// divide by `gpus` — per-rank time attribution is built on it.
    pub fn allreduce_rank_time(
        &self,
        n_elems: usize,
        elem_bytes: u64,
        gpus: usize,
        rank: usize,
    ) -> f64 {
        assert!(gpus >= 1 && rank < gpus);
        let bytes = crate::comm::ring_allreduce_send_bytes(n_elems, gpus, rank, elem_bytes);
        self.allreduce_rank_time_bytes(bytes, gpus)
    }

    /// Seconds one rank spends in a ring ALLREDUCE given its exact
    /// `send_bytes` (the `2(G−1)·α` latency term is hop-count only, so
    /// it is unchanged by wire compression): the pricing primitive the
    /// per-rank variants delegate to, and the entry point for codec-
    /// compressed volumes, which substitute encoded bytes for raw ones
    /// without touching the hop count.
    pub fn allreduce_rank_time_bytes(&self, send_bytes: u64, gpus: usize) -> f64 {
        assert!(gpus >= 1);
        if gpus == 1 {
            return 0.0;
        }
        let g = gpus as f64;
        let alpha = self.hw.ring_latency(gpus);
        let beta = self.hw.ring_bandwidth(gpus);
        2.0 * (g - 1.0) * alpha + send_bytes as f64 / beta
    }

    /// Per-tier seconds *rank `rank`* spends in a hierarchical two-tier
    /// ALLREDUCE of `n_elems` elements of `elem_bytes` each over `gpus`
    /// GPUs laid out `gpus_per_node` per node — the α–β mirror of
    /// [`crate::comm::hierarchical_allreduce_send_bytes`]'s four-phase
    /// byte schedule. Returns `(intra_secs, inter_secs)`:
    ///
    /// * intra: the node-local hops (ring reduce-scatter over the `m`
    ///   members, the non-leader chunk hand-off *or* the leader's final
    ///   broadcast) at intra-node α/β;
    /// * inter: leaders only — the `2(N−1)`-hop flat ring over the `N`
    ///   nodes at inter-node α/β, with this leader's exact ring bytes.
    ///
    /// Quantise each component separately (`secs_to_ps`) and the split
    /// still reconciles exactly: `wire = intra_ps + inter_ps` by
    /// construction. Falls back to the flat
    /// [`CostModel::allreduce_rank_time`] (all intra) when the group
    /// fits in one node.
    pub fn hierarchical_allreduce_rank_time(
        &self,
        n_elems: usize,
        elem_bytes: u64,
        gpus: usize,
        gpus_per_node: usize,
        rank: usize,
    ) -> (f64, f64) {
        assert!(gpus >= 1 && rank < gpus);
        assert!(
            gpus_per_node >= 1,
            "topology needs at least one GPU per node"
        );
        let tb = crate::comm::hierarchical_allreduce_send_bytes(
            n_elems,
            gpus,
            gpus_per_node,
            rank,
            elem_bytes,
        );
        self.hierarchical_allreduce_rank_time_bytes(tb, gpus, gpus_per_node, rank)
    }

    /// Per-tier seconds for the hierarchical ALLREDUCE given the rank's
    /// exact per-tier wire bytes (hop counts depend only on topology, so
    /// they are unchanged by wire compression): the pricing primitive
    /// [`CostModel::hierarchical_allreduce_rank_time`] delegates to, and
    /// the entry point for codec-compressed per-tier volumes.
    pub fn hierarchical_allreduce_rank_time_bytes(
        &self,
        tb: TierBytes,
        gpus: usize,
        gpus_per_node: usize,
        rank: usize,
    ) -> (f64, f64) {
        assert!(gpus >= 1 && rank < gpus);
        assert!(
            gpus_per_node >= 1,
            "topology needs at least one GPU per node"
        );
        if gpus == 1 {
            return (0.0, 0.0);
        }
        if gpus <= gpus_per_node {
            return (self.allreduce_rank_time_bytes(tb.total(), gpus), 0.0);
        }
        let node = rank / gpus_per_node;
        let leader = node * gpus_per_node;
        let m = gpus_per_node.min(gpus - leader);
        let n_nodes = gpus.div_ceil(gpus_per_node);
        // Intra hops: m−1 reduce-scatter steps, plus one hand-off
        // (non-leader) or one broadcast round (leader of a >1 node).
        let mut intra_hops = (m - 1) as f64;
        if m > 1 {
            intra_hops += 1.0;
        }
        let intra = intra_hops * self.hw.intra_latency + tb.intra as f64 / self.hw.intra_node_bw;
        let inter = if rank == leader {
            2.0 * (n_nodes - 1) as f64 * self.hw.inter_latency
                + tb.inter as f64 / self.hw.inter_node_bw
        } else {
            0.0
        };
        (intra, inter)
    }

    /// Per-tier seconds *rank `rank`* spends in an ALLGATHER of
    /// `bytes_per_gpu` from each of `gpus` GPUs laid out
    /// `gpus_per_node` per node — the α–β mirror of
    /// [`crate::comm::peer_exchange_tier_bytes`]'s peer-exchange byte
    /// schedule, so a hierarchical run's two collectives (this and the
    /// ALLREDUCE) agree about topology. Returns `(intra_secs,
    /// inter_secs)`: the rank sends its payload once per peer, node-mates
    /// priced at intra-node α/β and remote peers at inter-node α/β
    /// (ragged last nodes keep the exact peer counts). Quantise each
    /// component separately (`secs_to_ps`) and `wire = intra_ps +
    /// inter_ps` reconciles exactly. Falls back to the flat
    /// [`CostModel::allgather_time`] (all intra) when the group fits in
    /// one node.
    pub fn allgather_rank_tier_time(
        &self,
        bytes_per_gpu: u64,
        gpus: usize,
        gpus_per_node: usize,
        rank: usize,
    ) -> (f64, f64) {
        assert!(gpus >= 1 && rank < gpus);
        assert!(
            gpus_per_node >= 1,
            "topology needs at least one GPU per node"
        );
        if gpus == 1 {
            return (0.0, 0.0);
        }
        if gpus <= gpus_per_node {
            return (self.allgather_time(bytes_per_gpu, gpus), 0.0);
        }
        let node_start = (rank / gpus_per_node) * gpus_per_node;
        let node_size = gpus_per_node.min(gpus - node_start);
        let intra_peers = (node_size - 1) as f64;
        let inter_peers = (gpus - node_size) as f64;
        let intra = intra_peers * self.hw.intra_latency
            + intra_peers * bytes_per_gpu as f64 / self.hw.intra_node_bw;
        let inter = inter_peers * self.hw.inter_latency
            + inter_peers * bytes_per_gpu as f64 / self.hw.inter_node_bw;
        (intra, inter)
    }

    /// Seconds for an ALLGATHER where each GPU contributes
    /// `bytes_per_gpu` and receives all others' contributions.
    pub fn allgather_time(&self, bytes_per_gpu: u64, gpus: usize) -> f64 {
        assert!(gpus >= 1);
        if gpus == 1 {
            return 0.0;
        }
        let g = gpus as f64;
        let alpha = self.hw.ring_latency(gpus);
        let beta = self.hw.ring_bandwidth(gpus);
        (g - 1.0) * alpha + (g - 1.0) * bytes_per_gpu as f64 / beta
    }

    /// Seconds of pure compute for `flops` floating-point operations on
    /// one GPU at the model's utilisation.
    pub fn compute_time(&self, flops: f64) -> f64 {
        flops / (self.hw.peak_flops * self.utilization)
    }

    /// Seconds to touch `bytes` of device memory during a local gradient
    /// application (the paper notes the `Θ(G·K·D)` *update* cost too).
    /// Modeled at HBM stream rate ~300 GB/s for the Titan X generation.
    pub fn memory_touch_time(&self, bytes: u64) -> f64 {
        bytes as f64 / 300.0e9
    }

    /// Seconds a wire codec spends processing `raw_bytes` of payload at
    /// `throughput_bps` raw bytes per second (see
    /// [`crate::codec::WireCodec::throughput_bps`]) — the compute side
    /// of the volume-vs-compute
    /// tradeoff. Codecs run on-node before the NIC, so callers charge
    /// this to the intra tier. The identity codec's infinite throughput
    /// yields exactly zero.
    pub fn codec_time(&self, raw_bytes: u64, throughput_bps: f64) -> f64 {
        assert!(throughput_bps > 0.0, "codec throughput must be positive");
        raw_bytes as f64 / throughput_bps
    }

    /// Achieved cluster FLOP/s over `gpus` GPUs.
    pub fn achieved_cluster_flops(&self, gpus: usize) -> f64 {
        self.hw.cluster_peak_flops(gpus) * self.utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(HardwareConfig::titan_x_cluster(), 0.4)
    }

    #[test]
    fn allreduce_time_scales_with_bytes() {
        let m = model();
        let t1 = m.allreduce_time(1 << 20, 8);
        let t2 = m.allreduce_time(1 << 26, 8);
        assert!(t2 > t1 * 10.0, "t1={t1} t2={t2}");
    }

    #[test]
    fn allreduce_single_gpu_free() {
        assert_eq!(model().allreduce_time(1 << 30, 1), 0.0);
        assert_eq!(model().allgather_time(1 << 30, 1), 0.0);
    }

    #[test]
    fn allreduce_bandwidth_term_saturates_with_g() {
        // 2(G−1)/G approaches 2: doubling G at fixed volume must not
        // double time (latency term aside) once inter-node.
        let m = model();
        let t16 = m.allreduce_time(100 << 20, 16);
        let t64 = m.allreduce_time(100 << 20, 64);
        assert!(t64 < t16 * 1.3, "t16={t16} t64={t64}");
    }

    #[test]
    fn allgather_grows_linearly_with_g() {
        // The baseline's pain: fixed per-GPU contribution, total time
        // ∝ (G−1).
        let m = model();
        let t16 = m.allgather_time(10 << 20, 16);
        let t64 = m.allgather_time(10 << 20, 64);
        let ratio = t64 / t16;
        assert!((ratio - 63.0 / 15.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn compute_time_matches_utilization() {
        let m = model();
        // 2.44 TFLOP at 40% of 6.1 TFLOP/s takes 1 second.
        let t = m.compute_time(2.44e12);
        assert!((t - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_rank_allreduce_matches_aggregate_when_divisible() {
        // When n divides by G every rank moves the idealised 2(G−1)/G·n
        // bytes, so the per-rank expression equals the aggregate one.
        let m = model();
        for gpus in [2usize, 4, 8] {
            let n = 1024 * gpus;
            let whole = m.allreduce_time(n as u64 * 4, gpus);
            for r in 0..gpus {
                let per = m.allreduce_rank_time(n, 4, gpus, r);
                assert!(
                    (per - whole).abs() < 1e-12,
                    "gpus {gpus} rank {r}: {per} vs {whole}"
                );
            }
        }
        assert_eq!(m.allreduce_rank_time(1 << 20, 4, 1, 0), 0.0);
    }

    #[test]
    fn hierarchical_rank_time_tiers_and_fallback() {
        let m = model();
        // One-node groups collapse to the flat per-rank expression.
        for r in 0..4 {
            let (intra, inter) = m.hierarchical_allreduce_rank_time(1000, 4, 4, 8, r);
            assert_eq!(intra, m.allreduce_rank_time(1000, 4, 4, r));
            assert_eq!(inter, 0.0);
        }
        // Multi-node: only leaders pay inter time; members pay none.
        let (gpus, gpn, n) = (24usize, 8usize, 10_000usize);
        for r in 0..gpus {
            let (intra, inter) = m.hierarchical_allreduce_rank_time(n, 4, gpus, gpn, r);
            assert!(intra > 0.0);
            if r % gpn == 0 {
                assert!(inter > 0.0, "leader {r} must pay the Infiniband tier");
            } else {
                assert_eq!(inter, 0.0, "member {r} must not touch Infiniband");
            }
        }
        assert_eq!(
            m.hierarchical_allreduce_rank_time(1 << 20, 4, 1, 8, 0),
            (0.0, 0.0)
        );
    }

    #[test]
    fn hierarchical_beats_flat_ring_at_paper_scale() {
        // Table V's regime: 192 GPUs on 24 nodes. The flat ring pays
        // 2(G−1) inter-node latencies; the hierarchical schedule pays
        // 2(N−1) plus cheap intra hops, and wins per step.
        let m = model();
        let (gpus, gpn, n) = (192usize, 8usize, 100_000usize);
        let flat: f64 = (0..gpus)
            .map(|r| m.allreduce_rank_time(n, 4, gpus, r))
            .fold(0.0, f64::max);
        let hier: f64 = (0..gpus)
            .map(|r| {
                let (a, b) = m.hierarchical_allreduce_rank_time(n, 4, gpus, gpn, r);
                a + b
            })
            .fold(0.0, f64::max);
        assert!(hier < flat, "hier {hier} must beat flat {flat}");
    }

    #[test]
    fn allgather_tier_time_splits_and_falls_back() {
        let m = model();
        // One-node groups collapse to the flat expression, all intra.
        for r in 0..4 {
            let (intra, inter) = m.allgather_rank_tier_time(1 << 16, 4, 8, r);
            assert_eq!(intra, m.allgather_time(1 << 16, 4));
            assert_eq!(inter, 0.0);
        }
        // Multi-node (ragged): every rank pays both tiers, peer counts
        // follow the node sizes — rank 4 sits alone on node 2 and has
        // no intra peers at all.
        let (gpus, gpn) = (5usize, 2usize);
        for r in 0..gpus {
            let (intra, inter) = m.allgather_rank_tier_time(1 << 16, gpus, gpn, r);
            if r == 4 {
                assert_eq!(intra, 0.0, "lone rank on the last node");
            } else {
                assert!(intra > 0.0);
            }
            assert!(inter > 0.0);
        }
        assert_eq!(m.allgather_rank_tier_time(1 << 20, 1, 8, 0), (0.0, 0.0));
    }

    #[test]
    fn intra_node_cheaper_than_inter() {
        let m = model();
        assert!(m.allreduce_time(1 << 24, 8) < m.allreduce_time(1 << 24, 9));
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn zero_utilization_rejected() {
        CostModel::new(HardwareConfig::titan_x_cluster(), 0.0);
    }
}
