//! Property tests for §III-C compression-scaling: the FP16 collectives
//! multiply by `scale` before narrowing to binary16 and divide after
//! widening, so the wire round-trip is `f16(x·s)/s`. The properties pin
//! down what the trainer relies on:
//!
//! * bounded relative round-trip error across the representable range,
//! * no `inf`/`NaN` ever materialises while `|x·s|` stays under the
//!   binary16 overflow threshold,
//! * values whose scaled image is exactly representable survive the
//!   round-trip bit-for-bit.

use proptest::prelude::*;
use simgpu::{f16_bits_to_f32, f32_to_f16_bits};

/// The wire round-trip the FP16 collectives apply to every element.
fn round_trip(x: f32, scale: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x * scale)) / scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Round-to-nearest-even on the 11-bit significand gives a relative
    /// error of at most 2⁻¹¹ in the normal range, plus an absolute
    /// subnormal quantum of 2⁻²⁵ (pre-scaling) near zero. The bound is
    /// `|x|·2⁻¹¹·(1+ε) + 2⁻²⁵/scale` — valid over normals *and*
    /// subnormals, for every compression scale.
    #[test]
    fn round_trip_error_is_bounded(
        x in -60_000.0f32..60_000.0,
        scale_pow in 0u32..10,
    ) {
        let scale = (1u32 << scale_pow) as f32; // 1, 2, …, 512 — the paper's default is 512
        prop_assume!((x * scale).abs() < 65_500.0); // stay under binary16 overflow (65 520 rounds to inf)
        let y = round_trip(x, scale);
        let bound = x.abs() * (1.0 / 2048.0) * 1.0001 + 2.0f32.powi(-25) / scale;
        prop_assert!(
            (y - x).abs() <= bound,
            "x={x} scale={scale}: round-trip {y}, err {} > bound {bound}",
            (y - x).abs()
        );
    }

    /// Within the representable range the round-trip must never
    /// manufacture a non-finite value — the trainer feeds the result
    /// straight into weight updates.
    #[test]
    fn round_trip_never_produces_inf_or_nan(
        x in -100_000.0f32..100_000.0,
        scale_pow in 0u32..10,
    ) {
        let scale = (1u32 << scale_pow) as f32;
        prop_assume!((x * scale).abs() < 65_500.0);
        let y = round_trip(x, scale);
        prop_assert!(y.is_finite(), "x={x} scale={scale} -> {y}");
    }

    /// Exactness: when `x·s = m·2^shift` with an 11-bit `m` in binary16's
    /// normal range, narrowing loses nothing, and dividing by a
    /// power-of-two scale is exact in f32 — so `x` comes back
    /// bit-for-bit.
    #[test]
    fn exactly_representable_values_round_trip_exactly(
        m in 0u32..2048,
        shift in -14i32..5,
        scale_idx in 0usize..3,
        negate in 0u32..2,
    ) {
        let scale = [1.0f32, 2.0, 512.0][scale_idx];
        let sign = if negate == 1 { -1.0f32 } else { 1.0 };
        let scaled = sign * (m as f32) * 2.0f32.powi(shift);
        let x = scaled / scale;
        let y = round_trip(x, scale);
        prop_assert_eq!(
            y.to_bits(),
            x.to_bits(),
            "m={} shift={} scale={}: {} -> {}",
            m, shift, scale, x, y
        );
    }
}
