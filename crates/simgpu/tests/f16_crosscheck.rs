//! Exhaustive bit-for-bit agreement between `simgpu`'s binary16
//! converters (duplicated to keep the substrate dependency-acyclic) and
//! `tensor::F16`, the reference implementation. Any drift between the
//! two would silently change what the compressed collectives put on the
//! wire versus what the accuracy experiments model.

use simgpu::{f16_bits_to_f32, f32_to_f16_bits};
use tensor::F16;

#[test]
fn f16_to_f32_agrees_for_every_bit_pattern() {
    for bits in 0u16..=0xffff {
        let ours = f16_bits_to_f32(bits);
        let reference = F16(bits).to_f32();
        assert_eq!(
            ours.to_bits(),
            reference.to_bits(),
            "bits {bits:#06x}: simgpu {ours} vs tensor {reference}"
        );
    }
}

#[test]
fn f32_to_f16_agrees_on_every_half_value_and_neighbours() {
    // Every binary16 value, exactly representable in f32, plus the f32
    // immediately below and above it — the neighbourhoods where rounding
    // decisions (round-to-nearest-even, carry into exponent, subnormal
    // shift) can diverge.
    for bits in 0u16..=0xffff {
        let x = F16(bits).to_f32();
        for probe in [x, f32_next_down(x), f32_next_up(x)] {
            assert_eq!(
                f32_to_f16_bits(probe),
                F16::from_f32(probe).0,
                "probe {probe:e} (from bits {bits:#06x})"
            );
        }
    }
}

#[test]
fn f32_to_f16_agrees_on_halfway_points() {
    // Midpoints between consecutive finite binary16 values are the
    // round-to-nearest-even tie cases; check the tie and both sides.
    for bits in 0u16..0x7bff {
        let lo = F16(bits);
        if lo.is_nan() || lo.is_infinite() {
            continue;
        }
        let hi = F16(bits + 1);
        if hi.is_nan() || hi.is_infinite() {
            continue;
        }
        let mid = (lo.to_f32() as f64 + hi.to_f32() as f64) / 2.0;
        let mid = mid as f32;
        for probe in [mid, f32_next_down(mid), f32_next_up(mid)] {
            assert_eq!(
                f32_to_f16_bits(probe),
                F16::from_f32(probe).0,
                "midpoint probe {probe:e} between {bits:#06x} and {:#06x}",
                bits + 1
            );
        }
    }
}

#[test]
fn f32_to_f16_agrees_on_specials_and_deterministic_sweep() {
    let specials = [
        0.0f32,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MIN_POSITIVE,
        f32::MAX,
        f32::MIN,
        65504.0,
        65505.0,
        65520.0, // first f32 that rounds to f16 infinity
        6.103_515_6e-5,
        5.96e-8,
        1e-8,
    ];
    for &x in &specials {
        assert_eq!(f32_to_f16_bits(x), F16::from_f32(x).0, "special {x:e}");
    }
    // SplitMix64-driven sweep over arbitrary f32 bit patterns.
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for _ in 0..1_000_000 {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let x = f32::from_bits((z ^ (z >> 31)) as u32);
        assert_eq!(
            f32_to_f16_bits(x),
            F16::from_f32(x).0,
            "sweep value {x:e} ({:#010x})",
            x.to_bits()
        );
    }
}

/// Largest f32 strictly below `x` (next_down, stable-Rust substitute).
fn f32_next_down(x: f32) -> f32 {
    if x.is_nan() || x == f32::NEG_INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x == 0.0 {
        0x8000_0001 // -min_subnormal (covers both +0.0 and -0.0)
    } else if bits >> 31 == 0 {
        bits - 1
    } else {
        bits + 1
    };
    f32::from_bits(next)
}

/// Smallest f32 strictly above `x`.
fn f32_next_up(x: f32) -> f32 {
    if x.is_nan() || x == f32::INFINITY {
        return x;
    }
    let bits = x.to_bits();
    let next = if x == 0.0 {
        0x0000_0001
    } else if bits >> 31 == 0 {
        bits + 1
    } else {
        bits - 1
    };
    f32::from_bits(next)
}
