//! Minimal fixed-width table printer for paper-style output.

/// Renders rows of cells with right-aligned columns.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, (c, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&" ".repeat(w - c.len()));
            out.push_str(c);
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats an optional hours value (`*` = OOM, as in the paper).
pub fn hours(h: Option<f64>) -> String {
    match h {
        Some(v) => format!("{v:.1}"),
        None => "*".to_string(),
    }
}

/// Formats an optional efficiency as a percentage.
pub fn pct(p: Option<f64>) -> String {
    match p {
        Some(v) => format!("{:.0}%", v * 100.0),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let s = render(
            &["GPUs", "Time"],
            &[
                vec!["8".into(), "35.1".into()],
                vec!["16".into(), "41.1".into()],
            ],
        );
        assert!(s.contains("GPUs  Time"));
        assert!(s.contains("   8  35.1"));
        assert!(s.contains("  16  41.1"));
    }

    #[test]
    fn formats_oom_and_pct() {
        assert_eq!(hours(None), "*");
        assert_eq!(hours(Some(4.53)), "4.5");
        assert_eq!(pct(Some(0.761)), "76%");
        assert_eq!(pct(None), "-");
    }
}
