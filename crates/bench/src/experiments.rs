//! One runner per paper artifact.

use corpus::{corpus_stats, CorpusGenerator, CorpusStats, DatasetProfile, TokenUnit};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zipf::{fit_power_law, heaps_curve_from_sampler, HeapsPoint, PowerLawFit};
use zipf::{heaps::log_checkpoints, ZipfMandelbrot};
use zipf_lm::seeding::SeedStrategy;
use zipf_lm::{
    CheckpointConfig, CommConfig, Method, MetricsConfig, ModelKind, TraceConfig, TrainConfig,
    TrainReport,
};

/// One dataset's type–token curve and its power-law fit (Figure 1).
#[derive(Debug, Clone)]
pub struct HeapsSeries {
    /// Dataset short name ("1b", "gb", "cc", "ar").
    pub name: &'static str,
    /// Measured `(N, U)` points.
    pub points: Vec<HeapsPoint>,
    /// Log–log least-squares fit `U = a·N^α`.
    pub fit: PowerLawFit,
}

/// Figure 1: type–token curves for the four word profiles, swept to
/// `max_tokens` (the paper sweeps to 5·10⁷; 10⁶ reproduces the fit in
/// seconds).
pub fn fig1(max_tokens: u64, seed: u64) -> Vec<HeapsSeries> {
    DatasetProfile::figure1_profiles()
        .into_iter()
        .map(|p| {
            let dist = ZipfMandelbrot::new(p.word_types, p.zipf_s, p.zipf_q);
            let cps = log_checkpoints(500, max_tokens, 4);
            let mut rng = StdRng::seed_from_u64(seed);
            let points = heaps_curve_from_sampler(&mut rng, p.word_types, &cps, |r| dist.sample(r));
            let xs: Vec<f64> = points.iter().map(|q| q.tokens as f64).collect();
            let ys: Vec<f64> = points.iter().map(|q| q.types as f64).collect();
            let fit = fit_power_law(&xs, &ys).expect("fit");
            HeapsSeries {
                name: p.name,
                points,
                fit,
            }
        })
        .collect()
}

/// One Table I row: synthetic stats next to the paper's real-corpus
/// numbers.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name.
    pub name: &'static str,
    /// Synthetic corpus statistics at `1/scale` of the real size.
    pub stats: CorpusStats,
    /// The profile (for the paper-side columns).
    pub profile: DatasetProfile,
}

/// Table I: generate each dataset at `1/scale` of its paper size and
/// measure.
pub fn table1(scale: f64, seed: u64) -> Vec<Table1Row> {
    DatasetProfile::table1_profiles()
        .into_iter()
        .map(|p| {
            let (unit, n, bytes_per_char) = match p.language {
                corpus::Language::Chinese => (
                    TokenUnit::Char,
                    (p.paper_chars_billion * 1e9 / scale) as usize,
                    3,
                ),
                corpus::Language::English => (
                    TokenUnit::Word,
                    (p.paper_words_billion.unwrap_or(1.0) * 1e9 / scale) as usize,
                    1,
                ),
            };
            let c = CorpusGenerator::new(&p, unit, seed).corpus(n);
            Table1Row {
                name: p.name,
                stats: corpus_stats(&c, bytes_per_char),
                profile: p,
            }
        })
        .collect()
}

/// One accuracy curve (Figures 5, 7, 8): label + per-epoch validation
/// perplexity.
#[derive(Debug, Clone)]
pub struct AccuracyCurve {
    /// Legend label.
    pub label: String,
    /// `(epoch, validation perplexity)` points.
    pub points: Vec<(usize, f64)>,
    /// The raw report for deeper inspection.
    pub report: TrainReport,
}

fn curve(label: String, cfg: &TrainConfig) -> AccuracyCurve {
    let report = zipf_lm::train(cfg).expect("training run");
    let points = report
        .epochs
        .iter()
        .map(|e| (e.epoch + 1, e.valid_ppl))
        .collect();
    AccuracyCurve {
        label,
        points,
        report,
    }
}

/// Base configuration for the accuracy experiments; `quick` trades
/// fidelity for seconds-scale runtime.
fn accuracy_cfg(quick: bool) -> TrainConfig {
    TrainConfig {
        model: ModelKind::Word {
            vocab: if quick { 300 } else { 1500 },
        },
        gpus: 2,
        batch: 4,
        seq_len: 10,
        steps_per_epoch: 0, // full shard per epoch
        epochs: if quick { 3 } else { 4 },
        base_lr: 0.35,
        lr_decay: 0.85,
        method: Method::unique(),
        seed: 42,
        tokens: if quick { 80_000 } else { 240_000 },
        trace: TraceConfig::off(),
        metrics: MetricsConfig::off(),
        checkpoint: CheckpointConfig::off(),
        comm: CommConfig::flat(),
    }
}

/// Figure 5: word-LM perplexity vs epoch at three GPU counts. The paper
/// uses 16/32/64; we keep the same 1:2:4 ratios at 2/4/8 simulated GPUs.
pub fn fig5(quick: bool) -> Vec<AccuracyCurve> {
    [2usize, 4, 8]
        .iter()
        .map(|&g| {
            let mut cfg = accuracy_cfg(quick);
            cfg.gpus = g;
            curve(format!("{g} gpu"), &cfg)
        })
        .collect()
}

/// §V-A compression accuracy: word-LM perplexity after training with and
/// without FP16 compression (the paper: 84.68 vs 84.12 after one epoch —
/// i.e. indistinguishable).
pub fn compression_accuracy(quick: bool) -> (f64, f64) {
    let mut cfg = accuracy_cfg(quick);
    cfg.method = Method::unique_seeded();
    let without = zipf_lm::train(&cfg).expect("run").final_ppl();
    cfg.method = Method::full();
    let with = zipf_lm::train(&cfg).expect("run").final_ppl();
    (without, with)
}

/// Figure 7: seeding strategies at a fixed GPU count (the paper uses 64;
/// we use 8 so every strategy has a distinct seed count).
pub fn fig7(quick: bool) -> Vec<AccuracyCurve> {
    SeedStrategy::figure7_strategies()
        .into_iter()
        .map(|s| {
            let mut cfg = accuracy_cfg(quick);
            cfg.gpus = 8;
            cfg.batch = 2;
            cfg.method = Method {
                unique: true,
                seeding: s,
                compression: None,
            };
            curve(s.label().to_string(), &cfg)
        })
        .collect()
}

/// Figure 8: char-LM perplexity vs epoch at three GPU counts.
pub fn fig8(quick: bool) -> Vec<AccuracyCurve> {
    [2usize, 4, 8]
        .iter()
        .map(|&g| {
            let mut cfg = accuracy_cfg(quick);
            cfg.model = ModelKind::Char { vocab: 98 };
            cfg.gpus = g;
            cfg.base_lr = 0.8;
            curve(format!("{g} gpu"), &cfg)
        })
        .collect()
}

/// One Table V perplexity row from real miniature weak scaling.
#[derive(Debug, Clone)]
pub struct WeakScalingAccuracy {
    /// Simulated GPUs.
    pub gpus: usize,
    /// Corpus tokens (grows with GPUs — weak scaling).
    pub tokens: usize,
    /// Final validation perplexity.
    pub ppl: f64,
    /// Compression ratio vs a 16-bit/char encoding (§V-C metric).
    pub compression_ratio: f64,
}

/// Table V's accuracy trend in miniature: 1×/4×/32× data on 1×/4×/32×
/// GPUs (6/24/192 in the paper; 1/4/8-capped here), same validation set
/// semantics (fixed seed ⇒ same held-out distribution).
pub fn table5_accuracy(quick: bool) -> Vec<WeakScalingAccuracy> {
    let base_tokens = if quick { 40_000 } else { 150_000 };
    // Like Table V, the learning rate grows with scale (the paper: 2e-4 /
    // 4e-4 / 5e-4) to compensate the larger global batch.
    [(1usize, 1usize, 0.8f32), (4, 8, 1.1), (8, 32, 1.4)]
        .iter()
        .map(|&(g, data_mult, base_lr)| {
            let cfg = TrainConfig {
                model: ModelKind::Char { vocab: 200 },
                gpus: g,
                batch: 4,
                seq_len: 10,
                steps_per_epoch: 0,
                epochs: if quick { 1 } else { 2 },
                base_lr,
                lr_decay: 0.9,
                method: Method::full(),
                seed: 1234, // fixed so the validation distribution matches
                tokens: base_tokens * data_mult,
                trace: TraceConfig::off(),
                metrics: MetricsConfig::off(),
                checkpoint: CheckpointConfig::off(),
                comm: CommConfig::flat(),
            };
            let report = zipf_lm::train(&cfg).expect("run");
            let ppl = report.final_ppl();
            WeakScalingAccuracy {
                gpus: g,
                tokens: cfg.tokens,
                ppl,
                compression_ratio: 16.0 / ppl.log2(),
            }
        })
        .collect()
}

/// One world of the Table V weak-scaling column at the paper's *real*
/// GPU counts (6/24/192), trained through the bounded run pool and the
/// two-tier hierarchical collectives.
#[derive(Debug, Clone)]
pub struct WeakScalingRow {
    /// Simulated GPUs (a real rank thread group, pool-multiplexed).
    pub gpus: usize,
    /// Nodes spanned at the hardware preset's 8 GPUs/node.
    pub nodes: usize,
    /// Corpus tokens (grows with GPUs — weak scaling).
    pub tokens: usize,
    /// Final epoch training loss (bit-identical to the flat ring).
    pub train_loss: f64,
    /// Final validation perplexity.
    pub final_ppl: f64,
    /// Rank 0's summed simulated step time.
    pub sim_time_ps: u64,
    /// Recorder bytes on the intra-node (PCIe) tier.
    pub wire_intra_bytes: u64,
    /// Recorder bytes on the inter-node (IB) tier.
    pub wire_inter_bytes: u64,
    /// Attributed wire time on the intra-node tier (rank 0).
    pub wire_intra_ps: u64,
    /// Attributed wire time on the inter-node tier (rank 0).
    pub wire_inter_ps: u64,
}

/// Table V's world sizes: 1 node, 3 nodes, 24 nodes of 8.
pub const WEAK_SCALING_WORLDS: [usize; 3] = [6, 24, 192];

/// Run-slot cap for the weak-scaling runs — the whole point is that
/// 192 ranks multiplex over this many OS threads.
pub const WEAK_SCALING_POOL: usize = 8;

/// Table V's 6/24/192-GPU column at real world sizes: data scales with
/// the world (weak scaling), comm goes through the hierarchical
/// two-tier schedule under the bounded pool, and every world is
/// checked bit-identical against an unpooled flat-ring run before its
/// row is reported — the experiment is its own correctness guard.
pub fn weak_scaling(quick: bool) -> Vec<WeakScalingRow> {
    let base_tokens = if quick { 30_000 } else { 90_000 };
    WEAK_SCALING_WORLDS
        .iter()
        .map(|&g| {
            let tokens = base_tokens * g / WEAK_SCALING_WORLDS[0];
            let cfg = TrainConfig {
                model: ModelKind::Char { vocab: 48 },
                gpus: g,
                batch: 1,
                seq_len: 6,
                steps_per_epoch: if quick { 3 } else { 8 },
                epochs: 1,
                base_lr: 0.2,
                lr_decay: 0.9,
                method: Method::unique(),
                seed: 1234,
                tokens,
                trace: TraceConfig::off(),
                metrics: MetricsConfig::off(),
                checkpoint: CheckpointConfig::off(),
                comm: CommConfig::hierarchical_pooled(WEAK_SCALING_POOL),
            };
            let hier = zipf_lm::train(&cfg).expect("hierarchical pooled run");
            let flat = zipf_lm::train(&TrainConfig {
                comm: CommConfig::flat(),
                ..cfg.clone()
            })
            .expect("flat unpooled run");

            // Topology must never change results: the hierarchical
            // schedule reduces in canonical ascending-rank order, so
            // every step loss is bit-equal to the flat ring's.
            assert_eq!(hier.steps.len(), flat.steps.len());
            for (h, f) in hier.steps.iter().zip(&flat.steps) {
                assert_eq!(
                    h.train_loss.to_bits(),
                    f.train_loss.to_bits(),
                    "world {g} step {} diverged from the flat ring",
                    h.step
                );
                assert_eq!(h.attribution.total_ps(), h.sim_time_ps);
            }

            WeakScalingRow {
                gpus: g,
                nodes: g.div_ceil(8),
                tokens,
                train_loss: hier.epochs.last().unwrap().train_loss,
                final_ppl: hier.final_ppl(),
                sim_time_ps: hier.steps.iter().map(|s| s.sim_time_ps).sum(),
                wire_intra_bytes: hier.traffic.intra_bytes(),
                wire_inter_bytes: hier.traffic.inter_bytes(),
                wire_intra_ps: hier.attribution.wire_intra_ps,
                wire_inter_ps: hier.attribution.wire_inter_ps,
            }
        })
        .collect()
}

/// Renders weak-scaling rows as the `BENCH_weak_scaling.json` artifact
/// (hand-rolled — the workspace carries no JSON dependency).
pub fn weak_scaling_json(rows: &[WeakScalingRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"weak_scaling\",\n");
    out.push_str(&format!(
        "  \"pool_workers\": {WEAK_SCALING_POOL},\n  \"rows\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"gpus\": {}, \"nodes\": {}, \"tokens\": {}, \
             \"train_loss\": {}, \"final_ppl\": {}, \"sim_time_ps\": {}, \
             \"wire_intra_bytes\": {}, \"wire_inter_bytes\": {}, \
             \"wire_intra_ps\": {}, \"wire_inter_ps\": {}}}{}\n",
            r.gpus,
            r.nodes,
            r.tokens,
            r.train_loss,
            r.final_ppl,
            r.sim_time_ps,
            r.wire_intra_bytes,
            r.wire_inter_bytes,
            r.wire_intra_ps,
            r.wire_inter_ps,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One world of the overlapped-schedule comparison: the same training
/// run priced under three step schedules (all numerically
/// bit-identical — the schedule only moves modelled time).
#[derive(Debug, Clone)]
pub struct OverlapRow {
    /// Simulated GPUs.
    pub gpus: usize,
    /// Gradient-bucket size used by the bucketed schedules.
    pub bucket_bytes: u64,
    /// Summed `sim_time_ps` under the default serial schedule
    /// (`CommConfig::hierarchical_pooled`, no buckets, no overlap).
    /// This is the pre-refactor step model — CI pins it byte-identical
    /// against the committed `BENCH_overlap.json` golden.
    pub flat_sim_time_ps: u64,
    /// Summed `sim_time_ps` with gradient buckets but overlap off:
    /// the serial reference the overlapped schedule is measured
    /// against (same collectives, same latency terms).
    pub serial_sim_time_ps: u64,
    /// Summed `sim_time_ps` with buckets *and* overlap on — bucket
    /// `i`'s collective runs while bucket `i+1`'s compute streams.
    pub overlapped_sim_time_ps: u64,
    /// Rank 0's summed `overlapped_ps` bucket: comm hidden under
    /// compute by the schedule.
    pub hidden_ps: u64,
    /// Final epoch training loss (identical across all three runs).
    pub train_loss: f64,
}

/// Bucket size for the overlap comparison. Large enough that the extra
/// per-bucket latency terms stay small next to the payload's wire
/// time, small enough that the dense gradient still splits into
/// several buckets at these model shapes.
pub const OVERLAP_BUCKET_BYTES: u64 = 65_536;

/// Worlds for the overlap comparison: 6 nodes and the paper's
/// wire-dominated 24-node world.
pub const OVERLAP_WORLDS: [usize; 2] = [48, 192];

/// Serial-vs-overlapped schedule comparison at paper-scale
/// wire-dominated worlds. Each world trains three times under the
/// bounded pool — default serial, bucketed serial, bucketed
/// overlapped — asserts the schedules never change numerics and that
/// the attribution identity stays exact, and reports the summed
/// simulated times. The experiment is its own correctness guard:
/// overlap must strictly reduce `sim_time_ps` against the bucketed
/// serial reference.
pub fn overlap_comparison(quick: bool) -> Vec<OverlapRow> {
    OVERLAP_WORLDS
        .iter()
        .map(|&g| {
            // batch × seq_len sets the compute window the schedule can
            // hide comm under; these worlds are latency-dominated, so
            // the reduction is bounded by the compute share of a step.
            let cfg = TrainConfig {
                model: ModelKind::Char { vocab: 48 },
                gpus: g,
                batch: 4,
                seq_len: 32,
                steps_per_epoch: if quick { 3 } else { 8 },
                epochs: 1,
                base_lr: 0.2,
                lr_decay: 0.9,
                method: Method::unique(),
                seed: 1234,
                tokens: 60_000 * g / OVERLAP_WORLDS[0],
                trace: TraceConfig::off(),
                metrics: MetricsConfig::off(),
                checkpoint: CheckpointConfig::off(),
                comm: CommConfig::hierarchical_pooled(WEAK_SCALING_POOL),
            };
            let flat = zipf_lm::train(&cfg).expect("serial unbucketed run");
            let serial = zipf_lm::train(&TrainConfig {
                comm: CommConfig {
                    bucket_bytes: OVERLAP_BUCKET_BYTES,
                    ..CommConfig::hierarchical_pooled(WEAK_SCALING_POOL)
                },
                ..cfg.clone()
            })
            .expect("serial bucketed run");
            let over = zipf_lm::train(&TrainConfig {
                comm: CommConfig::hierarchical_pooled(WEAK_SCALING_POOL)
                    .overlapped(OVERLAP_BUCKET_BYTES),
                ..cfg.clone()
            })
            .expect("overlapped run");

            // The schedule moves modelled time only — never bits.
            assert_eq!(flat.steps.len(), serial.steps.len());
            assert_eq!(flat.steps.len(), over.steps.len());
            let mut hidden = 0u64;
            for ((f, s), o) in flat.steps.iter().zip(&serial.steps).zip(&over.steps) {
                assert_eq!(f.train_loss.to_bits(), s.train_loss.to_bits());
                assert_eq!(f.train_loss.to_bits(), o.train_loss.to_bits());
                assert_eq!(s.attribution.total_ps(), s.sim_time_ps);
                assert_eq!(o.attribution.total_ps(), o.sim_time_ps);
                assert_eq!(s.attribution.overlapped_ps, 0, "overlap off hid comm");
                assert!(o.sim_time_ps <= s.sim_time_ps, "critical path > serial");
                hidden += o.attribution.overlapped_ps;
            }
            let total = |r: &TrainReport| r.steps.iter().map(|s| s.sim_time_ps).sum::<u64>();
            let (serial_ps, over_ps) = (total(&serial), total(&over));
            assert!(
                over_ps < serial_ps,
                "world {g}: overlap did not reduce sim time ({over_ps} vs {serial_ps})"
            );
            OverlapRow {
                gpus: g,
                bucket_bytes: OVERLAP_BUCKET_BYTES,
                flat_sim_time_ps: total(&flat),
                serial_sim_time_ps: serial_ps,
                overlapped_sim_time_ps: over_ps,
                hidden_ps: hidden,
                train_loss: over.epochs.last().unwrap().train_loss,
            }
        })
        .collect()
}

/// Renders overlap rows as the `BENCH_overlap.json` artifact. Every
/// field is simulated (machine-independent), so the file is
/// deterministic and CI pins it byte-identical against the committed
/// golden — the overlap-off columns are the pre-refactor step times.
pub fn overlap_json(rows: &[OverlapRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"overlap\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"gpus\": {}, \"bucket_bytes\": {}, \
             \"flat_sim_time_ps\": {}, \"serial_sim_time_ps\": {}, \
             \"overlapped_sim_time_ps\": {}, \"hidden_ps\": {}, \
             \"train_loss\": {}}}{}\n",
            r.gpus,
            r.bucket_bytes,
            r.flat_sim_time_ps,
            r.serial_sim_time_ps,
            r.overlapped_sim_time_ps,
            r.hidden_ps,
            r.train_loss,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One (world, codec) cell of the volume-vs-compute crossover sweep:
/// the same training run under one wire codec, with its recorded wire
/// volume and modelled time. All cells of a world are numerically
/// bit-identical — lossless codecs move bytes and picoseconds only.
#[derive(Debug, Clone)]
pub struct CodecCrossoverRow {
    /// Simulated GPUs.
    pub gpus: usize,
    /// Codec name (`WireCodecId::name`).
    pub codec: &'static str,
    /// Summed `sim_time_ps` over the run — wire time saved by the
    /// codec minus the encode/decode compute it buys.
    pub sim_time_ps: u64,
    /// Recorder total over the run (all collectives, both tiers).
    pub wire_bytes: u64,
    /// Recorder ALLGATHER total — the unique-index path the
    /// delta+varint codec compresses.
    pub index_gather_bytes: u64,
    /// Final epoch training loss (identical across the whole ladder).
    pub train_loss: f64,
}

/// Worlds for the codec crossover: an all-intra single node (where the
/// fat NVLink-class links make codec compute a bad trade), the 6-node
/// world, and the paper's wire-dominated 24-node world.
pub const CODEC_CROSSOVER_WORLDS: [usize; 3] = [8, 48, 192];

/// The volume-vs-compute crossover sweep: every world in
/// [`CODEC_CROSSOVER_WORLDS`] trains once per rung of the codec ladder
/// (identity + the three lossless codecs) on the two-tier pooled
/// topology. Asserts the lossless contract inline — losses bit-equal to
/// identity, wire volume never above identity, and the unique-index
/// path *strictly* compressed at every multi-node world — then reports
/// the byte/time surface so the crossover (where cheaper wire stops
/// paying for codec compute) is machine-readable.
pub fn codec_crossover(quick: bool) -> Vec<CodecCrossoverRow> {
    let mut rows = Vec::new();
    for &g in &CODEC_CROSSOVER_WORLDS {
        let cfg = TrainConfig {
            model: ModelKind::Char { vocab: 48 },
            gpus: g,
            batch: 4,
            seq_len: 32,
            steps_per_epoch: if quick { 3 } else { 8 },
            epochs: 1,
            base_lr: 0.2,
            lr_decay: 0.9,
            method: Method::unique(),
            seed: 1234,
            tokens: 60_000 * g.max(48) / 48,
            trace: TraceConfig::off(),
            metrics: MetricsConfig::off(),
            checkpoint: CheckpointConfig::off(),
            comm: CommConfig::hierarchical_pooled(WEAK_SCALING_POOL),
        };
        let identity = zipf_lm::train(&cfg).expect("identity run");
        let total_ps = |r: &TrainReport| r.steps.iter().map(|s| s.sim_time_ps).sum::<u64>();
        let mut push = |codec: simgpu::WireCodecId, rep: &TrainReport| {
            rows.push(CodecCrossoverRow {
                gpus: g,
                codec: codec.name(),
                sim_time_ps: total_ps(rep),
                wire_bytes: rep.traffic.total_bytes(),
                index_gather_bytes: rep.traffic.allgather_bytes,
                train_loss: rep.epochs.last().unwrap().train_loss,
            });
        };
        push(simgpu::WireCodecId::Identity, &identity);
        for codec in simgpu::WireCodecId::lossless_ladder() {
            let rep = zipf_lm::train(&TrainConfig {
                comm: CommConfig::hierarchical_pooled(WEAK_SCALING_POOL).with_codec(codec),
                ..cfg.clone()
            })
            .expect("codec run");
            // Lossless means lossless: bit-equal losses, never-expand
            // wire, exact attribution under codec pricing.
            assert_eq!(identity.steps.len(), rep.steps.len());
            for (a, b) in identity.steps.iter().zip(&rep.steps) {
                assert_eq!(
                    a.train_loss.to_bits(),
                    b.train_loss.to_bits(),
                    "world {g} codec {}: loss diverged",
                    codec.name()
                );
                assert_eq!(b.attribution.total_ps(), b.sim_time_ps);
            }
            assert!(
                rep.traffic.total_bytes() <= identity.traffic.total_bytes(),
                "world {g} codec {}: wire volume expanded",
                codec.name()
            );
            if g >= 48 && codec.index_codec().is_some() {
                assert!(
                    rep.traffic.allgather_bytes < identity.traffic.allgather_bytes,
                    "world {g} codec {}: unique-index path did not compress",
                    codec.name()
                );
            }
            push(codec, &rep);
        }
    }
    rows
}

/// Renders crossover rows as the `BENCH_codec_crossover.json` artifact.
/// Every field is simulated (machine-independent), so the file is
/// deterministic and CI pins it byte-identical against the committed
/// golden, exactly like `BENCH_overlap.json`.
pub fn codec_crossover_json(rows: &[CodecCrossoverRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"codec_crossover\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"gpus\": {}, \"codec\": \"{}\", \"sim_time_ps\": {}, \
             \"wire_bytes\": {}, \"index_gather_bytes\": {}, \
             \"train_loss\": {}}}{}\n",
            r.gpus,
            r.codec,
            r.sim_time_ps,
            r.wire_bytes,
            r.index_gather_bytes,
            r.train_loss,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One chaos-recovery scenario: a named fault composition driven
/// through the durable on-disk checkpoint store, with its recovery
/// breakdown. Every field is simulated (rounds, restored cuts, modelled
/// backoff) — no wall clock — so the rows are deterministic and CI pins
/// `BENCH_chaos.json` byte-identical like the other goldens.
#[derive(Debug, Clone)]
pub struct ChaosRecoveryRow {
    /// Scenario name (one per injected fault class).
    pub scenario: &'static str,
    /// Starting world size.
    pub world: usize,
    /// Recovery rounds the elastic driver took.
    pub rounds: u64,
    /// Step of the snapshot the *first* recovery restored from
    /// (0 = cold restart; real snapshots start at step 2).
    pub restored_step: u64,
    /// Steps of progress rolled back by the first recovery.
    pub steps_lost: u64,
    /// Summed simulated backoff across all recovery rounds.
    pub backoff_ps: u64,
    /// Corrupt checkpoint frames the scan detected and skipped.
    pub corrupt_frames: u64,
    /// World size the run finished at.
    pub final_world: usize,
    /// Final epoch training loss (deterministic per scenario).
    pub train_loss: f64,
}

/// World size and failure schedule shared by every chaos scenario.
const CHAOS_WORLD: usize = 4;

/// The chaos-recovery breakdown: one elastic run per fault class —
/// clean transient kill, kill after each flavour of disk rot (torn
/// write, bit flip, unlink), and a two-round double kill — each over a
/// real on-disk [`CheckpointDir`] with the fault injected by the
/// store itself. Reports how far each scenario rolled back and what
/// the modelled backoff cost, so a regression in recovery behaviour
/// (wrong cut chosen, extra rounds, corruption missed) moves the
/// artifact and trips the byte diff.
pub fn chaos_recovery(_quick: bool) -> Vec<ChaosRecoveryRow> {
    use simgpu::{DiskFault, DiskFaultPlan, FaultPlan};
    use std::sync::Arc;
    use zipf_lm::{CheckpointDir, HealthEvent, RecoveryPolicy};

    let cfg = TrainConfig {
        model: ModelKind::Word { vocab: 200 },
        gpus: CHAOS_WORLD,
        batch: 2,
        seq_len: 6,
        steps_per_epoch: 6,
        epochs: 2,
        base_lr: 0.3,
        lr_decay: 0.95,
        method: Method::unique_seeded(),
        seed: 7,
        tokens: 30_000,
        trace: TraceConfig::off(),
        metrics: MetricsConfig::off(),
        checkpoint: CheckpointConfig {
            every_steps: 2,
            keep_last: 8,
        },
        comm: CommConfig::flat(),
    };
    let policy = RecoveryPolicy {
        max_restarts: CHAOS_WORLD,
        backoff: std::time::Duration::from_millis(10),
    };
    let scenarios: [(&'static str, FaultPlan, DiskFaultPlan); 5] = [
        (
            "transient-kill",
            FaultPlan::none().kill_rank_transient(2, 5),
            DiskFaultPlan::none(),
        ),
        (
            "torn-write",
            FaultPlan::none().kill_rank_transient(2, 5),
            DiskFaultPlan::none().inject(1, 4, DiskFault::TornWrite { keep: 7 }),
        ),
        (
            "bit-flip",
            FaultPlan::none().kill_rank_transient(2, 5),
            DiskFaultPlan::none().inject(1, 4, DiskFault::BitFlip { byte: 45, bit: 2 }),
        ),
        (
            "unlink",
            FaultPlan::none().kill_rank_transient(2, 5),
            DiskFaultPlan::none().inject(0, 4, DiskFault::Unlink),
        ),
        (
            "double-kill",
            FaultPlan::none()
                .kill_rank_transient(1, 3)
                .kill_rank_transient(2, 9),
            DiskFaultPlan::none(),
        ),
    ];
    scenarios
        .into_iter()
        .enumerate()
        .map(|(i, (scenario, faults, disk))| {
            let root = std::env::temp_dir().join(format!(
                "zlm-bench-chaos-{}-{i}-{scenario}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            let backend = Arc::new(
                CheckpointDir::open_with_faults(&root, cfg.checkpoint.keep_last, disk)
                    .expect("open chaos checkpoint dir"),
            );
            let outcome = zipf_lm::train_elastic_durable(&cfg, &faults, policy, backend)
                .unwrap_or_else(|e| panic!("chaos scenario {scenario} failed: {e:?}"));
            let _ = std::fs::remove_dir_all(&root);
            let first = outcome.recoveries.first();
            ChaosRecoveryRow {
                scenario,
                world: CHAOS_WORLD,
                rounds: outcome.recoveries.len() as u64,
                restored_step: first.and_then(|ev| ev.restored_step).unwrap_or(0),
                steps_lost: first.map_or(0, |ev| ev.steps_lost),
                backoff_ps: outcome.recoveries.iter().map(|ev| ev.backoff_ps).sum(),
                corrupt_frames: outcome
                    .report
                    .health
                    .iter()
                    .filter(|h| matches!(h, HealthEvent::CheckpointCorrupt { .. }))
                    .count() as u64,
                final_world: outcome.final_world,
                train_loss: outcome.report.epochs.last().expect("epochs").train_loss,
            }
        })
        .collect()
}

/// Renders chaos rows as the `BENCH_chaos.json` artifact. Every field
/// is simulated, so the committed golden must survive a fresh run
/// byte-identical, exactly like `BENCH_overlap.json`.
pub fn chaos_recovery_json(rows: &[ChaosRecoveryRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"chaos\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"world\": {}, \"rounds\": {}, \
             \"restored_step\": {}, \"steps_lost\": {}, \"backoff_ps\": {}, \
             \"corrupt_frames\": {}, \"final_world\": {}, \"train_loss\": {}}}{}\n",
            r.scenario,
            r.world,
            r.rounds,
            r.restored_step,
            r.steps_lost,
            r.backoff_ps,
            r.corrupt_frames,
            r.final_world,
            r.train_loss,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// §V-D comparison against [21] (Puri et al., Amazon Reviews char LM on
/// 128 V100s): our char-LM BPC on the ar profile plus the
/// infrastructure-normalised throughput argument.
#[derive(Debug, Clone)]
pub struct SotaComparison {
    /// Our measured bits-per-character.
    pub our_bpc: f64,
    /// The paper's reported BPC on the same setup (1.208 @1 epoch).
    pub paper_bpc: f64,
    /// [21]'s reported BPC (1.218 @1 epoch).
    pub reference_bpc: f64,
    /// Peak-FLOP ratio of [21]'s 128×V100 vs the paper's 64×TitanX.
    pub infra_flop_ratio: f64,
}

/// Runs the §V-D comparison.
pub fn sota_comparison(quick: bool) -> SotaComparison {
    let cfg = TrainConfig {
        model: ModelKind::Char { vocab: 98 },
        gpus: 4,
        batch: 4,
        seq_len: 12,
        steps_per_epoch: 0,
        epochs: if quick { 2 } else { 4 },
        base_lr: 0.8,
        lr_decay: 0.9,
        method: Method::full(),
        seed: 77,
        tokens: if quick { 60_000 } else { 300_000 },
        trace: TraceConfig::off(),
        metrics: MetricsConfig::off(),
        checkpoint: CheckpointConfig::off(),
        comm: CommConfig::flat(),
    };
    let report = zipf_lm::train(&cfg).expect("run");
    let our_bpc = report.epochs.last().unwrap().valid_bpc;
    let titan = simgpu::HardwareConfig::titan_x_cluster();
    let v100 = simgpu::HardwareConfig::v100_dgx();
    SotaComparison {
        our_bpc,
        paper_bpc: 1.208,
        reference_bpc: 1.218,
        infra_flop_ratio: v100.cluster_peak_flops(128) / titan.cluster_peak_flops(64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_fits_power_law_near_064() {
        let series = fig1(200_000, 7);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert!(
                (s.fit.exponent - 0.64).abs() < 0.12,
                "{}: exponent {}",
                s.name,
                s.fit.exponent
            );
            assert!(s.fit.r_squared > 0.97, "{}: r2 {}", s.name, s.fit.r_squared);
            // Every point far below the x = y "batch" line once N is
            // large (the ~100× gap the paper highlights).
            let last = s.points.last().unwrap();
            assert!(last.types * 5 < last.tokens);
        }
    }

    #[test]
    fn table1_scales() {
        let rows = table1(100_000.0, 3);
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.stats.tokens > 0);
            assert!(r.stats.types <= r.stats.tokens);
        }
        // Chinese synthesizes 3 bytes/char.
        let tieba = rows.iter().find(|r| r.name == "tieba").unwrap();
        assert_eq!(tieba.stats.bytes, tieba.stats.chars * 3);
    }

    #[test]
    fn fig5_curves_improve_and_converge() {
        // The paper's Figure 5 claim is not monotonicity but
        // *convergence*: all GPU counts end in the same accuracy regime,
        // far below the untrained model.
        let curves = fig5(true);
        assert_eq!(curves.len(), 3);
        let finals: Vec<f64> = curves.iter().map(|c| c.points.last().unwrap().1).collect();
        for (c, &f) in curves.iter().zip(&finals) {
            // Learned: well under the ~vocab-size perplexity of an
            // untrained model, and no post-convergence blow-up.
            assert!(f < 150.0, "{}: final ppl {f}", c.label);
            let first = c.points.first().unwrap().1;
            assert!(f < first * 1.15, "{}: {first} -> {f}", c.label);
        }
        let max = finals.iter().cloned().fold(f64::MIN, f64::max);
        let min = finals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.35, "curves did not converge: {finals:?}");
    }

    #[test]
    fn weak_scaling_covers_paper_worlds_and_tiers() {
        let rows = weak_scaling(true);
        assert_eq!(
            rows.iter().map(|r| r.gpus).collect::<Vec<_>>(),
            vec![6, 24, 192]
        );
        for r in &rows {
            assert!(r.final_ppl.is_finite(), "{r:?}");
            assert!(r.wire_intra_bytes > 0);
            if r.gpus <= 8 {
                // One node: nothing ever crosses the IB tier.
                assert_eq!(r.wire_inter_bytes, 0, "{r:?}");
                assert_eq!(r.wire_inter_ps, 0, "{r:?}");
            } else {
                assert!(r.wire_inter_bytes > 0, "{r:?}");
                assert!(r.wire_inter_ps > 0, "{r:?}");
            }
        }
        // Weak scaling: 4x the world carries 4x the data.
        assert_eq!(rows[1].tokens, rows[0].tokens * 4);
        assert_eq!(rows[2].tokens, rows[0].tokens * 32);

        let json = weak_scaling_json(&rows);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert_eq!(json.matches("\"gpus\"").count(), 3);
        assert!(json.contains("\"wire_inter_bytes\""));
    }

    #[test]
    fn overlap_comparison_reduces_wire_dominated_worlds() {
        let rows = overlap_comparison(true);
        assert_eq!(
            rows.iter().map(|r| r.gpus).collect::<Vec<_>>(),
            OVERLAP_WORLDS.to_vec()
        );
        for r in &rows {
            // The run asserts overlapped < serial internally; re-check
            // the reported fields and the hidden-comm evidence here.
            assert!(r.overlapped_sim_time_ps < r.serial_sim_time_ps, "{r:?}");
            assert!(r.hidden_ps > 0, "{r:?}");
            assert!(r.train_loss.is_finite(), "{r:?}");
            // Bucketing only ever adds latency terms to the serial
            // schedule, never removes work.
            assert!(r.serial_sim_time_ps >= r.flat_sim_time_ps, "{r:?}");
        }
        let json = overlap_json(&rows);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert_eq!(json.matches("\"gpus\"").count(), rows.len());
        assert!(json.contains("\"overlapped_sim_time_ps\""));
    }

    #[test]
    fn codec_crossover_sweeps_ladder_and_crosses_over() {
        let rows = codec_crossover(true);
        // 4 ladder rungs (identity + 3 lossless) per world, in order.
        assert_eq!(rows.len(), 4 * CODEC_CROSSOVER_WORLDS.len());
        for (w, chunk) in rows.chunks(4).enumerate() {
            let g = CODEC_CROSSOVER_WORLDS[w];
            assert_eq!(
                chunk.iter().map(|r| (r.gpus, r.codec)).collect::<Vec<_>>(),
                vec![
                    (g, "identity"),
                    (g, "lossless-index"),
                    (g, "lossless-grad"),
                    (g, "lossless")
                ]
            );
            let ident = &chunk[0];
            for r in &chunk[1..] {
                // The sweep asserts bit-equal losses internally; re-check
                // the reported surface: lossless never expands the wire.
                assert_eq!(r.train_loss.to_bits(), ident.train_loss.to_bits());
                assert!(r.wire_bytes <= ident.wire_bytes, "{r:?}");
            }
            // The index path compresses at every world (strictly), and
            // the combined codec carries both savings.
            assert!(chunk[1].index_gather_bytes < ident.index_gather_bytes);
            assert_eq!(chunk[2].index_gather_bytes, ident.index_gather_bytes);
            assert!(chunk[3].wire_bytes < chunk[1].wire_bytes, "{chunk:?}");
            // The crossover itself: on the wire-dominated multi-node
            // worlds the byte savings outweigh codec compute, on the
            // all-NVLink single node they do not.
            if g >= 48 {
                assert!(chunk[1].sim_time_ps < ident.sim_time_ps, "{chunk:?}");
            } else {
                assert!(chunk[1].sim_time_ps >= ident.sim_time_ps, "{chunk:?}");
            }
        }
        let json = codec_crossover_json(&rows);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert_eq!(json.matches("\"gpus\"").count(), rows.len());
        assert!(json.contains("\"index_gather_bytes\""));
    }

    #[test]
    fn chaos_recovery_rows_cover_fault_classes() {
        let rows = chaos_recovery(true);
        assert_eq!(
            rows.iter().map(|r| r.scenario).collect::<Vec<_>>(),
            vec![
                "transient-kill",
                "torn-write",
                "bit-flip",
                "unlink",
                "double-kill"
            ]
        );
        for r in &rows {
            assert!(r.rounds >= 1, "{r:?}");
            assert!(r.final_world < r.world, "{r:?}");
            assert!(r.backoff_ps > 0, "backoff must be modelled: {r:?}");
            assert!(r.train_loss.is_finite(), "{r:?}");
        }
        // The clean kill restores the newest cut (step 4); every disk
        // fault damages exactly one frame and rolls back to step 2.
        assert_eq!(rows[0].restored_step, 4);
        assert_eq!(rows[0].corrupt_frames, 0);
        for r in &rows[1..4] {
            assert_eq!(r.restored_step, 2, "{r:?}");
            assert_eq!(r.corrupt_frames, 1, "{r:?}");
        }
        // Two kills, two rounds, doubled second backoff: 10 + 20 ms.
        assert_eq!(rows[4].rounds, 2);
        assert_eq!(rows[4].backoff_ps, 30_000_000_000);
        assert_eq!(rows[4].final_world, 2);

        let json = chaos_recovery_json(&rows);
        assert!(json.starts_with('{') && json.ends_with("}\n"));
        assert_eq!(json.matches("\"scenario\"").count(), rows.len());
        assert!(json.contains("\"corrupt_frames\""));
    }

    #[test]
    fn table5_more_data_better_ppl() {
        let rows = table5_accuracy(true);
        assert_eq!(rows.len(), 3);
        assert!(
            rows.last().unwrap().ppl < rows.first().unwrap().ppl,
            "{rows:?}"
        );
    }
}
