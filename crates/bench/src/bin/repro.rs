//! Reproduces every table and figure of "Language Modeling at Scale".
//!
//! ```text
//! repro <artifact> [--full]
//!
//! artifacts:
//!   fig1     types-vs-tokens curves + power-law fits
//!   table1   dataset statistics (synthetic vs paper)
//!   memex    §III-A worked memory example (35.2 GB vs 0.137 GB)
//!   fig5     word-LM perplexity vs epoch across GPU counts
//!   fig6     speedup breakdown (uniqueness / seeding / compression)
//!   fig7     seeding-strategy accuracy comparison
//!   fig8     char-LM perplexity vs epoch across GPU counts
//!   table3   word-LM per-epoch time + parallel efficiency
//!   table4   char-LM per-epoch time + parallel efficiency
//!   table5   Tieba weak scaling (time model + real miniature accuracy)
//!   weak     Table V column at real worlds (6/24/192 ranks, bounded pool)
//!   memory   §V-A peak GPU memory (baseline linear vs ours flat)
//!   sota     §V-D comparison with Puri et al. [21]
//!   all      everything above
//! ```
//!
//! `--full` uses larger corpora/models for the training-based artifacts
//! (minutes instead of seconds).

use perfmodel::{CharScale, TechniqueStack, TiebaScale, WordScale};
use zlm_bench::table::{hours, pct, render};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let quick = !full;
    let what = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let known = [
        "fig1", "table1", "memex", "fig5", "fig6", "fig7", "fig8", "table3", "table4", "table5",
        "weak", "memory", "sota", "all",
    ];
    if !known.contains(&what) {
        eprintln!("unknown artifact '{what}'; one of: {}", known.join(", "));
        std::process::exit(2);
    }

    let run = |name: &str| what == "all" || what == name;
    if run("fig1") {
        fig1(quick);
    }
    if run("table1") {
        table1();
    }
    if run("memex") {
        memex();
    }
    if run("table3") {
        table3();
    }
    if run("fig6") {
        fig6();
    }
    if run("table4") {
        table4();
    }
    if run("table5") {
        table5(quick);
    }
    if run("weak") {
        weak(quick);
    }
    if run("memory") {
        memory();
    }
    if run("fig5") {
        fig5(quick);
    }
    if run("fig7") {
        fig7(quick);
    }
    if run("fig8") {
        fig8(quick);
    }
    if run("sota") {
        sota(quick);
    }
}

fn banner(title: &str) {
    println!("\n==== {title} ====");
}

fn fig1(quick: bool) {
    banner("Figure 1: types (U) vs tokens (N), U = a*N^alpha");
    let max = if quick { 1_000_000 } else { 20_000_000 };
    let series = zlm_bench::fig1(max, 7);
    for s in &series {
        println!(
            "{:>3}: fit U = {:.2} * N^{:.3}  (R^2 = {:.4})  [paper ar: 7.02 * N^0.64, R^2 = 1.00]",
            s.name, s.fit.prefactor, s.fit.exponent, s.fit.r_squared
        );
    }
    println!();
    let mut rows = Vec::new();
    let probe = &series[0].points;
    for (i, p) in probe.iter().enumerate() {
        if i % 4 != 0 && i + 1 != probe.len() {
            continue;
        }
        let mut row = vec![format!("{}", p.tokens)];
        for s in &series {
            row.push(format!("{}", s.points[i].types));
        }
        row.push(format!("{}", p.tokens)); // the x = y "batch" line
        rows.push(row);
    }
    println!(
        "{}",
        render(&["N", "1b", "gb", "cc", "ar", "batch(x=y)"], &rows)
    );
}

fn table1() {
    banner("Table I: datasets (synthetic stand-ins at 1/100000 scale)");
    let rows = zlm_bench::table1(100_000.0, 3);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{}", r.stats.chars),
                format!("{}", r.stats.tokens),
                format!("{}", r.stats.types),
                format!("{}", r.stats.bytes),
                format!("{:.2}B", r.profile.paper_chars_billion),
                r.profile
                    .paper_words_billion
                    .map(|w| format!("{w:.2}B"))
                    .unwrap_or_else(|| "NA".into()),
                format!("{:.2}GB", r.profile.paper_bytes_gb),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "set",
                "chars",
                "tokens",
                "types",
                "bytes",
                "paper-chars",
                "paper-words",
                "paper-GB"
            ],
            &body
        )
    );
}

fn memex() {
    banner("SIII-A worked example (G=256, K=19200, D=1792)");
    let (base, ours, saving) = perfmodel::memory::worked_example();
    println!("baseline ALLGATHER buffer : {base:.1} GB   (paper: 35.2 GB)");
    println!("uniqueness buffers        : {ours:.3} GB  (paper: 0.137 GB)");
    println!("memory saving             : {saving:.0}x    (paper: 256x)");
}

fn table3() {
    banner("Table III: word-LM hours/epoch on 1-Billion (model, calibrated)");
    let m = WordScale::paper();
    let body: Vec<Vec<String>> = m
        .table3()
        .into_iter()
        .map(|(g, b, o)| {
            vec![
                g.to_string(),
                hours(b.epoch_hours),
                pct(b.parallel_efficiency),
                hours(o.epoch_hours),
                pct(o.parallel_efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["GPUs", "base h", "base eff", "ours h", "ours eff"], &body)
    );
    println!("paper:  base 35.1/41.1/40.4/*/*  eff 100/43/29/-/-");
    println!("        ours 14.6/8.1/6.4/5.4/4.5  eff 100/90/76/67/40");
}

fn fig6() {
    banner("Figure 6: cumulative speedups over baseline (word LM)");
    let m = WordScale::paper();
    for g in [16usize, 24] {
        let s: Vec<String> = m
            .fig6(g)
            .iter()
            .map(|(l, v)| format!("{l} {v:.1}x"))
            .collect();
        println!("{g:>2} GPUs: {}", s.join("  "));
    }
    println!("paper 16: 1.0 / 4.0 / 4.3 / 5.1    paper 24: 1.0 / 5.1 / 5.4 / 6.3");
}

fn table4() {
    banner("Table IV: char-LM hours/epoch on 1-Billion (model, calibrated)");
    let m = CharScale::paper();
    let body: Vec<Vec<String>> = m
        .table4()
        .into_iter()
        .map(|(g, b, o)| {
            vec![
                g.to_string(),
                hours(b.epoch_hours),
                pct(b.parallel_efficiency),
                hours(o.epoch_hours),
                pct(o.parallel_efficiency),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["GPUs", "base h", "base eff", "ours h", "ours eff"], &body)
    );
    println!("paper:  base 25.7/14.5/10.6/*/*  eff 100/89/81/-/-");
    println!("        ours 23.2/12.9/8.2/6.8/3.5  eff 100/96/94/86/82");
}

fn table5(quick: bool) {
    banner("Table V: Tieba weak scaling");
    let t = TiebaScale::paper();
    let body: Vec<Vec<String>> = t
        .table5()
        .into_iter()
        .map(|r| {
            vec![
                format!("{:.2}", r.chars_billion),
                format!("{:.0}", r.corpus_gb),
                r.gpus.to_string(),
                r.batch.to_string(),
                format!("{:.0}", r.hours),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["chars(B)", "GB", "GPUs", "batch", "hours"], &body)
    );
    println!("paper hours: 27 / 28 / 34;  perplexity 17.06 / 13.6 / 11.1");
    println!(
        "achieved at 192 GPUs: {:.2} PFLOP/s (paper: 0.76)",
        t.achieved_pflops(192)
    );

    println!("\nweak-scaling accuracy, real miniature training (more data+GPUs => lower ppl):");
    let rows = zlm_bench::table5_accuracy(quick);
    let base_ppl = rows[0].ppl;
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.gpus.to_string(),
                r.tokens.to_string(),
                format!("{:.2}", r.ppl),
                format!("{:+.0}%", (base_ppl - r.ppl) / base_ppl * 100.0),
                format!("{:.2}", r.compression_ratio),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["GPUs", "tokens", "ppl", "ppl gain", "compr-ratio"], &body)
    );
    println!("paper: 35% accuracy improvement at 32x data; compression ratio 6.3");
}

fn weak(quick: bool) {
    banner("Table V column at real worlds: 6/24/192 ranks over 8 run slots");
    let rows = zlm_bench::weak_scaling(quick);
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.gpus.to_string(),
                r.nodes.to_string(),
                r.tokens.to_string(),
                format!("{:.2}", r.final_ppl),
                format!("{:.3}", r.sim_time_ps as f64 / 1e9),
                r.wire_intra_bytes.to_string(),
                r.wire_inter_bytes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["GPUs", "nodes", "tokens", "ppl", "sim ms", "intra B", "inter B"],
            &body
        )
    );
    println!("every world verified bit-identical to the unpooled flat ring");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_weak_scaling.json");
    std::fs::write(path, zlm_bench::weak_scaling_json(&rows)).expect("write artifact");
    println!("wrote {path}");
}

fn memory() {
    banner("SV-A: peak GPU memory (GB)");
    let m = WordScale::paper();
    let mut body = Vec::new();
    for g in [8usize, 16, 24, 32, 64] {
        body.push(vec![
            g.to_string(),
            format!("{:.1}", m.memory_gb(g, TechniqueStack::Baseline)),
            format!("{:.2}", m.memory_gb(g, TechniqueStack::Full)),
        ]);
    }
    println!("{}", render(&["GPUs", "baseline", "ours"], &body));
    println!("paper: baseline 3.9 / 7.1 / 10.3 / OOM / OOM; ours 1.19 ... 1.21 (8.6x less at 24)");
    let red = m.memory_gb(24, TechniqueStack::Baseline) / m.memory_gb(24, TechniqueStack::Full);
    println!("model reduction at 24 GPUs: {red:.1}x");
}

fn print_curves(curves: &[zlm_bench::AccuracyCurve]) {
    let epochs = curves[0].points.len();
    let labels: Vec<&str> = curves.iter().map(|c| c.label.as_str()).collect();
    let mut headers = vec!["epoch"];
    headers.extend(labels.iter());
    let mut body = Vec::new();
    for e in 0..epochs {
        let mut row = vec![format!("{}", e + 1)];
        for c in curves {
            row.push(format!("{:.2}", c.points[e].1));
        }
        body.push(row);
    }
    println!("{}", render(&headers, &body));
}

fn fig5(quick: bool) {
    banner("Figure 5: word-LM validation perplexity vs epoch (real training, scaled down)");
    let curves = zlm_bench::fig5(quick);
    print_curves(&curves);
    println!("paper@epoch2 (16/32/64 GPUs): 73.5 / 72.1 / 72.4 - curves converge");
    let (without, with) = zlm_bench::compression_accuracy(quick);
    println!(
        "\ncompression accuracy: ppl without {without:.4} vs with {with:.4} (paper: 84.68 vs 84.12)"
    );
}

fn fig7(quick: bool) {
    banner("Figure 7: seeding strategies (word LM, sampled softmax)");
    let curves = zlm_bench::fig7(quick);
    print_curves(&curves);
    println!("paper: Zipf's-freq matches per-GPU seeds (G); log10 least stable");
}

fn fig8(quick: bool) {
    banner("Figure 8: char-LM validation perplexity vs epoch (real training, scaled down)");
    let curves = zlm_bench::fig8(quick);
    print_curves(&curves);
    println!("paper@epoch2 gap 16-vs-32 GPUs: 2%; curves converge with epochs");
}

fn sota(quick: bool) {
    banner("SV-D: comparison with Puri et al. [21] (Amazon Reviews char LM)");
    let s = zlm_bench::sota_comparison(quick);
    println!("our scaled-down char-LM BPC : {:.3}", s.our_bpc);
    println!(
        "paper's full-scale BPC      : {:.3} (1 epoch, 64 Titan X)",
        s.paper_bpc
    );
    println!(
        "[21]'s reported BPC         : {:.3} (1 epoch, 128 V100)",
        s.reference_bpc
    );
    println!(
        "infrastructure peak-FLOP ratio ([21] vs paper): {:.0}x (paper: 41x)",
        s.infra_flop_ratio
    );
}
