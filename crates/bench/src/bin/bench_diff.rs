//! `bench-diff` — regression gate over benchmark / run-summary artifacts.
//!
//! ```text
//! bench-diff <golden.json> <candidate.json> [--default-tol X] [--tol PATTERN=X]...
//! ```
//!
//! Compares the candidate against the golden leaf-by-leaf (see
//! `zlm_bench::diff`). Exit status: `0` within tolerance, `1` when any
//! leaf regresses or the schema drifts, `2` on usage / IO / parse
//! errors. Tolerances are relative and two-sided; `--tol` rules match
//! paths by substring and the last matching rule wins:
//!
//! ```text
//! bench-diff BENCH_overlap.json target/overlap.json \
//!     --default-tol 0 --tol train_loss=1e-9 --tol sim_time_ps=0.02
//! ```

use std::process::ExitCode;

use zlm_bench::diff::{diff, Tolerances};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-diff <golden.json> <candidate.json> \
         [--default-tol X] [--tol PATTERN=X]..."
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tols = Tolerances::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--default-tol" => {
                let Some(v) = it.next() else { return usage() };
                let Ok(t) = v.parse::<f64>() else {
                    eprintln!("bench-diff: bad --default-tol value '{v}'");
                    return ExitCode::from(2);
                };
                tols.default_tol = t;
            }
            "--tol" => {
                let Some(v) = it.next() else { return usage() };
                let Some((pat, t)) = v.split_once('=') else {
                    eprintln!("bench-diff: --tol expects PATTERN=X, got '{v}'");
                    return ExitCode::from(2);
                };
                let Ok(t) = t.parse::<f64>() else {
                    eprintln!("bench-diff: bad tolerance in '{v}'");
                    return ExitCode::from(2);
                };
                tols.rules.push((pat.to_string(), t));
            }
            "-h" | "--help" => return usage(),
            _ => paths.push(arg.clone()),
        }
    }
    let [golden_path, candidate_path] = paths.as_slice() else {
        return usage();
    };

    let read = |p: &str| -> Result<String, ExitCode> {
        std::fs::read_to_string(p).map_err(|e| {
            eprintln!("bench-diff: cannot read {p}: {e}");
            ExitCode::from(2)
        })
    };
    let golden = match read(golden_path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    let candidate = match read(candidate_path) {
        Ok(t) => t,
        Err(code) => return code,
    };

    match diff(&golden, &candidate, &tols) {
        Ok(report) if report.is_clean() => {
            println!(
                "bench-diff: OK — {} leaves within tolerance ({} vs {})",
                report.compared, golden_path, candidate_path
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            eprintln!(
                "bench-diff: FAIL — {} finding(s) comparing {} (golden) vs {} (candidate):",
                report.findings.len(),
                golden_path,
                candidate_path
            );
            for f in &report.findings {
                eprintln!("  {f}");
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench-diff: {e}");
            ExitCode::from(2)
        }
    }
}
