//! Experiment runners for the paper's tables and figures.
//!
//! Each `fig*` / `table*` function regenerates one evaluation artifact of
//! the paper. Figures that report *accuracy* (5, 7, 8; Table V's
//! perplexity column) really train scaled-down models on the simulated
//! cluster; tables that report *full-scale time/memory* (III, IV, V's
//! hours; Figure 6) use the calibrated `perfmodel`. The `repro` binary
//! prints them in paper layout; integration tests assert their shapes.

pub mod diff;
pub mod experiments;
pub mod table;

pub use experiments::*;
