//! Regression diff over benchmark artifacts (`BENCH_*.json`, `RunSummary`).
//!
//! CI keeps byte goldens of the bench tables and the trainer's
//! [`RunSummary`](zipf_lm::RunSummary) artifacts. A byte diff is too
//! brittle once tolerances enter the picture (a deliberate perf win
//! should not trip the gate, and a float-formatting change should not
//! hide a real regression), so this module parses both artifacts into
//! a flat `path -> leaf` map and compares leaf-by-leaf:
//!
//! - **structural drift** (a path present on one side only, or a type
//!   change) always fails — schema changes must update the golden;
//! - **numeric leaves** pass when the *relative* difference
//!   `|candidate - golden| / max(|golden|, 1)` is within the
//!   tolerance for that path (default `0`, i.e. exact). Tolerances are
//!   two-sided: an unexplained improvement is as suspicious as a
//!   regression and also needs a golden refresh;
//! - **string / bool / null leaves** must match exactly.
//!
//! Tolerance rules are `(pattern, tol)` pairs; a rule applies to every
//! path that contains `pattern` as a substring, and the *last* matching
//! rule wins so callers can layer a broad rule then tighten specific
//! paths. The parser is a self-contained recursive-descent JSON reader
//! (no external crates), strict enough for the artifacts we emit:
//! objects, arrays, strings with `\"`-style escapes, numbers, booleans
//! and `null`.

use std::fmt;

/// One leaf value in a flattened artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum Leaf {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
}

impl fmt::Display for Leaf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Leaf::Null => write!(f, "null"),
            Leaf::Bool(b) => write!(f, "{b}"),
            Leaf::Num(n) => write!(f, "{n}"),
            Leaf::Str(s) => write!(f, "{s:?}"),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Leaf(Leaf),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Leaf(Leaf::Str(self.string()?))),
            Some(b't') => self.literal("true", Json::Leaf(Leaf::Bool(true))),
            Some(b'f') => self.literal("false", Json::Leaf(Leaf::Bool(false))),
            Some(b'n') => self.literal("null", Json::Leaf(Leaf::Null)),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad utf8"))?;
        text.parse::<f64>()
            .map(|n| Json::Leaf(Leaf::Num(n)))
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar, not just one byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("bad utf8"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("eof in string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("eof in string")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after JSON value"));
    }
    Ok(v)
}

fn flatten_into(prefix: &str, v: &Json, out: &mut Vec<(String, Leaf)>) {
    match v {
        Json::Leaf(l) => out.push((prefix.to_string(), l.clone())),
        Json::Arr(items) => {
            for (i, item) in items.iter().enumerate() {
                flatten_into(&format!("{prefix}[{i}]"), item, out);
            }
            // An empty array is itself a structural fact.
            if items.is_empty() {
                out.push((format!("{prefix}[]"), Leaf::Null));
            }
        }
        Json::Obj(fields) => {
            for (k, val) in fields {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten_into(&path, val, out);
            }
            if fields.is_empty() {
                out.push((format!("{prefix}{{}}"), Leaf::Null));
            }
        }
    }
}

/// Parse a JSON artifact and flatten it to sorted `(path, leaf)` pairs.
pub fn flatten(text: &str) -> Result<Vec<(String, Leaf)>, String> {
    let v = parse(text)?;
    let mut out = Vec::new();
    flatten_into("", &v, &mut out);
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Tolerance configuration for [`diff`].
#[derive(Debug, Clone, Default)]
pub struct Tolerances {
    /// Relative tolerance applied when no rule matches. `0.0` = exact.
    pub default_tol: f64,
    /// `(substring-pattern, tol)` rules; the last matching rule wins.
    pub rules: Vec<(String, f64)>,
}

impl Tolerances {
    fn for_path(&self, path: &str) -> f64 {
        let mut tol = self.default_tol;
        for (pat, t) in &self.rules {
            if path.contains(pat.as_str()) {
                tol = *t;
            }
        }
        tol
    }
}

/// One failed comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Finding {
    /// Path exists only in the golden artifact.
    MissingInCandidate { path: String },
    /// Path exists only in the candidate artifact.
    MissingInGolden { path: String },
    /// Leaf kind changed (e.g. number -> string) or a non-numeric leaf
    /// value changed.
    ValueChanged {
        path: String,
        golden: Leaf,
        candidate: Leaf,
    },
    /// Numeric leaf moved outside its relative tolerance.
    OutOfTolerance {
        path: String,
        golden: f64,
        candidate: f64,
        rel: f64,
        tol: f64,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::MissingInCandidate { path } => {
                write!(f, "drift: `{path}` present in golden, missing in candidate")
            }
            Finding::MissingInGolden { path } => {
                write!(f, "drift: `{path}` present in candidate, missing in golden")
            }
            Finding::ValueChanged {
                path,
                golden,
                candidate,
            } => write!(f, "changed: `{path}` golden={golden} candidate={candidate}"),
            Finding::OutOfTolerance {
                path,
                golden,
                candidate,
                rel,
                tol,
            } => write!(
                f,
                "regression: `{path}` golden={golden} candidate={candidate} \
                 (rel diff {rel:.6} > tol {tol})"
            ),
        }
    }
}

/// Result of comparing two artifacts.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Leaves compared (paths present on both sides).
    pub compared: usize,
    /// All failures, in path order.
    pub findings: Vec<Finding>,
}

impl DiffReport {
    /// True when the candidate is within tolerance of the golden.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Relative difference `|c - g| / max(|g|, 1)`.
///
/// The `max(.., 1)` floor keeps near-zero goldens (e.g. `hidden_ps: 0`
/// in a flat run) from turning any nonzero candidate into an infinite
/// relative error; below 1 unit the comparison degrades to absolute.
fn rel_diff(golden: f64, candidate: f64) -> f64 {
    (candidate - golden).abs() / golden.abs().max(1.0)
}

/// Compare two flattened-JSON artifacts under `tols`.
pub fn diff(
    golden_text: &str,
    candidate_text: &str,
    tols: &Tolerances,
) -> Result<DiffReport, String> {
    let golden = flatten(golden_text).map_err(|e| format!("golden: {e}"))?;
    let candidate = flatten(candidate_text).map_err(|e| format!("candidate: {e}"))?;
    let mut report = DiffReport::default();
    let (mut gi, mut ci) = (0, 0);
    while gi < golden.len() || ci < candidate.len() {
        match (golden.get(gi), candidate.get(ci)) {
            (Some((gp, gv)), Some((cp, cv))) if gp == cp => {
                report.compared += 1;
                match (gv, cv) {
                    (Leaf::Num(g), Leaf::Num(c)) => {
                        let tol = tols.for_path(gp);
                        let rel = rel_diff(*g, *c);
                        if rel > tol {
                            report.findings.push(Finding::OutOfTolerance {
                                path: gp.clone(),
                                golden: *g,
                                candidate: *c,
                                rel,
                                tol,
                            });
                        }
                    }
                    _ if gv == cv => {}
                    _ => report.findings.push(Finding::ValueChanged {
                        path: gp.clone(),
                        golden: gv.clone(),
                        candidate: cv.clone(),
                    }),
                }
                gi += 1;
                ci += 1;
            }
            (Some((gp, _)), Some((cp, _))) if gp < cp => {
                report
                    .findings
                    .push(Finding::MissingInCandidate { path: gp.clone() });
                gi += 1;
            }
            (Some(_), Some((cp, _))) => {
                report
                    .findings
                    .push(Finding::MissingInGolden { path: cp.clone() });
                ci += 1;
            }
            (Some((gp, _)), None) => {
                report
                    .findings
                    .push(Finding::MissingInCandidate { path: gp.clone() });
                gi += 1;
            }
            (None, Some((cp, _))) => {
                report
                    .findings
                    .push(Finding::MissingInGolden { path: cp.clone() });
                ci += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOLDEN: &str = r#"{
  "bench": "overlap",
  "rows": [
    {"gpus": 48, "sim_time_ps": 6280560483, "train_loss": 3.850323581175568},
    {"gpus": 192, "sim_time_ps": 25758019683, "train_loss": 3.8349035708169037}
  ]
}"#;

    #[test]
    fn identical_artifacts_are_clean() {
        let r = diff(GOLDEN, GOLDEN, &Tolerances::default()).unwrap();
        assert!(r.is_clean(), "{:?}", r.findings);
        assert_eq!(r.compared, 7);
    }

    #[test]
    fn perturbed_number_fails_at_zero_tol_and_passes_within_tol() {
        let cand = GOLDEN.replace("6280560483", "6290560483"); // ~0.16% slower
        let strict = diff(GOLDEN, &cand, &Tolerances::default()).unwrap();
        assert_eq!(strict.findings.len(), 1);
        assert!(matches!(
            strict.findings[0],
            Finding::OutOfTolerance { ref path, .. } if path == "rows[0].sim_time_ps"
        ));
        let loose = diff(
            GOLDEN,
            &cand,
            &Tolerances {
                default_tol: 0.01,
                rules: vec![],
            },
        )
        .unwrap();
        assert!(loose.is_clean(), "{:?}", loose.findings);
    }

    #[test]
    fn tolerance_is_two_sided() {
        // An "improvement" outside tolerance also fails: goldens must
        // be refreshed deliberately, not drift silently.
        let cand = GOLDEN.replace("6280560483", "5280560483");
        let r = diff(
            GOLDEN,
            &cand,
            &Tolerances {
                default_tol: 0.05,
                rules: vec![],
            },
        )
        .unwrap();
        assert_eq!(r.findings.len(), 1);
    }

    #[test]
    fn last_matching_rule_wins() {
        let tols = Tolerances {
            default_tol: 0.0,
            rules: vec![("rows".into(), 0.5), ("sim_time_ps".into(), 0.001)],
        };
        assert_eq!(tols.for_path("rows[0].sim_time_ps"), 0.001);
        assert_eq!(tols.for_path("rows[0].train_loss"), 0.5);
        assert_eq!(tols.for_path("bench"), 0.0);
    }

    #[test]
    fn structural_drift_always_fails() {
        let missing = GOLDEN.replace(", \"train_loss\": 3.850323581175568", "");
        let r = diff(GOLDEN, &missing, &Tolerances::default()).unwrap();
        assert!(r.findings.iter().any(
            |f| matches!(f, Finding::MissingInCandidate { path } if path == "rows[0].train_loss")
        ));

        let extra = GOLDEN.replace(
            "\"bench\": \"overlap\"",
            "\"bench\": \"overlap\", \"extra\": 1",
        );
        let r = diff(GOLDEN, &extra, &Tolerances::default()).unwrap();
        assert!(r
            .findings
            .iter()
            .any(|f| matches!(f, Finding::MissingInGolden { path } if path == "extra")));
    }

    #[test]
    fn type_change_is_value_changed() {
        let cand = GOLDEN.replace("\"overlap\"", "42");
        let r = diff(GOLDEN, &cand, &Tolerances::default()).unwrap();
        assert_eq!(r.findings.len(), 1);
        assert!(matches!(r.findings[0], Finding::ValueChanged { .. }));
    }

    #[test]
    fn run_summary_artifact_round_trips_through_the_differ() {
        use zipf_lm::{config_fingerprint, MetricsConfig, TrainConfig};
        let cfg = TrainConfig {
            metrics: MetricsConfig::on(),
            ..TrainConfig::default()
        };
        // Sanity: fingerprint renders and the differ parses a real
        // RunSummary artifact produced by the trainer-side encoder.
        assert_eq!(format!("{:016x}", config_fingerprint(&cfg)).len(), 16);
        let rep = zipf_lm::train(&cfg).expect("train");
        let text = rep.run_summary(&cfg).to_json();
        let r = diff(&text, &text, &Tolerances::default()).unwrap();
        assert!(r.is_clean());
        assert!(
            r.compared >= 20,
            "summary has >= 20 leaves, got {}",
            r.compared
        );
    }

    #[test]
    fn bad_json_is_a_parse_error_not_a_panic() {
        assert!(diff("{", "{}", &Tolerances::default()).is_err());
        assert!(diff("{}", "[1, 2", &Tolerances::default()).is_err());
        assert!(flatten("{\"a\": 01x}").is_err());
        assert!(flatten("{} trailing").is_err());
    }
}
