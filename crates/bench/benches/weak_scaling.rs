//! Bench target for the Table V weak-scaling column at real world
//! sizes (6/24/192 ranks, 8 run slots): runs the experiment — which
//! internally re-verifies hierarchical-vs-flat bit-identity per world —
//! times each world's wall clock, and persists the rows as
//! `BENCH_weak_scaling.json` at the workspace root so successive PRs
//! record a trajectory (ROADMAP's missing bench artifact).
//!
//! `harness = false`: this is a measured experiment with a side effect,
//! not a statistical microbenchmark.

use std::time::Instant;
use zlm_bench::{weak_scaling, weak_scaling_json};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let t0 = Instant::now();
    let rows = weak_scaling(!full);
    let wall = t0.elapsed();

    println!("weak_scaling: Table V column at real worlds (pool = 8 run slots)");
    println!(
        "{:>5} {:>6} {:>9} {:>12} {:>10} {:>14} {:>16} {:>16}",
        "gpus",
        "nodes",
        "tokens",
        "train_loss",
        "final_ppl",
        "sim_time_ms",
        "intra_bytes",
        "inter_bytes"
    );
    for r in &rows {
        println!(
            "{:>5} {:>6} {:>9} {:>12.4} {:>10.2} {:>14.3} {:>16} {:>16}",
            r.gpus,
            r.nodes,
            r.tokens,
            r.train_loss,
            r.final_ppl,
            r.sim_time_ps as f64 / 1e9,
            r.wire_intra_bytes,
            r.wire_inter_bytes,
        );
    }
    println!("(all worlds verified bit-identical to the flat ring; wall {wall:.2?})");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_weak_scaling.json");
    std::fs::write(path, weak_scaling_json(&rows)).expect("write BENCH_weak_scaling.json");
    println!("wrote {path}");
}
