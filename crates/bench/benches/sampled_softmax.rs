//! Benchmarks sampled softmax vs full softmax — the computational
//! motivation for sampling (§II-A) — and the log-uniform sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nn::sampled_softmax::full_softmax_eval_loss;
use nn::{Embedding, SampledSoftmax};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::init;
use zipf::LogUniform;

fn bench_softmax(c: &mut Criterion) {
    let vocab = 20_000;
    let p = 64;
    let n = 64;
    let mut rng = StdRng::seed_from_u64(1);
    let table = Embedding::new(&mut rng, vocab, p);
    let h = init::uniform(&mut rng, n, p, 1.0);
    let targets: Vec<u32> = (0..n).map(|i| (i * 131 % vocab) as u32).collect();

    let mut group = c.benchmark_group("softmax");
    for &s in &[128usize, 512, 1024] {
        let ss = SampledSoftmax::new(vocab, s);
        group.bench_with_input(BenchmarkId::new("sampled", s), &ss, |b, ss| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| ss.forward_backward(&mut rng, &h, &targets, &table))
        });
    }
    group.bench_function("full_eval_20k_vocab", |b| {
        b.iter(|| full_softmax_eval_loss(&h, &targets, &table))
    });
    group.finish();
}

fn bench_log_uniform(c: &mut Criterion) {
    let lu = LogUniform::new(100_000);
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("log_uniform_draw", |b| b.iter(|| lu.sample(&mut rng)));
}

criterion_group!(benches, bench_softmax, bench_log_uniform);
criterion_main!(benches);
