//! Bench target for the overlapped step schedule at paper-scale
//! wire-dominated worlds (48/192 ranks, 8 run slots): runs the
//! comparison — which internally re-verifies that neither bucketing nor
//! overlap changes numerics and that the seven-bucket attribution stays
//! exact — and persists the rows as `BENCH_overlap.json` at the
//! workspace root. Every field in the artifact is simulated time, so
//! the file is deterministic: CI asserts a fresh run leaves the
//! committed golden byte-identical, which pins the overlap-off serial
//! schedule to the pre-refactor step times forever.
//!
//! `harness = false`: this is a measured experiment with a side effect,
//! not a statistical microbenchmark.

use std::time::Instant;
use zlm_bench::{overlap_comparison, overlap_json};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let t0 = Instant::now();
    let rows = overlap_comparison(!full);
    let wall = t0.elapsed();

    println!("overlap: serial vs overlapped step schedule (pool = 8 run slots)");
    println!(
        "{:>5} {:>8} {:>14} {:>14} {:>14} {:>12} {:>10}",
        "gpus", "bucket", "flat_ms", "serial_ms", "overlap_ms", "hidden_us", "speedup"
    );
    for r in &rows {
        println!(
            "{:>5} {:>8} {:>14.3} {:>14.3} {:>14.3} {:>12.1} {:>9.4}x",
            r.gpus,
            r.bucket_bytes,
            r.flat_sim_time_ps as f64 / 1e9,
            r.serial_sim_time_ps as f64 / 1e9,
            r.overlapped_sim_time_ps as f64 / 1e9,
            r.hidden_ps as f64 / 1e6,
            r.serial_sim_time_ps as f64 / r.overlapped_sim_time_ps as f64,
        );
    }
    println!("(numerics verified bit-identical across all schedules; wall {wall:.2?})");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overlap.json");
    std::fs::write(path, overlap_json(&rows)).expect("write BENCH_overlap.json");
    println!("wrote {path}");
}
