//! Bench target for the wire-codec volume-vs-compute crossover: one
//! training run per (world, codec) cell over worlds 8/48/192 and the
//! full codec ladder, on the two-tier pooled topology. The sweep
//! internally re-verifies the lossless contract (bit-equal losses,
//! never-expand wire, exact attribution), then persists the byte/time
//! surface as `BENCH_codec_crossover.json` at the workspace root.
//! Every field is simulated, so the file is deterministic: CI asserts a
//! fresh run leaves the committed golden byte-identical, exactly like
//! `BENCH_overlap.json`.
//!
//! `harness = false`: this is a measured experiment with a side effect,
//! not a statistical microbenchmark.

use std::time::Instant;
use zlm_bench::{codec_crossover, codec_crossover_json};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let t0 = Instant::now();
    let rows = codec_crossover(!full);
    let wall = t0.elapsed();

    println!("codec_crossover: wire volume vs codec compute per world (pool = 8 run slots)");
    println!(
        "{:>5} {:>16} {:>14} {:>14} {:>14} {:>10}",
        "gpus", "codec", "sim_ms", "wire_MB", "index_MB", "vs_ident"
    );
    let mut ident_ps = 0u64;
    for r in &rows {
        if r.codec == "identity" {
            ident_ps = r.sim_time_ps;
        }
        println!(
            "{:>5} {:>16} {:>14.3} {:>14.3} {:>14.3} {:>9.4}x",
            r.gpus,
            r.codec,
            r.sim_time_ps as f64 / 1e9,
            r.wire_bytes as f64 / 1e6,
            r.index_gather_bytes as f64 / 1e6,
            ident_ps as f64 / r.sim_time_ps as f64,
        );
    }
    println!("(numerics verified bit-identical across the ladder; wall {wall:.2?})");

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_codec_crossover.json"
    );
    std::fs::write(path, codec_crossover_json(&rows)).expect("write BENCH_codec_crossover.json");
    println!("wrote {path}");
}
