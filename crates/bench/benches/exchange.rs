//! Benchmarks the CPU-side cost of the two exchange implementations
//! across GPU counts.
//!
//! Note: on the shared-memory simulator both paths are dominated by
//! thread-spawn and barrier costs, so *wall-clock here does not rank the
//! algorithms the way a PCIe/IB fabric does* — the paper's claims are
//! about wire bytes and device memory, which the test suites assert on
//! measured traffic, and about cluster wall-clock, which the calibrated
//! `perfmodel` covers. This bench tracks simulator overhead regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nn::{Embedding, SparseGrad};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simgpu::CommGroup;
use tensor::Matrix;
use zipf::ZipfMandelbrot;
use zipf_lm::{exchange_and_apply, ExchangeConfig};

const VOCAB: usize = 5_000;
const DIM: usize = 32;
const TOKENS: usize = 256;

fn zipfian_grad(seed: u64) -> SparseGrad {
    let dist = ZipfMandelbrot::new(VOCAB, 1.5625, 3.5);
    let mut rng = StdRng::seed_from_u64(seed);
    let indices: Vec<u32> = (0..TOKENS).map(|_| dist.sample(&mut rng) as u32).collect();
    let rows = Matrix::from_vec(
        TOKENS,
        DIM,
        (0..TOKENS * DIM).map(|_| rng.gen_range(-0.1..0.1)).collect(),
    );
    SparseGrad { indices, rows }
}

fn run_exchange(world: usize, cfg: ExchangeConfig) {
    let ranks = CommGroup::create(world);
    std::thread::scope(|s| {
        for rank in ranks {
            s.spawn(move || {
                let mut table = Embedding::from_matrix(Matrix::zeros(VOCAB, DIM));
                let grad = zipfian_grad(rank.rank() as u64);
                exchange_and_apply(&rank, &grad, &mut table, 0.1, &cfg);
            });
        }
    });
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange");
    for world in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("baseline", world),
            &world,
            |b, &w| b.iter(|| run_exchange(w, ExchangeConfig::baseline())),
        );
        group.bench_with_input(BenchmarkId::new("unique", world), &world, |b, &w| {
            b.iter(|| run_exchange(w, ExchangeConfig::unique()))
        });
        group.bench_with_input(
            BenchmarkId::new("unique_f16", world),
            &world,
            |b, &w| b.iter(|| run_exchange(w, ExchangeConfig::unique_compressed())),
        );
    }
    group.finish();
}

fn bench_local_reduce(c: &mut Criterion) {
    let grad = zipfian_grad(3);
    c.bench_function("local_reduce_zipfian_256tok", |b| {
        b.iter(|| std::hint::black_box(&grad).local_reduce())
    });
}

criterion_group!(benches, bench_exchange, bench_local_reduce);
criterion_main!(benches);
