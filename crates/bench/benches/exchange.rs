//! Benchmarks the CPU-side cost of the exchange implementations.
//!
//! Two kinds of measurement:
//!
//! * **Per-call** (`exchange/*`): spawn-run-join one exchange per
//!   iteration across GPU counts. Dominated by thread-spawn and barrier
//!   costs — tracks simulator overhead regressions, not the fabric (the
//!   paper's wire/memory claims are asserted on measured traffic by the
//!   test suites; cluster wall-clock by the calibrated `perfmodel`).
//! * **Steady-state** (`exchange_steady/*`): rank threads stay alive
//!   across iterations and reuse an [`ExchangeScratch`] pool, the way
//!   `trainer` drives the exchange. This is the configuration the
//!   zero-alloc hot path targets: `seed_unique` re-implements the
//!   pre-pooling revision verbatim (HashMap local reduce, fresh gather
//!   vectors, `sort_unstable + dedup + binary_search`, a fresh `Ug×D`
//!   matrix per step) so `speedup` can report pooled-vs-seed directly
//!   at the paper-scale shape world=8, K=4096, D=128.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nn::{Embedding, SparseGrad};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simgpu::{CommGroup, Rank};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use tensor::Matrix;
use zipf::ZipfMandelbrot;
use zipf_lm::{
    exchange_and_apply, exchange_and_apply_traced, exchange_and_apply_with, ExchangeConfig,
    ExchangeScratch, PhaseTimings, StepObserver, StepSample, TimeAttribution,
};

// Per-call shape (kept small: each iteration pays thread spawns).
const VOCAB: usize = 5_000;
const DIM: usize = 32;
const TOKENS: usize = 256;

// Steady-state shape from the acceptance target: world=8, K=4096, D=128.
// The vocabulary is hot-set-sized (Zipf duplication heavy, as in the
// paper's steady state) so `Ug` — and with it the shared ALLREDUCE both
// variants pay identically — stays proportionate to the CPU-side
// canonicalisation work the two implementations actually differ in.
const SS_WORLD: usize = 8;
const SS_VOCAB: usize = 1_000;
const SS_DIM: usize = 128;
const SS_TOKENS: usize = 4_096;

fn zipfian_grad(seed: u64, tokens: usize, vocab: usize, dim: usize) -> SparseGrad {
    let dist = ZipfMandelbrot::new(vocab, 1.5625, 3.5);
    let mut rng = StdRng::seed_from_u64(seed);
    let indices: Vec<u32> = (0..tokens).map(|_| dist.sample(&mut rng) as u32).collect();
    let rows = Matrix::from_vec(
        tokens,
        dim,
        (0..tokens * dim)
            .map(|_| rng.gen_range(-0.1..0.1))
            .collect(),
    );
    SparseGrad { indices, rows }
}

fn run_exchange(world: usize, cfg: ExchangeConfig) {
    let ranks = CommGroup::create(world);
    std::thread::scope(|s| {
        for rank in ranks {
            s.spawn(move || {
                let mut table = Embedding::from_matrix(Matrix::zeros(VOCAB, DIM));
                let grad = zipfian_grad(rank.rank() as u64, TOKENS, VOCAB, DIM);
                exchange_and_apply(&rank, &grad, &mut table, 0.1, &cfg).unwrap();
            });
        }
    });
}

/// The seed revision's unique exchange, reproduced verbatim (minus stats
/// bookkeeping): HashMap-based `local_reduce`, freshly-allocated gather
/// vector, clone + `sort_unstable` + `dedup` over all `G·K` gathered
/// indices, one `binary_search` per locally-unique row, and a fresh
/// zeroed `Ug×D` matrix every step.
fn seed_unique_exchange(rank: &Rank, grad: &SparseGrad, table: &mut Embedding, lr: f32) {
    let d = table.dim();
    let reduced = grad.local_reduce();
    let all_indices = rank.all_gather_u32(&grad.indices).unwrap();
    let mut unique = all_indices.clone();
    unique.sort_unstable();
    unique.dedup();
    let u_global = unique.len();
    let mut m = vec![0.0f32; u_global * d];
    for (i, &idx) in reduced.indices.iter().enumerate() {
        let slot = unique
            .binary_search(&idx)
            .expect("local index missing from global set");
        m[slot * d..(slot + 1) * d].copy_from_slice(reduced.rows.row(i));
    }
    rank.all_reduce_sum(&mut m).unwrap();
    for (slot, &idx) in unique.iter().enumerate() {
        let dst = table.weights_mut().row_mut(idx as usize);
        for (w, &v) in dst.iter_mut().zip(&m[slot * d..(slot + 1) * d]) {
            *w -= lr * v;
        }
    }
}

/// Runs `iters` steady-state steps on persistent rank threads: each rank
/// builds its table/gradient/scratch once, takes one untimed warm-up
/// step (sizes the pools, pages in the buffers), then times the loop.
/// Returns the slowest rank's measured loop time.
fn steady_state(
    world: usize,
    iters: u64,
    step: impl Fn(&Rank, &SparseGrad, &mut Embedding, &mut ExchangeScratch) + Sync,
) -> Duration {
    let ranks = CommGroup::create(world);
    let mut slowest = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                let step = &step;
                s.spawn(move || {
                    let mut table = Embedding::from_matrix(Matrix::zeros(SS_VOCAB, SS_DIM));
                    let grad = zipfian_grad(rank.rank() as u64, SS_TOKENS, SS_VOCAB, SS_DIM);
                    let mut scratch = ExchangeScratch::new();
                    step(&rank, &grad, &mut table, &mut scratch);
                    rank.barrier().unwrap();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        step(&rank, &grad, &mut table, &mut scratch);
                    }
                    rank.barrier().unwrap();
                    t0.elapsed()
                })
            })
            .collect();
        slowest = handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .max()
            .unwrap_or_default();
    });
    slowest
}

/// `steady_state` with the ranks multiplexed through the bounded run
/// pool, sized ≥ world: every rank keeps its slot for the whole run, so
/// the gate reduces to one uncontended acquire/release per rank and the
/// loop must match the plain scoped-thread variant to within noise.
fn steady_state_run_pooled(
    world: usize,
    iters: u64,
    step: impl Fn(&Rank, &SparseGrad, &mut Embedding, &mut ExchangeScratch) + Sync,
) -> Duration {
    let ranks = CommGroup::create_pooled(world, world, world);
    let times = simgpu::run_ranks(ranks, |rank| {
        let mut table = Embedding::from_matrix(Matrix::zeros(SS_VOCAB, SS_DIM));
        let grad = zipfian_grad(rank.rank() as u64, SS_TOKENS, SS_VOCAB, SS_DIM);
        let mut scratch = ExchangeScratch::new();
        step(&rank, &grad, &mut table, &mut scratch);
        rank.barrier().unwrap();
        let t0 = Instant::now();
        for _ in 0..iters {
            step(&rank, &grad, &mut table, &mut scratch);
        }
        rank.barrier().unwrap();
        t0.elapsed()
    });
    times.into_iter().max().unwrap_or_default()
}

fn pooled_step(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    scratch: &mut ExchangeScratch,
) {
    exchange_and_apply_with(rank, grad, table, 0.1, &ExchangeConfig::unique(), scratch).unwrap();
}

fn seed_step(rank: &Rank, grad: &SparseGrad, table: &mut Embedding, _: &mut ExchangeScratch) {
    seed_unique_exchange(rank, grad, table, 0.1);
}

/// The pooled step plus everything the trainer adds for fleet metrics
/// when they are *disabled*: build the per-step [`StepSample`] from the
/// exchange stats and hand it to a [`StepObserver::off()`]. This is the
/// exact off-path shape `run_rank` executes per step under
/// `MetricsConfig::off()`.
fn metrics_off_step(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    scratch: &mut ExchangeScratch,
) {
    let mut observer = StepObserver::off();
    let stats = exchange_and_apply_with(rank, grad, table, 0.1, &ExchangeConfig::unique(), scratch)
        .unwrap();
    let attribution = TimeAttribution::default();
    observer.on_step(&StepSample {
        step: 0,
        sim_time_ps: 0,
        attribution: &attribution,
        wire_bytes: stats.wire_bytes,
        unique_global: stats.unique_global as u64,
        codec_raw_bytes: stats.reduce_raw_bytes,
        codec_enc_bytes: stats.reduce_enc_bytes,
        work_ps: &[],
        delay_ps: &[],
        barrier_wait_wall_ns: 0,
    });
    std::hint::black_box(&observer);
}

/// The traced entry point with tracing *disabled* (`None` recorder) —
/// the configuration the trainer uses whenever `TraceConfig::off()`.
fn untraced_step(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    scratch: &mut ExchangeScratch,
) {
    exchange_and_apply_traced(
        rank,
        grad,
        table,
        0.1,
        &ExchangeConfig::unique(),
        scratch,
        None,
    )
    .unwrap();
}

/// One steady-state guard measurement, collected across the report
/// functions and persisted by [`persist_guards`] as
/// `BENCH_exchange_steady.json`. Wall-clock, so the artifact records a
/// trajectory — unlike `BENCH_overlap.json` it is not a CI golden.
struct GuardResult {
    name: &'static str,
    reference_ms_per_step: f64,
    candidate_ms_per_step: f64,
    ratio: f64,
    bound: &'static str,
}

static GUARDS: Mutex<Vec<GuardResult>> = Mutex::new(Vec::new());

fn record_guard(
    name: &'static str,
    reference: Duration,
    candidate: Duration,
    steps: u64,
    bound: &'static str,
) -> f64 {
    let ratio = candidate.as_secs_f64() / reference.as_secs_f64();
    GUARDS.lock().unwrap().push(GuardResult {
        name,
        reference_ms_per_step: reference.as_secs_f64() * 1e3 / steps as f64,
        candidate_ms_per_step: candidate.as_secs_f64() * 1e3 / steps as f64,
        ratio,
        bound,
    });
    ratio
}

fn bench_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange");
    for world in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("baseline", world), &world, |b, &w| {
            b.iter(|| run_exchange(w, ExchangeConfig::baseline()))
        });
        group.bench_with_input(BenchmarkId::new("unique", world), &world, |b, &w| {
            b.iter(|| run_exchange(w, ExchangeConfig::unique()))
        });
        group.bench_with_input(BenchmarkId::new("unique_f16", world), &world, |b, &w| {
            b.iter(|| run_exchange(w, ExchangeConfig::unique_compressed()))
        });
    }
    group.finish();
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_steady");
    group.bench_function("seed_unique/w8_k4096_d128", |b| {
        b.iter_custom(|iters| steady_state(SS_WORLD, iters, seed_step))
    });
    group.bench_function("pooled_unique/w8_k4096_d128", |b| {
        b.iter_custom(|iters| steady_state(SS_WORLD, iters, pooled_step))
    });
    group.finish();
}

/// Head-to-head comparison at the acceptance shape: equal step counts,
/// slowest-rank timing, pooled speedup over the seed implementation.
fn report_speedup(_c: &mut Criterion) {
    const STEPS: u64 = 30;
    // Interleave to even out machine drift between the two measurements.
    let mut seed_total = Duration::ZERO;
    let mut pooled_total = Duration::ZERO;
    for _ in 0..3 {
        seed_total += steady_state(SS_WORLD, STEPS / 3, seed_step);
        pooled_total += steady_state(SS_WORLD, STEPS / 3, pooled_step);
    }
    // ratio is always candidate/reference; here the candidate is the
    // *seed* implementation measured against the pooled reference, so
    // the recorded ratio is the speedup itself (bigger is better).
    let ratio = record_guard("speedup", pooled_total, seed_total, STEPS, ">= 1.5");
    println!(
        "exchange_steady/speedup                  seed {:.3} ms/step, pooled {:.3} ms/step => {ratio:.2}x (target >= 1.5x)",
        seed_total.as_secs_f64() * 1e3 / STEPS as f64,
        pooled_total.as_secs_f64() * 1e3 / STEPS as f64,
    );
}

/// Prints rank 0's per-phase wall-time split over a steady-state run of
/// the pooled unique path (the timings `ExchangeStats` now carries).
fn report_phase_timings(_c: &mut Criterion) {
    const STEPS: u64 = 10;
    let ranks = CommGroup::create(SS_WORLD);
    let mut total = PhaseTimings::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                s.spawn(move || {
                    let mut table = Embedding::from_matrix(Matrix::zeros(SS_VOCAB, SS_DIM));
                    let grad = zipfian_grad(rank.rank() as u64, SS_TOKENS, SS_VOCAB, SS_DIM);
                    let mut scratch = ExchangeScratch::new();
                    let mut acc = PhaseTimings::default();
                    for _ in 0..=STEPS {
                        let stats = exchange_and_apply_with(
                            &rank,
                            &grad,
                            &mut table,
                            0.1,
                            &ExchangeConfig::unique(),
                            &mut scratch,
                        );
                        acc.accumulate(&stats.unwrap().timings);
                    }
                    (rank.rank(), acc)
                })
            })
            .collect();
        for h in handles {
            let (r, acc) = h.join().expect("rank panicked");
            if r == 0 {
                total = acc;
            }
        }
    });
    let pct = |ns: u64| 100.0 * ns as f64 / total.total_ns().max(1) as f64;
    println!(
        "exchange_steady/phases (rank 0)          gather {:.1}% unique {:.1}% scatter {:.1}% allreduce {:.1}% apply {:.1}%",
        pct(total.gather_ns),
        pct(total.unique_ns),
        pct(total.scatter_ns),
        pct(total.allreduce_ns),
        pct(total.apply_ns),
    );
}

/// Guard for the tentpole's zero-overhead-when-off claim: the traced
/// entry point with a `None` recorder must stay within noise of the
/// plain pooled hot path. Interleaved min-of-3 like `report_speedup`;
/// the 1.30× bound is loose against scheduler jitter on shared CI
/// hardware — an accidental per-phase allocation or clock read in the
/// `None` branch shows up far above it.
fn report_trace_overhead(_c: &mut Criterion) {
    const STEPS: u64 = 30;
    let mut plain_total = Duration::ZERO;
    let mut untraced_total = Duration::ZERO;
    for _ in 0..3 {
        plain_total += steady_state(SS_WORLD, STEPS / 3, pooled_step);
        untraced_total += steady_state(SS_WORLD, STEPS / 3, untraced_step);
    }
    let ratio = record_guard(
        "trace_overhead",
        plain_total,
        untraced_total,
        STEPS,
        "< 1.30",
    );
    println!(
        "exchange_steady/trace_overhead           plain {:.3} ms/step, traced-off {:.3} ms/step => {ratio:.2}x (bound < 1.30x)",
        plain_total.as_secs_f64() * 1e3 / STEPS as f64,
        untraced_total.as_secs_f64() * 1e3 / STEPS as f64,
    );
    assert!(
        ratio < 1.30,
        "tracing-disabled exchange is {ratio:.2}x the plain hot path (bound 1.30x)"
    );
}

/// Guard for the fleet-metrics tentpole's zero-overhead-when-off claim:
/// a step that also drives a disabled [`StepObserver`] (the trainer's
/// configuration whenever `MetricsConfig::off()`) must stay within
/// noise of the plain pooled hot path. The disabled observer's
/// `on_step` is a single `Option` branch; constructing the
/// [`StepSample`] costs only stack writes. Same interleaved min-of-3
/// shape and loose 1.30× jitter bound as `report_trace_overhead` — an
/// accidental histogram observe or allocation on the off path lands
/// far above it.
fn report_metrics_overhead(_c: &mut Criterion) {
    const STEPS: u64 = 30;
    let mut plain_total = Duration::ZERO;
    let mut observed_total = Duration::ZERO;
    for _ in 0..3 {
        plain_total += steady_state(SS_WORLD, STEPS / 3, pooled_step);
        observed_total += steady_state(SS_WORLD, STEPS / 3, metrics_off_step);
    }
    let ratio = record_guard(
        "metrics_overhead",
        plain_total,
        observed_total,
        STEPS,
        "< 1.30",
    );
    println!(
        "exchange_steady/metrics_overhead         plain {:.3} ms/step, metrics-off {:.3} ms/step => {ratio:.2}x (bound < 1.30x)",
        plain_total.as_secs_f64() * 1e3 / STEPS as f64,
        observed_total.as_secs_f64() * 1e3 / STEPS as f64,
    );
    assert!(
        ratio < 1.30,
        "metrics-disabled step is {ratio:.2}x the plain hot path (bound 1.30x)"
    );
}

/// Guard for the bounded-pool refactor: with the pool sized ≥ world the
/// steady-state exchange must be unchanged — slot traffic is a one-time
/// handoff per rank, never a per-step cost. Interleaved totals like
/// `report_speedup`; the 1.30× bound is loose against scheduler jitter
/// but catches an accidental per-collective gate round-trip cleanly.
fn report_run_pool_overhead(_c: &mut Criterion) {
    const STEPS: u64 = 30;
    let mut plain_total = Duration::ZERO;
    let mut gated_total = Duration::ZERO;
    for _ in 0..3 {
        plain_total += steady_state(SS_WORLD, STEPS / 3, pooled_step);
        gated_total += steady_state_run_pooled(SS_WORLD, STEPS / 3, pooled_step);
    }
    let ratio = record_guard(
        "run_pool_overhead",
        plain_total,
        gated_total,
        STEPS,
        "< 1.30",
    );
    println!(
        "exchange_steady/run_pool_overhead        unpooled {:.3} ms/step, pool>=world {:.3} ms/step => {ratio:.2}x (bound < 1.30x)",
        plain_total.as_secs_f64() * 1e3 / STEPS as f64,
        gated_total.as_secs_f64() * 1e3 / STEPS as f64,
    );
    assert!(
        ratio < 1.30,
        "run-pool exchange is {ratio:.2}x the unpooled steady state (bound 1.30x)"
    );
}

fn bench_local_reduce(c: &mut Criterion) {
    let grad = zipfian_grad(3, TOKENS, VOCAB, DIM);
    c.bench_function("local_reduce_zipfian_256tok", |b| {
        b.iter(|| std::hint::black_box(&grad).local_reduce())
    });
}

/// Persists every guard measured this run as
/// `BENCH_exchange_steady.json` at the workspace root, so CI records
/// the guard ratios as an artifact trajectory instead of letting them
/// scroll away in the bench log. Runs last in the group — a failed
/// guard assertion means no artifact, which is the right signal.
fn persist_guards(_c: &mut Criterion) {
    let guards = GUARDS.lock().unwrap();
    let mut out = String::from("{\n  \"bench\": \"exchange_steady\",\n  \"guards\": [\n");
    for (i, g) in guards.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"reference_ms_per_step\": {:.6}, \
             \"candidate_ms_per_step\": {:.6}, \"ratio\": {:.4}, \"bound\": \"{}\"}}{}\n",
            g.name,
            g.reference_ms_per_step,
            g.candidate_ms_per_step,
            g.ratio,
            g.bound,
            if i + 1 == guards.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_exchange_steady.json"
    );
    std::fs::write(path, out).expect("write BENCH_exchange_steady.json");
    println!(
        "exchange_steady/persist_guards           wrote {path} ({} guards)",
        guards.len()
    );
}

criterion_group!(
    benches,
    bench_exchange,
    bench_steady_state,
    report_speedup,
    report_phase_timings,
    report_trace_overhead,
    report_metrics_overhead,
    report_run_pool_overhead,
    bench_local_reduce,
    persist_guards,
);
criterion_main!(benches);
