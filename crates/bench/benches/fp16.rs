//! Benchmarks the software binary16 conversion and compression-scaling
//! round trip (§III-C's per-tensor cast overhead — the paper observed
//! cast overhead limits compression gains on tensor-heavy models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tensor::f16::{compress_scaled, decompress_scaled, round_trip_scaled_in_place};

fn bench_casts(c: &mut Criterion) {
    let mut group = c.benchmark_group("fp16");
    for &n in &[1usize << 10, 1 << 16, 1 << 20] {
        let xs: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 1e-3).collect();
        group.throughput(Throughput::Bytes((n * 4) as u64));
        group.bench_with_input(BenchmarkId::new("compress", n), &xs, |b, xs| {
            let mut wire = Vec::new();
            b.iter(|| compress_scaled(xs, 512.0, &mut wire))
        });
        let mut wire = Vec::new();
        compress_scaled(&xs, 512.0, &mut wire);
        group.bench_with_input(BenchmarkId::new("decompress", n), &wire, |b, wire| {
            let mut out = vec![0.0f32; n];
            b.iter(|| decompress_scaled(wire, 512.0, &mut out))
        });
        group.bench_with_input(BenchmarkId::new("round_trip", n), &xs, |b, xs| {
            let mut buf = xs.clone();
            b.iter(|| round_trip_scaled_in_place(&mut buf, 512.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_casts);
criterion_main!(benches);
