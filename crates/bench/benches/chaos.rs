//! Bench target for the chaos-recovery breakdown: one elastic run per
//! fault class (clean transient kill, kill after torn-write /
//! bit-flip / unlink disk rot, two-round double kill), each restoring
//! through a real on-disk checkpoint directory with the fault injected
//! by the store itself. Persists the recovery surface — rounds,
//! restored cut, steps lost, modelled backoff, corrupt frames — as
//! `BENCH_chaos.json` at the workspace root. Every field is simulated,
//! so the file is deterministic: CI asserts a fresh run leaves the
//! committed golden byte-identical, exactly like `BENCH_overlap.json`.
//!
//! `harness = false`: this is a measured experiment with a side effect,
//! not a statistical microbenchmark.

use std::time::Instant;
use zlm_bench::{chaos_recovery, chaos_recovery_json};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let t0 = Instant::now();
    let rows = chaos_recovery(!full);
    let wall = t0.elapsed();

    println!("chaos_recovery: durable-store recovery breakdown per fault class");
    println!(
        "{:>15} {:>6} {:>7} {:>9} {:>6} {:>12} {:>8} {:>6}",
        "scenario", "world", "rounds", "restored", "lost", "backoff_ms", "corrupt", "final"
    );
    for r in &rows {
        println!(
            "{:>15} {:>6} {:>7} {:>9} {:>6} {:>12.1} {:>8} {:>6}",
            r.scenario,
            r.world,
            r.rounds,
            r.restored_step,
            r.steps_lost,
            r.backoff_ps as f64 / 1e9,
            r.corrupt_frames,
            r.final_world,
        );
    }
    println!("(all recoveries bit-deterministic; wall {wall:.2?})");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(path, chaos_recovery_json(&rows)).expect("write BENCH_chaos.json");
    println!("wrote {path}");
}
