//! Benchmarks the Figure 1 substrate: alias-method Zipf sampling and
//! type–token curve measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use zipf::heaps::log_checkpoints;
use zipf::{heaps_curve_from_sampler, AliasTable, ZipfMandelbrot};

fn bench_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias_sampling");
    for &v in &[1_000usize, 100_000, 2_000_000] {
        let weights: Vec<f64> = (0..v).map(|r| 1.0 / (r + 1) as f64).collect();
        group.bench_with_input(BenchmarkId::new("build", v), &weights, |b, w| {
            b.iter(|| AliasTable::new(w))
        });
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(1);
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("draw", v), &table, |b, t| {
            b.iter(|| t.sample(&mut rng))
        });
    }
    group.finish();
}

fn bench_heaps_curve(c: &mut Criterion) {
    let dist = ZipfMandelbrot::new(500_000, 1.5625, 3.5);
    let cps = log_checkpoints(500, 200_000, 4);
    c.bench_function("heaps_curve_200k_tokens", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| heaps_curve_from_sampler(&mut rng, 500_000, &cps, |r| dist.sample(r)))
    });
}

criterion_group!(benches, bench_alias, bench_heaps_curve);
criterion_main!(benches);
