//! Benchmarks the simulated collectives: ring ALLREDUCE (f32 / f16 wire)
//! and ALLGATHER across group sizes and payloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use simgpu::CommGroup;

fn run_allreduce(world: usize, n: usize, f16: bool) {
    let ranks = CommGroup::create(world);
    std::thread::scope(|s| {
        for rank in ranks {
            s.spawn(move || {
                let mut data = vec![rank.rank() as f32; n];
                if f16 {
                    rank.all_reduce_sum_f16(&mut data, 512.0).unwrap();
                } else {
                    rank.all_reduce_sum(&mut data).unwrap();
                }
            });
        }
    });
}

fn run_allgather(world: usize, n: usize) {
    let ranks = CommGroup::create(world);
    std::thread::scope(|s| {
        for rank in ranks {
            s.spawn(move || {
                let local = vec![rank.rank() as f32; n];
                rank.all_gather_f32(&local).unwrap();
            });
        }
    });
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("ring_allreduce");
    for &n in &[1usize << 12, 1 << 16] {
        group.throughput(Throughput::Bytes((n * 4) as u64));
        for world in [2usize, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("f32_{n}"), world),
                &world,
                |b, &w| b.iter(|| run_allreduce(w, n, false)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("f16_{n}"), world),
                &world,
                |b, &w| b.iter(|| run_allreduce(w, n, true)),
            );
        }
    }
    group.finish();
}

fn run_hierarchical(world: usize, n: usize, per_node: usize) {
    let ranks = CommGroup::create(world);
    std::thread::scope(|s| {
        for rank in ranks {
            s.spawn(move || {
                let mut data = vec![rank.rank() as f32; n];
                rank.all_reduce_sum_hierarchical(&mut data, per_node)
                    .unwrap();
            });
        }
    });
}

/// Ablation: flat ring vs node-hierarchical ALLREDUCE schedules at the
/// same payload — the schedule choice Table II's two-tier fabric makes
/// interesting.
fn bench_hierarchy_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_schedule");
    let n = 1usize << 14;
    group.throughput(Throughput::Bytes((n * 4) as u64));
    for world in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("flat_ring", world), &world, |b, &w| {
            b.iter(|| run_allreduce(w, n, false))
        });
        group.bench_with_input(
            BenchmarkId::new("hierarchical_2pernode", world),
            &world,
            |b, &w| b.iter(|| run_hierarchical(w, n, 2)),
        );
    }
    group.finish();
}

fn bench_allgather(c: &mut Criterion) {
    let mut group = c.benchmark_group("allgather");
    let n = 1usize << 14;
    group.throughput(Throughput::Bytes((n * 4) as u64));
    for world in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(world), &world, |b, &w| {
            b.iter(|| run_allgather(w, n))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_allreduce,
    bench_allgather,
    bench_hierarchy_ablation
);
criterion_main!(benches);
