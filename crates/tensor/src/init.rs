//! Seeded weight initialisers.
//!
//! Every experiment in the reproduction is deterministic given its seed;
//! these helpers are the only place weights are randomised.

use crate::matrix::Matrix;
use rand::Rng;

/// Uniform init in `[-bound, bound]`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, bound: f32) -> Matrix {
    assert!(bound > 0.0, "bound must be positive");
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Xavier/Glorot uniform init: `bound = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let bound = (6.0 / (rows + cols) as f32).sqrt();
    uniform(rng, rows, cols, bound)
}

/// Embedding-style init: `U(-1/sqrt(D), 1/sqrt(D))` for a `V×D` table.
pub fn embedding<R: Rng + ?Sized>(rng: &mut R, vocab: usize, dim: usize) -> Matrix {
    let bound = 1.0 / (dim as f32).sqrt();
    uniform(rng, vocab, dim, bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_given_seed() {
        let a = xavier(&mut StdRng::seed_from_u64(9), 4, 5);
        let b = xavier(&mut StdRng::seed_from_u64(9), 4, 5);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let a = xavier(&mut StdRng::seed_from_u64(1), 4, 5);
        let b = xavier(&mut StdRng::seed_from_u64(2), 4, 5);
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn values_within_bound() {
        let bound = 0.3;
        let m = uniform(&mut StdRng::seed_from_u64(3), 10, 10, bound);
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let small = xavier(&mut StdRng::seed_from_u64(4), 4, 4);
        let large = xavier(&mut StdRng::seed_from_u64(4), 400, 400);
        let max_small = small.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let max_large = large.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(max_large < max_small);
    }

    #[test]
    fn embedding_bound() {
        let m = embedding(&mut StdRng::seed_from_u64(5), 100, 64);
        let bound = 1.0 / 8.0;
        assert!(m.as_slice().iter().all(|&x| x.abs() <= bound));
        assert_eq!(m.rows(), 100);
        assert_eq!(m.cols(), 64);
    }
}
