//! Software IEEE-754 binary16 ("half precision") and the paper's
//! compression-scaling trick (§III-C).
//!
//! The paper halves communication volume by down-casting FP32 gradient
//! tensors to FP16 on the wire and up-casting on receipt. Plain
//! down-casting flushes gradients below ~6·10⁻⁵ (the smallest binary16
//! subnormal is 2⁻²⁴ ≈ 6·10⁻⁸, the smallest normal 2⁻¹⁴ ≈ 6.1·10⁻⁵) to
//! zero or subnormal mush; *compression-scaling* multiplies by a factor
//! `F` (256–1024) before the cast and divides after, moving small
//! gradients back into well-represented range. We implement binary16
//! bit-exactly (round-to-nearest-even) so the accuracy experiments are
//! faithful to what FP16 hardware would do.

/// An IEEE-754 binary16 value stored as its bit pattern.
///
/// ```
/// use tensor::F16;
/// assert_eq!(F16::from_f32(1.0).0, 0x3c00);
/// assert_eq!(F16::from_f32(1.0).to_f32(), 1.0);
/// // A 1e-8 gradient is lost without compression-scaling:
/// assert_eq!(F16::from_f32(1e-8).to_f32(), 0.0);
/// assert!(F16::from_f32(1e-8 * 1024.0).to_f32() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// Largest finite binary16 value, 65504.
    pub const MAX: f32 = 65504.0;
    /// Smallest positive normal binary16 value, 2⁻¹⁴.
    pub const MIN_POSITIVE_NORMAL: f32 = 6.103_515_6e-5;

    /// Converts from `f32` with round-to-nearest-even, overflow to ±∞.
    pub fn from_f32(x: f32) -> F16 {
        let bits = x.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xff) as i32;
        let mant = bits & 0x007f_ffff;

        if exp == 0xff {
            // Inf or NaN. Preserve NaN-ness with a quiet-NaN payload bit.
            let nan_payload = if mant != 0 { 0x0200 } else { 0 };
            return F16(sign | 0x7c00 | nan_payload);
        }

        // Unbiased exponent; f32 bias 127, f16 bias 15.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflows f16 range -> infinity.
            return F16(sign | 0x7c00);
        }
        if unbiased >= -14 {
            // Normal range. Keep 10 mantissa bits, round-to-nearest-even
            // on the 13 dropped bits.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_mant = (mant >> 13) as u16;
            let round_bits = mant & 0x1fff;
            let mut out = sign | half_exp | half_mant;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_mant & 1) == 1) {
                out = out.wrapping_add(1); // may carry into exponent: correct.
            }
            return F16(out);
        }
        if unbiased >= -25 {
            // Subnormal f16. Implicit leading 1 becomes explicit.
            let full_mant = mant | 0x0080_0000;
            let shift = (-unbiased - 14 + 13) as u32; // 14..24
            let half_mant = (full_mant >> shift) as u16;
            let round_mask = (1u32 << shift) - 1;
            let round_bits = full_mant & round_mask;
            let halfway = 1u32 << (shift - 1);
            let mut out = sign | half_mant;
            if round_bits > halfway || (round_bits == halfway && (half_mant & 1) == 1) {
                out = out.wrapping_add(1);
            }
            return F16(out);
        }
        // Too small even for subnormal: signed zero.
        F16(sign)
    }

    /// Converts to `f32` exactly (every binary16 value is representable).
    pub fn to_f32(self) -> f32 {
        let bits = self.0 as u32;
        let sign = (bits & 0x8000) << 16;
        let exp = (bits >> 10) & 0x1f;
        let mant = bits & 0x03ff;

        let out = if exp == 0x1f {
            // Inf / NaN.
            sign | 0x7f80_0000 | (mant << 13)
        } else if exp != 0 {
            // Normal.
            sign | ((exp + 127 - 15) << 23) | (mant << 13)
        } else if mant != 0 {
            // Subnormal: renormalise.
            let mut m = mant;
            let mut e: u32 = 127 - 15 + 1;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | (e << 23) | ((m & 0x03ff) << 13)
        } else {
            sign // signed zero
        };
        f32::from_bits(out)
    }

    /// True if this is an infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7fff) == 0x7c00
    }

    /// True if this is a NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7c00) == 0x7c00 && (self.0 & 0x03ff) != 0
    }
}

/// Round-trips a value through binary16 (what the wire does to it).
#[inline]
pub fn round_trip(x: f32) -> f32 {
    F16::from_f32(x).to_f32()
}

/// Down-casts a slice with compression-scaling: `out[i] = f16(x[i] · F)`.
pub fn compress_scaled(xs: &[f32], scale: f32, out: &mut Vec<u16>) {
    out.clear();
    out.reserve(xs.len());
    out.extend(xs.iter().map(|&x| F16::from_f32(x * scale).0));
}

/// Up-casts and un-scales: `out[i] = f32(h[i]) / F`.
pub fn decompress_scaled(hs: &[u16], scale: f32, out: &mut [f32]) {
    assert_eq!(hs.len(), out.len(), "length mismatch");
    let inv = 1.0 / scale;
    for (o, &h) in out.iter_mut().zip(hs) {
        *o = F16(h).to_f32() * inv;
    }
}

/// Round-trips an entire slice in place through scaled binary16 — the
/// numerical effect of one compressed collective on a tensor.
pub fn round_trip_scaled_in_place(xs: &mut [f32], scale: f32) {
    let inv = 1.0 / scale;
    for x in xs {
        *x = F16::from_f32(*x * scale).to_f32() * inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_values() {
        assert_eq!(F16::from_f32(0.0).0, 0x0000);
        assert_eq!(F16::from_f32(-0.0).0, 0x8000);
        assert_eq!(F16::from_f32(1.0).0, 0x3c00);
        assert_eq!(F16::from_f32(-2.0).0, 0xc000);
        assert_eq!(F16::from_f32(65504.0).0, 0x7bff);
        assert_eq!(F16::from_f32(f32::INFINITY).0, 0x7c00);
        assert_eq!(F16::from_f32(2.0f32.powi(-14)).0, 0x0400); // min normal
        assert_eq!(F16::from_f32(2.0f32.powi(-24)).0, 0x0001); // min subnormal
    }

    #[test]
    fn overflow_to_infinity() {
        assert!(F16::from_f32(1e6).is_infinite());
        assert!(F16::from_f32(-1e6).is_infinite());
        assert_eq!(F16::from_f32(-1e6).0 & 0x8000, 0x8000);
    }

    #[test]
    fn underflow_to_zero() {
        assert_eq!(F16::from_f32(1e-9).0, 0x0000);
        assert_eq!(F16::from_f32(-1e-9).0, 0x8000);
    }

    #[test]
    fn nan_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16(0x7e00).to_f32().is_nan());
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16;
        // round-to-even keeps 1.0 (even mantissa).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(F16::from_f32(halfway).0, 0x3c00);
        // Slightly above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20);
        assert_eq!(F16::from_f32(above).0, 0x3c01);
    }

    #[test]
    fn rounding_carry_into_exponent() {
        // Largest mantissa + round-up must carry cleanly to next exponent.
        let x = 2047.5f32; // rounds to 2048 in f16
        assert_eq!(round_trip(x), 2048.0);
    }

    #[test]
    fn exhaustive_f16_to_f32_round_trip() {
        // Every finite f16 must survive f16 -> f32 -> f16 exactly.
        for bits in 0u16..=0xffff {
            let h = F16(bits);
            if h.is_nan() {
                continue;
            }
            let back = F16::from_f32(h.to_f32());
            assert_eq!(back.0, bits, "bits {bits:#06x}");
        }
    }

    #[test]
    fn small_gradients_lost_without_scaling_kept_with() {
        // A gradient of 1e-8 is below the subnormal threshold: lost.
        let g = 1e-8f32;
        assert_eq!(round_trip(g), 0.0);
        // With compression-scaling (F = 1024) it survives within f16 eps.
        let mut v = [g];
        round_trip_scaled_in_place(&mut v, 1024.0);
        assert!((v[0] - g).abs() / g < 1e-2, "got {}", v[0]);
    }

    #[test]
    fn compress_decompress_slices() {
        let xs = [0.5f32, -0.25, 3.0, 1e-5];
        let mut wire = Vec::new();
        compress_scaled(&xs, 512.0, &mut wire);
        assert_eq!(wire.len(), xs.len());
        let mut back = [0.0f32; 4];
        decompress_scaled(&wire, 512.0, &mut back);
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() * 2e-3 + 1e-7, "{a} vs {b}");
        }
    }

    proptest! {
        #[test]
        fn relative_error_bounded_in_normal_range(x in -60000.0f32..60000.0) {
            prop_assume!(x.abs() >= F16::MIN_POSITIVE_NORMAL);
            let rt = round_trip(x);
            // binary16 has 11 significand bits: rel err <= 2^-11.
            prop_assert!((rt - x).abs() <= x.abs() * 2.0f32.powi(-11));
        }

        #[test]
        fn round_trip_is_idempotent(x in -1e5f32..1e5) {
            let once = round_trip(x);
            prop_assert_eq!(once.to_bits(), round_trip(once).to_bits());
        }

        #[test]
        fn sign_preserved(x in -1e4f32..1e4) {
            prop_assume!(x != 0.0);
            let rt = round_trip(x);
            prop_assert!(rt == 0.0 || rt.is_sign_positive() == x.is_sign_positive());
        }
    }
}
