//! Minimal dense-tensor substrate for `zipf-lm`.
//!
//! The paper trains LSTM / RHN language models in TensorFlow on GPUs; we
//! need just enough linear algebra to train the same architectures on CPU:
//!
//! * [`Matrix`] — row-major `f32` matrices with rayon-parallel GEMM (the
//!   CPU stand-in for CUDA thread-block parallelism).
//! * [`ops`] — numerically-stable softmax / log-sum-exp and the pointwise
//!   nonlinearities LSTM/RHN need.
//! * [`f16`] — bit-exact software IEEE-754 binary16 with round-to-nearest-
//!   even, plus the compression-scaling helpers of the paper's §III-C.
//! * [`init`] — seeded uniform / Xavier initialisers so every experiment
//!   is reproducible.

pub mod f16;
pub mod init;
pub mod matrix;
pub mod ops;

pub use f16::F16;
pub use matrix::Matrix;
