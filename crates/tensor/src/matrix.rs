//! Row-major `f32` matrices with rayon-parallel GEMM.
//!
//! The hot paths in LM training are `activations × weights` products; on a
//! GPU these run as thread-block kernels, here they run as rayon parallel
//! row loops with an inner loop arranged for auto-vectorisation (k-outer
//! accumulate-into-row ordering, contiguous row access only).

use rayon::prelude::*;
use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

impl Matrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps an existing buffer; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor (debug-checked).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter (debug-checked).
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// `self += other`, elementwise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`, elementwise (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// `self *= alpha`, elementwise.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius-norm squared (sum of squares) — used by loss-scaling
    /// overflow checks and gradient-norm diagnostics.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|&x| (x as f64) * (x as f64)).sum()
    }

    /// `C = A · B` where `A` is `m×k`, `B` is `k×n`. Parallel over rows
    /// of `A`; the inner loops are k-outer so the `B` row is streamed
    /// contiguously and the compiler vectorises the fused multiply-adds.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        out.data
            .par_chunks_mut(n)
            .zip(self.data.par_chunks(k))
            .for_each(|(out_row, a_row)| {
                for (p, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[p * n..(p + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            });
        out
    }

    /// `C = A · Bᵀ` where `A` is `m×k`, `B` is `n×k`. Used by output
    /// projections against embedding matrices, which are stored `V×D`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Matrix::zeros(m, n);
        out.data
            .par_chunks_mut(n)
            .zip(self.data.par_chunks(k))
            .for_each(|(out_row, a_row)| {
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &other.data[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            });
        out
    }

    /// `C = Aᵀ · B` where `A` is `k×m`, `B` is `k×n`. Used by weight
    /// gradients (`dW = xᵀ · dy`). Parallel over rows of the output.
    pub fn transpose_a_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "inner dimension mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(m, n);
        out.data
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, out_row)| {
                for p in 0..k {
                    let a = self.data[p * m + i];
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[p * n..(p + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            });
        out
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Adds `bias` (length `cols`) to every row.
    pub fn add_row_bias(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_mut(self.cols) {
            for (x, &b) in row.iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Sums the rows into a length-`cols` vector (bias gradients).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for row in self.data.chunks(self.cols) {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        out
    }

    /// Maximum absolute difference against another matrix (test helper,
    /// also used by exchange-equivalence assertions in `lm`).
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for p in 0..a.cols() {
                    acc += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let mut eye = Matrix::zeros(4, 4);
        for i in 0..4 {
            eye.set(i, i, 1.0);
        }
        let a = Matrix::from_vec(4, 4, (0..16).map(|x| x as f32).collect());
        assert_eq!(a.matmul(&eye).as_slice(), a.as_slice());
        assert_eq!(eye.matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn matmul_transpose_b_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32 * 0.25).collect());
        let via_t = a.matmul(&b.transpose());
        let direct = a.matmul_transpose_b(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-6);
    }

    #[test]
    fn transpose_a_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Matrix::from_vec(3, 4, (0..12).map(|x| x as f32 * 0.5 - 2.0).collect());
        let via_t = a.transpose().matmul(&b);
        let direct = a.transpose_a_matmul(&b);
        assert!(via_t.max_abs_diff(&direct) < 1e-6);
    }

    #[test]
    fn add_row_bias_and_sum_rows() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_bias(&[1.0, -2.0]);
        assert_eq!(m.as_slice(), &[1., -2., 1., -2., 1., -2.]);
        assert_eq!(m.sum_rows(), vec![3.0, -6.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1., 2., 3.]);
        let b = Matrix::from_vec(1, 3, vec![10., 20., 30.]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6., 12., 18.]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[12., 24., 36.]);
    }

    #[test]
    fn norm_sq() {
        let m = Matrix::from_vec(1, 3, vec![3., 4., 0.]);
        assert!((m.norm_sq() - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    proptest! {
        #[test]
        fn parallel_matmul_matches_naive(
            m in 1usize..8, k in 1usize..8, n in 1usize..8,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let a = Matrix::from_vec(m, k, (0..m*k).map(|_| rng.gen_range(-2.0..2.0)).collect());
            let b = Matrix::from_vec(k, n, (0..k*n).map(|_| rng.gen_range(-2.0..2.0)).collect());
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            prop_assert!(fast.max_abs_diff(&slow) < 1e-4);
        }

        #[test]
        fn transpose_involution(m in 1usize..6, n in 1usize..6) {
            let a = Matrix::from_vec(m, n, (0..m*n).map(|x| x as f32).collect());
            let tt = a.transpose().transpose();
            prop_assert_eq!(tt.as_slice(), a.as_slice());
        }
    }
}
