//! Numerically-stable reductions and pointwise nonlinearities.
//!
//! Softmax over large vocabularies is exactly where the paper's LMs spend
//! their FLOPs; everything here subtracts the row maximum before
//! exponentiating so full-softmax over a 100 K vocabulary stays finite.

use crate::matrix::Matrix;
use rayon::prelude::*;

/// In-place row-wise softmax.
pub fn softmax_rows(m: &mut Matrix) {
    let cols = m.cols();
    m.as_mut_slice().par_chunks_mut(cols).for_each(|row| {
        softmax_in_place(row);
    });
}

/// In-place softmax of a single slice.
pub fn softmax_in_place(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    let inv = 1.0 / sum;
    for x in row.iter_mut() {
        *x *= inv;
    }
}

/// log(Σ exp(xᵢ)) computed stably.
pub fn log_sum_exp(row: &[f32]) -> f32 {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f32 = row.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of sigmoid expressed via its output `y = σ(x)`.
#[inline]
pub fn dsigmoid_from_y(y: f32) -> f32 {
    y * (1.0 - y)
}

/// Derivative of tanh expressed via its output `y = tanh(x)`.
#[inline]
pub fn dtanh_from_y(y: f32) -> f32 {
    1.0 - y * y
}

/// In-place tanh over a slice.
pub fn tanh_in_place(xs: &mut [f32]) {
    for x in xs {
        *x = x.tanh();
    }
}

/// In-place sigmoid over a slice.
pub fn sigmoid_in_place(xs: &mut [f32]) {
    for x in xs {
        *x = sigmoid(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        softmax_rows(&mut m);
        for r in 0..2 {
            let row = m.row(r);
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let mut row = vec![1000.0f32, 1001.0, 1002.0];
        softmax_in_place(&mut row);
        assert!(row.iter().all(|x| x.is_finite()));
        let sum: f32 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_matches_naive_in_safe_range() {
        let row = [0.1f32, -0.4, 2.0, 1.5];
        let naive = row.iter().map(|&x| x.exp()).sum::<f32>().ln();
        assert!((log_sum_exp(&row) - naive).abs() < 1e-6);
    }

    #[test]
    fn log_sum_exp_stable_for_large_values() {
        let row = [500.0f32, 500.0];
        let got = log_sum_exp(&row);
        assert!((got - (500.0 + 2.0f32.ln())).abs() < 1e-3);
    }

    #[test]
    fn sigmoid_symmetry_and_bounds() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(-100.0) >= 0.0);
    }

    #[test]
    fn derivative_identities() {
        let y = sigmoid(0.7);
        assert!((dsigmoid_from_y(y) - y * (1.0 - y)).abs() < 1e-9);
        let t = 0.7f32.tanh();
        assert!((dtanh_from_y(t) - (1.0 - t * t)).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn softmax_probabilities(xs in proptest::collection::vec(-30.0f32..30.0, 1..64)) {
            let mut row = xs;
            softmax_in_place(&mut row);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }

        #[test]
        fn log_sum_exp_at_least_max(xs in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
            let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(log_sum_exp(&xs) >= max - 1e-5);
        }
    }
}
