//! Controlled randomization for sampled softmax — §III-B.
//!
//! With per-GPU seeds, every GPU draws its own `S` candidate words, so
//! the union across `G` GPUs approaches `G·S` distinct words and the
//! output-embedding exchange loses the Zipfian overlap that makes
//! uniqueness pay. With one shared seed, scalability is perfect but
//! sample diversity — and accuracy — collapses. The paper's insight is
//! the spectrum in between: use `k < G` distinct seeds, assigning GPUs to
//! seed groups, with `k = G^0.64` (the Zipf exponent again) empirically
//! matching full-diversity accuracy.

/// How sampled-softmax seeds are assigned across GPUs.
///
/// ```
/// use zipf_lm::SeedStrategy;
/// // At 64 GPUs the paper's Zipf's-frequency rule needs G^0.64 ≈ 15
/// // distinct seeds:
/// assert_eq!(SeedStrategy::ZipfFreq.seed_count(64), 15);
/// // GPUs in the same group draw identical candidate sets:
/// let a = SeedStrategy::ZipfFreq.seed_for(7, 0, 64, 3);
/// let b = SeedStrategy::ZipfFreq.seed_for(7, 1, 64, 3);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeedStrategy {
    /// Every GPU uses its own seed (the accuracy-optimal, scalability-
    /// pessimal baseline; the paper's curve labelled `G`).
    PerGpu,
    /// All GPUs share one seed (scalability-optimal, accuracy-pessimal).
    AllSame,
    /// `⌈log₂ G⌉` distinct seeds.
    Log2,
    /// `⌈ln G⌉` distinct seeds.
    LogE,
    /// `⌈log₁₀ G⌉` distinct seeds.
    Log10,
    /// `⌈G^0.64⌉` distinct seeds — the paper's Zipf's-frequency strategy,
    /// reported as the Pareto-optimal setting.
    ZipfFreq,
}

/// The Zipf/Heaps exponent used by [`SeedStrategy::ZipfFreq`].
pub const ZIPF_ALPHA: f64 = 0.64;

impl SeedStrategy {
    /// Number of distinct seeds this strategy uses across `world` GPUs.
    pub fn seed_count(&self, world: usize) -> usize {
        assert!(world >= 1);
        let count = match self {
            SeedStrategy::PerGpu => world,
            SeedStrategy::AllSame => 1,
            SeedStrategy::Log2 => (world as f64).log2().ceil() as usize,
            SeedStrategy::LogE => (world as f64).ln().ceil() as usize,
            SeedStrategy::Log10 => (world as f64).log10().ceil() as usize,
            SeedStrategy::ZipfFreq => (world as f64).powf(ZIPF_ALPHA).ceil() as usize,
        };
        count.clamp(1, world)
    }

    /// The seed group of GPU `rank` (contiguous blocks of ranks share a
    /// group, mirroring how node-local GPUs would share a seed).
    pub fn group_of(&self, rank: usize, world: usize) -> usize {
        assert!(rank < world);
        let k = self.seed_count(world);
        rank * k / world
    }

    /// The RNG seed GPU `rank` must use at training step `step`.
    ///
    /// Seeds advance every step (sampling must differ across steps) but
    /// remain equal within a group — that is the entire §III-B mechanism.
    pub fn seed_for(&self, base_seed: u64, rank: usize, world: usize, step: u64) -> u64 {
        let group = self.group_of(rank, world) as u64;
        // SplitMix64-style mixing keeps (base, group, step) streams
        // statistically independent.
        let mut z = base_seed
            .wrapping_add(group.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(step.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// All strategies in the order Figure 7 plots them.
    pub fn figure7_strategies() -> Vec<SeedStrategy> {
        vec![
            SeedStrategy::PerGpu,
            SeedStrategy::ZipfFreq,
            SeedStrategy::Log2,
            SeedStrategy::LogE,
            SeedStrategy::Log10,
        ]
    }

    /// Display label matching the paper's Figure 7 legend.
    pub fn label(&self) -> &'static str {
        match self {
            SeedStrategy::PerGpu => "G",
            SeedStrategy::AllSame => "same",
            SeedStrategy::Log2 => "log2G",
            SeedStrategy::LogE => "logeG",
            SeedStrategy::Log10 => "log10G",
            SeedStrategy::ZipfFreq => "Zipf's-freq",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn seed_counts_at_64_gpus() {
        // The paper's Figure 7 is at G = 64.
        assert_eq!(SeedStrategy::PerGpu.seed_count(64), 64);
        assert_eq!(SeedStrategy::AllSame.seed_count(64), 1);
        assert_eq!(SeedStrategy::Log2.seed_count(64), 6);
        assert_eq!(SeedStrategy::LogE.seed_count(64), 5); // ⌈4.16⌉
        assert_eq!(SeedStrategy::Log10.seed_count(64), 2); // ⌈1.8⌉
        assert_eq!(SeedStrategy::ZipfFreq.seed_count(64), 15); // ⌈64^0.64⌉
    }

    #[test]
    fn seed_count_bounded_by_world() {
        for world in 1..=16 {
            for s in SeedStrategy::figure7_strategies() {
                let k = s.seed_count(world);
                assert!(k >= 1 && k <= world, "{s:?} at {world}: {k}");
            }
        }
    }

    #[test]
    fn groups_partition_ranks_evenly() {
        let s = SeedStrategy::ZipfFreq;
        let world = 64;
        let k = s.seed_count(world);
        let mut sizes = vec![0usize; k];
        for r in 0..world {
            sizes[s.group_of(r, world)] += 1;
        }
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn same_group_same_seed_distinct_groups_differ() {
        let s = SeedStrategy::Log2; // 6 seeds at 64 GPUs
        let world = 64;
        let mut by_group: Vec<Option<u64>> = vec![None; s.seed_count(world)];
        let mut distinct = HashSet::new();
        for r in 0..world {
            let g = s.group_of(r, world);
            let seed = s.seed_for(99, r, world, 5);
            if let Some(prev) = by_group[g] {
                assert_eq!(prev, seed, "rank {r} diverged from its group");
            } else {
                by_group[g] = Some(seed);
                distinct.insert(seed);
            }
        }
        assert_eq!(distinct.len(), s.seed_count(world));
    }

    #[test]
    fn seeds_change_per_step() {
        let s = SeedStrategy::AllSame;
        let a = s.seed_for(1, 0, 8, 0);
        let b = s.seed_for(1, 0, 8, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn per_gpu_all_distinct() {
        let s = SeedStrategy::PerGpu;
        let world = 32;
        let seeds: HashSet<u64> = (0..world).map(|r| s.seed_for(7, r, world, 3)).collect();
        assert_eq!(seeds.len(), world);
    }

    #[test]
    fn zipf_freq_count_follows_power_law() {
        for world in [4usize, 16, 64, 256] {
            let k = SeedStrategy::ZipfFreq.seed_count(world);
            let expect = (world as f64).powf(0.64);
            assert!(
                (k as f64 - expect).abs() <= 1.0,
                "world {world}: {k} vs {expect}"
            );
        }
    }

    #[test]
    fn single_gpu_degenerates_gracefully() {
        for s in SeedStrategy::figure7_strategies() {
            assert_eq!(s.seed_count(1), 1);
            assert_eq!(s.group_of(0, 1), 0);
        }
    }
}
