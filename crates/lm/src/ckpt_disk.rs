//! Disk-backed checkpoint storage: CRC-framed files, atomic renames,
//! per-rank manifests, and a fault hook for chaos testing.
//!
//! [`CheckpointDir`] is the durable [`CheckpointBackend`]: checkpoints
//! survive the process, every elastic round of a run shares one
//! directory, and the on-disk format is the deploy artifact the
//! serving milestone loads. The layout is deliberately boring:
//!
//! ```text
//! <root>/
//!   rank0/
//!     MANIFEST              # text, one retained step per line
//!     step00000000000000000004.ckpt
//!     step00000000000000000008.ckpt
//!   rank1/ ...
//!   FINAL.ckpt              # terminal snapshot (rank 0's final state)
//! ```
//!
//! Each `.ckpt` file is a **v1 frame** around the versioned
//! [`Checkpoint::to_bytes`] payload:
//!
//! ```text
//! offset  size  field
//! 0       8     frame magic  "ZLMFRAME"
//! 8       4     frame version, u32 LE (currently 1)
//! 12      8     payload length, u64 LE
//! 20      4     CRC-32 (IEEE) of the payload, u32 LE
//! 24      n     payload = Checkpoint::to_bytes()
//! ```
//!
//! Writes go through a temp file in the same directory followed by
//! `rename` — on POSIX filesystems the destination is therefore always
//! either the old complete file or the new complete file, never a
//! half-written hybrid. The *interesting* failure modes are injected,
//! not accidental: a [`DiskFaultPlan`] can tear a write at byte `k`,
//! flip a bit after the write, or unlink the file, and the recovery
//! scan ([`crate::CheckpointStore::scan`]) must classify each into the
//! matching typed [`CheckpointError`]:
//!
//! | fault                   | classified as                       |
//! |-------------------------|-------------------------------------|
//! | torn write (short file) | [`CheckpointError::Truncated`]      |
//! | post-write bit flip     | [`CheckpointError::BadCrc`] (body) or `BadMagic`/`BadVersion`/`Truncated` (header) |
//! | unlink                  | [`CheckpointError::Missing`]        |
//! | real filesystem failure | [`CheckpointError::Io`]             |
//!
//! Injected faults deliberately return `Ok` from `deposit` — a crash
//! does not announce itself at write time; the damage is discovered
//! (and skipped past) by the recovery scan.

use crate::checkpoint::{Checkpoint, CheckpointBackend, CheckpointError};
use simgpu::{DiskFault, DiskFaultPlan};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic header of framed on-disk checkpoint files.
pub const FRAME_MAGIC: [u8; 8] = *b"ZLMFRAME";

/// On-disk frame format version (the *frame*, not the checkpoint body —
/// the body carries its own version inside the payload).
pub const FRAME_VERSION: u32 = 1;

/// Frame header length in bytes: magic + version + payload len + CRC.
pub const FRAME_HEADER_LEN: usize = 8 + 4 + 8 + 4;

const CRC_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data` — the same
/// checksum gzip and PNG use, implemented here so the store needs no
/// dependency. Guaranteed to detect every single-bit flip (proptested
/// in `tests/durable_store.rs`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Wraps a serialized checkpoint body in the v1 on-disk frame.
pub fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.extend_from_slice(&FRAME_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the v1 frame around `bytes` and returns the payload slice.
///
/// Classification order mirrors how damage manifests: a file shorter
/// than the header or the declared payload is `Truncated` (torn write);
/// wrong magic / unknown frame version is header rot; surplus bytes are
/// `TrailingBytes`; a CRC mismatch over a complete file is payload rot.
pub fn unframe(bytes: &[u8]) -> Result<&[u8], CheckpointError> {
    if bytes.len() < FRAME_HEADER_LEN {
        // Too short to even read the header — but a damaged magic in
        // what bytes *are* there is still worth classifying as rot.
        if bytes.len() >= 8 && bytes[..8] != FRAME_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        return Err(CheckpointError::Truncated);
    }
    if bytes[..8] != FRAME_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FRAME_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let expected = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let body = &bytes[FRAME_HEADER_LEN..];
    if body.len() < payload_len {
        return Err(CheckpointError::Truncated);
    }
    if body.len() > payload_len {
        return Err(CheckpointError::TrailingBytes(body.len() - payload_len));
    }
    let found = crc32(body);
    if found != expected {
        return Err(CheckpointError::BadCrc { expected, found });
    }
    Ok(body)
}

fn io_err(e: std::io::Error) -> CheckpointError {
    CheckpointError::Io(e.to_string())
}

/// The durable, disk-backed [`CheckpointBackend`].
///
/// Thread-safe: ranks deposit concurrently into disjoint per-rank
/// subdirectories; only the injected-fault schedule and the terminal
/// slot share a lock. The directory outlives any single
/// [`crate::CheckpointStore`] — hand the same `Arc<CheckpointDir>` to
/// every elastic round and recovery reads what earlier rounds wrote.
#[derive(Debug)]
pub struct CheckpointDir {
    root: PathBuf,
    keep_last: usize,
    faults: Mutex<DiskFaultPlan>,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory retaining the
    /// newest `keep_last` snapshots per rank (clamped to at least 1).
    pub fn open(root: impl Into<PathBuf>, keep_last: usize) -> Result<Self, CheckpointError> {
        Self::open_with_faults(root, keep_last, DiskFaultPlan::none())
    }

    /// [`CheckpointDir::open`] with an injected-fault schedule: each
    /// `(rank, step)` entry damages exactly one checkpoint write, then
    /// is consumed.
    pub fn open_with_faults(
        root: impl Into<PathBuf>,
        keep_last: usize,
        faults: DiskFaultPlan,
    ) -> Result<Self, CheckpointError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(io_err)?;
        Ok(Self {
            root,
            keep_last: keep_last.max(1),
            faults: Mutex::new(faults),
        })
    }

    /// The directory all checkpoints live under.
    pub fn path(&self) -> &Path {
        &self.root
    }

    fn rank_dir(&self, rank: usize) -> PathBuf {
        self.root.join(format!("rank{rank}"))
    }

    fn step_file(&self, rank: usize, step: u64) -> PathBuf {
        self.rank_dir(rank).join(format!("step{step:020}.ckpt"))
    }

    fn manifest_file(&self, rank: usize) -> PathBuf {
        self.rank_dir(rank).join("MANIFEST")
    }

    fn final_file(&self) -> PathBuf {
        self.root.join("FINAL.ckpt")
    }

    /// Writes `bytes` to `dest` via a same-directory temp file and an
    /// atomic rename, so `dest` is never observed half-written.
    fn write_atomic(dest: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
        let dir = dest.parent().ok_or(CheckpointError::Missing)?;
        let name = dest.file_name().and_then(|n| n.to_str()).unwrap_or("ckpt");
        let tmp = dir.join(format!(".tmp-{name}"));
        {
            let mut f = fs::File::create(&tmp).map_err(io_err)?;
            f.write_all(bytes).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        fs::rename(&tmp, dest).map_err(io_err)
    }

    /// Frames, damages (if scheduled), and lands one checkpoint file.
    fn write_framed(
        &self,
        dest: &Path,
        payload: &[u8],
        rank: usize,
        step: u64,
    ) -> Result<(), CheckpointError> {
        let mut framed = frame_payload(payload);
        let fault = self.faults.lock().unwrap().take(rank, step);
        match fault {
            None => Self::write_atomic(dest, &framed),
            Some(DiskFault::TornWrite { keep }) => {
                // The crash happened mid-write: only the first `keep`
                // bytes reach the disk. The rename still lands so the
                // recovery scan sees (and classifies) the torn file.
                framed.truncate(keep.min(framed.len()));
                Self::write_atomic(dest, &framed)
            }
            Some(DiskFault::BitFlip { byte, bit }) => {
                // Bit rot after a complete write: the CRC in the header
                // was computed over the healthy payload, so the flip is
                // detectable wherever it lands.
                if !framed.is_empty() {
                    let idx = byte % framed.len();
                    framed[idx] ^= 1 << (bit % 8);
                }
                Self::write_atomic(dest, &framed)
            }
            Some(DiskFault::Unlink) => {
                // The file vanishes after the write; the manifest entry
                // (written by the caller) survives to tell the tale.
                Self::write_atomic(dest, &framed)?;
                fs::remove_file(dest).map_err(io_err)
            }
        }
    }

    /// Reads the manifest for `rank`: ascending, deduped. A missing
    /// manifest means no checkpoints (a rank that never deposited).
    fn manifest_steps(&self, rank: usize) -> Result<Vec<u64>, CheckpointError> {
        let text = match fs::read_to_string(self.manifest_file(rank)) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(e)),
        };
        let mut steps: Vec<u64> = text.lines().filter_map(|l| l.trim().parse().ok()).collect();
        steps.sort_unstable();
        steps.dedup();
        Ok(steps)
    }

    fn write_manifest(&self, rank: usize, steps: &[u64]) -> Result<(), CheckpointError> {
        let mut text = String::new();
        for s in steps {
            text.push_str(&s.to_string());
            text.push('\n');
        }
        Self::write_atomic(&self.manifest_file(rank), text.as_bytes())
    }
}

impl CheckpointBackend for CheckpointDir {
    fn deposit(&self, ck: Checkpoint) -> Result<(), CheckpointError> {
        let rank = ck.rank as usize;
        let step = ck.step;
        fs::create_dir_all(self.rank_dir(rank)).map_err(io_err)?;
        self.write_framed(&self.step_file(rank, step), &ck.to_bytes(), rank, step)?;
        // Manifest + retention: record the new step, prune beyond
        // keep_last (oldest first), and rewrite the manifest atomically
        // so it always lists exactly the retained set.
        let mut steps = self.manifest_steps(rank)?;
        if steps.last() != Some(&step) {
            steps.push(step);
            steps.sort_unstable();
            steps.dedup();
        }
        while steps.len() > self.keep_last {
            let old = steps.remove(0);
            match fs::remove_file(self.step_file(rank, old)) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(io_err(e)),
            }
        }
        self.write_manifest(rank, &steps)
    }

    fn steps(&self, rank: usize) -> Vec<u64> {
        // A manifest that cannot be read contributes no steps — the
        // scan then reports no consistent cut instead of panicking.
        self.manifest_steps(rank).unwrap_or_default()
    }

    fn load(&self, rank: usize, step: u64) -> Result<Checkpoint, CheckpointError> {
        let path = self.step_file(rank, step);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(CheckpointError::Missing)
            }
            Err(e) => return Err(io_err(e)),
        };
        Checkpoint::from_bytes(unframe(&bytes)?)
    }

    fn set_final(&self, ck: Checkpoint) -> Result<(), CheckpointError> {
        let (rank, step) = (ck.rank as usize, ck.step);
        self.write_framed(&self.final_file(), &ck.to_bytes(), rank, step)
    }

    fn take_final(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        let path = self.final_file();
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(e)),
        };
        let ck = Checkpoint::from_bytes(unframe(&bytes)?)?;
        fs::remove_file(&path).map_err(io_err)?;
        Ok(Some(ck))
    }

    fn keep_last(&self) -> usize {
        self.keep_last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{CheckpointMetrics, CheckpointStore, Fingerprint};
    use crate::config::TrainConfig;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// RAII temp directory (no tempfile dependency): unique per test
    /// via pid + counter, removed on drop.
    pub(crate) struct TempDir(PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> Self {
            static SEQ: AtomicU64 = AtomicU64::new(0);
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let dir =
                std::env::temp_dir().join(format!("zlm-ckpt-{tag}-{}-{n}", std::process::id()));
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }

        pub(crate) fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample(rank: u32, step: u64) -> Checkpoint {
        Checkpoint {
            world: 4,
            rank,
            step,
            epoch: 0,
            step_in_epoch: step,
            lr: 0.5,
            fingerprint: Fingerprint::of(&TrainConfig::default(), 997),
            params: vec![1.0, -2.5, f32::NAN, 1e-30],
            metrics: CheckpointMetrics::default(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn frame_round_trip_and_header_classification() {
        let payload = sample(0, 7).to_bytes();
        let framed = frame_payload(&payload);
        assert_eq!(unframe(&framed).unwrap(), &payload[..]);
        // Torn anywhere → Truncated (or BadMagic if the magic itself is cut).
        assert_eq!(unframe(&framed[..3]), Err(CheckpointError::Truncated));
        assert_eq!(
            unframe(&framed[..FRAME_HEADER_LEN + 5]),
            Err(CheckpointError::Truncated)
        );
        // Wrong magic.
        let mut bad = framed.clone();
        bad[0] ^= 0xFF;
        assert_eq!(unframe(&bad), Err(CheckpointError::BadMagic));
        // Unknown frame version.
        let mut v9 = framed.clone();
        v9[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(unframe(&v9), Err(CheckpointError::BadVersion(9)));
        // Trailing garbage.
        let mut long = framed.clone();
        long.push(0);
        assert_eq!(unframe(&long), Err(CheckpointError::TrailingBytes(1)));
        // Payload rot → BadCrc naming both sums.
        let mut rot = framed.clone();
        *rot.last_mut().unwrap() ^= 0x10;
        match unframe(&rot) {
            Err(CheckpointError::BadCrc { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected BadCrc, got {other:?}"),
        }
    }

    #[test]
    fn deposit_load_round_trips_bytes() {
        let tmp = TempDir::new("roundtrip");
        let dir = CheckpointDir::open(tmp.path(), 4).unwrap();
        let ck = sample(1, 12);
        let bytes = ck.to_bytes();
        dir.deposit(ck).unwrap();
        assert_eq!(dir.steps(1), vec![12]);
        assert_eq!(dir.load(1, 12).unwrap().to_bytes(), bytes);
        assert_eq!(dir.load(1, 13), Err(CheckpointError::Missing));
        assert_eq!(dir.load(0, 12), Err(CheckpointError::Missing));
    }

    #[test]
    fn retention_prunes_files_and_manifest() {
        let tmp = TempDir::new("retention");
        let dir = CheckpointDir::open(tmp.path(), 2).unwrap();
        for step in [2, 4, 6, 8] {
            dir.deposit(sample(0, step)).unwrap();
        }
        assert_eq!(dir.steps(0), vec![6, 8]);
        assert!(!dir.step_file(0, 2).exists(), "pruned file removed");
        assert!(dir.step_file(0, 8).exists());
        // No temp litter.
        let stray: Vec<_> = fs::read_dir(dir.rank_dir(0))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
    }

    #[test]
    fn injected_faults_classify_at_recovery_time() {
        let tmp = TempDir::new("faults");
        let faults = DiskFaultPlan::none()
            .inject(0, 4, DiskFault::TornWrite { keep: 10 })
            .inject(1, 4, DiskFault::BitFlip { byte: 40, bit: 3 })
            .inject(2, 4, DiskFault::Unlink);
        let dir = CheckpointDir::open_with_faults(tmp.path(), 4, faults).unwrap();
        for rank in 0..4 {
            // Deposits report Ok: damage is latent until the scan.
            dir.deposit(sample(rank, 4)).unwrap();
        }
        assert_eq!(dir.load(0, 4), Err(CheckpointError::Truncated));
        assert!(matches!(
            dir.load(1, 4),
            Err(CheckpointError::BadCrc { .. })
        ));
        assert_eq!(dir.load(2, 4), Err(CheckpointError::Missing));
        assert!(dir.load(3, 4).is_ok(), "unfaulted rank is intact");
        // Every manifest still lists the step — that is how the scan
        // knows rank 2's copy is missing rather than never written.
        for rank in 0..4 {
            assert_eq!(dir.steps(rank), vec![4]);
        }
    }

    #[test]
    fn faults_are_one_shot_per_rank_step() {
        let tmp = TempDir::new("oneshot");
        let faults = DiskFaultPlan::none().inject(0, 2, DiskFault::Unlink);
        let dir = CheckpointDir::open_with_faults(tmp.path(), 4, faults).unwrap();
        dir.deposit(sample(0, 2)).unwrap();
        assert_eq!(dir.load(0, 2), Err(CheckpointError::Missing));
        // The same write replayed after recovery lands clean.
        dir.deposit(sample(0, 2)).unwrap();
        assert!(dir.load(0, 2).is_ok());
    }

    #[test]
    fn scan_skips_damaged_steps_to_best_intact_cut() {
        let tmp = TempDir::new("scan");
        let faults = DiskFaultPlan::none()
            .inject(1, 8, DiskFault::BitFlip { byte: 33, bit: 0 })
            .inject(2, 6, DiskFault::TornWrite { keep: 5 });
        let backend = Arc::new(CheckpointDir::open_with_faults(tmp.path(), 8, faults).unwrap());
        // World 4 to match the sample snapshots; ranks 0..3 deposit.
        let store = CheckpointStore::with_backend(4, backend);
        for step in [2, 4, 6, 8] {
            for rank in 0..3 {
                store.deposit(sample(rank, step)).unwrap();
            }
        }
        // Step 8 is rotted on rank 1, step 6 torn on rank 2 → best
        // fully-intact consistent cut is step 4.
        let scan = store.scan(&[0, 1, 2]);
        assert_eq!(scan.checkpoint.as_ref().map(|c| c.step), Some(4));
        assert_eq!(
            scan.corrupt
                .iter()
                .map(|c| (c.rank, c.step))
                .collect::<Vec<_>>(),
            vec![(1, 8), (2, 6)],
            "both damaged copies classified, newest first"
        );
        assert!(matches!(
            scan.corrupt[0].error,
            CheckpointError::BadCrc { .. }
        ));
        assert_eq!(scan.corrupt[1].error, CheckpointError::Truncated);
        // Excluding the damaged ranks restores the newest step again.
        assert_eq!(store.latest_consistent(&[0]).map(|c| c.step), Some(8));
    }

    #[test]
    fn final_slot_survives_on_disk_and_take_consumes() {
        let tmp = TempDir::new("final");
        let dir = CheckpointDir::open(tmp.path(), 2).unwrap();
        assert_eq!(dir.take_final().unwrap(), None);
        let fin = sample(0, 40);
        let bytes = fin.to_bytes();
        dir.set_final(fin).unwrap();
        // A second handle onto the same directory sees the final
        // snapshot — it survived the "process" that wrote it.
        let reopened = CheckpointDir::open(tmp.path(), 2).unwrap();
        assert_eq!(reopened.take_final().unwrap().unwrap().to_bytes(), bytes);
        assert_eq!(dir.take_final().unwrap(), None, "take consumes");
    }

    #[test]
    fn directory_restores_across_store_instances() {
        let tmp = TempDir::new("reuse");
        let backend = Arc::new(CheckpointDir::open(tmp.path(), 4).unwrap());
        let round1 = CheckpointStore::with_backend(4, Arc::clone(&backend) as _);
        for rank in 0..2 {
            round1.deposit(sample(rank, 6)).unwrap();
        }
        drop(round1);
        // A fresh store over the same directory — the elastic driver's
        // next round — restores what the previous round persisted.
        let round2 = CheckpointStore::with_backend(4, backend as _);
        assert_eq!(round2.latest_consistent(&[0, 1]).map(|c| c.step), Some(6));
    }
}
