//! Bit-exact, versioned snapshots of per-rank training state.
//!
//! A [`Checkpoint`] captures *everything* a rank needs to resume
//! training mid-run as if it had never stopped: the full parameter
//! vector (embeddings + recurrent stack + projection, in the fixed
//! `flatten_grads` layout), the step/epoch counters, the exact `f32`
//! learning rate, and the deterministic accumulators that feed the
//! final [`crate::TrainReport`] (partial epoch loss, simulated epoch
//! time, uniqueness statistics, time attribution, completed-epoch
//! history). No RNG *state* is stored because none survives a step by
//! construction: the corpus and split are derived from `cfg.seed`
//! before the run, and the sampled-softmax stream is re-seeded from
//! `(seed, rank, world, global_step)` every step — so seeds + counters
//! reproduce every stream exactly.
//!
//! What is deliberately **not** captured: wall-clock measurements
//! (`PhaseTimings`, trace events) and per-step telemetry
//! (`TrainReport::steps`, traffic counters) — they are nondeterministic
//! or rank-run-local and restart at the resume point. This is what
//! makes the headline property testable: *two checkpoints taken at the
//! same step of identical runs are byte-equal*.
//!
//! Serialization ([`Checkpoint::to_bytes`] / [`Checkpoint::from_bytes`])
//! is a fixed little-endian layout with a magic header and format
//! version; floats are stored as raw bit patterns
//! (`to_le_bytes`/`from_le_bytes` round-trips every `f32`/`f64`,
//! including NaNs), so serialize → deserialize → serialize is the
//! identity on bytes (proptested in `tests/checkpoint_determinism.rs`).
//!
//! The in-memory [`CheckpointStore`] stands in for a checkpoint
//! *service*: every rank deposits snapshots on its own cadence
//! ([`crate::CheckpointConfig`]), and the elastic driver
//! ([`crate::train_elastic`]) asks for the newest snapshot **all**
//! survivors hold — the consistent cut it can restore from.

use crate::config::{Method, ModelKind, TrainConfig};
use crate::metrics::{EpochMetrics, TimeAttribution};
use crate::seeding::SeedStrategy;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Serialization format version (bump on any layout change). Version 2
/// split the attribution wire bucket into intra/inter-node tiers;
/// version 3 appended the seventh attribution bucket, `overlapped_ps`
/// (comm hidden under compute by the overlapped step schedule).
/// [`Checkpoint::from_bytes`] still accepts version-2 buffers — they
/// predate overlap, so the missing bucket is exactly zero.
pub const FORMAT_VERSION: u32 = 3;

/// Oldest format version [`Checkpoint::from_bytes`] still reads.
pub const MIN_FORMAT_VERSION: u32 = 2;

/// Magic header of serialized checkpoints.
pub const MAGIC: [u8; 8] = *b"ZLMCKPT\0";

/// Everything about a run that must match for a checkpoint to be
/// restorable — the resolved model dimensions, the method stack, the
/// data-defining config fields, and the master seed. The *world size*
/// is deliberately absent: elastic recovery restores a checkpoint
/// taken at world `G` into a shrunken world `G' < G` (layout, seeding
/// groups and shards are re-derived from the new world).
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Master seed (corpus, init, sampling all derive from it).
    pub seed: u64,
    /// `0` = word LM, `1` = char LM.
    pub model_tag: u8,
    /// Resolved model vocabulary (after corpus-driven shrinking and the
    /// trainer's clamping — not necessarily the requested size).
    pub vocab: u64,
    /// Embedding dimension.
    pub embed_dim: u64,
    /// Recurrent cells.
    pub hidden: u64,
    /// Projection dimension (word LM; `0` for char).
    pub proj_dim: u64,
    /// Resolved sampled-softmax candidates (word LM; `0` for char).
    pub samples: u64,
    /// RHN recurrence depth (char LM; `0` for word).
    pub depth: u64,
    /// Uniqueness enabled.
    pub unique: bool,
    /// Seed-sharing strategy tag (see [`seeding_tag`]).
    pub seeding: u8,
    /// FP16 compression scale, if enabled.
    pub compression: Option<f32>,
    /// Sequences per GPU per step.
    pub batch: u64,
    /// Tokens per sequence.
    pub seq_len: u64,
    /// Steps per epoch (0 = whole shard — note this resolves to a
    /// world-dependent count, so shrink-restores of such runs resume
    /// into a *longer* epoch on the bigger shards).
    pub steps_per_epoch: u64,
    /// Total epochs.
    pub epochs: u64,
    /// Base learning rate.
    pub base_lr: f32,
    /// Per-epoch learning-rate decay.
    pub lr_decay: f32,
    /// Synthetic corpus size in tokens.
    pub tokens: u64,
}

/// Stable wire tag of a [`SeedStrategy`].
pub fn seeding_tag(s: SeedStrategy) -> u8 {
    match s {
        SeedStrategy::PerGpu => 0,
        SeedStrategy::AllSame => 1,
        SeedStrategy::Log2 => 2,
        SeedStrategy::LogE => 3,
        SeedStrategy::Log10 => 4,
        SeedStrategy::ZipfFreq => 5,
    }
}

impl Fingerprint {
    /// The fingerprint of a run configured by `cfg`, with `model_vocab`
    /// the effective vocabulary reported by data preparation.
    pub fn of(cfg: &TrainConfig, model_vocab: usize) -> Self {
        let (model_tag, vocab, embed_dim, hidden, proj_dim, samples, depth) = match cfg.model {
            ModelKind::Word { .. } | ModelKind::WordCustom(_) => {
                // Mirror the trainer's resolution: the corpus may have
                // shrunk the vocabulary, and samples are clamped to it.
                let mut mc = cfg.model.word_config();
                mc.vocab = model_vocab;
                mc.samples = mc.samples.min(model_vocab / 2).max(1);
                (
                    0u8,
                    mc.vocab as u64,
                    mc.embed_dim as u64,
                    mc.hidden as u64,
                    mc.proj_dim as u64,
                    mc.samples as u64,
                    0u64,
                )
            }
            ModelKind::Char { .. } | ModelKind::CharCustom(_) => {
                let mc = cfg.model.char_config();
                (
                    1u8,
                    mc.vocab as u64,
                    mc.embed_dim as u64,
                    mc.hidden as u64,
                    0u64,
                    0u64,
                    mc.depth as u64,
                )
            }
        };
        let Method {
            unique,
            seeding,
            compression,
        } = cfg.method;
        Self {
            seed: cfg.seed,
            model_tag,
            vocab,
            embed_dim,
            hidden,
            proj_dim,
            samples,
            depth,
            unique,
            seeding: seeding_tag(seeding),
            compression,
            batch: cfg.batch as u64,
            seq_len: cfg.seq_len as u64,
            steps_per_epoch: cfg.steps_per_epoch as u64,
            epochs: cfg.epochs as u64,
            base_lr: cfg.base_lr,
            lr_decay: cfg.lr_decay,
            tokens: cfg.tokens as u64,
        }
    }
}

/// The deterministic metric accumulators restored on resume so the
/// final [`crate::TrainReport`] matches an uninterrupted run's.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CheckpointMetrics {
    /// Completed-epoch history (present only in rank 0's snapshots —
    /// validation runs there; see the recovery contract in DESIGN.md).
    pub epochs: Vec<EpochMetrics>,
    /// Partial loss sum of the epoch in progress (exact `f64` partial
    /// sum — resuming continues the same addition order).
    pub epoch_loss: f64,
    /// Simulated picoseconds accumulated in the epoch in progress.
    pub epoch_time_ps: u64,
    /// Uniqueness statistics accumulated over the whole run.
    pub unique_sum: f64,
    /// Steps contributing to `unique_sum`.
    pub unique_count: u64,
    /// Run-total time attribution so far.
    pub attribution: TimeAttribution,
}

/// One rank's complete training state at a step boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// World size of the run that took the snapshot.
    pub world: u32,
    /// Rank that took the snapshot.
    pub rank: u32,
    /// Global steps completed.
    pub step: u64,
    /// Epoch in progress (0-based); `== epochs` in a terminal snapshot.
    pub epoch: u32,
    /// Steps completed within `epoch`.
    pub step_in_epoch: u64,
    /// The exact learning rate in effect (already decayed per epoch).
    pub lr: f32,
    /// Run-compatibility fingerprint.
    pub fingerprint: Fingerprint,
    /// Full parameter vector in the model's fixed flatten layout.
    pub params: Vec<f32>,
    /// Deterministic metric accumulators.
    pub metrics: CheckpointMetrics,
}

/// Why a serialized checkpoint was rejected.
///
/// The first five variants classify body-level damage and
/// incompatibility; the last three classify what a *disk-backed* store
/// finds at recovery time (see `crate::ckpt_disk`): a CRC mismatch from
/// post-write bit rot, a manifested file that vanished, or a raw
/// filesystem failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with [`MAGIC`] (or, for a framed
    /// on-disk file, the frame header magic is wrong).
    BadMagic,
    /// Unknown format version (checkpoint body or on-disk frame).
    BadVersion(u32),
    /// The buffer ended before the declared content did — the on-disk
    /// signature of a torn write.
    Truncated,
    /// Bytes remained after the declared content.
    TrailingBytes(usize),
    /// The checkpoint does not belong to this run configuration.
    Incompatible(String),
    /// The framed file's CRC-32 does not cover its payload: at least
    /// one bit rotted after the write completed.
    BadCrc {
        /// CRC recorded in the frame header at write time.
        expected: u32,
        /// CRC recomputed over the payload as read back.
        found: u32,
    },
    /// The rank's manifest lists this step but the file is gone.
    Missing,
    /// The underlying filesystem operation failed.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "bad checkpoint magic"),
            CheckpointError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (expected {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            CheckpointError::Truncated => write!(f, "truncated checkpoint"),
            CheckpointError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after checkpoint content")
            }
            CheckpointError::Incompatible(why) => {
                write!(f, "checkpoint incompatible with this run: {why}")
            }
            CheckpointError::BadCrc { expected, found } => {
                write!(
                    f,
                    "checkpoint CRC mismatch: frame says {expected:#010x}, payload hashes to {found:#010x}"
                )
            }
            CheckpointError::Missing => write!(f, "manifested checkpoint file is missing"),
            CheckpointError::Io(why) => write!(f, "checkpoint I/O failed: {why}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

// ---- little-endian byte helpers ------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl Checkpoint {
    /// Serializes to the fixed little-endian layout. Deterministic:
    /// identical checkpoints produce identical bytes, and
    /// [`Checkpoint::from_bytes`] followed by `to_bytes` is the
    /// identity on any valid buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_with_version(FORMAT_VERSION)
    }

    /// [`Checkpoint::to_bytes`] at an explicit format version — the
    /// legacy writer backing the version-migration tests. Version 2
    /// simply omits the trailing `overlapped_ps` attribution word.
    /// Panics on versions outside
    /// `MIN_FORMAT_VERSION..=FORMAT_VERSION`.
    pub fn to_bytes_with_version(&self, version: u32) -> Vec<u8> {
        assert!(
            (MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version),
            "unwritable checkpoint version {version}"
        );
        let fp = &self.fingerprint;
        let mut out = Vec::with_capacity(
            MAGIC.len() + 136 + self.params.len() * 4 + self.metrics.epochs.len() * 40,
        );
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, version);
        put_u32(&mut out, self.world);
        put_u32(&mut out, self.rank);
        put_u64(&mut out, self.step);
        put_u32(&mut out, self.epoch);
        put_u64(&mut out, self.step_in_epoch);
        put_f32(&mut out, self.lr);
        // Fingerprint.
        put_u64(&mut out, fp.seed);
        put_u8(&mut out, fp.model_tag);
        put_u64(&mut out, fp.vocab);
        put_u64(&mut out, fp.embed_dim);
        put_u64(&mut out, fp.hidden);
        put_u64(&mut out, fp.proj_dim);
        put_u64(&mut out, fp.samples);
        put_u64(&mut out, fp.depth);
        put_u8(&mut out, fp.unique as u8);
        put_u8(&mut out, fp.seeding);
        match fp.compression {
            Some(scale) => {
                put_u8(&mut out, 1);
                put_f32(&mut out, scale);
            }
            None => {
                put_u8(&mut out, 0);
                put_f32(&mut out, 0.0);
            }
        }
        put_u64(&mut out, fp.batch);
        put_u64(&mut out, fp.seq_len);
        put_u64(&mut out, fp.steps_per_epoch);
        put_u64(&mut out, fp.epochs);
        put_f32(&mut out, fp.base_lr);
        put_f32(&mut out, fp.lr_decay);
        put_u64(&mut out, fp.tokens);
        // Metric accumulators.
        let m = &self.metrics;
        put_f64(&mut out, m.epoch_loss);
        put_u64(&mut out, m.epoch_time_ps);
        put_f64(&mut out, m.unique_sum);
        put_u64(&mut out, m.unique_count);
        put_u64(&mut out, m.attribution.compute_ps);
        put_u64(&mut out, m.attribution.wire_intra_ps);
        put_u64(&mut out, m.attribution.wire_inter_ps);
        put_u64(&mut out, m.attribution.barrier_wait_ps);
        put_u64(&mut out, m.attribution.skew_ps);
        put_u64(&mut out, m.attribution.self_delay_ps);
        if version >= 3 {
            put_u64(&mut out, m.attribution.overlapped_ps);
        } else {
            debug_assert_eq!(
                m.attribution.overlapped_ps, 0,
                "v2 cannot represent a nonzero overlapped bucket"
            );
        }
        put_u64(&mut out, m.epochs.len() as u64);
        for e in &m.epochs {
            put_u64(&mut out, e.epoch as u64);
            put_f64(&mut out, e.train_loss);
            put_f64(&mut out, e.valid_ppl);
            put_f64(&mut out, e.valid_bpc);
            put_f64(&mut out, e.sim_time_s);
        }
        // Parameters.
        put_u64(&mut out, self.params.len() as u64);
        for &p in &self.params {
            put_f32(&mut out, p);
        }
        out
    }

    /// Parses a buffer produced by [`Checkpoint::to_bytes`]. Round-trip
    /// is bitwise lossless, including non-finite floats.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = Reader { buf, pos: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(CheckpointError::BadVersion(version));
        }
        let world = r.u32()?;
        let rank = r.u32()?;
        let step = r.u64()?;
        let epoch = r.u32()?;
        let step_in_epoch = r.u64()?;
        let lr = r.f32()?;
        let seed = r.u64()?;
        let model_tag = r.u8()?;
        let vocab = r.u64()?;
        let embed_dim = r.u64()?;
        let hidden = r.u64()?;
        let proj_dim = r.u64()?;
        let samples = r.u64()?;
        let depth = r.u64()?;
        let unique = r.u8()? != 0;
        let seeding = r.u8()?;
        let has_compression = r.u8()? != 0;
        let scale = r.f32()?;
        let compression = has_compression.then_some(scale);
        let batch = r.u64()?;
        let seq_len = r.u64()?;
        let steps_per_epoch = r.u64()?;
        let epochs_total = r.u64()?;
        let base_lr = r.f32()?;
        let lr_decay = r.f32()?;
        let tokens = r.u64()?;
        let epoch_loss = r.f64()?;
        let epoch_time_ps = r.u64()?;
        let unique_sum = r.f64()?;
        let unique_count = r.u64()?;
        let attribution = TimeAttribution {
            compute_ps: r.u64()?,
            wire_intra_ps: r.u64()?,
            wire_inter_ps: r.u64()?,
            barrier_wait_ps: r.u64()?,
            skew_ps: r.u64()?,
            self_delay_ps: r.u64()?,
            // Version 2 predates the overlapped step schedule, so its
            // runs had a hidden-comm bucket of exactly zero.
            overlapped_ps: if version >= 3 { r.u64()? } else { 0 },
        };
        let n_epochs = r.u64()? as usize;
        // Guard the prealloc against a corrupt length field.
        if n_epochs.saturating_mul(40) > buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let mut epoch_hist = Vec::with_capacity(n_epochs);
        for _ in 0..n_epochs {
            epoch_hist.push(EpochMetrics {
                epoch: r.u64()? as usize,
                train_loss: r.f64()?,
                valid_ppl: r.f64()?,
                valid_bpc: r.f64()?,
                sim_time_s: r.f64()?,
            });
        }
        let n_params = r.u64()? as usize;
        if n_params.saturating_mul(4) > buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(r.f32()?);
        }
        if r.pos != buf.len() {
            return Err(CheckpointError::TrailingBytes(buf.len() - r.pos));
        }
        Ok(Checkpoint {
            world,
            rank,
            step,
            epoch,
            step_in_epoch,
            lr,
            fingerprint: Fingerprint {
                seed,
                model_tag,
                vocab,
                embed_dim,
                hidden,
                proj_dim,
                samples,
                depth,
                unique,
                seeding,
                compression,
                batch,
                seq_len,
                steps_per_epoch,
                epochs: epochs_total,
                base_lr,
                lr_decay,
                tokens,
            },
            params,
            metrics: CheckpointMetrics {
                epochs: epoch_hist,
                epoch_loss,
                epoch_time_ps,
                unique_sum,
                unique_count,
                attribution,
            },
        })
    }

    /// Checks this checkpoint can seed a run configured by `cfg` (with
    /// `model_vocab` the effective vocabulary from data preparation).
    /// The world size is *not* checked — shrink-restores are the point
    /// of elastic recovery; everything else must match exactly.
    pub fn validate_against(
        &self,
        cfg: &TrainConfig,
        model_vocab: usize,
    ) -> Result<(), CheckpointError> {
        let expect = Fingerprint::of(cfg, model_vocab);
        if self.fingerprint != expect {
            return Err(CheckpointError::Incompatible(format!(
                "fingerprint mismatch: checkpoint {:?} vs run {:?}",
                self.fingerprint, expect
            )));
        }
        if self.epoch as u64 > expect.epochs {
            return Err(CheckpointError::Incompatible(format!(
                "checkpoint epoch {} beyond configured {} epochs",
                self.epoch, expect.epochs
            )));
        }
        Ok(())
    }
}

/// Where checkpoints physically live. [`CheckpointStore`] is generic
/// over this trait, so the trainer and the elastic driver accept the
/// in-memory [`MemoryBackend`] and the disk-backed
/// [`crate::ckpt_disk::CheckpointDir`] interchangeably.
///
/// Contract: `deposit` retains at most [`CheckpointBackend::keep_last`]
/// snapshots per rank (oldest evicted); `steps` reports what the
/// backend *believes* it holds (for a durable backend a listed step may
/// still fail to `load` — that is exactly what the recovery scan
/// classifies); `load` integrity-checks before returning.
pub trait CheckpointBackend: Send + Sync + fmt::Debug {
    /// Persist `ck` into its rank's slot, evicting the oldest snapshot
    /// beyond the retention limit. Snapshots arrive in increasing step
    /// order per rank (one depositor thread per rank).
    fn deposit(&self, ck: Checkpoint) -> Result<(), CheckpointError>;

    /// The steps this backend holds for `rank`, ascending and deduped.
    fn steps(&self, rank: usize) -> Vec<u64>;

    /// Load and integrity-check `rank`'s snapshot at `step`.
    fn load(&self, rank: usize, step: u64) -> Result<Checkpoint, CheckpointError>;

    /// Store the end-of-run snapshot (rank 0 deposits it on successful
    /// completion — the bit-exact final state of the whole run).
    fn set_final(&self, ck: Checkpoint) -> Result<(), CheckpointError>;

    /// Take the end-of-run snapshot, if the run completed.
    fn take_final(&self) -> Result<Option<Checkpoint>, CheckpointError>;

    /// Per-rank retention limit.
    fn keep_last(&self) -> usize;
}

/// The in-memory [`CheckpointBackend`]: checkpoints live in rank slots
/// behind a mutex and die with the process — the pre-durability
/// behaviour, still the default for tests and single-run training.
#[derive(Debug)]
pub struct MemoryBackend {
    keep_last: usize,
    slots: Mutex<std::collections::BTreeMap<usize, Vec<Checkpoint>>>,
    final_slot: Mutex<Option<Checkpoint>>,
}

impl MemoryBackend {
    /// A backend retaining the newest `keep_last` snapshots per rank
    /// (clamped to at least 1).
    pub fn new(keep_last: usize) -> Self {
        Self {
            keep_last: keep_last.max(1),
            slots: Mutex::new(std::collections::BTreeMap::new()),
            final_slot: Mutex::new(None),
        }
    }
}

impl CheckpointBackend for MemoryBackend {
    fn deposit(&self, ck: Checkpoint) -> Result<(), CheckpointError> {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots.entry(ck.rank as usize).or_default();
        debug_assert!(slot.last().is_none_or(|prev| prev.step < ck.step));
        slot.push(ck);
        if slot.len() > self.keep_last {
            slot.remove(0);
        }
        Ok(())
    }

    fn steps(&self, rank: usize) -> Vec<u64> {
        self.slots
            .lock()
            .unwrap()
            .get(&rank)
            .map(|slot| slot.iter().map(|c| c.step).collect())
            .unwrap_or_default()
    }

    fn load(&self, rank: usize, step: u64) -> Result<Checkpoint, CheckpointError> {
        self.slots
            .lock()
            .unwrap()
            .get(&rank)
            .and_then(|slot| slot.iter().find(|c| c.step == step))
            .cloned()
            .ok_or(CheckpointError::Missing)
    }

    fn set_final(&self, ck: Checkpoint) -> Result<(), CheckpointError> {
        *self.final_slot.lock().unwrap() = Some(ck);
        Ok(())
    }

    fn take_final(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        Ok(self.final_slot.lock().unwrap().take())
    }

    fn keep_last(&self) -> usize {
        self.keep_last
    }
}

/// One damaged checkpoint copy found by [`CheckpointStore::scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorruptCheckpoint {
    /// Rank whose copy is damaged.
    pub rank: usize,
    /// Step of the damaged copy.
    pub step: u64,
    /// What the integrity check found.
    pub error: CheckpointError,
}

/// Result of a recovery scan: the best intact consistent snapshot (if
/// any) plus every damaged copy the scan stepped over to find it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryScan {
    /// The newest snapshot every survivor holds an *intact* copy of.
    pub checkpoint: Option<Checkpoint>,
    /// Copies that failed their integrity check, newest step first.
    pub corrupt: Vec<CorruptCheckpoint>,
}

/// Checkpoint service shared by all ranks of one run (and read by the
/// elastic driver across runs), backed by a pluggable
/// [`CheckpointBackend`].
///
/// The store itself owns only the run-scoped state: a lock-free
/// *progress board* — the highest global step each rank has completed —
/// so the recovery driver can report exactly how many steps a failure
/// cost beyond the restored cut. Everything persistent delegates to the
/// backend, which may outlive the store (a disk directory spans every
/// elastic round of a run, and the serving milestone loads the same
/// files).
#[derive(Debug)]
pub struct CheckpointStore {
    backend: Arc<dyn CheckpointBackend>,
    progress: Vec<AtomicU64>,
}

impl CheckpointStore {
    /// An in-memory store for a run of `world` ranks, each retaining
    /// the newest `keep_last` snapshots (clamped to at least 1).
    pub fn new(world: usize, keep_last: usize) -> Self {
        Self::with_backend(world, Arc::new(MemoryBackend::new(keep_last)))
    }

    /// A store for `world` ranks over an existing backend — the durable
    /// entry point: hand the same `Arc<CheckpointDir>` to every elastic
    /// round and recovery reads the files the previous round wrote.
    pub fn with_backend(world: usize, backend: Arc<dyn CheckpointBackend>) -> Self {
        Self {
            backend,
            progress: (0..world).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The shared backend.
    pub fn backend(&self) -> Arc<dyn CheckpointBackend> {
        Arc::clone(&self.backend)
    }

    /// Number of rank slots.
    pub fn world(&self) -> usize {
        self.progress.len()
    }

    /// Deposits `ck` into its rank's slot via the backend. An `Err`
    /// here is a *real* storage failure the caller must surface;
    /// injected disk faults deliberately return `Ok` (the damage is
    /// what the recovery scan later classifies).
    pub fn deposit(&self, ck: Checkpoint) -> Result<(), CheckpointError> {
        self.backend.deposit(ck)
    }

    /// Records that `rank` has completed `steps_done` global steps.
    /// Lock-free; called once per step when a store is attached.
    pub fn note_progress(&self, rank: usize, steps_done: u64) {
        self.progress[rank].store(steps_done, Ordering::Relaxed);
    }

    /// The highest completed global step across `survivors`.
    pub fn max_progress(&self, survivors: &[usize]) -> u64 {
        survivors
            .iter()
            .map(|&r| self.progress[r].load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// The newest snapshot **every** survivor holds an intact copy of —
    /// the consistent cut recovery can restore from, skipping damaged
    /// steps. See [`CheckpointStore::scan`] for the classifying variant.
    pub fn latest_consistent(&self, survivors: &[usize]) -> Option<Checkpoint> {
        self.scan(survivors).checkpoint
    }

    /// Recovery scan: walk the steps all `survivors` claim to hold,
    /// newest first; at each candidate step integrity-check **every**
    /// survivor's copy, recording each torn / bit-flipped / missing
    /// file as a typed [`CorruptCheckpoint`]; return the first step
    /// where all copies are intact. The returned snapshot is rank 0's
    /// copy when rank 0 survived (it alone carries the completed-epoch
    /// validation history), otherwise the lowest survivor's. The scan
    /// never panics on damage — the worst outcome is
    /// `checkpoint: None` (restart from scratch).
    pub fn scan(&self, survivors: &[usize]) -> RecoveryScan {
        let mut corrupt = Vec::new();
        let Some(common) = survivors
            .iter()
            .map(|&r| {
                self.backend
                    .steps(r)
                    .into_iter()
                    .collect::<std::collections::BTreeSet<u64>>()
            })
            .reduce(|a, b| a.intersection(&b).copied().collect())
        else {
            return RecoveryScan::default();
        };
        let source = survivors
            .iter()
            .find(|&&r| r == 0)
            .or_else(|| survivors.first())
            .copied();
        for &step in common.iter().rev() {
            let mut restored = None;
            let mut intact = true;
            for &r in survivors {
                match self.backend.load(r, step) {
                    Ok(ck) => {
                        // A durable directory outlives world shrinks:
                        // snapshots written by a *previous* incarnation
                        // (different world size) are stale, not corrupt
                        // — skip the step without recording damage,
                        // exactly as a per-round memory store would
                        // never have seen them.
                        if ck.world as usize != self.progress.len() {
                            intact = false;
                            continue;
                        }
                        if Some(r) == source {
                            restored = Some(ck);
                        }
                    }
                    Err(error) => {
                        intact = false;
                        corrupt.push(CorruptCheckpoint {
                            rank: r,
                            step,
                            error,
                        });
                    }
                }
            }
            if intact {
                return RecoveryScan {
                    checkpoint: restored,
                    corrupt,
                };
            }
        }
        RecoveryScan {
            checkpoint: None,
            corrupt,
        }
    }

    /// All intact snapshots currently retained for `rank` (oldest
    /// first) — used by tests to compare runs checkpoint-by-checkpoint.
    pub fn deposited(&self, rank: usize) -> Vec<Checkpoint> {
        self.backend
            .steps(rank)
            .into_iter()
            .filter_map(|step| self.backend.load(rank, step).ok())
            .collect()
    }

    /// Stores the end-of-run snapshot (rank 0 deposits it on successful
    /// completion — the bit-exact final state of the whole run).
    pub fn set_final(&self, ck: Checkpoint) -> Result<(), CheckpointError> {
        self.backend.set_final(ck)
    }

    /// Takes the end-of-run snapshot, if the run completed intact (a
    /// damaged terminal file reads as "no terminal snapshot").
    pub fn take_final(&self) -> Option<Checkpoint> {
        self.backend.take_final().ok().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_checkpoint(rank: u32, step: u64) -> Checkpoint {
        Checkpoint {
            world: 4,
            rank,
            step,
            epoch: 1,
            step_in_epoch: step % 10,
            lr: 0.35,
            fingerprint: Fingerprint::of(&TrainConfig::default(), 997),
            params: vec![0.5, -1.25, f32::NAN, 3.75e-12, -0.0],
            metrics: CheckpointMetrics {
                epochs: vec![EpochMetrics {
                    epoch: 0,
                    train_loss: 5.25,
                    valid_ppl: 180.5,
                    valid_bpc: 7.5,
                    sim_time_s: 0.125,
                }],
                epoch_loss: 12.0625,
                epoch_time_ps: 777,
                unique_sum: 99.5,
                unique_count: 3,
                attribution: TimeAttribution {
                    compute_ps: 1,
                    wire_intra_ps: 2,
                    wire_inter_ps: 6,
                    overlapped_ps: 7,
                    barrier_wait_ps: 3,
                    skew_ps: 4,
                    self_delay_ps: 5,
                },
            },
        }
    }

    #[test]
    fn byte_round_trip_is_bitwise_identity() {
        let ck = sample_checkpoint(2, 17);
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        // NaN params defeat PartialEq; bytes are the ground truth.
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.step, 17);
        assert!(back.params[2].is_nan());
        assert_eq!(back.params[2].to_bits(), ck.params[2].to_bits());
    }

    #[test]
    fn v2_buffers_still_load_with_zero_overlap() {
        // A pre-overlap checkpoint (format 2, six attribution words)
        // must restore exactly, with the new seventh bucket pinned to
        // zero — and re-serializing it at the current version is the
        // canonical v2→v3 migration.
        let mut ck = sample_checkpoint(1, 21);
        ck.metrics.attribution.overlapped_ps = 0; // v2 predates overlap
        let v2 = ck.to_bytes_with_version(2);
        let v3 = ck.to_bytes();
        assert_eq!(v3.len(), v2.len() + 8, "v3 adds exactly one u64");
        let back = Checkpoint::from_bytes(&v2).unwrap();
        assert_eq!(back.metrics.attribution.overlapped_ps, 0);
        assert_eq!(back.to_bytes(), v3, "migration is re-serialization");
        // Round-trip at the current version is still the identity.
        assert_eq!(Checkpoint::from_bytes(&v3).unwrap().to_bytes(), v3);
    }

    #[test]
    fn version_bounds_are_enforced() {
        let mut ck = sample_checkpoint(0, 9);
        // v2-writable: a v2 body with a v3 header is short one word —
        // and vice versa a v3 body under a v2 header has one too many.
        ck.metrics.attribution.overlapped_ps = 0;
        let mut short = ck.to_bytes_with_version(2);
        short[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&3u32.to_le_bytes());
        assert_eq!(
            Checkpoint::from_bytes(&short),
            Err(CheckpointError::Truncated)
        );
        let mut long = ck.to_bytes();
        long[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&long),
            Err(CheckpointError::TrailingBytes(_) | CheckpointError::Truncated)
        ));
        // Versions outside the supported window are typed rejections.
        for v in [0u32, 1, 4, 99] {
            let mut buf = ck.to_bytes();
            buf[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&v.to_le_bytes());
            assert_eq!(
                Checkpoint::from_bytes(&buf),
                Err(CheckpointError::BadVersion(v)),
                "version {v}"
            );
        }
    }

    #[test]
    fn corrupt_buffers_are_rejected_with_typed_errors() {
        let ck = sample_checkpoint(0, 3);
        let bytes = ck.to_bytes();
        assert_eq!(
            Checkpoint::from_bytes(&bytes[..MAGIC.len() - 1]),
            Err(CheckpointError::Truncated)
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            Checkpoint::from_bytes(&bad_magic),
            Err(CheckpointError::BadMagic)
        );
        let mut bad_version = bytes.clone();
        bad_version[MAGIC.len()] = 99;
        assert_eq!(
            Checkpoint::from_bytes(&bad_version),
            Err(CheckpointError::BadVersion(99))
        );
        assert_eq!(
            Checkpoint::from_bytes(&bytes[..bytes.len() - 1]),
            Err(CheckpointError::Truncated)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            Checkpoint::from_bytes(&trailing),
            Err(CheckpointError::TrailingBytes(1))
        );
    }

    #[test]
    fn validate_accepts_same_cfg_and_rejects_drift() {
        let cfg = TrainConfig::default();
        let ck = Checkpoint {
            fingerprint: Fingerprint::of(&cfg, 997),
            ..sample_checkpoint(0, 5)
        };
        assert!(ck.validate_against(&cfg, 997).is_ok());
        // A different world is explicitly fine (shrink-restore).
        let mut shrunk = cfg.clone();
        shrunk.gpus = 3;
        assert!(ck.validate_against(&shrunk, 997).is_ok());
        // Different seed, vocab, or method are not.
        let mut other = cfg.clone();
        other.seed ^= 1;
        assert!(matches!(
            ck.validate_against(&other, 997),
            Err(CheckpointError::Incompatible(_))
        ));
        assert!(ck.validate_against(&cfg, 998).is_err());
        let mut method = cfg.clone();
        method.method = Method::full();
        assert!(ck.validate_against(&method, 997).is_err());
    }

    #[test]
    fn store_retains_keep_last_and_tracks_progress() {
        let store = CheckpointStore::new(2, 2);
        for step in [1, 2, 3] {
            store.deposit(sample_checkpoint(0, step)).unwrap();
        }
        let kept = store.deposited(0);
        assert_eq!(
            kept.iter().map(|c| c.step).collect::<Vec<_>>(),
            vec![2, 3],
            "oldest evicted beyond keep_last"
        );
        store.note_progress(0, 9);
        store.note_progress(1, 7);
        assert_eq!(store.max_progress(&[0, 1]), 9);
        assert_eq!(store.max_progress(&[1]), 7);
    }

    #[test]
    fn latest_consistent_is_highest_common_step() {
        // World 4 to match the sample snapshots (the scan skips
        // snapshots from a different world size as stale).
        let store = CheckpointStore::new(4, 8);
        // Rank 0 holds steps {2, 4, 6}; rank 1 {2, 4}; rank 2 {2, 4, 6}.
        for step in [2, 4, 6] {
            store.deposit(sample_checkpoint(0, step)).unwrap();
            store.deposit(sample_checkpoint(2, step)).unwrap();
        }
        for step in [2, 4] {
            store.deposit(sample_checkpoint(1, step)).unwrap();
        }
        let all = store.latest_consistent(&[0, 1, 2]).unwrap();
        assert_eq!((all.step, all.rank), (4, 0), "rank 0's copy preferred");
        let no_rank0 = store.latest_consistent(&[1, 2]).unwrap();
        assert_eq!((no_rank0.step, no_rank0.rank), (4, 1));
        let fast_pair = store.latest_consistent(&[0, 2]).unwrap();
        assert_eq!(fast_pair.step, 6);
        // Empty slot ⇒ no consistent cut.
        let empty = CheckpointStore::new(2, 2);
        empty.deposit(sample_checkpoint(0, 2)).unwrap();
        assert!(empty.latest_consistent(&[0, 1]).is_none());
    }

    #[test]
    fn scan_skips_stale_world_snapshots_without_flagging_corruption() {
        // A durable directory shared across a shrink: old-world (4)
        // snapshots linger under the same rank slots the new world (2)
        // deposits into. The scan must treat them as stale — skipped,
        // not corrupt — and restore only a current-world cut.
        let backend = Arc::new(MemoryBackend::new(8));
        let old = CheckpointStore::with_backend(4, Arc::clone(&backend) as _);
        for rank in 0..2 {
            old.deposit(sample_checkpoint(rank, 6)).unwrap();
        }
        let new = CheckpointStore::with_backend(2, Arc::clone(&backend) as _);
        let scan = new.scan(&[0, 1]);
        assert_eq!(scan.checkpoint, None, "stale world-4 cut not restored");
        assert!(scan.corrupt.is_empty(), "stale is not corrupt");
        // Once the new world deposits, its own cut wins.
        for rank in 0..2 {
            let mut ck = sample_checkpoint(rank, 8);
            ck.world = 2;
            new.deposit(ck).unwrap();
        }
        assert_eq!(new.latest_consistent(&[0, 1]).map(|c| c.step), Some(8));
    }

    #[test]
    fn final_slot_round_trips() {
        let store = CheckpointStore::new(1, 1);
        assert!(store.take_final().is_none());
        store.set_final(sample_checkpoint(0, 40)).unwrap();
        let fin = store.take_final().unwrap();
        assert_eq!(fin.step, 40);
        assert!(store.take_final().is_none(), "take consumes");
    }
}
