//! Validation evaluation: perplexity, BPC, compression ratio.
//!
//! The paper reports validation perplexity (Figures 5, 7, 8; Table V),
//! bits-per-character for the §V-D comparison, and the §V-C compression
//! ratio metric. Evaluation always uses the *full* softmax, even for
//! models trained with sampled softmax.

use corpus::{shard_batches, BatchSpec};
use nn::model::SeqBatch;
use nn::{CharLm, WordLm};

/// Mean validation NLL (nats) of a word LM over up to `max_batches`
/// batches of the validation stream.
pub fn word_valid_loss(
    model: &WordLm,
    tokens: &[u32],
    batch: usize,
    seq_len: usize,
    max_batches: usize,
) -> f64 {
    mean_loss(tokens, batch, seq_len, max_batches, |b| model.eval_loss(b))
}

/// Mean validation NLL (nats) of a char LM.
pub fn char_valid_loss(
    model: &CharLm,
    tokens: &[u32],
    batch: usize,
    seq_len: usize,
    max_batches: usize,
) -> f64 {
    mean_loss(tokens, batch, seq_len, max_batches, |b| model.eval_loss(b))
}

fn mean_loss(
    tokens: &[u32],
    batch: usize,
    seq_len: usize,
    max_batches: usize,
    mut f: impl FnMut(&SeqBatch) -> f64,
) -> f64 {
    assert!(max_batches >= 1);
    let spec = BatchSpec { batch, seq_len };
    let mut total = 0.0f64;
    let mut count = 0usize;
    for b in shard_batches(tokens, spec, 0, 1).take(max_batches) {
        let sb = SeqBatch::from_lane_major(&b.inputs, &b.targets, b.batch, b.seq_len);
        total += f(&sb);
        count += 1;
    }
    if count == 0 {
        f64::NAN
    } else {
        total / count as f64
    }
}

/// Perplexity from mean NLL in nats.
pub fn ppl(mean_nll: f64) -> f64 {
    nn::softmax::perplexity(mean_nll)
}

/// Bits-per-character from mean NLL in nats.
pub fn bpc(mean_nll: f64) -> f64 {
    nn::softmax::bits_per_char(mean_nll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::model::{CharLmConfig, WordLmConfig};

    #[test]
    fn word_valid_loss_near_log_v_at_init() {
        let model = WordLm::new(3, WordLmConfig::small(100));
        let tokens: Vec<u32> = (0..2000u32).map(|i| i % 100).collect();
        let loss = word_valid_loss(&model, &tokens, 4, 8, 5);
        assert!((loss - (100f64).ln()).abs() < 1.0, "loss {loss}");
        assert!((ppl(loss) - 100.0).abs() < 80.0);
    }

    #[test]
    fn char_valid_loss_finite() {
        let model = CharLm::new(3, CharLmConfig::small(64));
        let tokens: Vec<u32> = (0..2000u32).map(|i| i % 64).collect();
        let loss = char_valid_loss(&model, &tokens, 4, 8, 5);
        assert!(loss.is_finite());
        assert!(bpc(loss) > 0.0);
    }

    #[test]
    fn empty_validation_is_nan() {
        let model = CharLm::new(3, CharLmConfig::small(16));
        let loss = char_valid_loss(&model, &[0, 1, 2], 4, 8, 5);
        assert!(loss.is_nan());
    }

    #[test]
    fn more_batches_stabilise_estimate() {
        let model = CharLm::new(5, CharLmConfig::small(32));
        let tokens: Vec<u32> = (0..20_000u32).map(|i| (i * 7) % 32).collect();
        let a = char_valid_loss(&model, &tokens, 4, 8, 1);
        let b = char_valid_loss(&model, &tokens, 4, 8, 20);
        assert!(a.is_finite() && b.is_finite());
        // Both are near ln 32; the long estimate shouldn't be wild.
        assert!((b - (32f64).ln()).abs() < 1.0);
        let _ = a;
    }
}
