//! The distributed trainer: synchronous data-parallel SGD over simulated
//! GPUs, with the paper's exchange stack in the loop.
//!
//! One OS thread per simulated GPU (mirroring the paper's one-GPU-per-
//! MPI-process setup). Every step:
//!
//! 1. each rank draws its shard's next batch and runs forward/backward;
//! 2. dense gradients (LSTM/RHN + projection) are ring-ALLREDUCEd and
//!    averaged — the part vision models already do well (§II-B);
//! 3. the input-embedding sparse gradient crosses via the configured
//!    [`ExchangeConfig`] (baseline ALLGATHER vs uniqueness);
//! 4. word LMs also exchange the output-embedding gradient, whose
//!    candidate sets were drawn under the configured [`SeedStrategy`];
//! 5. transient exchange buffers are charged against the simulated
//!    device memory (this is where the baseline OOMs, Tables III/IV);
//! 6. simulated wall-clock time is accumulated from the α–β cost model
//!    in integer picoseconds: every rank locally fills the same
//!    per-rank work table and takes the max (synchronous SGD), then
//!    splits its own share of that step time into the exact
//!    [`TimeAttribution`] buckets — compute, wire, barrier wait,
//!    injected skew, own delay.
//!
//! With `TrainConfig::trace` enabled, each rank additionally records a
//! [`simgpu::trace::TraceEvent`] per span (compute, collectives,
//! exchange phases, barrier waits, straggler delays) into a lock-free
//! ring buffer, returned as `TrainReport::trace` and exportable via
//! [`simgpu::chrome_trace_json`] / `TrainReport::steps_jsonl`.
//!
//! ## Failure model
//!
//! Any rank can fail at any point — an asymmetric OOM (per-rank memory
//! limits via [`simgpu::FaultPlan`]), an injected death, a panic. A
//! failing rank poisons the communicator ([`simgpu::Rank::abort`],
//! backed by a RAII [`simgpu::AbortOnDrop`] guard around the whole step
//! loop), so every surviving rank's next collective returns
//! `Err(CommError)` instead of deadlocking. That surfaces here as
//! [`TrainError::PeerFailure`] naming the first failed rank — within
//! one collective's latency, never an unbounded hang. Fault injection
//! (kill-at-step, stragglers, asymmetric limits) is threaded through
//! [`train_with_faults`]; symmetric-failure assumptions are gone.

use crate::checkpoint::{Checkpoint, CheckpointMetrics, CheckpointStore, Fingerprint};
use crate::config::{DatasetId, ModelKind, TrainConfig};
use crate::eval::{char_valid_loss, word_valid_loss};
use crate::exchange::{exchange_and_apply_traced, ExchangeConfig, ExchangeScratch, ExchangeStats};
use crate::metrics::{
    EpochMetrics, HealthEvent, StepMetrics, StepObserver, StepSample, TimeAttribution, TrainReport,
};
use crate::schedule::{self, CommOp};
use corpus::{shard_batches, train_valid_split, BatchSpec, CorpusGenerator, TokenUnit, Vocab};
use nn::model::SeqBatch;
use nn::optimizer::scaled_lr;
use nn::{CharLm, WordLm};
use rand::rngs::StdRng;
use rand::SeedableRng;
use simgpu::{
    secs_to_ps, CommError, CommGroup, CostModel, Device, FaultPlan, HardwareConfig, OomError, Rank,
    SimSpan, SimStream, SpanKind, TraceRecorder,
};
use std::fmt;
use std::sync::Arc;

/// Why a training run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// A simulated device ran out of memory (the paper's `*` entries).
    Oom(OomError),
    /// The corpus shard is too small for even one batch.
    DataTooSmall {
        /// Tokens available per GPU shard.
        shard_tokens: usize,
        /// Tokens needed for one step.
        needed: usize,
    },
    /// Another rank failed (OOM, injected death, panic) and poisoned
    /// the communicator; this rank observed the abort at a collective.
    PeerFailure {
        /// First rank that failed.
        rank: usize,
        /// Why that rank failed.
        reason: String,
    },
    /// The fault plan targets a rank outside the world, so the entry
    /// could never fire. Rejected eagerly (before any thread spawns)
    /// instead of silently no-opping.
    InvalidFaultPlan {
        /// Highest rank the plan targets.
        rank: usize,
        /// World size of the run.
        world: usize,
    },
    /// The resume checkpoint does not belong to this run configuration
    /// (see [`crate::checkpoint::Checkpoint::validate_against`]).
    InvalidCheckpoint {
        /// Human-readable mismatch description.
        reason: String,
    },
    /// A barrier deadline expired: some peer went silent without
    /// aborting, and the group gave up waiting instead of hanging.
    /// Non-recoverable by elastic shrink — the hung rank cannot be
    /// attributed (any subset of the group may be silent) — but the run
    /// fails typed instead of deadlocking.
    Timeout {
        /// The rank that gave up waiting.
        rank: usize,
        /// Total simulated wait across all retry slices, picoseconds.
        waited_ps: u64,
    },
    /// Persisting a checkpoint failed with a real storage error (not an
    /// injected fault — those stay silent until the recovery scan).
    CheckpointWrite {
        /// What the backend reported.
        reason: String,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Oom(e) => write!(f, "{e}"),
            TrainError::DataTooSmall {
                shard_tokens,
                needed,
            } => write!(
                f,
                "shard too small: {shard_tokens} tokens, need at least {needed}"
            ),
            TrainError::PeerFailure { rank, reason } => {
                write!(f, "training aborted: rank {rank} failed ({reason})")
            }
            TrainError::InvalidFaultPlan { rank, world } => write!(
                f,
                "fault plan targets rank {rank} but the world has only {world} ranks"
            ),
            TrainError::InvalidCheckpoint { reason } => {
                write!(f, "cannot resume: {reason}")
            }
            TrainError::Timeout { rank, waited_ps } => write!(
                f,
                "training timed out: rank {rank} waited {waited_ps} ps for a silent peer"
            ),
            TrainError::CheckpointWrite { reason } => {
                write!(f, "checkpoint write failed: {reason}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CommError> for TrainError {
    fn from(e: CommError) -> Self {
        match e {
            CommError::Abort {
                failed_rank,
                reason,
            } => TrainError::PeerFailure {
                rank: failed_rank,
                reason,
            },
            CommError::Timeout { rank, waited_ps } => TrainError::Timeout { rank, waited_ps },
        }
    }
}

/// Maximum validation batches evaluated per epoch (the full validation
/// stream is used when it is smaller).
const EVAL_BATCHES: usize = 48;

/// Simulated device capacity. Experiments that probe OOM behaviour use
/// [`train_with_memory_limit`]; plain [`train`] runs unconstrained.
const UNLIMITED: u64 = u64::MAX / 4;

/// Trains per `cfg` on unconstrained simulated devices.
pub fn train(cfg: &TrainConfig) -> Result<TrainReport, TrainError> {
    train_with_memory_limit(cfg, UNLIMITED)
}

/// Trains per `cfg` with each simulated GPU capped at `gpu_mem_bytes` —
/// used to reproduce the baseline's OOM cliffs in miniature.
///
/// # Error-priority contract
///
/// Collapses the per-rank results of [`train_with_faults`] (no faults
/// injected) into one, and the collapse is *root-cause preferring*:
/// when any rank reports a concrete cause ([`TrainError::Oom`],
/// [`TrainError::DataTooSmall`], [`TrainError::InvalidFaultPlan`],
/// [`TrainError::InvalidCheckpoint`]), that error is returned and every
/// [`TrainError::PeerFailure`] *echo* of it is discarded. A
/// `PeerFailure` is returned only when no rank knows a more specific
/// reason. Callers therefore see *why* the run died, not merely that a
/// peer did — pinned by `oom_root_cause_beats_peer_failure_echoes` in
/// `tests/fault_injection.rs`.
pub fn train_with_memory_limit(
    cfg: &TrainConfig,
    gpu_mem_bytes: u64,
) -> Result<TrainReport, TrainError> {
    let mut results = train_with_faults(cfg, gpu_mem_bytes, &FaultPlan::none());
    let mut peer_failure = None;
    for res in &results {
        match res {
            Err(TrainError::PeerFailure { .. }) if peer_failure.is_none() => {
                peer_failure = Some(res.clone().unwrap_err());
            }
            Err(e) if !matches!(e, TrainError::PeerFailure { .. }) => return Err(e.clone()),
            _ => {}
        }
    }
    if let Some(e) = peer_failure {
        return Err(e);
    }
    results.swap_remove(0)
}

/// Trains per `cfg` with fault injection, returning every rank's own
/// outcome (index = rank id).
///
/// Per-rank device capacity is `gpu_mem_bytes` unless `plan` overrides
/// it for that rank. A rank the plan kills (or one that OOMs under an
/// asymmetric limit) poisons the communicator, so every surviving rank
/// returns [`TrainError::PeerFailure`] naming the first failed rank
/// within bounded time — no deadlock, every thread joins. The failed
/// rank itself returns its *own* error (`Oom`, or `PeerFailure` naming
/// itself for an injected kill), which is what makes the root-cause
/// collapse of [`train_with_memory_limit`] possible.
///
/// A plan targeting a rank outside the world (`rank >= cfg.gpus`) is
/// rejected up front with [`TrainError::InvalidFaultPlan`] on every
/// rank — such entries could never fire, and silently ignoring them
/// would green-light tests that believe they injected a fault.
pub fn train_with_faults(
    cfg: &TrainConfig,
    gpu_mem_bytes: u64,
    plan: &FaultPlan,
) -> Vec<Result<TrainReport, TrainError>> {
    train_inner(cfg, gpu_mem_bytes, plan, None)
}

/// [`train_with_faults`] with a checkpoint service attached: ranks
/// deposit periodic snapshots per `cfg.checkpoint` into `store`, and —
/// when `resume` is given — start from that snapshot instead of from
/// scratch. The building block of [`crate::train_elastic`]; exposed so
/// tests can drive kill/restore cycles and compare runs bit-for-bit.
///
/// `store` must have been created for `cfg.gpus` ranks. `resume` is
/// validated against `cfg` (and the prepared data's effective
/// vocabulary) before any thread spawns; a mismatch returns
/// [`TrainError::InvalidCheckpoint`] on every rank. The snapshot's
/// *world* size may differ from `cfg.gpus` — that is exactly the
/// shrink-restore case — but everything else must match.
pub fn train_checkpointed(
    cfg: &TrainConfig,
    gpu_mem_bytes: u64,
    plan: &FaultPlan,
    store: Arc<CheckpointStore>,
    resume: Option<Arc<Checkpoint>>,
) -> Vec<Result<TrainReport, TrainError>> {
    train_inner(cfg, gpu_mem_bytes, plan, Some(RunRuntime { store, resume }))
}

/// Checkpoint services for one run, shared by all rank threads.
struct RunRuntime {
    store: Arc<CheckpointStore>,
    resume: Option<Arc<Checkpoint>>,
}

fn train_inner(
    cfg: &TrainConfig,
    gpu_mem_bytes: u64,
    plan: &FaultPlan,
    runtime: Option<RunRuntime>,
) -> Vec<Result<TrainReport, TrainError>> {
    assert!(cfg.gpus >= 1 && cfg.epochs >= 1);
    if let Some(rank) = plan.max_rank_targeted().filter(|&r| r >= cfg.gpus) {
        return (0..cfg.gpus)
            .map(|_| {
                Err(TrainError::InvalidFaultPlan {
                    rank,
                    world: cfg.gpus,
                })
            })
            .collect();
    }
    let (train_tokens, valid_tokens, model_vocab) = prepare_data(cfg);
    if let Some(rt) = &runtime {
        assert_eq!(
            rt.store.world(),
            cfg.gpus,
            "checkpoint store sized for a different world"
        );
        if let Some(ck) = &rt.resume {
            if let Err(e) = ck.validate_against(cfg, model_vocab) {
                return (0..cfg.gpus)
                    .map(|_| {
                        Err(TrainError::InvalidCheckpoint {
                            reason: e.to_string(),
                        })
                    })
                    .collect();
            }
        }
    }
    let train_tokens = Arc::new(train_tokens);
    let valid_tokens = Arc::new(valid_tokens);

    let spec = BatchSpec {
        batch: cfg.batch,
        seq_len: cfg.seq_len,
    };
    let shard_tokens = train_tokens.len() / cfg.gpus;
    let needed = cfg.batch * (cfg.seq_len + 1);
    if shard_tokens < needed {
        return (0..cfg.gpus)
            .map(|_| {
                Err(TrainError::DataTooSmall {
                    shard_tokens,
                    needed,
                })
            })
            .collect();
    }

    let cost = CostModel::new(HardwareConfig::titan_x_cluster(), cfg.model.utilization());
    let devices: Vec<Arc<Device>> = (0..cfg.gpus)
        .map(|i| Device::new(i, plan.mem_limit(i).unwrap_or(gpu_mem_bytes)))
        .collect();
    // Topology: `comm.gpus_per_node == 0` defers to the hardware preset
    // (8 for the Table II cluster). The node layout only moves bytes
    // between the recorder's intra/inter tier buckets and selects the
    // hierarchical wire schedule — it never changes results. A nonzero
    // `pool_workers` additionally bounds how many rank threads run
    // concurrently (see `simgpu::RunGate`), which is what lets
    // paper-scale worlds of 48–192 ranks train on a small machine.
    let gpn = if cfg.comm.gpus_per_node == 0 {
        cost.hardware().gpus_per_node
    } else {
        cfg.comm.gpus_per_node
    };
    let ranks = CommGroup::create_full(cfg.gpus, gpn, cfg.comm.pool_workers, cfg.comm.deadline);

    let runtime = &runtime;
    let results: Vec<Result<RankOutput, TrainError>> = simgpu::run_ranks(ranks, |rank| {
        let device = Arc::clone(&devices[rank.rank()]);
        run_rank(
            rank,
            device,
            cfg,
            model_vocab,
            spec,
            &train_tokens,
            &valid_tokens,
            &cost,
            plan,
            runtime.as_ref(),
        )
    });

    let peak_mem = devices.iter().map(|d| d.peak()).max().unwrap_or(0);
    let mut results: Vec<Result<TrainReport, TrainError>> = results
        .into_iter()
        .map(|res| {
            res.map(|mut out| {
                out.report.peak_mem_bytes = peak_mem;
                out.report.gpus = cfg.gpus;
                out.report
            })
        })
        .collect();
    // Fleet rollup: fold every rank's registry into one (exact — see
    // `simgpu::metrics`) and collect the rank-local trace-truncation
    // findings, both onto rank 0's report, so one report answers for
    // the whole world.
    if cfg.metrics.enabled {
        let mut fleet = simgpu::MetricsRegistry::new();
        let mut truncated: Vec<HealthEvent> = Vec::new();
        for rep in results.iter().skip(1).flatten() {
            if let Some(m) = &rep.metrics {
                fleet.merge(m);
            }
            truncated.extend(
                rep.health
                    .iter()
                    .filter(|h| matches!(h, HealthEvent::TraceTruncated { .. }))
                    .cloned(),
            );
        }
        if let Some(Ok(rep0)) = results.first_mut() {
            let mut merged = rep0.metrics.clone().unwrap_or_default();
            merged.merge(&fleet);
            rep0.fleet_metrics = Some(merged);
            rep0.health.extend(truncated);
        }
    }
    results
}

/// Sequential-structure strength of the synthetic corpora: with this
/// probability a token is the deterministic successor of its context
/// (see `corpus::CorpusGenerator::with_structure`). Nonzero so that
/// "more data ⇒ better perplexity" holds, as on real text.
const STRUCTURE_LAMBDA: f64 = 0.5;

/// Generates and splits the corpus; returns the effective model
/// vocabulary (word LMs may shrink if the corpus has fewer types than
/// requested).
fn prepare_data(cfg: &TrainConfig) -> (Vec<u32>, Vec<u32>, usize) {
    match cfg.model {
        ModelKind::Word { .. } | ModelKind::WordCustom(_) => {
            let requested = cfg.model.word_config().vocab;
            let profile = DatasetId::OneBillion.profile();
            let mut gen = CorpusGenerator::new(&profile, TokenUnit::Word, cfg.seed)
                .with_structure(STRUCTURE_LAMBDA);
            let raw = gen.generate(cfg.tokens);
            let vocab = Vocab::build(&raw, requested.saturating_sub(1).max(1));
            let encoded = vocab.encode(&raw);
            let (train, valid) = train_valid_split(&encoded, 100, cfg.seed ^ SPLIT_SEED);
            (train, valid, vocab.size())
        }
        ModelKind::Char { .. } | ModelKind::CharCustom(_) => {
            let vocab = cfg.model.char_config().vocab;
            let mut profile = if vocab > 1000 {
                DatasetId::Tieba.profile()
            } else {
                DatasetId::OneBillion.profile()
            };
            profile.char_types = vocab;
            let mut gen = CorpusGenerator::new(&profile, TokenUnit::Char, cfg.seed)
                .with_structure(STRUCTURE_LAMBDA);
            let raw = gen.generate(cfg.tokens);
            let (train, valid) = train_valid_split(&raw, 100, cfg.seed ^ SPLIT_SEED);
            (train, valid, vocab)
        }
    }
}

/// One rank's training replica: either model kind behind one interface.
enum Replica {
    Word(WordLm),
    Char(CharLm),
}

struct StepOutcome {
    loss: f64,
    dense: Vec<f32>,
    input_grad: nn::SparseGrad,
    output_grad: Option<nn::SparseGrad>,
}

impl Replica {
    fn new(cfg: &TrainConfig, model_vocab: usize) -> Self {
        match cfg.model {
            ModelKind::Word { .. } | ModelKind::WordCustom(_) => {
                let mut mc = cfg.model.word_config();
                mc.vocab = model_vocab;
                mc.samples = mc.samples.min(model_vocab / 2).max(1);
                Replica::Word(WordLm::new(cfg.seed, mc))
            }
            ModelKind::Char { .. } | ModelKind::CharCustom(_) => {
                Replica::Char(CharLm::new(cfg.seed, cfg.model.char_config()))
            }
        }
    }

    fn step(&self, batch: &SeqBatch, sample_seed: u64) -> StepOutcome {
        match self {
            Replica::Word(m) => {
                let mut rng = StdRng::seed_from_u64(sample_seed);
                let g = m.forward_backward(batch, &mut rng);
                StepOutcome {
                    loss: g.loss,
                    dense: g.dense,
                    input_grad: g.input_grad,
                    output_grad: Some(g.output_grad),
                }
            }
            Replica::Char(m) => {
                let g = m.forward_backward(batch);
                StepOutcome {
                    loss: g.loss,
                    dense: g.dense,
                    input_grad: g.input_grad,
                    output_grad: None,
                }
            }
        }
    }

    fn apply_dense(&mut self, flat: &[f32], lr: f32) {
        match self {
            Replica::Word(m) => m.apply_dense(flat, lr),
            Replica::Char(m) => m.apply_dense(flat, lr),
        }
    }

    fn input_table(&mut self) -> &mut nn::Embedding {
        match self {
            Replica::Word(m) => m.input_embedding_mut(),
            Replica::Char(m) => m.input_embedding_mut(),
        }
    }

    fn output_table(&mut self) -> Option<&mut nn::Embedding> {
        match self {
            Replica::Word(m) => Some(m.output_embedding_mut()),
            Replica::Char(_) => None,
        }
    }

    fn embed_dim(&self) -> usize {
        match self {
            Replica::Word(m) => m.config().embed_dim,
            Replica::Char(m) => m.config().embed_dim,
        }
    }

    fn param_bytes(&self) -> u64 {
        let params = match self {
            Replica::Word(m) => {
                let c = m.config();
                m.dense_param_count() + c.vocab * (c.embed_dim + c.proj_dim)
            }
            Replica::Char(m) => {
                let c = m.config();
                m.dense_param_count() + c.vocab * c.embed_dim
            }
        };
        // Parameters + gradients + optimizer scratch, FP32.
        (params as u64) * 4 * 3
    }

    fn valid_loss(&self, tokens: &[u32], batch: usize, seq_len: usize) -> f64 {
        match self {
            Replica::Word(m) => word_valid_loss(m, tokens, batch, seq_len, EVAL_BATCHES),
            Replica::Char(m) => char_valid_loss(m, tokens, batch, seq_len, EVAL_BATCHES),
        }
    }

    fn param_vector(&self) -> Vec<f32> {
        match self {
            Replica::Word(m) => m.param_vector(),
            Replica::Char(m) => m.param_vector(),
        }
    }

    fn load_param_vector(&mut self, flat: &[f32]) {
        match self {
            Replica::Word(m) => m.load_param_vector(flat),
            Replica::Char(m) => m.load_param_vector(flat),
        }
    }
}

/// Builds a bit-exact snapshot of one rank's state at a step boundary.
/// Only deterministic quantities are captured — see the module docs of
/// [`crate::checkpoint`] for what is deliberately excluded.
#[allow(clippy::too_many_arguments)]
fn take_snapshot(
    fp: &Fingerprint,
    world: usize,
    rank: usize,
    step: u64,
    epoch: u32,
    step_in_epoch: u64,
    lr: f32,
    replica: &Replica,
    report: &TrainReport,
    epoch_loss: f64,
    epoch_time_ps: u64,
    unique_sum: f64,
    unique_count: u64,
) -> Checkpoint {
    Checkpoint {
        world: world as u32,
        rank: rank as u32,
        step,
        epoch,
        step_in_epoch,
        lr,
        fingerprint: fp.clone(),
        params: replica.param_vector(),
        metrics: CheckpointMetrics {
            epochs: report.epochs.clone(),
            epoch_loss,
            epoch_time_ps,
            unique_sum,
            unique_count,
            attribution: report.attribution,
        },
    }
}

struct RankOutput {
    report: TrainReport,
}

/// Assigns a flat ring collective's wire picoseconds to the tier of the
/// link rank `q` actually sends over: every chunk a rank forwards in a
/// flat ring leaves through its single egress link `q → (q+1) mod G`,
/// whose tier is decided by the resolved node layout
/// ([`simgpu::ring_send_tier`]) — exactly how the traffic recorder
/// buckets the same sends. The old all-or-nothing switch put the whole
/// group's wire time on one tier and disagreed with the recorder on
/// every multi-node flat world (divisible or ragged): ranks whose
/// egress link stays inside a node were charged inter-node time. The
/// pricing itself is untouched — `intra + inter == wire_ps`, always.
fn flat_ring_tier_split(wire_ps: u64, gpus: usize, gpus_per_node: usize, q: usize) -> (u64, u64) {
    match simgpu::ring_send_tier(gpus, gpus_per_node, q) {
        simgpu::Tier::Intra => (wire_ps, 0),
        simgpu::Tier::Inter => (0, wire_ps),
    }
}

/// The step's op schedule, priced for any rank — the rank-invariant
/// inputs of the local, communication-free step-time model.
///
/// Every rank constructs the *same* `StepSchedule` (payload sizes are
/// rank-invariant: `local_tokens` is `batch·seq_len` (+ samples) on
/// every rank and `unique_global` is synchronised by construction),
/// then prices and evaluates every rank `q`'s op list locally via
/// [`Self::ops_for`] + [`schedule::evaluate`] — so all ranks derive the
/// same synchronous step time `T = max_q critical_path(q)` without any
/// extra communication.
///
/// Launch order is readiness order: the unique path's index
/// ALLGATHERs first (ready at 0 — the token indices are known the
/// moment the batch loads), then the gradient-dependent ops in
/// production order — dense ALLREDUCE buckets, input-exchange `Ug×D`
/// ALLREDUCE buckets, output exchange likewise. Readiness follows the
/// uniform gradient-production model ([`schedule::ready_at`]): the
/// backward pass emits the step's gradient elements at a constant rate
/// over `compute_ps` in call order, so bucket `i` of a payload becomes
/// ready when its last element exists. With `overlap` off every op is
/// pinned ready at `compute_ps`, op order stops mattering (the
/// evaluation degenerates to the serial sum), and
/// [`schedule::evaluate`] reproduces the legacy serial
/// `compute + wire + touch` sum bit for bit.
struct StepSchedule<'a> {
    cost: &'a CostModel,
    xcfg: &'a ExchangeConfig,
    gpus: usize,
    /// Resolved node layout (the tier the recorder buckets by).
    gpn: usize,
    /// Two-tier wire schedule for dense + `Ug×D` ALLREDUCEs.
    hierarchical: bool,
    overlap: bool,
    bucket_bytes: u64,
    /// Wire bytes per gradient element (2 under FP16 compression).
    elem: u64,
    /// Active gradient codec (`None` ⇒ identity pricing). Wire bytes
    /// scale by the measured enc/raw ratio of each payload and the
    /// encode+decode compute is priced via [`CostModel::codec_time`].
    grad_codec: Option<&'static dyn simgpu::WireCodec>,
    /// Active index codec for the unique path's ALLGATHERs.
    index_codec: Option<&'static dyn simgpu::WireCodec>,
    /// This step's dense ALLREDUCE payload: raw wire bytes (`n·elem`)
    /// and codec-encoded bytes (equal when no codec is active).
    dense_raw_bytes: u64,
    dense_enc_bytes: u64,
    compute_ps: u64,
    dense_elems: usize,
    in_stats: ExchangeStats,
    dim: usize,
    out_stats: Option<ExchangeStats>,
    out_dim: usize,
    /// Total gradient elements produced by the backward pass (dense +
    /// both exchanges' payloads) — the denominator of the production
    /// model.
    total_grad_elems: u64,
}

impl StepSchedule<'_> {
    /// Gradient elements an exchange's collective payload carries (the
    /// production-model weight of that exchange).
    fn exchange_grad_elems(xcfg: &ExchangeConfig, stats: &ExchangeStats, dim: usize) -> usize {
        if xcfg.unique {
            stats.unique_global * dim
        } else {
            stats.local_tokens * dim
        }
    }

    /// Ready time of a gradient payload whose last element is the
    /// `cum_elems`-th produced this step; pinned to `compute_ps` when
    /// overlap is off (serial schedule).
    fn grad_ready(&self, cum_elems: u64) -> u64 {
        if self.overlap {
            schedule::ready_at(self.compute_ps, cum_elems * 4, self.total_grad_elems * 4)
        } else {
            self.compute_ps
        }
    }

    /// Scales identity wire bytes by a payload's measured enc/raw
    /// codec ratio in exact integer arithmetic (`u128` — no rounding
    /// drift across ranks, and a byte-exact no-op when `enc == raw`).
    fn scaled(bytes: u64, enc: u64, raw: u64) -> u64 {
        if raw == 0 || enc == raw {
            bytes
        } else {
            ((bytes as u128 * enc as u128) / raw as u128) as u64
        }
    }

    /// One ALLREDUCE slice of `n` elements for rank `q`, priced per
    /// tier. Hierarchical:
    /// [`CostModel::hierarchical_allreduce_rank_time_bytes`], each tier
    /// quantised separately. Flat: the ring share, assigned whole to
    /// rank `q`'s egress-link tier. With a codec the identity byte
    /// counts shrink by the payload's enc/raw ratio and the
    /// encode+decode passes (one over sent chunks, one over received —
    /// ≈ 2× the identity send volume) are charged as intra-node time.
    fn allreduce_ps(
        &self,
        n: usize,
        enc: u64,
        raw: u64,
        codec: Option<&'static dyn simgpu::WireCodec>,
        q: usize,
    ) -> (u64, u64) {
        let (mut intra, inter, ident_bytes);
        if self.hierarchical {
            let tb =
                simgpu::hierarchical_allreduce_send_bytes(n, self.gpus, self.gpn, q, self.elem);
            ident_bytes = tb.total();
            let stb = simgpu::TierBytes {
                intra: Self::scaled(tb.intra, enc, raw),
                inter: Self::scaled(tb.inter, enc, raw),
            };
            let (a, b) = self
                .cost
                .hierarchical_allreduce_rank_time_bytes(stb, self.gpus, self.gpn, q);
            intra = secs_to_ps(a);
            inter = secs_to_ps(b);
        } else {
            ident_bytes = simgpu::ring_allreduce_send_bytes(n, self.gpus, q, self.elem);
            let (a, b) = flat_ring_tier_split(
                secs_to_ps(
                    self.cost
                        .allreduce_rank_time_bytes(Self::scaled(ident_bytes, enc, raw), self.gpus),
                ),
                self.gpus,
                self.gpn,
                q,
            );
            intra = a;
            inter = b;
        }
        if let Some(c) = codec {
            intra += secs_to_ps(self.cost.codec_time(2 * ident_bytes, c.throughput_bps()));
        }
        (intra, inter)
    }

    /// One ALLGATHER of `bytes` per GPU for rank `q`, priced per tier.
    /// `tiered` routes it through the same per-tier α–β logic as the
    /// hierarchical ALLREDUCE ([`CostModel::allgather_rank_tier_time`]):
    /// node-local peers at intra constants, the rest at inter constants
    /// — the unique path's index ALLGATHER used to stay flat-split even
    /// when the config was hierarchical, pricing its node-local traffic
    /// at Infiniband constants.
    fn allgather_ps(&self, bytes: u64, tiered: bool, q: usize) -> (u64, u64) {
        if tiered {
            let (a, b) = self
                .cost
                .allgather_rank_tier_time(bytes, self.gpus, self.gpn, q);
            (secs_to_ps(a), secs_to_ps(b))
        } else {
            flat_ring_tier_split(
                secs_to_ps(self.cost.allgather_time(bytes, self.gpus)),
                self.gpus,
                self.gpn,
                q,
            )
        }
    }

    /// Appends one unique exchange's index ALLGATHER for rank `q`. The
    /// indices are known the moment the batch loads, so with overlap on
    /// the op is ready at 0 — which is also why [`Self::ops_for`]
    /// launches these *first*: they are the only ops that can cover the
    /// head of the compute window, before any gradient exists.
    fn push_index_gather(
        &self,
        ops: &mut Vec<CommOp>,
        stats: &ExchangeStats,
        label: &'static str,
        q: usize,
    ) {
        // With an index codec each rank publishes its encoded frame;
        // pricing uses the synchronized mean frame (`index_enc_bytes`
        // is the Σ over ranks, identical everywhere), scaled in exact
        // integer math so identity stays bit-for-bit the legacy price.
        let raw = stats.local_tokens as u64 * 4;
        let bytes = Self::scaled(raw, stats.index_enc_bytes, raw * self.gpus as u64);
        let (mut gi, ge) = self.allgather_ps(bytes, self.xcfg.hierarchical_for(self.gpus), q);
        if let Some(c) = self.index_codec {
            // One encode over the own frame + G decodes of gathered
            // frames — (G+1)·K·4 raw bytes through the codec kernel.
            gi += secs_to_ps(
                self.cost
                    .codec_time((self.gpus as u64 + 1) * raw, c.throughput_bps()),
            );
        }
        ops.push(CommOp {
            label,
            bucket: 0,
            intra_ps: gi,
            inter_ps: ge,
            ready_ps: if self.overlap { 0 } else { self.compute_ps },
        });
    }

    /// Appends one exchange's gradient-dependent ops for rank `q`
    /// (advancing the gradient production cursor `cum`) and returns its
    /// local memory-touch (apply) picoseconds. The unique path's index
    /// ALLGATHER is *not* emitted here — see [`Self::push_index_gather`].
    fn push_exchange_ops(
        &self,
        ops: &mut Vec<CommOp>,
        stats: &ExchangeStats,
        dim: usize,
        labels: (&'static str, &'static str),
        q: usize,
        cum: &mut u64,
    ) -> u64 {
        let (gather_label, reduce_label) = labels;
        if self.xcfg.unique {
            // Ug×D ALLREDUCE gradient buckets, scaled by the exchange's
            // measured enc/raw codec ratio (1 exactly when no codec).
            let n = stats.unique_global * dim;
            let per = schedule::bucket_elems(n, self.elem, self.bucket_bytes);
            let (mut start, mut bucket) = (0usize, 0u32);
            loop {
                let end = (start + per).min(n);
                let (ai, ae) = self.allreduce_ps(
                    end - start,
                    stats.reduce_enc_bytes,
                    stats.reduce_raw_bytes,
                    self.grad_codec,
                    q,
                );
                *cum += (end - start) as u64;
                ops.push(CommOp {
                    label: reduce_label,
                    bucket,
                    intra_ps: ai,
                    inter_ps: ae,
                    ready_ps: self.grad_ready(*cum),
                });
                start = end;
                bucket += 1;
                if start >= n {
                    break;
                }
            }
            secs_to_ps(
                self.cost
                    .memory_touch_time(stats.unique_global as u64 * dim as u64 * 4),
            )
        } else {
            // Baseline: one dense ALLGATHER of K×D rows + indices — the
            // payload *is* the gradient, so it is ready only once its
            // rows are produced — then a Θ(G·K·D) local update touch.
            *cum += (stats.local_tokens * dim) as u64;
            let (gi, ge) = self.allgather_ps(
                stats.local_tokens as u64 * (dim as u64 * self.elem + 4),
                false,
                q,
            );
            ops.push(CommOp {
                label: gather_label,
                bucket: 0,
                intra_ps: gi,
                inter_ps: ge,
                ready_ps: self.grad_ready(*cum),
            });
            secs_to_ps(
                self.cost.memory_touch_time(
                    self.gpus as u64 * stats.local_tokens as u64 * dim as u64 * 4,
                ),
            )
        }
    }

    /// Rebuilds `ops` with rank `q`'s full op list for this step, in
    /// program order, and returns `q`'s apply (memory-touch)
    /// picoseconds — the inputs of [`schedule::evaluate`]. `ops` is a
    /// caller-hoisted buffer so the steady-state loop stays
    /// allocation-free.
    fn ops_for(&self, ops: &mut Vec<CommOp>, q: usize) -> u64 {
        ops.clear();
        let mut cum = 0u64;
        // Unique-path index ALLGATHERs launch first: ready at batch
        // load, they are the only comm the schedule can run before the
        // backward pass produces its first gradient bucket. (Baseline
        // ALLGATHERs carry the gradient rows themselves and stay in
        // production order below.)
        if self.xcfg.unique {
            self.push_index_gather(ops, &self.in_stats, "in_allgather", q);
            if let Some(stats) = &self.out_stats {
                self.push_index_gather(ops, stats, "out_allgather", q);
            }
        }
        // Dense gradient buckets (LSTM/RHN + projection).
        let per = schedule::bucket_elems(self.dense_elems, self.elem, self.bucket_bytes);
        let (mut start, mut bucket) = (0usize, 0u32);
        loop {
            let end = (start + per).min(self.dense_elems);
            let (ai, ae) = self.allreduce_ps(
                end - start,
                self.dense_enc_bytes,
                self.dense_raw_bytes,
                self.grad_codec,
                q,
            );
            cum += (end - start) as u64;
            ops.push(CommOp {
                label: "dense_allreduce",
                bucket,
                intra_ps: ai,
                inter_ps: ae,
                ready_ps: self.grad_ready(cum),
            });
            start = end;
            bucket += 1;
            if start >= self.dense_elems {
                break;
            }
        }
        let mut apply = self.push_exchange_ops(
            ops,
            &self.in_stats,
            self.dim,
            ("in_allgather", "in_grad_allreduce"),
            q,
            &mut cum,
        );
        if let Some(stats) = &self.out_stats {
            apply += self.push_exchange_ops(
                ops,
                stats,
                self.out_dim,
                ("out_allgather", "out_grad_allreduce"),
                q,
                &mut cum,
            );
        }
        debug_assert_eq!(cum, self.total_grad_elems);
        apply
    }
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    mut rank: Rank,
    device: Arc<Device>,
    cfg: &TrainConfig,
    model_vocab: usize,
    spec: BatchSpec,
    train_tokens: &[u32],
    valid_tokens: &[u32],
    cost: &CostModel,
    plan: &FaultPlan,
    runtime: Option<&RunRuntime>,
) -> Result<RankOutput, TrainError> {
    let g = cfg.gpus;
    let r = rank.rank();
    let is_rank0 = r == 0;
    let mut replica = Replica::new(cfg, model_vocab);
    // The rank's group carries the resolved node layout; the exchange
    // config inherits it only when the hierarchical schedule is on, so
    // `comm.hierarchical = false` keeps every collective on the flat
    // ring regardless of topology.
    let gpn = rank.gpus_per_node();
    let xcfg = ExchangeConfig {
        unique: cfg.method.unique,
        compression: cfg.method.compression,
        gpus_per_node: if cfg.comm.hierarchical { gpn } else { 0 },
        bucket_bytes: cfg.comm.bucket_bytes,
        codec: cfg.comm.codec,
    };
    // Codec resolution mirrors the exchange layer: the gradient codec
    // only frames raw-f32 payloads (an FP16 wire keeps its own format),
    // the index codec always applies to the unique path's u32 vectors.
    let grad_codec = if cfg.method.compression.is_none() {
        cfg.comm.codec.grad_codec()
    } else {
        None
    };
    let index_codec = cfg.comm.codec.index_codec();
    let hw_gpus_per_node = cost.hardware().gpus_per_node;
    // LR scaling stays a property of the hardware preset, not of the
    // topology override — topology must never change results.
    let mut lr = scaled_lr(cfg.base_lr, g, hw_gpus_per_node);

    // Opt-in tracing: a per-rank ring recorder plus barrier-wait
    // accounting on the communicator (enabled before the abort guard
    // borrows `rank`). When disabled, nothing here allocates and every
    // hot-path trace site is one `None` branch.
    let mut recorder = if cfg.trace.enabled {
        rank.enable_wait_tracking();
        Some(TraceRecorder::new(r as u32, cfg.trace.events_per_rank))
    } else {
        None
    };
    // Opt-in fleet metrics: a per-rank registry + health monitor behind
    // one Option (`StepObserver::off()` when disabled — a single branch
    // per step, guarded by `exchange_steady/metrics_overhead`). Needs
    // barrier-wait timing like the tracer does.
    let mut observer = StepObserver::new(g, &cfg.metrics);
    if observer.enabled() {
        rank.enable_wait_tracking();
    }

    // Safety net: if this rank unwinds (an `?` below, a panic in the
    // model code) the armed guard poisons the group, so peers error out
    // of their next collective instead of hanging. Known failure sites
    // additionally abort with a precise reason first — first failure
    // wins, so the guard's generic reason only surfaces for surprises.
    let guard = rank.abort_on_drop(format!("rank {r} exited the step loop early"));

    // Persistent model memory.
    let _model_alloc = device.try_alloc(replica.param_bytes()).map_err(|e| {
        rank.abort(format!("rank {r} OOM on model parameters: {e}"));
        TrainError::Oom(e)
    })?;

    let mut report = TrainReport::default();
    let mut global_step: u64 = 0;
    let mut unique_sum = 0.0f64;
    let mut unique_count = 0u64;
    // Resume: restore parameters, counters, the exact learning rate and
    // every deterministic metric accumulator from the snapshot. No RNG
    // state exists to restore — the corpus/split were regenerated above
    // from `cfg.seed`, and sampled-softmax streams are re-seeded from
    // `global_step` each step — so from here the run is bit-identical
    // to one that never stopped (asserted in `tests/elastic_recovery.rs`).
    // Per-step telemetry (`report.steps`, traffic, traces) restarts at
    // the resume point by design; it is wall-clock or run-local.
    let fingerprint = runtime.map(|_| Fingerprint::of(cfg, model_vocab));
    let mut start_epoch = 0usize;
    let mut resume_skip = 0usize;
    let mut resume_epoch_loss = 0.0f64;
    let mut resume_epoch_time_ps = 0u64;
    let resuming = if let Some(ck) = runtime.and_then(|rt| rt.resume.as_deref()) {
        replica.load_param_vector(&ck.params);
        lr = ck.lr;
        global_step = ck.step;
        start_epoch = ck.epoch as usize;
        resume_skip = ck.step_in_epoch as usize;
        resume_epoch_loss = ck.metrics.epoch_loss;
        resume_epoch_time_ps = ck.metrics.epoch_time_ps;
        report.epochs = ck.metrics.epochs.clone();
        report.attribution = ck.metrics.attribution;
        unique_sum = ck.metrics.unique_sum;
        unique_count = ck.metrics.unique_count;
        true
    } else {
        false
    };
    // Per-table scratch pools: after the first step every exchange runs
    // allocation-free on reused buffers.
    let mut in_scratch = ExchangeScratch::new();
    let mut out_scratch = ExchangeScratch::new();

    // Step-time model tables, hoisted so the loop stays allocation-free:
    // every rank computes every rank's modelled work locally (see
    // `exchange_cost_ps`), takes the max, and so derives the *same*
    // synchronous step time without any extra communication.
    let mut work_ps: Vec<u64> = vec![0; g];
    // Hoisted op buffer for the schedule evaluation (cleared and
    // rebuilt per rank per step — capacity persists, so the loop stays
    // allocation-free once warm).
    let mut ops: Vec<CommOp> = Vec::new();
    // Cumulative simulated time — the base offset of this step's spans
    // on the simulated timeline (`TrainReport::sim_spans`).
    let mut sim_clock_ps: u64 = 0;
    let delay_ps: Vec<u64> = (0..g)
        .map(|q| {
            plan.straggler_delay(q).map_or(0, |d| {
                u64::try_from(d.as_nanos()).unwrap_or(u64::MAX / 2000) * 1000
            })
        })
        .collect();

    for epoch in start_epoch..cfg.epochs {
        let mut iter = shard_batches(train_tokens, spec, r, g);
        let steps = if cfg.steps_per_epoch > 0 {
            cfg.steps_per_epoch
        } else {
            iter.len()
        };
        let resumed_here = resuming && epoch == start_epoch;
        let first_step = if resumed_here {
            resume_skip.min(steps)
        } else {
            0
        };
        let (mut epoch_loss, mut epoch_time_ps) = if resumed_here {
            (resume_epoch_loss, resume_epoch_time_ps)
        } else {
            (0.0f64, 0u64)
        };
        if first_step > 0 {
            // Re-entering mid-epoch: discarding `first_step mod len`
            // batches from a fresh iterator lands on exactly the batch
            // the interrupted run would have drawn next (the shard
            // iterator is recreated whenever it drains, so positions
            // are periodic in its length).
            let len = iter.len().max(1);
            for _ in 0..first_step % len {
                iter.next();
            }
        }

        for s in first_step..steps {
            if plan.should_die(r, global_step as usize) {
                let reason = format!("rank {r} killed by fault plan at step {global_step}");
                rank.abort(reason.clone());
                return Err(TrainError::PeerFailure { rank: r, reason });
            }
            if plan.should_hang(r, global_step as usize) {
                // Go silent: stop calling collectives but never abort.
                // Peers hang at their next barrier until a configured
                // deadline (`cfg.comm.deadline`) poisons the group with
                // `CommError::Timeout`; this rank then observes the
                // poison and returns the same typed error instead of
                // parking forever.
                loop {
                    if let Err(e) = rank.check_abort() {
                        return Err(e.into());
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            if plan.wire_corruption_at(r) == Some(global_step as usize) {
                // Arm the one-shot latch: the next codec frame this
                // rank publishes is damaged in flight and every decoder
                // attributes the corruption to this rank.
                rank.corrupt_next_codec_frame();
            }
            if let Some(rec) = recorder.as_mut() {
                rec.set_step(global_step);
            }
            if let Some(delay) = plan.straggler_delay(r) {
                let t0 = recorder.as_ref().map(|rec| rec.now_ns());
                std::thread::sleep(delay);
                if let Some(rec) = recorder.as_mut() {
                    rec.record_since(SpanKind::StragglerDelay, t0.unwrap_or(0), 0);
                }
            }
            let batch = match iter.next() {
                Some(b) => b,
                None => {
                    iter = shard_batches(train_tokens, spec, r, g);
                    iter.next().expect("shard emptied unexpectedly")
                }
            };
            let sb = SeqBatch::from_lane_major(
                &batch.inputs,
                &batch.targets,
                batch.batch,
                batch.seq_len,
            );
            let sample_seed =
                cfg.method
                    .seeding
                    .seed_for(cfg.seed ^ SAMPLE_SEED, r, g, global_step);
            let t0 = recorder.as_ref().map(|rec| rec.now_ns());
            let out = replica.step(&sb, sample_seed);
            if let Some(rec) = recorder.as_mut() {
                rec.record_since(SpanKind::Compute, t0.unwrap_or(0), 0);
            }

            // Dense ALLREDUCE + average, one collective call per gradient
            // bucket (`comm.bucket_bytes`; a single whole-payload call
            // when 0). The hierarchical route covers every multi-node
            // group — compressed payloads ride it in their f16 wire
            // format, bit-identical to the flat f16 ring (a prior
            // revision silently kept f16 on the flat ring, losing the
            // topology the user asked for). Reduction is elementwise
            // under a canonical leader order, so neither the slicing nor
            // the topology moves a bit.
            let hier_dense = cfg.comm.hierarchical && g > gpn;
            let mut dense = out.dense;
            let elem: u64 = if cfg.method.compression.is_some() {
                2
            } else {
                4
            };
            let n_dense = dense.len();
            let per = schedule::bucket_elems(n_dense, elem, cfg.comm.bucket_bytes);
            let t0 = recorder.as_ref().map(|rec| rec.now_ns());
            // Exact per-rank bytes from the active wire schedule — the
            // sum of per-bucket shares matches the traffic recorder
            // even when a bucket's length does not divide by g.
            let mut dense_bytes = 0u64;
            let mut dense_enc_bytes = 0u64;
            let mut bstart = 0usize;
            loop {
                let bend = (bstart + per).min(n_dense);
                let slice = &mut dense[bstart..bend];
                match (cfg.method.compression, grad_codec) {
                    (Some(scale), _) if hier_dense => {
                        rank.all_reduce_sum_f16_hierarchical(slice, scale, gpn)?
                    }
                    (Some(scale), _) => rank.all_reduce_sum_f16(slice, scale)?,
                    (None, Some(c)) if hier_dense => {
                        rank.all_reduce_sum_hierarchical_codec(slice, c, gpn)?
                    }
                    (None, Some(c)) => rank.all_reduce_sum_codec(slice, c)?,
                    (None, None) if hier_dense => rank.all_reduce_sum_hierarchical(slice, gpn)?,
                    (None, None) => rank.all_reduce_sum(slice)?,
                }
                // Analytic bytes come after the collective: the codec
                // arms price each chunk at its encoded length on the
                // *reduced* (summed, pre-average) payload — exactly the
                // steady-state re-encode model the recorder charged.
                let reduced = &dense[bstart..bend];
                dense_bytes += match grad_codec {
                    Some(c) => {
                        let nb = reduced.len();
                        let chunk_bytes = |parts: usize, chunk: usize| {
                            c.encoded_len_f32(&reduced[simgpu::chunk_range(nb, parts, chunk)])
                                as u64
                        };
                        if hier_dense {
                            simgpu::hierarchical_allreduce_send_bytes_parts(g, gpn, r, chunk_bytes)
                                .total()
                        } else {
                            simgpu::ring_allreduce_send_bytes_parts(g, r, chunk_bytes)
                        }
                    }
                    None if hier_dense => {
                        simgpu::hierarchical_allreduce_send_bytes(bend - bstart, g, gpn, r, elem)
                            .total()
                    }
                    None => simgpu::ring_allreduce_send_bytes(bend - bstart, g, r, elem),
                };
                dense_enc_bytes += match grad_codec {
                    Some(c) => c.encoded_len_f32(reduced),
                    None => (bend - bstart) as u64 * elem,
                };
                bstart = bend;
                if bstart >= n_dense {
                    break;
                }
            }
            let inv_g = 1.0 / g as f32;
            for v in &mut dense {
                *v *= inv_g;
            }
            if let Some(rec) = recorder.as_mut() {
                rec.record_since(SpanKind::AllReduce, t0.unwrap_or(0), dense_bytes);
            }

            // Embedding exchanges (applied with lr/G: sum → average).
            let dim = replica.embed_dim();
            let lr_eff = lr * inv_g;
            let in_grad = out.input_grad;
            let in_stats = exchange_and_apply_traced(
                &rank,
                &in_grad,
                replica.input_table(),
                lr_eff,
                &xcfg,
                &mut in_scratch,
                recorder.as_mut(),
            )?;
            let out_stats = match (out.output_grad, replica.output_table()) {
                (Some(grad), Some(table)) => Some(exchange_and_apply_traced(
                    &rank,
                    &grad,
                    table,
                    lr_eff,
                    &xcfg,
                    &mut out_scratch,
                    recorder.as_mut(),
                )?),
                _ => None,
            };

            // Charge transient buffers against the device. Capacities
            // (and Ui-dependent buffer sizes) may differ per rank, so a
            // one-sided OOM must poison the group: peers then error out
            // of the loss reduction below instead of deadlocking.
            let transient = in_stats.peak_buffer_bytes
                + out_stats.map(|s| s.peak_buffer_bytes).unwrap_or(0)
                + dense.len() as u64 * 4;
            {
                let _t = device.try_alloc(transient).map_err(|e| {
                    rank.abort(format!(
                        "rank {r} OOM on exchange buffers at step {global_step}: {e}"
                    ));
                    TrainError::Oom(e)
                })?;
            }

            replica.apply_dense(&dense, lr);

            // Synchronised mean loss.
            let t0 = recorder.as_ref().map(|rec| rec.now_ns());
            let loss = rank.all_reduce_scalar_f64(out.loss)? / g as f64;
            if let Some(rec) = recorder.as_mut() {
                rec.record_since(SpanKind::AllReduce, t0.unwrap_or(0), 8 * (g as u64 - 1));
            }
            epoch_loss += loss;

            // Drain the step's accumulated barrier-wait wall-clock into
            // one synthetic contiguous span ending now (individual waits
            // happened inside the collectives above). Drained once and
            // shared: the tracer gets its span, the metrics observer its
            // histogram sample.
            let waited_wall_ns = if recorder.is_some() || observer.enabled() {
                rank.take_barrier_wait_ns()
            } else {
                0
            };
            if let Some(rec) = recorder.as_mut() {
                let end = rec.now_ns();
                rec.record(
                    SpanKind::BarrierWait,
                    end.saturating_sub(waited_wall_ns),
                    end,
                    0,
                );
            }

            // Simulated step time on the Table II hardware, in integer
            // picoseconds. Synchronous SGD: the step ends when the
            // slowest rank arrives, so every rank builds the same
            // per-rank op schedules locally (pure arithmetic — see
            // `StepSchedule` and `crate::schedule`), evaluates each
            // rank's critical path, and takes the max. The resulting T
            // is identical on all ranks, making `sim_time_ps` a
            // synchronised quantity; the *attribution* of T is
            // rank-local.
            let k = cfg.local_batch_tokens();
            let compute_ps = secs_to_ps(cost.compute_time(cfg.model.flops_per_step(k)));
            let out_dim = match &replica {
                Replica::Word(m) => m.config().proj_dim,
                Replica::Char(_) => dim,
            };
            let sched = StepSchedule {
                cost,
                xcfg: &xcfg,
                gpus: g,
                gpn,
                hierarchical: hier_dense,
                overlap: cfg.comm.overlap,
                bucket_bytes: cfg.comm.bucket_bytes,
                elem,
                grad_codec,
                index_codec,
                dense_raw_bytes: n_dense as u64 * elem,
                dense_enc_bytes,
                compute_ps,
                dense_elems: n_dense,
                in_stats,
                dim,
                out_stats,
                out_dim,
                total_grad_elems: (n_dense
                    + StepSchedule::exchange_grad_elems(&xcfg, &in_stats, dim)
                    + out_stats
                        .map(|s| StepSchedule::exchange_grad_elems(&xcfg, &s, out_dim))
                        .unwrap_or(0)) as u64,
            };
            let tracing = recorder.is_some();
            let mut my = crate::schedule::ScheduleOutcome::default();
            let mut my_apply_ps = 0u64;
            let mut t0_ps = 0u64; // max critical path, delays excluded
            let mut t_ps = 0u64; // max busy = critical path + delay
            for (q, w) in work_ps.iter_mut().enumerate() {
                let apply_ps = sched.ops_for(&mut ops, q);
                let outcome = if q == r && tracing {
                    // Own rank under tracing: also lay the ops out on
                    // the simulated timeline as concurrent spans.
                    let base = sim_clock_ps;
                    let spans = &mut report.sim_spans;
                    spans.push(SimSpan {
                        rank: r as u32,
                        step: global_step,
                        stream: SimStream::Compute,
                        label: "compute",
                        bucket: 0,
                        t_start_ps: base,
                        t_end_ps: base + compute_ps,
                    });
                    let oc =
                        schedule::evaluate_with(compute_ps, apply_ps, &ops, |i, s_ps, e_ps| {
                            spans.push(SimSpan {
                                rank: r as u32,
                                step: global_step,
                                stream: SimStream::Comm,
                                label: ops[i].label,
                                bucket: ops[i].bucket,
                                t_start_ps: base + s_ps,
                                t_end_ps: base + e_ps,
                            });
                        });
                    spans.push(SimSpan {
                        rank: r as u32,
                        step: global_step,
                        stream: SimStream::Compute,
                        label: "apply",
                        bucket: 0,
                        t_start_ps: base + oc.total_ps - apply_ps,
                        t_end_ps: base + oc.total_ps,
                    });
                    oc
                } else {
                    schedule::evaluate(compute_ps, apply_ps, &ops)
                };
                *w = outcome.total_ps;
                t0_ps = t0_ps.max(*w);
                t_ps = t_ps.max(*w + delay_ps[q]);
                if q == r {
                    my = outcome;
                    my_apply_ps = apply_ps;
                }
            }
            // Exact decomposition of T for this rank: whatever exceeds
            // this rank's busy time is waiting — up to T0 − cp it is
            // inherent load imbalance (barrier wait), beyond that it can
            // only be caused by peers' injected delays (skew). The comm
            // hidden under compute is carved out of the compute bucket
            // into `overlapped_ps`, so the seven buckets still sum to T
            // exactly (see `crate::schedule`).
            let wait_ps = t_ps - (work_ps[r] + delay_ps[r]);
            let barrier_wait_ps = wait_ps.min(t0_ps - work_ps[r]);
            let attribution = TimeAttribution {
                compute_ps: compute_ps + my_apply_ps - my.overlapped_ps,
                wire_intra_ps: my.exposed_intra_ps,
                wire_inter_ps: my.exposed_inter_ps,
                overlapped_ps: my.overlapped_ps,
                barrier_wait_ps,
                skew_ps: wait_ps - barrier_wait_ps,
                self_delay_ps: delay_ps[r],
            };
            debug_assert_eq!(attribution.total_ps(), t_ps);
            if tracing {
                let base = sim_clock_ps;
                let busy = work_ps[r] + delay_ps[r];
                if delay_ps[r] > 0 {
                    report.sim_spans.push(SimSpan {
                        rank: r as u32,
                        step: global_step,
                        stream: SimStream::Compute,
                        label: "self_delay",
                        bucket: 0,
                        t_start_ps: base + work_ps[r],
                        t_end_ps: base + busy,
                    });
                }
                if t_ps > busy {
                    report.sim_spans.push(SimSpan {
                        rank: r as u32,
                        step: global_step,
                        stream: SimStream::Compute,
                        label: "barrier_wait",
                        bucket: 0,
                        t_start_ps: base + busy,
                        t_end_ps: base + t_ps,
                    });
                }
            }
            sim_clock_ps += t_ps;
            epoch_time_ps += t_ps;
            report.attribution.accumulate(&attribution);

            if xcfg.unique {
                unique_sum += in_stats.unique_global as f64;
                unique_count += 1;
            }

            observer.on_step(&StepSample {
                step: global_step,
                sim_time_ps: t_ps,
                attribution: &attribution,
                wire_bytes: dense_bytes
                    + in_stats.wire_bytes
                    + out_stats.map(|s| s.wire_bytes).unwrap_or(0),
                unique_global: in_stats.unique_global as u64,
                codec_raw_bytes: n_dense as u64 * elem
                    + in_stats.reduce_raw_bytes
                    + out_stats.map(|s| s.reduce_raw_bytes).unwrap_or(0),
                codec_enc_bytes: dense_enc_bytes
                    + in_stats.reduce_enc_bytes
                    + out_stats.map(|s| s.reduce_enc_bytes).unwrap_or(0),
                work_ps: &work_ps,
                delay_ps: &delay_ps,
                barrier_wait_wall_ns: waited_wall_ns,
            });

            report.steps.push(StepMetrics {
                step: global_step,
                train_loss: loss,
                sim_time_ps: t_ps,
                sim_time_s: t_ps as f64 * 1e-12,
                attribution,
                input_exchange: in_stats,
                output_exchange: out_stats,
                dense_bytes,
            });
            global_step += 1;

            // Checkpoint hooks: off the hot path unless a store is
            // attached (plain `train` passes none — one branch per
            // step, satisfying the zero-overhead-when-off guard).
            if let Some(rt) = runtime {
                rt.store.note_progress(r, global_step);
                let every = cfg.checkpoint.every_steps;
                if every > 0 && global_step.is_multiple_of(every) {
                    let snapshot = take_snapshot(
                        fingerprint.as_ref().unwrap(),
                        g,
                        r,
                        global_step,
                        epoch as u32,
                        (s + 1) as u64,
                        lr,
                        &replica,
                        &report,
                        epoch_loss,
                        epoch_time_ps,
                        unique_sum,
                        unique_count,
                    );
                    if let Err(e) = rt.store.deposit(snapshot) {
                        // A *real* storage failure (injected disk
                        // faults return Ok and stay latent until the
                        // recovery scan). Poison the group: peers must
                        // not train on while this rank cannot persist.
                        let reason = format!("checkpoint write failed: {e}");
                        rank.abort(reason.clone());
                        return Err(TrainError::CheckpointWrite { reason });
                    }
                }
            }
        }

        // Validation on rank 0 only: replicas are identical, evaluation
        // involves no collectives, and the other G−1 passes were pure
        // discarded work.
        if is_rank0 {
            let valid_nll = if valid_tokens.is_empty() {
                f64::NAN
            } else {
                replica.valid_loss(valid_tokens, cfg.batch.min(4), cfg.seq_len)
            };
            report.epochs.push(EpochMetrics {
                epoch,
                train_loss: epoch_loss / steps.max(1) as f64,
                valid_ppl: valid_nll.exp(),
                valid_bpc: valid_nll / std::f64::consts::LN_2,
                sim_time_s: epoch_time_ps as f64 * 1e-12,
            });
        }
        lr *= cfg.lr_decay;
    }

    report.traffic = rank.traffic();
    report.mean_unique_global = if unique_count > 0 {
        unique_sum / unique_count as f64
    } else {
        0.0
    };
    report.trace = recorder.map(TraceRecorder::finish);
    let dropped_spans = report.trace.as_ref().map(|t| t.dropped).unwrap_or(0);
    let (registry, health) = observer.finish(g, r, &report.traffic, device.peak(), dropped_spans);
    report.metrics = registry;
    report.health = health;
    // Terminal snapshot: the run's exact final state (params + full
    // epoch history). Rank 0's copy is authoritative — it alone carries
    // the validation history — and resuming from it is a no-op run.
    if let Some(rt) = runtime {
        if is_rank0 {
            let snapshot = take_snapshot(
                fingerprint.as_ref().unwrap(),
                g,
                r,
                global_step,
                cfg.epochs as u32,
                0,
                lr,
                &replica,
                &report,
                0.0,
                0,
                unique_sum,
                unique_count,
            );
            if let Err(e) = rt.store.set_final(snapshot) {
                let reason = format!("terminal checkpoint write failed: {e}");
                rank.abort(reason.clone());
                return Err(TrainError::CheckpointWrite { reason });
            }
        }
    }
    guard.disarm();
    Ok(RankOutput { report })
}

/// Seed-domain separator for the train/valid split stream.
const SPLIT_SEED: u64 = 0x5b11_7000_5b11_7000;
/// Seed-domain separator for sampled-softmax candidate streams.
const SAMPLE_SEED: u64 = 0x5eed_5eed_5eed_5eed;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CheckpointConfig, CommConfig, Method, MetricsConfig, TraceConfig};
    use crate::seeding::SeedStrategy;

    fn quick_cfg(model: ModelKind, gpus: usize, method: Method) -> TrainConfig {
        TrainConfig {
            model,
            gpus,
            batch: 2,
            seq_len: 6,
            steps_per_epoch: 4,
            epochs: 1,
            base_lr: 0.3,
            lr_decay: 0.95,
            method,
            seed: 7,
            tokens: 30_000,
            trace: TraceConfig::off(),
            metrics: MetricsConfig::off(),
            checkpoint: CheckpointConfig::off(),
            comm: CommConfig::flat(),
        }
    }

    #[test]
    fn word_training_runs_all_methods() {
        for (_, method) in Method::figure6_stack() {
            let cfg = quick_cfg(ModelKind::Word { vocab: 200 }, 2, method);
            let rep = train(&cfg).expect("train");
            assert_eq!(rep.epochs.len(), 1);
            assert!(rep.epochs[0].train_loss.is_finite());
            assert!(rep.epochs[0].valid_ppl.is_finite());
            assert_eq!(rep.steps.len(), 4);
        }
    }

    #[test]
    fn char_training_runs() {
        let cfg = quick_cfg(ModelKind::Char { vocab: 64 }, 2, Method::unique());
        let rep = train(&cfg).expect("train");
        assert!(rep.epochs[0].valid_bpc.is_finite());
        assert!(rep.steps[0].output_exchange.is_none());
    }

    #[test]
    fn multi_epoch_loss_improves() {
        let mut cfg = quick_cfg(ModelKind::Char { vocab: 32 }, 2, Method::unique());
        cfg.epochs = 4;
        cfg.steps_per_epoch = 20;
        cfg.base_lr = 0.5;
        let rep = train(&cfg).expect("train");
        let first = rep.epochs.first().unwrap().train_loss;
        let last = rep.epochs.last().unwrap().train_loss;
        assert!(last < first, "first {first}, last {last}");
    }

    #[test]
    fn unique_reduces_traffic_vs_baseline() {
        let base = train(&quick_cfg(
            ModelKind::Word { vocab: 100 },
            4,
            Method::baseline(),
        ))
        .unwrap();
        let uniq = train(&quick_cfg(
            ModelKind::Word { vocab: 100 },
            4,
            Method::unique_seeded(),
        ))
        .unwrap();
        assert!(
            uniq.traffic.allgather_bytes < base.traffic.allgather_bytes,
            "unique {} vs baseline {}",
            uniq.traffic.allgather_bytes,
            base.traffic.allgather_bytes
        );
        assert!(uniq.mean_unique_global > 0.0);
    }

    #[test]
    fn oom_surfaces_as_error() {
        let cfg = quick_cfg(ModelKind::Word { vocab: 200 }, 4, Method::baseline());
        let err = train_with_memory_limit(&cfg, 200_000).unwrap_err();
        assert!(matches!(err, TrainError::Oom(_)), "got {err}");
    }

    #[test]
    fn unique_survives_memory_limit_where_baseline_dies() {
        // The headline of Tables III/IV, in miniature.
        let mk = |method| quick_cfg(ModelKind::Word { vocab: 300 }, 4, method);
        // Find a limit between the two peak usages.
        let base_peak = train(&mk(Method::baseline())).unwrap().peak_mem_bytes;
        let uniq_peak = train(&mk(Method::unique_seeded())).unwrap().peak_mem_bytes;
        assert!(
            uniq_peak < base_peak,
            "unique {uniq_peak} vs base {base_peak}"
        );
        let limit = (uniq_peak + base_peak) / 2;
        assert!(matches!(
            train_with_memory_limit(&mk(Method::baseline()), limit),
            Err(TrainError::Oom(_))
        ));
        assert!(train_with_memory_limit(&mk(Method::unique_seeded()), limit).is_ok());
    }

    #[test]
    fn data_too_small_detected() {
        let mut cfg = quick_cfg(ModelKind::Char { vocab: 32 }, 2, Method::unique());
        cfg.tokens = 20;
        assert!(matches!(train(&cfg), Err(TrainError::DataTooSmall { .. })));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick_cfg(ModelKind::Word { vocab: 150 }, 2, Method::unique_seeded());
        let a = train(&cfg).unwrap();
        let b = train(&cfg).unwrap();
        assert_eq!(a.epochs[0].train_loss, b.epochs[0].train_loss);
        assert_eq!(a.final_ppl(), b.final_ppl());
    }

    #[test]
    fn hierarchical_pooled_training_matches_flat_bitwise() {
        // The tentpole invariant end to end: routing every dense and
        // Ug×D ALLREDUCE through the two-tier schedule under a bounded
        // worker pool changes *nothing* about the numbers — losses and
        // final perplexity are bit-identical; only the wire accounting
        // (and hence simulated time) moves between tiers.
        let flat_cfg = quick_cfg(ModelKind::Word { vocab: 150 }, 6, Method::unique());
        let mut hier_cfg = flat_cfg.clone();
        hier_cfg.comm = CommConfig {
            gpus_per_node: 2,
            hierarchical: true,
            pool_workers: 3,
            ..CommConfig::flat()
        };
        let flat = train(&flat_cfg).expect("flat");
        let hier = train(&hier_cfg).expect("hier");
        assert_eq!(flat.epochs[0].train_loss, hier.epochs[0].train_loss);
        assert_eq!(flat.final_ppl(), hier.final_ppl());
        for (a, b) in flat.steps.iter().zip(&hier.steps) {
            assert_eq!(a.train_loss, b.train_loss, "step {} diverged", a.step);
            assert_eq!(a.attribution.total_ps(), a.sim_time_ps);
            assert_eq!(b.attribution.total_ps(), b.sim_time_ps);
        }
        // 6 ranks over 2-GPU nodes: rank 0 leads a node, so its wire
        // time and the group's traffic must actually cross Infiniband.
        assert!(hier.steps[0].attribution.wire_inter_ps > 0);
        assert!(hier.steps[0].attribution.wire_intra_ps > 0);
        assert!(hier.traffic.allreduce_inter_bytes > 0);
        // The flat run fits the hardware preset's node (6 ≤ 8): all of
        // its wire time and bytes stay on the PCIe tier.
        assert_eq!(flat.steps[0].attribution.wire_inter_ps, 0);
        assert_eq!(flat.traffic.allreduce_inter_bytes, 0);
    }

    #[test]
    fn hierarchical_analytic_bytes_reconcile_with_recorder_exactly() {
        // Trainer-level exactness: every ALLREDUCE byte the recorder saw
        // is a byte some rank's analytic model claimed — summed over all
        // ranks and steps, with no epsilon, at a ragged world (5 ranks
        // on 2-GPU nodes: 2 + 2 + 1). Char LM ⇒ one dense ALLREDUCE,
        // one unique input exchange and one scalar loss reduce per step.
        let (g, gpn) = (5usize, 2usize);
        let mut cfg = quick_cfg(ModelKind::Char { vocab: 32 }, g, Method::unique());
        cfg.comm = CommConfig {
            gpus_per_node: gpn,
            hierarchical: true,
            pool_workers: 2,
            ..CommConfig::flat()
        };
        let reports: Vec<TrainReport> = train_with_faults(&cfg, UNLIMITED, &FaultPlan::none())
            .into_iter()
            .map(|r| r.expect("rank failed"))
            .collect();
        let mut expected = 0u64;
        for (r, rep) in reports.iter().enumerate() {
            for s in &rep.steps {
                // dense_bytes is the rank's exact hierarchical share.
                expected += s.dense_bytes;
                // The exchange's wire_bytes = index gather + ALLREDUCE
                // share; only the latter lands in the allreduce bucket.
                let gather = (s.input_exchange.local_tokens as u64) * 4 * (g as u64 - 1);
                expected += s.input_exchange.wire_bytes - gather;
                // The synchronised mean loss: 8 bytes to every peer.
                expected += simgpu::peer_exchange_tier_bytes(g, gpn, r, 8).total();
            }
        }
        let snap = &reports[0].traffic;
        assert_eq!(snap.allreduce_bytes, expected);
        assert_eq!(
            snap.allreduce_bytes,
            snap.allreduce_intra_bytes + snap.allreduce_inter_bytes
        );
        assert!(snap.allreduce_inter_bytes > 0, "leaders must cross nodes");
        assert!(snap.allreduce_intra_bytes > 0);
    }

    #[test]
    fn seeding_shrinks_output_exchange() {
        let shared = train(&quick_cfg(
            ModelKind::Word { vocab: 400 },
            4,
            Method {
                unique: true,
                seeding: SeedStrategy::AllSame,
                compression: None,
            },
        ))
        .unwrap();
        let per_gpu = train(&quick_cfg(
            ModelKind::Word { vocab: 400 },
            4,
            Method {
                unique: true,
                seeding: SeedStrategy::PerGpu,
                compression: None,
            },
        ))
        .unwrap();
        let ug = |r: &TrainReport| {
            r.steps
                .iter()
                .filter_map(|s| s.output_exchange.map(|e| e.unique_global))
                .sum::<usize>()
        };
        assert!(
            ug(&shared) < ug(&per_gpu),
            "shared {} vs per-gpu {}",
            ug(&shared),
            ug(&per_gpu)
        );
    }
}
