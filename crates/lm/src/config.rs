//! Training configuration.
//!
//! `TrainConfig` describes the *healthy* run; failure injection lives
//! orthogonally in [`simgpu::FaultPlan`], passed alongside the config to
//! [`crate::trainer::train_with_faults`] — kill-at-step, straggler
//! delays and asymmetric per-rank memory limits compose with any config
//! here without changing its semantics.

use crate::seeding::SeedStrategy;
use corpus::DatasetProfile;
use nn::model::{CharLmConfig, WordLmConfig};

/// Which corpus profile feeds the trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetId {
    /// 1-Billion Word (the paper's main accuracy benchmark).
    OneBillion,
    /// Project Gutenberg.
    Gutenberg,
    /// Amazon Reviews (§V-D comparison).
    AmazonReviews,
    /// Baidu Tieba (§V-C hero run; char-level, 15 K vocabulary).
    Tieba,
}

impl DatasetId {
    /// The corresponding generation profile.
    pub fn profile(&self) -> DatasetProfile {
        match self {
            DatasetId::OneBillion => DatasetProfile::one_billion(),
            DatasetId::Gutenberg => DatasetProfile::gutenberg(),
            DatasetId::AmazonReviews => DatasetProfile::amazon_reviews(),
            DatasetId::Tieba => DatasetProfile::tieba(),
        }
    }
}

/// Which model to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Word LM with the default small architecture at the given
    /// vocabulary (§IV-B's LSTM model, scaled down).
    Word {
        /// Model vocabulary incl. UNK.
        vocab: usize,
    },
    /// Char LM with the default small architecture (§IV-B's RHN model,
    /// scaled down).
    Char {
        /// Alphabet size.
        vocab: usize,
    },
    /// Word LM with explicit dimensions.
    WordCustom(WordLmConfig),
    /// Char LM with explicit dimensions.
    CharCustom(CharLmConfig),
}

impl ModelKind {
    /// True for the word-LM variants (which use sampled softmax and the
    /// seeding technique).
    pub fn is_word(&self) -> bool {
        matches!(self, ModelKind::Word { .. } | ModelKind::WordCustom(_))
    }

    /// Resolved word-LM config (panics for char kinds).
    pub fn word_config(&self) -> WordLmConfig {
        match self {
            ModelKind::Word { vocab } => WordLmConfig::small(*vocab),
            ModelKind::WordCustom(c) => *c,
            _ => panic!("not a word model"),
        }
    }

    /// Resolved char-LM config (panics for word kinds).
    pub fn char_config(&self) -> CharLmConfig {
        match self {
            ModelKind::Char { vocab } => CharLmConfig::small(*vocab),
            ModelKind::CharCustom(c) => *c,
            _ => panic!("not a char model"),
        }
    }

    /// Approximate FLOPs per training step per GPU for a local batch of
    /// `k` tokens (forward ≈ ⅓, backward ≈ ⅔ — the usual 3× rule).
    pub fn flops_per_step(&self, k: usize) -> f64 {
        let per_token = match self {
            ModelKind::Word { .. } | ModelKind::WordCustom(_) => {
                let c = self.word_config();
                let lstm = 2.0 * (c.embed_dim as f64 + c.hidden as f64) * (4 * c.hidden) as f64;
                let proj = 2.0 * c.hidden as f64 * c.proj_dim as f64;
                let softmax = 2.0 * (c.samples + 1) as f64 * c.proj_dim as f64;
                lstm + proj + softmax
            }
            ModelKind::Char { .. } | ModelKind::CharCustom(_) => {
                let c = self.char_config();
                let input = 2.0 * 2.0 * c.embed_dim as f64 * c.hidden as f64;
                let rec = 2.0 * 2.0 * c.depth as f64 * (c.hidden as f64).powi(2);
                let out = 2.0 * c.hidden as f64 * c.vocab as f64;
                input + rec + out
            }
        };
        3.0 * per_token * k as f64
    }

    /// GPU utilisation fraction the paper measured for this model class
    /// (40 % word — "2.44 TFLOP/sec (40% of peak)", 64 % char).
    pub fn utilization(&self) -> f64 {
        if self.is_word() {
            0.40
        } else {
            0.64
        }
    }
}

/// The optimizer stack of §III, applied cumulatively like Figure 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Method {
    /// Uniqueness (§III-A) for both embedding exchanges.
    pub unique: bool,
    /// Seed-sharing strategy (§III-B) for sampled softmax (word LM only).
    pub seeding: SeedStrategy,
    /// FP16 compression scale (§III-C), if enabled.
    pub compression: Option<f32>,
}

impl Method {
    /// The paper's baseline: dense ALLGATHER, per-GPU seeds, FP32 wire.
    pub fn baseline() -> Self {
        Self {
            unique: false,
            seeding: SeedStrategy::PerGpu,
            compression: None,
        }
    }

    /// Baseline + uniqueness.
    pub fn unique() -> Self {
        Self {
            unique: true,
            ..Self::baseline()
        }
    }

    /// Uniqueness + Zipf-frequency seeding.
    pub fn unique_seeded() -> Self {
        Self {
            unique: true,
            seeding: SeedStrategy::ZipfFreq,
            compression: None,
        }
    }

    /// All three techniques (the "+compression" bar of Figure 6).
    pub fn full() -> Self {
        Self {
            unique: true,
            seeding: SeedStrategy::ZipfFreq,
            compression: Some(512.0),
        }
    }

    /// Figure 6's cumulative stack in order.
    pub fn figure6_stack() -> Vec<(&'static str, Method)> {
        vec![
            ("baseline", Method::baseline()),
            ("+uniqueness", Method::unique()),
            ("+seeding", Method::unique_seeded()),
            ("+compression", Method::full()),
        ]
    }
}

/// Opt-in per-rank structured tracing (see [`simgpu::trace`]).
///
/// Disabled by default. When off, the trainer allocates no recorder,
/// [`simgpu::Rank`] skips barrier-wait timing, and the exchange hot
/// path pays a single branch per phase — the
/// `exchange_steady/trace_overhead` bench guards that this stays within
/// measurement noise of the untraced baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record per-rank span events and attach a `TraceLog` to each
    /// rank's `TrainReport`.
    pub enabled: bool,
    /// Ring-buffer capacity per rank: beyond this, the oldest events
    /// are overwritten (counted in the log's `dropped`).
    pub events_per_rank: usize,
}

impl TraceConfig {
    /// Tracing disabled (the default).
    pub fn off() -> Self {
        Self {
            enabled: false,
            events_per_rank: 65_536,
        }
    }

    /// Tracing enabled at the default ring capacity.
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::off()
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Opt-in fleet metrics (see [`simgpu::metrics`] and [`crate::metrics`]).
///
/// Disabled by default. When off, the trainer allocates no registry and
/// the step loop pays a single branch — the
/// `exchange_steady/metrics_overhead` bench guards that this stays
/// within measurement noise of the plain hot path. When on, every rank
/// feeds per-step histograms (step time, attribution buckets, wire
/// bytes, barrier waits) into its own [`simgpu::MetricsRegistry`]; the
/// merged fleet registry and any [`crate::HealthEvent`] findings land
/// on the final `TrainReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Collect per-rank metrics and attach the merged registry (and a
    /// `RunSummary`) to the final `TrainReport`.
    pub enabled: bool,
    /// Straggler detection threshold in milli-units: a rank is flagged
    /// when its per-step busy time exceeds `factor/1000 ×` the world
    /// median for `straggler_window` consecutive steps.
    pub straggler_factor_milli: u64,
    /// Consecutive over-threshold steps before a
    /// `HealthEvent::Straggler` fires.
    pub straggler_window: u32,
}

impl MetricsConfig {
    /// Metrics disabled (the default).
    pub fn off() -> Self {
        Self {
            enabled: false,
            straggler_factor_milli: 1500,
            straggler_window: 3,
        }
    }

    /// Metrics enabled at the default straggler thresholds (1.5× the
    /// median busy time for 3 consecutive steps).
    pub fn on() -> Self {
        Self {
            enabled: true,
            ..Self::off()
        }
    }
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Opt-in periodic checkpointing (see [`crate::checkpoint`]).
///
/// Disabled by default. When off (`every_steps == 0`) the trainer's hot
/// path pays a single branch per step — no snapshot buffers are
/// allocated and no store is consulted — so the `exchange_steady` bench
/// guard holds. When on, every rank deposits a bit-exact
/// [`crate::checkpoint::Checkpoint`] of its training state into the
/// run's [`crate::checkpoint::CheckpointStore`] every `every_steps`
/// global steps, retaining the most recent `keep_last` snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Snapshot cadence in global steps; `0` disables checkpointing.
    pub every_steps: u64,
    /// How many snapshots each rank retains (older ones are dropped).
    pub keep_last: usize,
}

impl CheckpointConfig {
    /// Checkpointing disabled (the default): zero steady-state cost.
    pub fn off() -> Self {
        Self {
            every_steps: 0,
            keep_last: 2,
        }
    }

    /// Checkpoint every `n` global steps at the default retention.
    pub fn every(n: u64) -> Self {
        Self {
            every_steps: n,
            ..Self::off()
        }
    }

    /// True when periodic checkpointing is active.
    pub fn enabled(&self) -> bool {
        self.every_steps > 0
    }
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        Self::off()
    }
}

/// Cluster-topology and rank-scheduling knobs.
///
/// The defaults reproduce the pre-topology trainer exactly: a flat ring
/// across all `G` GPUs with one unbounded OS thread per rank. Turning
/// on `hierarchical` routes the dense-gradient ALLREDUCE through the
/// two-tier schedule (intra-node PCIe ring, inter-node Infiniband ring
/// between node leaders) — bit-identical results, different wire
/// accounting and α–β time. Setting `pool_workers` bounds how many
/// ranks *run* concurrently (see [`simgpu::RunGate`]), which is what
/// makes paper-scale worlds of 48–192 ranks practical on a small box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommConfig {
    /// GPUs per node for tier attribution and the hierarchical
    /// schedule; `0` resolves to the hardware preset's value
    /// (8 for the Table II Titan X cluster).
    pub gpus_per_node: usize,
    /// Route the dense ALLREDUCE through the two-tier hierarchical
    /// schedule when the group spans multiple nodes. Results are
    /// bit-identical to the flat ring; only wire/time accounting moves.
    pub hierarchical: bool,
    /// Run-slot cap for rank execution; `0` = unpooled (every rank
    /// thread runnable at once — the legacy behaviour).
    pub pool_workers: usize,
    /// Overlap communication with compute in the step schedule: comm
    /// ops launch as soon as their payload is produced by the backward
    /// pass instead of after all compute finishes, and the step's
    /// simulated time becomes the critical path through the op DAG.
    /// Comm time hidden under compute lands in the
    /// `TimeAttribution::overlapped_ps` bucket. Results (params,
    /// losses) never change — only the modelled timeline does. Off by
    /// default: the serial schedule reproduces the pre-schedule step
    /// times bit-exactly.
    pub overlap: bool,
    /// Gradient-bucket size in bytes for the step schedule: dense
    /// gradients and the embedding exchanges' `Ug×D` payloads are split
    /// into buckets of at most this many wire bytes, each a separate
    /// collective op (paying its own latency term — finer buckets hide
    /// more comm under compute but cost more α). `0` = one bucket per
    /// payload (the legacy collectives, byte-for-byte).
    pub bucket_bytes: u64,
    /// Lossless wire codec for the collective payloads (ZipCCL-style;
    /// see [`simgpu::codec`]): delta+varint over the ALLGATHERed index
    /// lists and/or exponent-packing of the gradient ALLREDUCE rows.
    /// Results (losses, params, checkpoints) are bit-identical to
    /// [`simgpu::WireCodecId::Identity`] — only wire bytes and simulated
    /// time change. Composes with `Method::compression`: an FP16 wire is
    /// already its own (lossy) format, so the gradient codec then steps
    /// aside while the index codec keeps applying.
    pub codec: simgpu::WireCodecId,
    /// Barrier deadline policy: when set, a rank parked at a collective
    /// gives up after the bounded retry/backoff budget and the run
    /// fails with a typed timeout instead of hanging on a silent peer.
    /// `None` (the default) parks forever — correct whenever every
    /// failure announces itself through the abort flag.
    pub deadline: Option<simgpu::BarrierDeadline>,
}

impl CommConfig {
    /// Flat single-tier ring, unpooled — the legacy trainer behaviour.
    pub fn flat() -> Self {
        Self {
            gpus_per_node: 0,
            hierarchical: false,
            pool_workers: 0,
            overlap: false,
            bucket_bytes: 0,
            codec: simgpu::WireCodecId::Identity,
            deadline: None,
        }
    }

    /// Sets the barrier deadline policy (silent peers surface as
    /// `CommError::Timeout` after `timeout · (2^(retries+1) − 1)` of
    /// waiting).
    pub fn with_deadline(mut self, deadline: simgpu::BarrierDeadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Two-tier hierarchical collectives on the hardware preset's node
    /// size, with rank execution bounded to `pool_workers` run slots.
    pub fn hierarchical_pooled(pool_workers: usize) -> Self {
        Self {
            hierarchical: true,
            pool_workers,
            ..Self::flat()
        }
    }

    /// Enables the overlapped step schedule with gradient buckets of at
    /// most `bucket_bytes` wire bytes (`0` = unbucketed payloads, which
    /// still overlap: a payload launches once its last byte is
    /// produced).
    pub fn overlapped(mut self, bucket_bytes: u64) -> Self {
        self.overlap = true;
        self.bucket_bytes = bucket_bytes;
        self
    }

    /// Selects a wire codec for the collective payloads.
    pub fn with_codec(mut self, codec: simgpu::WireCodecId) -> Self {
        self.codec = codec;
        self
    }
}

impl Default for CommConfig {
    fn default() -> Self {
        Self::flat()
    }
}

/// Everything `train` needs.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Model to train.
    pub model: ModelKind,
    /// Number of simulated GPUs `G`.
    pub gpus: usize,
    /// Sequences per GPU per step.
    pub batch: usize,
    /// Tokens per sequence (the paper's `c`).
    pub seq_len: usize,
    /// Steps per epoch; 0 = run the whole shard every epoch.
    pub steps_per_epoch: usize,
    /// Number of epochs.
    pub epochs: usize,
    /// Base learning rate (scaled by `ln(nodes)` internally, §IV-B).
    pub base_lr: f32,
    /// Per-epoch learning-rate decay (the paper uses 0.85–0.95).
    pub lr_decay: f32,
    /// Which of the paper's techniques to enable.
    pub method: Method,
    /// Master seed (corpus, init, sampling all derive from it).
    pub seed: u64,
    /// Synthetic corpus size in tokens.
    pub tokens: usize,
    /// Per-rank structured tracing (off by default — zero overhead).
    pub trace: TraceConfig,
    /// Fleet metrics: per-rank registries, step-time histograms and the
    /// straggler health monitor (off by default — zero overhead).
    pub metrics: MetricsConfig,
    /// Periodic bit-exact checkpointing (off by default — zero
    /// overhead; required for elastic recovery to restore progress).
    pub checkpoint: CheckpointConfig,
    /// Cluster topology and rank scheduling (flat + unpooled by
    /// default — identical to the pre-topology trainer).
    pub comm: CommConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            model: ModelKind::Word { vocab: 1000 },
            gpus: 2,
            batch: 4,
            seq_len: 10,
            steps_per_epoch: 10,
            epochs: 1,
            base_lr: 0.5,
            lr_decay: 0.95,
            method: Method::unique(),
            seed: 42,
            tokens: 50_000,
            trace: TraceConfig::off(),
            metrics: MetricsConfig::off(),
            checkpoint: CheckpointConfig::off(),
            comm: CommConfig::flat(),
        }
    }
}

impl TrainConfig {
    /// Local batch size `K` in tokens.
    pub fn local_batch_tokens(&self) -> usize {
        self.batch * self.seq_len
    }

    /// Global batch size `G·K` in tokens.
    pub fn global_batch_tokens(&self) -> usize {
        self.gpus * self.local_batch_tokens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_stack_is_cumulative() {
        let stack = Method::figure6_stack();
        assert_eq!(stack.len(), 4);
        assert!(!stack[0].1.unique);
        assert!(stack[1].1.unique);
        assert_eq!(stack[1].1.seeding, SeedStrategy::PerGpu);
        assert_eq!(stack[2].1.seeding, SeedStrategy::ZipfFreq);
        assert!(stack[2].1.compression.is_none());
        assert!(stack[3].1.compression.is_some());
    }

    #[test]
    fn trace_defaults_off() {
        assert!(!TrainConfig::default().trace.enabled);
        assert_eq!(TraceConfig::default(), TraceConfig::off());
        let on = TraceConfig::on();
        assert!(on.enabled);
        assert_eq!(on.events_per_rank, TraceConfig::off().events_per_rank);
    }

    #[test]
    fn metrics_defaults_off() {
        assert!(!TrainConfig::default().metrics.enabled);
        assert_eq!(MetricsConfig::default(), MetricsConfig::off());
        let on = MetricsConfig::on();
        assert!(on.enabled);
        assert_eq!(
            on.straggler_factor_milli,
            MetricsConfig::off().straggler_factor_milli
        );
        assert_eq!(on.straggler_window, MetricsConfig::off().straggler_window);
        assert!(
            on.straggler_factor_milli > 1000,
            "threshold above the median"
        );
        assert!(on.straggler_window >= 1);
    }

    #[test]
    fn checkpoint_defaults_off() {
        assert!(!TrainConfig::default().checkpoint.enabled());
        assert_eq!(CheckpointConfig::default(), CheckpointConfig::off());
        let every = CheckpointConfig::every(5);
        assert!(every.enabled());
        assert_eq!(every.every_steps, 5);
        assert_eq!(every.keep_last, CheckpointConfig::off().keep_last);
    }

    #[test]
    fn comm_defaults_flat_and_unpooled() {
        let d = TrainConfig::default().comm;
        assert_eq!(d, CommConfig::flat());
        assert!(!d.hierarchical);
        assert_eq!(d.pool_workers, 0);
        let hp = CommConfig::hierarchical_pooled(4);
        assert!(hp.hierarchical);
        assert_eq!(hp.pool_workers, 4);
        assert_eq!(hp.gpus_per_node, 0, "node size defers to the hw preset");
        assert!(!d.overlap, "overlap is opt-in");
        assert_eq!(d.bucket_bytes, 0);
        let ov = CommConfig::flat().overlapped(1 << 20);
        assert!(ov.overlap);
        assert_eq!(ov.bucket_bytes, 1 << 20);
        let hov = CommConfig::hierarchical_pooled(8).overlapped(0);
        assert!(hov.overlap && hov.hierarchical);
    }

    #[test]
    fn codec_defaults_identity_and_composes() {
        let d = TrainConfig::default().comm;
        assert_eq!(d.codec, simgpu::WireCodecId::Identity);
        assert!(d.codec.index_codec().is_none() && d.codec.grad_codec().is_none());
        let c = CommConfig::hierarchical_pooled(8)
            .overlapped(1 << 16)
            .with_codec(simgpu::WireCodecId::Lossless);
        assert!(c.hierarchical && c.overlap);
        assert_eq!(c.codec, simgpu::WireCodecId::Lossless);
        assert!(c.codec.index_codec().is_some() && c.codec.grad_codec().is_some());
    }

    #[test]
    fn paper_batch_arithmetic() {
        // §V-A: 16/32/64 GPUs with per-GPU batch 32 × seq 20 process
        // 10240/20480/40960 tokens per iteration.
        for (gpus, tokens) in [(16usize, 10_240usize), (32, 20_480), (64, 40_960)] {
            let cfg = TrainConfig {
                gpus,
                batch: 32,
                seq_len: 20,
                ..Default::default()
            };
            assert_eq!(cfg.global_batch_tokens(), tokens);
        }
    }

    #[test]
    fn flops_scale_with_batch() {
        let m = ModelKind::Word { vocab: 1000 };
        assert!(m.flops_per_step(200) > m.flops_per_step(100) * 1.9);
    }

    #[test]
    fn utilization_matches_paper() {
        assert_eq!(ModelKind::Word { vocab: 10 }.utilization(), 0.40);
        assert_eq!(ModelKind::Char { vocab: 10 }.utilization(), 0.64);
    }

    #[test]
    fn model_kind_resolution() {
        let w = ModelKind::Word { vocab: 500 };
        assert!(w.is_word());
        assert_eq!(w.word_config().vocab, 500);
        let c = ModelKind::Char { vocab: 98 };
        assert!(!c.is_word());
        assert_eq!(c.char_config().vocab, 98);
    }

    #[test]
    #[should_panic(expected = "not a word model")]
    fn char_kind_rejects_word_config() {
        ModelKind::Char { vocab: 98 }.word_config();
    }
}
