//! Elastic training: shrink-to-survivors recovery from rank failures.
//!
//! [`train_elastic`] wraps [`crate::train_with_faults`] in a recovery
//! loop. When a rank fails mid-run — an injected kill
//! ([`simgpu::FaultPlan`]), an asymmetric OOM — the driver:
//!
//! 1. **detects** the failure from the per-rank results (the failed
//!    rank's *own* error, not the `PeerFailure` echoes on survivors);
//! 2. **shrinks** the world to the survivors `G → G'`, rebuilding the
//!    communicator, re-deriving the seeding groups and unique-set
//!    layout (both are functions of the world size), and re-sharding
//!    the corpus over `G'` ranks;
//! 3. **restores** every survivor from the last *consistent* checkpoint
//!    — the newest snapshot all survivors hold in the run's
//!    [`CheckpointStore`] (none ⇒ fresh restart at `G'`);
//! 4. **resumes**, bounded by [`RecoveryPolicy::max_restarts`];
//!    [`RecoveryPolicy::backoff`] between attempts is *simulated*
//!    (doubled per consecutive restart and recorded on the event),
//!    never slept.
//!
//! Each round is recorded as a [`RecoveryEvent`] (failed ranks, world
//! before/after, restored step, steps lost, wall-clock stall) in the
//! returned [`TrainOutcome`] and in `TrainReport::recoveries`; with
//! tracing enabled, a [`simgpu::SpanKind::Recovery`] marker per round
//! is appended to the final report's trace.
//!
//! The headline invariants (asserted in `tests/elastic_recovery.rs`):
//! kill-and-resume at the *same* world size is bit-identical (final
//! parameters and per-epoch losses) to an uninterrupted run, and a
//! shrink-recovered run at `G'` is bit-identical to a fresh `G'` run
//! started from the same restored snapshot. See DESIGN.md's "Failure
//! model & recovery contract" for what is *not* guaranteed (in-flight
//! steps past the restored cut, per-step telemetry, epoch history when
//! rank 0 dies).

use crate::checkpoint::{Checkpoint, CheckpointBackend, CheckpointStore};
use crate::config::TrainConfig;
use crate::metrics::{HealthEvent, RecoveryEvent, TrainReport};
use crate::trainer::{train_checkpointed, TrainError};
use simgpu::{FaultPlan, SpanKind, TraceEvent};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Simulated device capacity for unconstrained elastic runs (mirrors
/// the trainer's internal unlimited default).
const UNLIMITED: u64 = u64::MAX / 4;

/// How persistent the elastic driver is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Maximum recovery rounds before giving up and returning the
    /// underlying failure.
    pub max_restarts: usize,
    /// Base backoff between detecting a failure and relaunching. The
    /// driver does **not** sleep it: the pause is *simulated* — doubled
    /// per consecutive restart (`base · 2^(restart−1)`) and charged to
    /// [`RecoveryEvent::backoff_ps`] — so elastic tests run at full
    /// speed while summaries still see realistic recovery costs.
    pub backoff: Duration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_restarts: 3,
            backoff: Duration::ZERO,
        }
    }
}

/// A completed elastic run: the final (post-shrink) report plus the
/// full recovery history.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Rank 0's report of the run that completed (its `recoveries`
    /// field carries the same history as [`TrainOutcome::recoveries`]).
    pub report: TrainReport,
    /// One entry per recovery round, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// World size the run started with.
    pub initial_world: usize,
    /// World size the run finished with.
    pub final_world: usize,
    /// The bit-exact terminal snapshot of the completed run (rank 0's),
    /// usable to compare runs or to seed a follow-on run.
    pub final_checkpoint: Option<Checkpoint>,
}

/// Runs `cfg` to completion across failures, shrinking to survivors
/// and restoring from the last consistent checkpoint after each one.
///
/// Enable `cfg.checkpoint` to bound the work lost per failure; with
/// checkpointing off, every recovery is a fresh restart at the smaller
/// world. Non-recoverable errors — [`TrainError::DataTooSmall`],
/// [`TrainError::InvalidFaultPlan`], [`TrainError::InvalidCheckpoint`]
/// — are returned immediately; so is the underlying failure once
/// `policy.max_restarts` is exhausted or no survivor remains.
pub fn train_elastic(
    cfg: &TrainConfig,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
) -> Result<TrainOutcome, TrainError> {
    train_elastic_with_memory(cfg, UNLIMITED, plan, policy)
}

/// [`train_elastic`] with each simulated GPU capped at `gpu_mem_bytes`
/// (the plan's per-rank limits still override) — lets tests drive
/// recovery from asymmetric OOM as well as injected kills.
pub fn train_elastic_with_memory(
    cfg: &TrainConfig,
    gpu_mem_bytes: u64,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
) -> Result<TrainOutcome, TrainError> {
    run_elastic(cfg, gpu_mem_bytes, plan, policy, None)
}

/// [`train_elastic`] over a **durable** checkpoint backend (typically a
/// [`crate::CheckpointDir`]): every recovery round shares the same
/// backend, so restores read what earlier rounds — or an earlier
/// *process* — persisted, and the terminal snapshot survives on disk
/// until taken. Damaged copies found by the recovery scan surface as
/// [`HealthEvent::CheckpointCorrupt`] findings on the final report; the
/// scan itself skips past them to the best intact consistent step.
pub fn train_elastic_durable(
    cfg: &TrainConfig,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    backend: Arc<dyn CheckpointBackend>,
) -> Result<TrainOutcome, TrainError> {
    run_elastic(cfg, UNLIMITED, plan, policy, Some(backend))
}

fn run_elastic(
    cfg: &TrainConfig,
    gpu_mem_bytes: u64,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    backend: Option<Arc<dyn CheckpointBackend>>,
) -> Result<TrainOutcome, TrainError> {
    let initial_world = cfg.gpus;
    let mut cfg = cfg.clone();
    let mut plan = plan.clone();
    let mut resume: Option<Arc<Checkpoint>> = None;
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut health: Vec<HealthEvent> = Vec::new();

    loop {
        // Memory-backed rounds each get a fresh store (restore state
        // travels via `resume`); a durable backend is shared across
        // rounds so disk contents accumulate and survive the loop.
        let store = match &backend {
            Some(b) => Arc::new(CheckpointStore::with_backend(cfg.gpus, Arc::clone(b))),
            None => Arc::new(CheckpointStore::new(cfg.gpus, cfg.checkpoint.keep_last)),
        };
        let results = train_checkpointed(
            &cfg,
            gpu_mem_bytes,
            &plan,
            Arc::clone(&store),
            resume.take(),
        );
        let failure_observed = Instant::now();

        // Classify: a rank *failed* when its own error names itself
        // (injected kill, own OOM). `PeerFailure` echoes naming someone
        // else are survivors; anything else is non-recoverable.
        let mut failed: Vec<usize> = Vec::new();
        let mut first_failure: Option<TrainError> = None;
        for (r, res) in results.iter().enumerate() {
            let own = match res {
                Ok(_) => false,
                Err(TrainError::PeerFailure { rank, .. }) => *rank == r,
                Err(TrainError::Oom(e)) => e.device == r,
                Err(e) => return Err(e.clone()),
            };
            if own {
                if first_failure.is_none() {
                    first_failure = Some(res.clone().unwrap_err());
                }
                failed.push(r);
            }
        }

        if failed.is_empty() {
            // If rank 0 still erred here, no rank owned the failure
            // (e.g. a poison whose source raced away): not recoverable.
            let mut report = results.into_iter().next().unwrap()?;
            let final_world = cfg.gpus;
            annotate_trace(&mut report, &recoveries);
            report.recoveries = recoveries.clone();
            report.health.extend(health);
            return Ok(TrainOutcome {
                report,
                recoveries,
                initial_world,
                final_world,
                final_checkpoint: store.take_final(),
            });
        }

        let restart = recoveries.len() + 1;
        if restart > policy.max_restarts {
            return Err(first_failure.unwrap());
        }
        let survivors: Vec<usize> = (0..cfg.gpus).filter(|r| !failed.contains(r)).collect();
        if survivors.is_empty() {
            return Err(first_failure.unwrap());
        }

        let scan = store.scan(&survivors);
        for c in &scan.corrupt {
            health.push(HealthEvent::CheckpointCorrupt {
                rank: c.rank,
                step: c.step,
            });
        }
        health.push(HealthEvent::Recovery {
            round: restart,
            survivors: survivors.len(),
        });
        let restored = scan.checkpoint.map(Arc::new);
        let restored_step = restored.as_ref().map(|c| c.step);
        let steps_lost = store
            .max_progress(&survivors)
            .saturating_sub(restored_step.unwrap_or(0));
        // Backoff is simulated, never slept: double the base per
        // consecutive restart and charge the result to the event.
        let backoff_ps = simulated_backoff_ps(policy.backoff, restart);
        recoveries.push(RecoveryEvent {
            restart,
            failed_ranks: failed,
            world_before: cfg.gpus,
            world_after: survivors.len(),
            restored_step,
            steps_lost,
            stall_ns: u64::try_from(failure_observed.elapsed().as_nanos()).unwrap_or(u64::MAX),
            backoff_ps,
            attempts: restart as u32,
            restored_from: restored.as_deref().cloned(),
        });
        plan = plan.remap_for_survivors(&survivors);
        cfg.gpus = survivors.len();
        resume = restored;
    }
}

/// The pause charged to restart `n` (1-based): `base · 2^(n−1)`
/// converted to picoseconds, saturating.
fn simulated_backoff_ps(base: Duration, restart: usize) -> u64 {
    let base_ps = base.as_nanos().saturating_mul(1000);
    let factor = 1u128 << (restart - 1).min(63) as u32;
    u64::try_from(base_ps.saturating_mul(factor)).unwrap_or(u64::MAX)
}

/// Appends one `Recovery` marker span per recovery round to the final
/// report's trace (when tracing ran). Marker semantics: `step` is the
/// restored global step, the span length is the measured wall-clock
/// stall; the timestamps live on the driver's clock, not the resumed
/// run's, so the marker identifies *which* recovery, not *when* within
/// the trace timeline.
fn annotate_trace(report: &mut TrainReport, recoveries: &[RecoveryEvent]) {
    let Some(trace) = report.trace.as_mut() else {
        return;
    };
    for ev in recoveries {
        trace.events.push(TraceEvent {
            rank: 0,
            step: ev.restored_step.unwrap_or(0),
            span: SpanKind::Recovery,
            t_start_ns: 0,
            t_end_ns: ev.stall_ns,
            bytes: 0,
        });
    }
}
