//! Embedding-gradient exchange strategies — the heart of the paper.
//!
//! Both strategies take one GPU's token-aligned [`SparseGrad`], move it
//! across the communicator, and apply the *synchronised* update to the
//! local embedding table, so that all replicas hold identical tables
//! afterwards (§II-B's invariant).
//!
//! * [`baseline_exchange`]: the state-of-the-art scheme the paper starts
//!   from — ALLGATHER all `K×D` dense gradient matrices plus their index
//!   vectors, then apply every row locally. Per-GPU memory and wire cost
//!   `Θ(G·K·D)`.
//! * [`unique_exchange`]: §III-A's seven steps — local duplicate
//!   reduction, index-only ALLGATHER, global unique-index set, local
//!   scatter into canonical rows, ALLREDUCE of the `Ug×D` matrix, apply.
//!   Per-GPU cost `Θ(G·K + Ug·D)`.
//!
//! Either path can run with FP16 wire compression (§III-C).
//!
//! ## The hot path is allocation-free
//!
//! Both exchanges thread an [`ExchangeScratch`] pool through every step:
//! gathered indices, locally-reduced rows, the canonical unique set and
//! the `Ug×D` scatter matrix all live in reused buffers, so steady-state
//! steps perform **zero heap allocation**. The global unique set is
//! derived in `O(G·K)` with an epoch-stamped vocabulary slot map instead
//! of the former `sort_unstable + dedup + binary_search` over all `G·K`
//! gathered indices: the gathered index vector is identical on every
//! rank (rank-order ALLGATHER), so *first-occurrence order within it* is
//! already a canonical total order every rank derives independently.
//! Per-phase wall-time (gather / unique / scatter / allreduce / apply)
//! is recorded into [`PhaseTimings`] via [`simgpu::PhaseTimer`].
//!
//! Every exchange returns `Result<ExchangeStats, CommError>`: if any
//! peer rank poisons the group mid-step (OOM, injected fault, panic),
//! the collectives inside propagate the abort instead of deadlocking,
//! and the caller is expected to bubble the error up to its own
//! [`simgpu::Rank::abort`]-guarded step loop.

use nn::{Embedding, SparseGrad};
use simgpu::{CommError, PhaseTimer, Rank, SpanKind, TraceRecorder};

/// Timestamp helper for the optional recorder: zero-cost when `None`.
#[inline]
fn trace_now(trace: &Option<&mut TraceRecorder>) -> u64 {
    match trace {
        Some(t) => t.now_ns(),
        None => 0,
    }
}

/// Records `span` from `start_ns` to now, carrying `bytes`. No-op (a
/// single branch) when tracing is off.
#[inline]
fn trace_rec(trace: &mut Option<&mut TraceRecorder>, span: SpanKind, start_ns: u64, bytes: u64) {
    if let Some(t) = trace.as_mut() {
        t.record_since(span, start_ns, bytes);
    }
}

/// How to run an exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeConfig {
    /// Use the uniqueness technique (§III-A) instead of dense ALLGATHER.
    pub unique: bool,
    /// FP16 wire compression with this scaling factor (§III-C), if any.
    pub compression: Option<f32>,
    /// GPUs per node; `> 0` routes the unique path's `Ug×D` ALLREDUCE
    /// through the two-tier hierarchical schedule when the group spans
    /// multiple nodes — compressed payloads included (the two tiers
    /// carry the f16 wire format, bit-identical to the flat f16 ring).
    /// `0` keeps everything on the flat single-tier ring. Results are
    /// bit-identical either way; only the wire schedule and per-tier
    /// byte accounting differ.
    pub gpus_per_node: usize,
    /// Gradient-bucket size in wire bytes for the unique path's `Ug×D`
    /// ALLREDUCE: `> 0` slices the payload into consecutive element
    /// ranges of at most this many wire bytes, each reduced by its own
    /// collective call — the bucketed schedule the trainer overlaps
    /// with compute. `0` keeps the legacy whole-payload collective.
    /// Reduction is elementwise with a canonical leader order, so
    /// bucketing moves no bits; the analytic `wire_bytes` switch to the
    /// sum of per-bucket ring shares in lock-step with the recorder.
    pub bucket_bytes: u64,
    /// Lossless wire codec for the unique path's collectives (see
    /// [`simgpu::codec`]): the index codec frames step 3's ALLGATHER,
    /// the gradient codec frames step 6's ALLREDUCE buckets whenever
    /// `compression` is `None` (an FP16 wire is already its own format
    /// and keeps its own accounting). The baseline dense exchange
    /// ignores the codec — it is the paper's uncompressed yardstick.
    /// Results are bit-identical to `Identity`; only wire bytes move.
    pub codec: simgpu::WireCodecId,
}

impl ExchangeConfig {
    /// The paper's baseline.
    pub fn baseline() -> Self {
        Self {
            unique: false,
            compression: None,
            gpus_per_node: 0,
            bucket_bytes: 0,
            codec: simgpu::WireCodecId::Identity,
        }
    }

    /// Uniqueness only.
    pub fn unique() -> Self {
        Self {
            unique: true,
            ..Self::baseline()
        }
    }

    /// Uniqueness + FP16 compression at the paper's default scale.
    pub fn unique_compressed() -> Self {
        Self {
            unique: true,
            compression: Some(512.0),
            ..Self::baseline()
        }
    }

    /// True when this config sends the `Ug×D` ALLREDUCE through the
    /// two-tier schedule for a group of `world` ranks. Compression does
    /// *not* disable the two-tier schedule: the hierarchical phases
    /// carry f16 payloads (see
    /// [`Rank::all_reduce_sum_f16_hierarchical`]) — a prior revision
    /// silently fell back to the flat ring here, so a user combining
    /// `hierarchical` with the paper's compression method lost the
    /// topology they asked for without any warning.
    pub fn hierarchical_for(&self, world: usize) -> bool {
        self.gpus_per_node > 0 && world > self.gpus_per_node
    }
}

/// Wall-clock nanoseconds per exchange phase, measured on this rank.
///
/// Integer nanos (not floats) so the containing [`ExchangeStats`] stays
/// `Eq`. On the thread-per-rank simulator these include barrier waits,
/// so they rank the *implementation* (allocation, sorting, scatter
/// cost), not the modelled fabric — the α–β cost model covers that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseTimings {
    /// Index (and, for the baseline, row) ALLGATHER time.
    pub gather_ns: u64,
    /// Local duplicate reduction + global unique-set derivation.
    pub unique_ns: u64,
    /// Scatter of reduced rows into the canonical `Ug×D` layout.
    pub scatter_ns: u64,
    /// Ring ALLREDUCE of the aligned matrices.
    pub allreduce_ns: u64,
    /// Application of the synchronised update to the local table.
    pub apply_ns: u64,
}

impl PhaseTimings {
    /// Sum over all phases.
    pub fn total_ns(&self) -> u64 {
        self.gather_ns + self.unique_ns + self.scatter_ns + self.allreduce_ns + self.apply_ns
    }

    /// Elementwise accumulation (for per-run totals).
    pub fn accumulate(&mut self, other: &PhaseTimings) {
        self.gather_ns += other.gather_ns;
        self.unique_ns += other.unique_ns;
        self.scatter_ns += other.scatter_ns;
        self.allreduce_ns += other.allreduce_ns;
        self.apply_ns += other.apply_ns;
    }
}

/// What one exchange cost this rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExchangeStats {
    /// Gradient rows this rank contributed (`K`, with duplicates).
    pub local_tokens: usize,
    /// Locally-unique words (`Ui`) — only set by the unique path.
    pub unique_local: usize,
    /// Globally-unique words this step (`Ug`) — only set by the unique
    /// path.
    pub unique_global: usize,
    /// Bytes this rank put on the wire.
    pub wire_bytes: u64,
    /// Peak transient buffer bytes this rank needed to hold gathered /
    /// scattered gradient state (the quantity that runs GPUs out of
    /// memory in Tables III/IV).
    pub peak_buffer_bytes: u64,
    /// Raw (pre-codec) bytes of this rank's step-6 ALLREDUCE payloads:
    /// Σ over buckets of bucket elements × wire element size. Equals
    /// `reduce_enc_bytes` whenever no gradient codec is active, so the
    /// step scheduler's enc/raw ratio collapses to exactly 1.
    pub reduce_raw_bytes: u64,
    /// The same payloads under the active gradient codec: Σ over
    /// buckets of the codec's encoded length on the *reduced* bucket
    /// (rank-invariant — the reduced matrix is identical everywhere).
    /// Never exceeds `reduce_raw_bytes` (codecs never expand).
    pub reduce_enc_bytes: u64,
    /// Σ over all ranks of the encoded index-publish length for step
    /// 3's ALLGATHER (raw equivalent: `local_tokens · 4 · G`). Computed
    /// from the gathered vector, so every rank prices the same number.
    pub index_enc_bytes: u64,
    /// Measured wall-time per phase on this rank.
    pub timings: PhaseTimings,
}

/// Reusable buffers for the exchange hot path.
///
/// One scratch per (rank, table) pair, threaded through every step, so
/// the steady state allocates nothing: `Vec::clear` keeps capacity, and
/// the vocabulary-sized slot map is epoch-stamped — bumping `epoch`
/// invalidates every entry in O(1) instead of clearing the arrays.
#[derive(Debug, Default)]
pub struct ExchangeScratch {
    /// Gathered `G·K` index vector (identical on all ranks).
    all_indices: Vec<u32>,
    /// Gathered `G·K×D` rows (baseline path only).
    all_rows: Vec<f32>,
    /// Locally-unique indices `Ĵ`, first-occurrence order.
    reduced_indices: Vec<u32>,
    /// Locally-reduced rows `∆̂`, aligned with `reduced_indices`.
    reduced_rows: Vec<f32>,
    /// Canonical globally-unique index set `Î`.
    unique: Vec<u32>,
    /// Canonical `Ug×D` scatter/ALLREDUCE matrix `M`.
    m: Vec<f32>,
    /// `word → slot` for the epoch that stamped it (vocab-sized).
    slot_of: Vec<u32>,
    /// Epoch that last wrote `slot_of[word]` (vocab-sized).
    epoch_of: Vec<u64>,
    /// Current epoch; bumped once per slot-map use.
    epoch: u64,
}

impl ExchangeScratch {
    /// An empty pool; buffers grow to steady-state size on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the slot map to cover `vocab` words (no-op once sized).
    fn ensure_vocab(&mut self, vocab: usize) {
        if self.slot_of.len() < vocab {
            self.slot_of.resize(vocab, 0);
            self.epoch_of.resize(vocab, 0);
        }
    }

    /// Steps 1–2 of §III-A in O(K): deduplicate `grad` into
    /// `reduced_indices` / `reduced_rows` (first-occurrence order,
    /// duplicate rows summed) using the epoch-stamped slot map.
    fn local_reduce(&mut self, grad: &SparseGrad, d: usize) {
        self.epoch += 1;
        let epoch = self.epoch;
        self.reduced_indices.clear();
        self.reduced_rows.clear();
        for (i, &idx) in grad.indices.iter().enumerate() {
            let w = idx as usize;
            let row = grad.rows.row(i);
            if self.epoch_of[w] == epoch {
                let slot = self.slot_of[w] as usize;
                let dst = &mut self.reduced_rows[slot * d..(slot + 1) * d];
                for (a, &b) in dst.iter_mut().zip(row) {
                    *a += b;
                }
            } else {
                self.epoch_of[w] = epoch;
                self.slot_of[w] = self.reduced_indices.len() as u32;
                self.reduced_indices.push(idx);
                self.reduced_rows.extend_from_slice(row);
            }
        }
    }

    /// Step 4 of §III-A in O(G·K): derive the canonical unique set from
    /// the gathered index vector. `all_indices` is the same on every
    /// rank, so first-occurrence order within it *is* a total order all
    /// ranks agree on — no sort needed. Leaves `slot_of[w]` valid for
    /// every `w` in the set (current epoch).
    fn global_unique(&mut self) {
        self.epoch += 1;
        let epoch = self.epoch;
        self.unique.clear();
        for i in 0..self.all_indices.len() {
            let w = self.all_indices[i] as usize;
            if self.epoch_of[w] != epoch {
                self.epoch_of[w] = epoch;
                self.slot_of[w] = self.unique.len() as u32;
                self.unique.push(self.all_indices[i]);
            }
        }
    }
}

/// Dispatches on `cfg` with a throwaway scratch pool. Convenience for
/// one-shot callers and tests; hot loops should hold an
/// [`ExchangeScratch`] and call [`exchange_and_apply_with`].
pub fn exchange_and_apply(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    cfg: &ExchangeConfig,
) -> Result<ExchangeStats, CommError> {
    let mut scratch = ExchangeScratch::new();
    exchange_and_apply_with(rank, grad, table, lr, cfg, &mut scratch)
}

/// Dispatches on `cfg` to one of the two exchange implementations,
/// reusing `scratch`'s buffers (zero steady-state allocation).
pub fn exchange_and_apply_with(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    cfg: &ExchangeConfig,
    scratch: &mut ExchangeScratch,
) -> Result<ExchangeStats, CommError> {
    exchange_and_apply_traced(rank, grad, table, lr, cfg, scratch, None)
}

/// [`exchange_and_apply_with`] recording a [`simgpu::trace::TraceEvent`]
/// per phase into `trace` (span kinds Gather / Unique / Scatter /
/// AllReduce / Apply, with the phase's exact wire bytes). `None`
/// disables recording at the cost of one branch per phase — the
/// `exchange_steady/trace_overhead` bench guards that this stays within
/// noise of the untraced path.
pub fn exchange_and_apply_traced(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    cfg: &ExchangeConfig,
    scratch: &mut ExchangeScratch,
    trace: Option<&mut TraceRecorder>,
) -> Result<ExchangeStats, CommError> {
    if cfg.unique {
        unique_exchange_cfg_traced(rank, grad, table, lr, cfg, scratch, trace)
    } else {
        baseline_exchange_traced(rank, grad, table, lr, cfg.compression, scratch, trace)
    }
}

/// [`baseline_exchange_with`] with a throwaway scratch pool.
pub fn baseline_exchange(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    compression: Option<f32>,
) -> Result<ExchangeStats, CommError> {
    let mut scratch = ExchangeScratch::new();
    baseline_exchange_with(rank, grad, table, lr, compression, &mut scratch)
}

/// [`baseline_exchange_with`] with per-phase trace recording (see
/// [`exchange_and_apply_traced`]).
#[allow(clippy::too_many_arguments)]
pub fn baseline_exchange_traced(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    compression: Option<f32>,
    scratch: &mut ExchangeScratch,
    mut trace: Option<&mut TraceRecorder>,
) -> Result<ExchangeStats, CommError> {
    let g = rank.world();
    let d = table.dim();
    let n_local = grad.indices.len();
    let elem_bytes: u64 = if compression.is_some() { 2 } else { 4 };
    let mut timer = PhaseTimer::start();
    let mut timings = PhaseTimings::default();

    let t0 = trace_now(&trace);
    rank.all_gather_u32_into(&grad.indices, &mut scratch.all_indices)?;
    match compression {
        Some(scale) => {
            rank.all_gather_f16_into(grad.rows.as_slice(), scale, &mut scratch.all_rows)?
        }
        None => rank.all_gather_f32_into(grad.rows.as_slice(), &mut scratch.all_rows)?,
    }
    debug_assert_eq!(scratch.all_rows.len(), scratch.all_indices.len() * d);
    timings.gather_ns = timer.lap_ns();
    // This rank's gather sends: K u32 indices + K×D rows to G−1 peers —
    // exactly what the traffic recorder charges it for this phase.
    let wire_bytes = (n_local as u64) * (d as u64) * elem_bytes * (g as u64 - 1)
        + (n_local as u64) * 4 * (g as u64 - 1);
    trace_rec(&mut trace, SpanKind::Gather, t0, wire_bytes);

    // Apply every gathered row in (rank, token) order. Repeated indices
    // accumulate — this is the serialised scatter-add the paper
    // describes, complete with its duplicate-row hazard.
    let t0 = trace_now(&trace);
    for (i, &idx) in scratch.all_indices.iter().enumerate() {
        let row = &scratch.all_rows[i * d..(i + 1) * d];
        let dst = table.weights_mut().row_mut(idx as usize);
        for (w, &v) in dst.iter_mut().zip(row) {
            *w -= lr * v;
        }
    }
    timings.apply_ns = timer.lap_ns();
    trace_rec(&mut trace, SpanKind::Apply, t0, 0);

    // The gathered buffers live simultaneously: G·K indices + G·K·D rows.
    let total_rows = scratch.all_indices.len() as u64;
    let peak_buffer_bytes = total_rows * 4 + total_rows * (d as u64) * 4;

    Ok(ExchangeStats {
        local_tokens: n_local,
        unique_local: 0,
        unique_global: 0,
        wire_bytes,
        peak_buffer_bytes,
        reduce_raw_bytes: 0,
        reduce_enc_bytes: 0,
        index_enc_bytes: total_rows * 4,
        timings,
    })
}

/// The baseline dense exchange (§II-B): ALLGATHER of indices and full
/// `K×D` gradients from every GPU, then sequential local application in
/// rank order (deterministic, so all replicas stay identical).
pub fn baseline_exchange_with(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    compression: Option<f32>,
    scratch: &mut ExchangeScratch,
) -> Result<ExchangeStats, CommError> {
    baseline_exchange_traced(rank, grad, table, lr, compression, scratch, None)
}

/// [`unique_exchange_with`] with a throwaway scratch pool.
pub fn unique_exchange(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    compression: Option<f32>,
) -> Result<ExchangeStats, CommError> {
    let mut scratch = ExchangeScratch::new();
    unique_exchange_with(rank, grad, table, lr, compression, &mut scratch)
}

/// The uniqueness exchange — §III-A, steps 1–7 — on pooled buffers.
pub fn unique_exchange_with(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    compression: Option<f32>,
    scratch: &mut ExchangeScratch,
) -> Result<ExchangeStats, CommError> {
    unique_exchange_traced(rank, grad, table, lr, compression, scratch, None)
}

/// [`unique_exchange_with`] with per-phase trace recording (see
/// [`exchange_and_apply_traced`]). Emits two `Unique` spans per step:
/// the local reduction (steps 1–2) and the global set derivation
/// (step 4).
#[allow(clippy::too_many_arguments)]
pub fn unique_exchange_traced(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    compression: Option<f32>,
    scratch: &mut ExchangeScratch,
    trace: Option<&mut TraceRecorder>,
) -> Result<ExchangeStats, CommError> {
    let cfg = ExchangeConfig {
        unique: true,
        compression,
        ..ExchangeConfig::baseline()
    };
    unique_exchange_cfg_traced(rank, grad, table, lr, &cfg, scratch, trace)
}

/// The uniqueness exchange with the full [`ExchangeConfig`] (topology
/// included) and optional trace recording. `cfg.gpus_per_node > 0`
/// sends step 6's `Ug×D` ALLREDUCE through
/// [`Rank::all_reduce_sum_hierarchical`] when the group spans nodes;
/// the analytic `wire_bytes` switch to the hierarchical schedule's
/// total in lock-step, so they keep matching the traffic recorder
/// exactly.
#[allow(clippy::too_many_arguments)]
pub fn unique_exchange_cfg_traced(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    cfg: &ExchangeConfig,
    scratch: &mut ExchangeScratch,
    mut trace: Option<&mut TraceRecorder>,
) -> Result<ExchangeStats, CommError> {
    let g = rank.world();
    let d = table.dim();
    let n_local = grad.indices.len();
    let compression = cfg.compression;
    let elem_bytes: u64 = if compression.is_some() { 2 } else { 4 };
    scratch.ensure_vocab(table.vocab());
    let mut timer = PhaseTimer::start();
    let mut timings = PhaseTimings::default();

    // Steps 1–2: local unique indices Ĵ and locally-reduced gradients ∆̂
    // (O(K) epoch-map pass — no hashing, no allocation).
    let t0 = trace_now(&trace);
    scratch.local_reduce(grad, d);
    let u_local = scratch.reduced_indices.len();
    timings.unique_ns = timer.lap_ns();
    trace_rec(&mut trace, SpanKind::Unique, t0, 0);

    // Step 3: ALLGATHER the *index* vectors J (Θ(G·K), not Θ(G·K·D)).
    // With an index codec, each rank publishes its delta+varint frame
    // and peers decode all G of them — the gathered vector is byte-for-
    // byte what the legacy path produces, only the wire charge shrinks.
    let index_codec = cfg.codec.index_codec();
    let t0 = trace_now(&trace);
    let index_pub_bytes = match index_codec {
        Some(c) => {
            rank.all_gather_u32_codec_into(&grad.indices, c, &mut scratch.all_indices)?;
            c.encoded_len_u32(&grad.indices)
        }
        None => {
            rank.all_gather_u32_into(&grad.indices, &mut scratch.all_indices)?;
            (n_local as u64) * 4
        }
    };
    timings.gather_ns = timer.lap_ns();
    trace_rec(
        &mut trace,
        SpanKind::Gather,
        t0,
        index_pub_bytes * (g as u64 - 1),
    );
    // Σ over ranks of encoded publish lengths, sliced out of the
    // gathered vector so every rank derives the identical total (the
    // step scheduler needs all ranks to price one synchronized time).
    // Ragged contributions can't be re-sliced; fall back to own × G.
    let index_enc_bytes = match index_codec {
        Some(c) if scratch.all_indices.len() == n_local * g && n_local > 0 => (0..g)
            .map(|q| c.encoded_len_u32(&scratch.all_indices[q * n_local..(q + 1) * n_local]))
            .sum(),
        Some(_) => index_pub_bytes * g as u64,
        None => (scratch.all_indices.len() as u64) * 4,
    };

    // Step 4: filter to the globally-unique, canonically-ordered index
    // set Î in O(G·K). The gathered vector is identical on every rank,
    // so first-occurrence order is a total order all ranks agree on —
    // the slot assignment needs no sort and no further communication.
    let t0 = trace_now(&trace);
    scratch.global_unique();
    let u_global = scratch.unique.len();
    timings.unique_ns += timer.lap_ns();
    trace_rec(&mut trace, SpanKind::Unique, t0, 0);

    // Step 5: scatter ∆̂ into the canonical Ug×D layout M (zeros filled).
    // `slot_of` still holds this epoch's global slots, giving O(1)
    // lookup per locally-unique row.
    let t0 = trace_now(&trace);
    scratch.m.clear();
    scratch.m.resize(u_global * d, 0.0);
    for (i, &idx) in scratch.reduced_indices.iter().enumerate() {
        let slot = scratch.slot_of[idx as usize] as usize;
        scratch.m[slot * d..(slot + 1) * d]
            .copy_from_slice(&scratch.reduced_rows[i * d..(i + 1) * d]);
    }
    timings.scatter_ns = timer.lap_ns();
    trace_rec(&mut trace, SpanKind::Scatter, t0, 0);

    // Step 6: ALLREDUCE the aligned matrices, one collective call per
    // gradient bucket (`cfg.bucket_bytes`; a single whole-payload call
    // when 0). Reduction is elementwise under a canonical leader order,
    // so the slicing moves no bits. Ring bytes are the sum of this
    // rank's exact per-bucket shares from the chunk schedule (matches
    // the traffic recorder even when a bucket does not divide by G); on
    // the two-tier path each bucket contributes the hierarchical
    // schedule's exact total instead.
    let hierarchical = cfg.hierarchical_for(g);
    // The gradient codec steps aside under an FP16 wire: that payload
    // already has its own format and byte accounting.
    let grad_codec = if compression.is_none() {
        cfg.codec.grad_codec()
    } else {
        None
    };
    let n_m = u_global * d;
    let per = crate::schedule::bucket_elems(n_m, elem_bytes, cfg.bucket_bytes);
    let t0 = trace_now(&trace);
    let mut ring_bytes = 0u64;
    let mut reduce_raw_bytes = 0u64;
    let mut reduce_enc_bytes = 0u64;
    let mut start = 0usize;
    loop {
        let end = (start + per).min(n_m);
        let slice = &mut scratch.m[start..end];
        match (compression, grad_codec) {
            (Some(scale), _) if hierarchical => {
                rank.all_reduce_sum_f16_hierarchical(slice, scale, cfg.gpus_per_node)?
            }
            (Some(scale), _) => rank.all_reduce_sum_f16(slice, scale)?,
            (None, Some(c)) if hierarchical => {
                rank.all_reduce_sum_hierarchical_codec(slice, c, cfg.gpus_per_node)?
            }
            (None, Some(c)) => rank.all_reduce_sum_codec(slice, c)?,
            (None, None) if hierarchical => {
                rank.all_reduce_sum_hierarchical(slice, cfg.gpus_per_node)?
            }
            (None, None) => rank.all_reduce_sum(slice)?,
        }
        // Analytic bytes come *after* the collective so the codec arms
        // can price every chunk at its encoded length on the *reduced*
        // payload — the steady-state re-encode model the recorder
        // charges (each hop retransmits the already-reduced chunk).
        let reduced = &scratch.m[start..end];
        let nb = reduced.len() as u64;
        ring_bytes += match grad_codec {
            Some(c) => {
                let n = reduced.len();
                let chunk_bytes = |parts: usize, chunk: usize| {
                    c.encoded_len_f32(&reduced[simgpu::chunk_range(n, parts, chunk)])
                };
                if hierarchical {
                    simgpu::hierarchical_allreduce_send_bytes_parts(
                        g,
                        cfg.gpus_per_node,
                        rank.rank(),
                        chunk_bytes,
                    )
                    .total()
                } else {
                    simgpu::ring_allreduce_send_bytes_parts(g, rank.rank(), chunk_bytes)
                }
            }
            None if hierarchical => simgpu::hierarchical_allreduce_send_bytes(
                end - start,
                g,
                cfg.gpus_per_node,
                rank.rank(),
                elem_bytes,
            )
            .total(),
            None => simgpu::ring_allreduce_send_bytes(end - start, g, rank.rank(), elem_bytes),
        };
        reduce_raw_bytes += nb * elem_bytes;
        reduce_enc_bytes += match grad_codec {
            Some(c) => c.encoded_len_f32(reduced),
            None => nb * elem_bytes,
        };
        start = end;
        if start >= n_m {
            break;
        }
    }
    timings.allreduce_ns = timer.lap_ns();
    trace_rec(&mut trace, SpanKind::AllReduce, t0, ring_bytes);

    // Step 7: apply M̂ through Î. Indices are unique ⇒ no duplicate-row
    // serialisation.
    let t0 = trace_now(&trace);
    for (slot, &idx) in scratch.unique.iter().enumerate() {
        let dst = table.weights_mut().row_mut(idx as usize);
        for (w, &v) in dst.iter_mut().zip(&scratch.m[slot * d..(slot + 1) * d]) {
            *w -= lr * v;
        }
    }
    timings.apply_ns = timer.lap_ns();
    trace_rec(&mut trace, SpanKind::Apply, t0, 0);

    // Index gather: encoded publish × (G−1) peers (raw 4K when no
    // codec); ring ALLREDUCE: exact per-rank bytes.
    let wire_bytes = index_pub_bytes * (g as u64 - 1) + ring_bytes;
    // Buffers live simultaneously at the ALLREDUCE: G·K gathered
    // indices, the locally-reduced Ĵ (Ui indices) + ∆̂ (Ui×D rows) that
    // step 5 scatters from, and the Ug×D matrix M itself.
    let peak_buffer_bytes = (scratch.all_indices.len() as u64) * 4
        + (u_local as u64) * 4
        + (u_local as u64) * (d as u64) * 4
        + (u_global as u64) * (d as u64) * 4;

    Ok(ExchangeStats {
        local_tokens: n_local,
        unique_local: u_local,
        unique_global: u_global,
        wire_bytes,
        peak_buffer_bytes,
        reduce_raw_bytes,
        reduce_enc_bytes,
        index_enc_bytes,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use simgpu::CommGroup;
    use tensor::Matrix;

    const D: usize = 4;
    const VOCAB: usize = 50;

    fn make_table(seed: u64) -> Embedding {
        let mut rng = StdRng::seed_from_u64(seed);
        Embedding::new(&mut rng, VOCAB, D)
    }

    fn make_grad(seed: u64, n: usize) -> SparseGrad {
        let mut rng = StdRng::seed_from_u64(seed);
        let indices: Vec<u32> = (0..n).map(|_| rng.gen_range(0..VOCAB as u32)).collect();
        let rows = Matrix::from_vec(
            n,
            D,
            (0..n * D).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        SparseGrad { indices, rows }
    }

    /// Runs `f` on every rank; returns per-rank results.
    fn run_group<T: Send>(world: usize, f: impl Fn(Rank) -> T + Sync) -> Vec<T> {
        let ranks = CommGroup::create(world);
        let mut out: Vec<Option<T>> = (0..world).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = ranks
                .into_iter()
                .map(|rank| {
                    let f = &f;
                    s.spawn(move || f(rank))
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                out[i] = Some(h.join().expect("rank panicked"));
            }
        });
        out.into_iter().map(Option::unwrap).collect()
    }

    fn exchange_result(world: usize, cfg: ExchangeConfig) -> Vec<(Matrix, ExchangeStats)> {
        run_group(world, |rank| {
            let mut table = make_table(7);
            let grad = make_grad(100 + rank.rank() as u64, 12);
            let stats = exchange_and_apply(&rank, &grad, &mut table, 0.1, &cfg).unwrap();
            (table.weights().clone(), stats)
        })
    }

    #[test]
    fn baseline_keeps_replicas_identical() {
        for world in [1usize, 2, 4] {
            let res = exchange_result(world, ExchangeConfig::baseline());
            for r in 1..world {
                assert_eq!(
                    res[0].0.as_slice(),
                    res[r].0.as_slice(),
                    "world {world} rank {r} diverged"
                );
            }
        }
    }

    #[test]
    fn unique_keeps_replicas_identical() {
        for world in [1usize, 2, 4, 6] {
            let res = exchange_result(world, ExchangeConfig::unique());
            for r in 1..world {
                assert_eq!(res[0].0.as_slice(), res[r].0.as_slice());
            }
        }
    }

    #[test]
    fn unique_matches_baseline_result() {
        // THE paper's correctness claim: uniqueness "only changes the
        // flow of computation … and hence produces the same accuracy as
        // the baseline" — the updated tables must agree (up to f32
        // summation order).
        for world in [1usize, 2, 4] {
            let base = exchange_result(world, ExchangeConfig::baseline());
            let uniq = exchange_result(world, ExchangeConfig::unique());
            let diff = base[0].0.max_abs_diff(&uniq[0].0);
            assert!(diff < 1e-5, "world {world}: diff {diff}");
        }
    }

    #[test]
    fn compressed_unique_close_to_exact() {
        let world = 4;
        let exact = exchange_result(world, ExchangeConfig::unique());
        let comp = exchange_result(
            world,
            ExchangeConfig {
                unique: true,
                compression: Some(512.0),
                ..ExchangeConfig::baseline()
            },
        );
        let diff = exact[0].0.max_abs_diff(&comp[0].0);
        assert!(diff > 0.0, "compression should not be bit-exact");
        assert!(diff < 5e-3, "diff {diff}");
        // Compressed replicas still identical to each other.
        for r in 1..world {
            assert_eq!(comp[0].0.as_slice(), comp[r].0.as_slice());
        }
    }

    #[test]
    fn compressed_baseline_close_to_exact() {
        let world = 3;
        let exact = exchange_result(world, ExchangeConfig::baseline());
        let comp = exchange_result(
            world,
            ExchangeConfig {
                unique: false,
                compression: Some(512.0),
                ..ExchangeConfig::baseline()
            },
        );
        let diff = exact[0].0.max_abs_diff(&comp[0].0);
        assert!(diff < 5e-3, "diff {diff}");
    }

    #[test]
    fn unique_stats_report_compression_of_duplicates() {
        // All ranks submit the same few hot words: Ug ≪ G·K.
        let world = 4;
        let res = run_group(world, |rank| {
            let mut table = make_table(1);
            let grad = SparseGrad {
                indices: vec![3, 3, 7, 3, 7, 3],
                rows: Matrix::zeros(6, D),
            };
            exchange_and_apply(&rank, &grad, &mut table, 0.1, &ExchangeConfig::unique()).unwrap()
        });
        for s in &res {
            assert_eq!(s.local_tokens, 6);
            assert_eq!(s.unique_local, 2);
            assert_eq!(s.unique_global, 2); // same hot words everywhere
        }
    }

    #[test]
    fn unique_moves_fewer_bytes_when_duplicates_dominate() {
        let world = 4;
        // 64 tokens over only 5 distinct hot words per rank.
        let cfg_b = ExchangeConfig::baseline();
        let cfg_u = ExchangeConfig::unique();
        let mk = |rank: &Rank, cfg: &ExchangeConfig| {
            let mut table = make_table(2);
            let mut rng = StdRng::seed_from_u64(rank.rank() as u64);
            let indices: Vec<u32> = (0..64).map(|_| rng.gen_range(0..5)).collect();
            let n = indices.len();
            let grad = SparseGrad {
                indices,
                rows: Matrix::zeros(n, D),
            };
            exchange_and_apply(rank, &grad, &mut table, 0.1, cfg).unwrap()
        };
        let base = run_group(world, |rank| mk(&rank, &cfg_b));
        let uniq = run_group(world, |rank| mk(&rank, &cfg_u));
        assert!(
            uniq[0].wire_bytes * 3 < base[0].wire_bytes,
            "unique {} vs baseline {}",
            uniq[0].wire_bytes,
            base[0].wire_bytes
        );
        assert!(uniq[0].peak_buffer_bytes * 3 < base[0].peak_buffer_bytes);
    }

    #[test]
    fn baseline_buffer_grows_linearly_with_world() {
        let grab = |world: usize| {
            run_group(world, |rank| {
                let mut table = make_table(3);
                let grad = make_grad(rank.rank() as u64, 16);
                baseline_exchange(&rank, &grad, &mut table, 0.1, None).unwrap()
            })[0]
                .peak_buffer_bytes
        };
        let b2 = grab(2);
        let b4 = grab(4);
        assert_eq!(b4, b2 * 2, "baseline buffer must scale with G");
    }

    #[test]
    fn unique_buffer_saturates_with_world() {
        // With a tiny hot vocabulary, Ug saturates, so the Ug·D term
        // stops growing; only the G·K index buffer grows.
        let grab = |world: usize| {
            run_group(world, |rank| {
                let mut table = make_table(3);
                let mut rng = StdRng::seed_from_u64(rank.rank() as u64);
                let indices: Vec<u32> = (0..64).map(|_| rng.gen_range(0..5)).collect();
                let n = indices.len();
                let grad = SparseGrad {
                    indices,
                    rows: Matrix::zeros(n, D),
                };
                unique_exchange(&rank, &grad, &mut table, 0.1, None).unwrap()
            })[0]
        };
        let s2 = grab(2);
        let s8 = grab(8);
        assert_eq!(s2.unique_global, 5);
        assert_eq!(s8.unique_global, 5);
        // Buffer grows only by the index term: 6·64·4 bytes.
        assert_eq!(s8.peak_buffer_bytes - s2.peak_buffer_bytes, 6 * 64 * 4);
    }

    #[test]
    fn single_gpu_exchange_is_pure_local_update() {
        let res = exchange_result(1, ExchangeConfig::unique());
        assert_eq!(res[0].1.wire_bytes, 0);
    }

    #[test]
    fn scratch_local_reduce_matches_hashmap_reference() {
        let grad = SparseGrad {
            indices: vec![3, 1, 3, 3, 9, 1],
            rows: Matrix::from_vec(6, 2, vec![1., 1., 5., 5., 2., 2., 4., 4., 8., 8., 1., 1.]),
        };
        let reference = grad.local_reduce();
        let mut scratch = ExchangeScratch::new();
        scratch.ensure_vocab(10);
        scratch.local_reduce(&grad, 2);
        assert_eq!(scratch.reduced_indices, reference.indices);
        assert_eq!(scratch.reduced_rows, reference.rows.as_slice());
    }

    #[test]
    fn pooled_exchange_reuses_buffers_across_steps() {
        // After a warm-up step, repeated exchanges must not grow any
        // scratch buffer: capacities stay put ⇒ zero steady-state heap
        // allocation in this crate's hot path.
        for cfg in [ExchangeConfig::unique(), ExchangeConfig::baseline()] {
            run_group(4, |rank| {
                let mut table = make_table(5);
                let grad = make_grad(400 + rank.rank() as u64, 24);
                let mut scratch = ExchangeScratch::new();
                exchange_and_apply_with(&rank, &grad, &mut table, 0.1, &cfg, &mut scratch).unwrap();
                let caps = |s: &ExchangeScratch| {
                    (
                        s.all_indices.capacity(),
                        s.all_rows.capacity(),
                        s.reduced_indices.capacity(),
                        s.reduced_rows.capacity(),
                        s.unique.capacity(),
                        s.m.capacity(),
                        s.slot_of.capacity(),
                    )
                };
                let warm = caps(&scratch);
                for step in 0..5 {
                    exchange_and_apply_with(&rank, &grad, &mut table, 0.1, &cfg, &mut scratch)
                        .unwrap();
                    assert_eq!(caps(&scratch), warm, "buffer grew at step {step}");
                }
            });
        }
    }

    #[test]
    fn pooled_and_oneshot_paths_agree_exactly() {
        // Same gradients through exchange_and_apply (fresh scratch) and
        // through a long-lived pool: bit-identical tables and identical
        // non-timing stats.
        for cfg in [
            ExchangeConfig::unique(),
            ExchangeConfig::baseline(),
            ExchangeConfig::unique_compressed(),
        ] {
            let oneshot = exchange_result(4, cfg);
            let pooled = run_group(4, |rank| {
                let mut table = make_table(7);
                let mut scratch = ExchangeScratch::new();
                // Pollute the pool with an unrelated step first.
                let warm = make_grad(900 + rank.rank() as u64, 20);
                let mut warm_table = make_table(8);
                exchange_and_apply_with(&rank, &warm, &mut warm_table, 0.1, &cfg, &mut scratch)
                    .unwrap();
                let grad = make_grad(100 + rank.rank() as u64, 12);
                let stats =
                    exchange_and_apply_with(&rank, &grad, &mut table, 0.1, &cfg, &mut scratch)
                        .unwrap();
                (table.weights().clone(), stats)
            });
            for (a, b) in oneshot.iter().zip(&pooled) {
                assert_eq!(a.0.as_slice(), b.0.as_slice(), "tables diverged");
                assert_eq!(a.1.unique_global, b.1.unique_global);
                assert_eq!(a.1.wire_bytes, b.1.wire_bytes);
                assert_eq!(a.1.peak_buffer_bytes, b.1.peak_buffer_bytes);
            }
        }
    }

    #[test]
    fn hierarchical_unique_exchange_matches_flat_bit_exactly() {
        // Routing step 6 through the two-tier schedule must not move a
        // single bit of the result, and the analytic wire bytes must
        // track the schedule switch exactly (per rank, recorder-exact
        // on the ALLREDUCE share).
        for (world, gpn) in [(6usize, 2usize), (8, 3)] {
            let flat = exchange_result(world, ExchangeConfig::unique());
            let hier_cfg = ExchangeConfig {
                gpus_per_node: gpn,
                ..ExchangeConfig::unique()
            };
            let ranks = CommGroup::create_with_topology(world, gpn);
            let hier: Vec<(Matrix, ExchangeStats, simgpu::TrafficSnapshot)> =
                simgpu::run_ranks(ranks, |rank| {
                    let mut table = make_table(7);
                    let grad = make_grad(100 + rank.rank() as u64, 12);
                    let stats =
                        exchange_and_apply(&rank, &grad, &mut table, 0.1, &hier_cfg).unwrap();
                    // Safe to snapshot: every peer charged its bytes
                    // before the final rendezvous released this rank.
                    (table.weights().clone(), stats, rank.traffic())
                });
            let mut expected_allreduce = 0u64;
            for (r, ((ft, fs), (ht, hs, _))) in flat.iter().zip(&hier).enumerate() {
                assert_eq!(
                    ft.as_slice(),
                    ht.as_slice(),
                    "world {world} gpn {gpn} rank {r} diverged"
                );
                assert_eq!(fs.unique_global, hs.unique_global);
                let n = fs.unique_global * D;
                let gather = 12u64 * 4 * (world as u64 - 1);
                let tb = simgpu::hierarchical_allreduce_send_bytes(n, world, gpn, r, 4);
                assert_eq!(hs.wire_bytes, gather + tb.total());
                expected_allreduce += tb.total();
            }
            // Every hierarchical ALLREDUCE byte the stats claim is a
            // byte the group's recorder saw, in the right tier buckets.
            let snap = &hier[0].2;
            assert_eq!(
                snap.allreduce_intra_bytes + snap.allreduce_inter_bytes,
                expected_allreduce,
                "world {world} gpn {gpn}"
            );
            assert!(snap.allreduce_inter_bytes > 0, "leaders must cross nodes");
        }
    }

    #[test]
    fn bucketed_unique_exchange_matches_whole_payload_bit_exactly() {
        // Slicing the Ug×D ALLREDUCE into gradient buckets is pure
        // schedule: elementwise canonical reduction per slice ⇒ tables
        // identical to the whole-payload collective, and the analytic
        // wire bytes become the exact sum of per-bucket ring shares.
        let world = 4;
        for base_cfg in [
            ExchangeConfig::unique(),
            ExchangeConfig::unique_compressed(),
        ] {
            let whole = exchange_result(world, base_cfg);
            let bucket_bytes = 64u64; // several buckets at Ug·D ≈ tens of elems
            let bucketed = exchange_result(
                world,
                ExchangeConfig {
                    bucket_bytes,
                    ..base_cfg
                },
            );
            let elem: u64 = if base_cfg.compression.is_some() { 2 } else { 4 };
            for (r, ((wt, ws), (bt, bs))) in whole.iter().zip(&bucketed).enumerate() {
                assert_eq!(wt.as_slice(), bt.as_slice(), "rank {r} diverged");
                assert_eq!(ws.unique_global, bs.unique_global);
                let n = ws.unique_global * D;
                let gather = 12u64 * 4 * (world as u64 - 1);
                let shares: u64 = crate::schedule::bucket_ranges(n, elem, bucket_bytes)
                    .iter()
                    .map(|range| simgpu::ring_allreduce_send_bytes(range.len(), world, r, elem))
                    .sum();
                assert_eq!(bs.wire_bytes, gather + shares);
                assert!(
                    crate::schedule::bucket_ranges(n, elem, bucket_bytes).len() > 1,
                    "test must actually exercise multiple buckets"
                );
            }
        }
    }

    #[test]
    fn hierarchical_f16_exchange_matches_flat_f16_bit_exactly() {
        // Satellite of the silent-fallback fix: with FP16 compression on,
        // `hierarchical_for` used to return false and the exchange quietly
        // ran the flat ring. Now the two-tier path carries the f16 wire
        // format itself — same canonical leader reduction ⇒ bit-identical
        // tables — and the analytic per-rank bytes follow the hierarchical
        // schedule at elem_bytes = 2, recorder-exact per tier.
        for (world, gpn) in [(6usize, 2usize), (8, 3)] {
            let flat = exchange_result(world, ExchangeConfig::unique_compressed());
            let hier_cfg = ExchangeConfig {
                gpus_per_node: gpn,
                ..ExchangeConfig::unique_compressed()
            };
            let ranks = CommGroup::create_with_topology(world, gpn);
            let hier: Vec<(Matrix, ExchangeStats, simgpu::TrafficSnapshot)> =
                simgpu::run_ranks(ranks, |rank| {
                    let mut table = make_table(7);
                    let grad = make_grad(100 + rank.rank() as u64, 12);
                    let stats =
                        exchange_and_apply(&rank, &grad, &mut table, 0.1, &hier_cfg).unwrap();
                    (table.weights().clone(), stats, rank.traffic())
                });
            let mut expected = simgpu::TierBytes::default();
            for (r, ((ft, fs), (ht, hs, _))) in flat.iter().zip(&hier).enumerate() {
                assert_eq!(
                    ft.as_slice(),
                    ht.as_slice(),
                    "world {world} gpn {gpn} rank {r} diverged from flat f16"
                );
                assert_eq!(fs.unique_global, hs.unique_global);
                let n = fs.unique_global * D;
                let gather = 12u64 * 4 * (world as u64 - 1);
                let tb = simgpu::hierarchical_allreduce_send_bytes(n, world, gpn, r, 2);
                assert_eq!(hs.wire_bytes, gather + tb.total());
                expected += tb;
            }
            // Per-tier (not just total): analytic == recorded on both
            // the intra-node and the cross-node leg.
            let snap = &hier[0].2;
            assert_eq!(
                snap.allreduce_intra_bytes, expected.intra,
                "world {world} gpn {gpn} intra"
            );
            assert_eq!(
                snap.allreduce_inter_bytes, expected.inter,
                "world {world} gpn {gpn} inter"
            );
            assert!(snap.allreduce_inter_bytes > 0, "leaders must cross nodes");
        }
    }

    #[test]
    fn canonical_order_is_first_occurrence_of_gathered_vector() {
        // The unique set must be ordered by first occurrence in the
        // rank-order gathered index vector, not sorted — and all ranks
        // must agree on it (their copies of the vector are identical).
        let world = 3;
        let uniques = run_group(world, |rank| {
            let mut table = make_table(1);
            // Rank r contributes descending indices so sorted order and
            // first-occurrence order differ visibly.
            let indices: Vec<u32> = match rank.rank() {
                0 => vec![9, 2, 9, 5],
                1 => vec![2, 7, 0],
                _ => vec![5, 0, 1],
            };
            let n = indices.len();
            let grad = SparseGrad {
                indices,
                rows: Matrix::zeros(n, D),
            };
            let mut scratch = ExchangeScratch::new();
            unique_exchange_with(&rank, &grad, &mut table, 0.1, None, &mut scratch).unwrap();
            scratch.unique.clone()
        });
        let expected = vec![9u32, 2, 5, 7, 0, 1];
        for u in &uniques {
            assert_eq!(u, &expected);
        }
    }

    #[test]
    fn stats_expose_nonzero_phase_timings() {
        let res = run_group(2, |rank| {
            let mut table = {
                let mut rng = StdRng::seed_from_u64(3);
                Embedding::new(&mut rng, 2000, 32)
            };
            // Large enough that every phase takes measurable time.
            let grad = make_grad_sized(rank.rank() as u64, 512, 2000, 32);
            let mut scratch = ExchangeScratch::new();
            unique_exchange_with(&rank, &grad, &mut table, 0.1, None, &mut scratch).unwrap()
        });
        for s in &res {
            let t = s.timings;
            assert!(t.gather_ns > 0, "gather {t:?}");
            assert!(t.unique_ns > 0, "unique {t:?}");
            assert!(t.scatter_ns > 0, "scatter {t:?}");
            assert!(t.allreduce_ns > 0, "allreduce {t:?}");
            assert!(t.apply_ns > 0, "apply {t:?}");
            assert_eq!(
                t.total_ns(),
                t.gather_ns + t.unique_ns + t.scatter_ns + t.allreduce_ns + t.apply_ns
            );
        }
        // Baseline path: gather + apply only.
        let base = run_group(2, |rank| {
            let mut table = {
                let mut rng = StdRng::seed_from_u64(3);
                Embedding::new(&mut rng, 2000, 32)
            };
            let grad = make_grad_sized(rank.rank() as u64, 512, 2000, 32);
            baseline_exchange(&rank, &grad, &mut table, 0.1, None).unwrap()
        });
        for s in &base {
            assert!(s.timings.gather_ns > 0);
            assert!(s.timings.apply_ns > 0);
            assert_eq!(s.timings.unique_ns, 0);
            assert_eq!(s.timings.allreduce_ns, 0);
        }
    }

    fn make_grad_sized(seed: u64, n: usize, vocab: usize, d: usize) -> SparseGrad {
        let mut rng = StdRng::seed_from_u64(seed);
        let indices: Vec<u32> = (0..n).map(|_| rng.gen_range(0..vocab as u32)).collect();
        let rows = Matrix::from_vec(
            n,
            d,
            (0..n * d).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        SparseGrad { indices, rows }
    }

    #[test]
    fn traced_and_untraced_paths_agree_and_bytes_split_exactly() {
        // The trace parameter must not perturb results, and the per-rank
        // event bytes must partition the analytic wire_bytes exactly.
        for cfg in [
            ExchangeConfig::unique(),
            ExchangeConfig::baseline(),
            ExchangeConfig::unique_compressed(),
        ] {
            let plain = exchange_result(3, cfg);
            let traced = run_group(3, |rank| {
                let mut table = make_table(7);
                let grad = make_grad(100 + rank.rank() as u64, 12);
                let mut scratch = ExchangeScratch::new();
                let mut rec = simgpu::TraceRecorder::new(rank.rank() as u32, 64);
                let stats = exchange_and_apply_traced(
                    &rank,
                    &grad,
                    &mut table,
                    0.1,
                    &cfg,
                    &mut scratch,
                    Some(&mut rec),
                )
                .unwrap();
                (table.weights().clone(), stats, rec.finish())
            });
            for (r, ((pt, ps), (tt, ts, log))) in plain.iter().zip(&traced).enumerate() {
                assert_eq!(pt.as_slice(), tt.as_slice(), "cfg {cfg:?} rank {r}");
                // Everything but the wall-clock phase timings must match
                // bit-for-bit (timings differ between any two runs).
                let mut ts_cmp = *ts;
                ts_cmp.timings = ps.timings;
                assert_eq!(ps, &ts_cmp);
                assert_eq!(log.total_bytes(), ts.wire_bytes, "cfg {cfg:?} rank {r}");
                assert_eq!(log.dropped, 0);
                let expected_spans: &[SpanKind] = if cfg.unique {
                    &[
                        SpanKind::Unique,
                        SpanKind::Gather,
                        SpanKind::Unique,
                        SpanKind::Scatter,
                        SpanKind::AllReduce,
                        SpanKind::Apply,
                    ]
                } else {
                    &[SpanKind::Gather, SpanKind::Apply]
                };
                let spans: Vec<SpanKind> = log.events.iter().map(|e| e.span).collect();
                assert_eq!(spans, expected_spans, "cfg {cfg:?}");
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Sort+dedup reference for the *set* behind the canonical order.
        fn sorted_unique(indices: &[u32]) -> Vec<u32> {
            let mut v = indices.to_vec();
            v.sort_unstable();
            v.dedup();
            v
        }

        /// First-occurrence reference for the canonical order itself.
        fn first_occurrence_unique(indices: &[u32]) -> Vec<u32> {
            let mut seen = std::collections::HashSet::new();
            indices
                .iter()
                .copied()
                .filter(|&i| seen.insert(i))
                .collect()
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            // The epoch-stamped canonical unique set: duplicate-free,
            // first-occurrence-ordered, and equal (as a set) to the
            // sort+dedup reference — for arbitrary gathered vectors,
            // including ones that revisit the same scratch across steps
            // (stale epoch stamps must never leak between calls).
            #[test]
            fn global_unique_matches_references(
                gathered in proptest::collection::vec(0u32..50, 0..200),
                second in proptest::collection::vec(0u32..50, 0..200),
            ) {
                let mut scratch = ExchangeScratch::new();
                scratch.ensure_vocab(50);
                for round in [&gathered, &second] {
                    scratch.all_indices.clear();
                    scratch.all_indices.extend_from_slice(round);
                    scratch.global_unique();
                    prop_assert_eq!(&scratch.unique, &first_occurrence_unique(round));
                    prop_assert_eq!(sorted_unique(&scratch.unique), sorted_unique(round));
                    // slot_of must invert the canonical order.
                    for (slot, &w) in scratch.unique.iter().enumerate() {
                        prop_assert_eq!(scratch.slot_of[w as usize] as usize, slot);
                    }
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            // Cross-rank agreement: every rank derives the identical
            // canonical set from its own copy of the gathered vector.
            #[test]
            fn canonical_set_identical_across_ranks(
                seed in 0u64..1000,
                world in 2usize..5,
                tokens in 1usize..24,
            ) {
                let uniques = run_group(world, |rank| {
                    let mut table = make_table(1);
                    let grad = make_grad(seed * 64 + rank.rank() as u64, tokens);
                    let mut scratch = ExchangeScratch::new();
                    unique_exchange_with(&rank, &grad, &mut table, 0.1, None, &mut scratch)
                        .unwrap();
                    scratch.unique.clone()
                });
                for u in &uniques[1..] {
                    prop_assert_eq!(u, &uniques[0]);
                }
                prop_assert_eq!(
                    &uniques[0],
                    &first_occurrence_unique(&{
                        let mut all = Vec::new();
                        for r in 0..world {
                            all.extend(make_grad(seed * 64 + r as u64, tokens).indices);
                        }
                        all
                    })
                );
            }
        }
    }
}
