//! Embedding-gradient exchange strategies — the heart of the paper.
//!
//! Both strategies take one GPU's token-aligned [`SparseGrad`], move it
//! across the communicator, and apply the *synchronised* update to the
//! local embedding table, so that all replicas hold identical tables
//! afterwards (§II-B's invariant).
//!
//! * [`baseline_exchange`]: the state-of-the-art scheme the paper starts
//!   from — ALLGATHER all `K×D` dense gradient matrices plus their index
//!   vectors, then apply every row locally. Per-GPU memory and wire cost
//!   `Θ(G·K·D)`.
//! * [`unique_exchange`]: §III-A's seven steps — local duplicate
//!   reduction, index-only ALLGATHER, global unique-index set, local
//!   scatter into canonical rows, ALLREDUCE of the `Ug×D` matrix, apply.
//!   Per-GPU cost `Θ(G·K + Ug·D)`.
//!
//! Either path can run with FP16 wire compression (§III-C).

use nn::{Embedding, SparseGrad};
use simgpu::Rank;

/// How to run an exchange.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeConfig {
    /// Use the uniqueness technique (§III-A) instead of dense ALLGATHER.
    pub unique: bool,
    /// FP16 wire compression with this scaling factor (§III-C), if any.
    pub compression: Option<f32>,
}

impl ExchangeConfig {
    /// The paper's baseline.
    pub fn baseline() -> Self {
        Self {
            unique: false,
            compression: None,
        }
    }

    /// Uniqueness only.
    pub fn unique() -> Self {
        Self {
            unique: true,
            compression: None,
        }
    }

    /// Uniqueness + FP16 compression at the paper's default scale.
    pub fn unique_compressed() -> Self {
        Self {
            unique: true,
            compression: Some(512.0),
        }
    }
}

/// What one exchange cost this rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExchangeStats {
    /// Gradient rows this rank contributed (`K`, with duplicates).
    pub local_tokens: usize,
    /// Locally-unique words (`Ui`) — only set by the unique path.
    pub unique_local: usize,
    /// Globally-unique words this step (`Ug`) — only set by the unique
    /// path.
    pub unique_global: usize,
    /// Bytes this rank put on the wire.
    pub wire_bytes: u64,
    /// Peak transient buffer bytes this rank needed to hold gathered /
    /// scattered gradient state (the quantity that runs GPUs out of
    /// memory in Tables III/IV).
    pub peak_buffer_bytes: u64,
}

/// Dispatches on `cfg` to one of the two exchange implementations.
pub fn exchange_and_apply(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    cfg: &ExchangeConfig,
) -> ExchangeStats {
    if cfg.unique {
        unique_exchange(rank, grad, table, lr, cfg.compression)
    } else {
        baseline_exchange(rank, grad, table, lr, cfg.compression)
    }
}

/// The baseline dense exchange (§II-B): ALLGATHER of indices and full
/// `K×D` gradients from every GPU, then sequential local application in
/// rank order (deterministic, so all replicas stay identical).
pub fn baseline_exchange(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    compression: Option<f32>,
) -> ExchangeStats {
    let g = rank.world();
    let d = table.dim();
    let n_local = grad.indices.len();

    let all_indices = rank.all_gather_u32(&grad.indices);
    let all_rows = match compression {
        Some(scale) => rank.all_gather_f16(grad.rows.as_slice(), scale),
        None => rank.all_gather_f32(grad.rows.as_slice()),
    };
    debug_assert_eq!(all_rows.len(), all_indices.len() * d);

    // Apply every gathered row in (rank, token) order. Repeated indices
    // accumulate — this is the serialised scatter-add the paper
    // describes, complete with its duplicate-row hazard.
    for (i, &idx) in all_indices.iter().enumerate() {
        let row = &all_rows[i * d..(i + 1) * d];
        let dst = table.weights_mut().row_mut(idx as usize);
        for (w, &v) in dst.iter_mut().zip(row) {
            *w -= lr * v;
        }
    }

    let elem_bytes: u64 = if compression.is_some() { 2 } else { 4 };
    let wire_bytes = (n_local as u64) * (d as u64) * elem_bytes * (g as u64 - 1)
        + (n_local as u64) * 4 * (g as u64 - 1);
    // The gathered buffers live simultaneously: G·K indices + G·K·D rows.
    let total_rows = all_indices.len() as u64;
    let peak_buffer_bytes = total_rows * 4 + total_rows * (d as u64) * 4;

    ExchangeStats {
        local_tokens: n_local,
        unique_local: 0,
        unique_global: 0,
        wire_bytes,
        peak_buffer_bytes,
    }
}

/// The uniqueness exchange — §III-A, steps 1–7.
pub fn unique_exchange(
    rank: &Rank,
    grad: &SparseGrad,
    table: &mut Embedding,
    lr: f32,
    compression: Option<f32>,
) -> ExchangeStats {
    let g = rank.world();
    let d = table.dim();
    let n_local = grad.indices.len();

    // Steps 1–2: local unique indices Ĵ and locally-reduced gradients ∆̂.
    let reduced = grad.local_reduce();
    let u_local = reduced.indices.len();

    // Step 3: ALLGATHER the *index* vectors J (Θ(G·K), not Θ(G·K·D)).
    let all_indices = rank.all_gather_u32(&grad.indices);

    // Step 4: filter to the globally-unique, totally-ordered index set Î.
    // Sorting gives the total order, so every rank derives the identical
    // slot assignment without further communication.
    let mut unique: Vec<u32> = all_indices.clone();
    unique.sort_unstable();
    unique.dedup();
    let u_global = unique.len();

    // Step 5: scatter ∆̂ into the canonical Ug×D layout M (zeros filled).
    let mut m = vec![0.0f32; u_global * d];
    for (i, &idx) in reduced.indices.iter().enumerate() {
        let slot = unique.binary_search(&idx).expect("local index missing from global set");
        m[slot * d..(slot + 1) * d].copy_from_slice(reduced.rows.row(i));
    }

    // Step 6: ALLREDUCE the aligned matrices.
    match compression {
        Some(scale) => rank.all_reduce_sum_f16(&mut m, scale),
        None => rank.all_reduce_sum(&mut m),
    }

    // Step 7: apply M̂ through Î. Indices are unique ⇒ no duplicate-row
    // serialisation.
    for (slot, &idx) in unique.iter().enumerate() {
        let dst = table.weights_mut().row_mut(idx as usize);
        for (w, &v) in dst.iter_mut().zip(&m[slot * d..(slot + 1) * d]) {
            *w -= lr * v;
        }
    }

    let elem_bytes: u64 = if compression.is_some() { 2 } else { 4 };
    // Index gather: K·4·(G−1); ring allreduce: 2(G−1)/G · Ug·D·elem.
    let wire_bytes = (n_local as u64) * 4 * (g as u64 - 1)
        + (2 * (g as u64 - 1) * (u_global as u64) * (d as u64) * elem_bytes) / (g as u64).max(1);
    // Buffers: G·K gathered indices + Ug·D scatter matrix.
    let peak_buffer_bytes = (all_indices.len() as u64) * 4 + (u_global as u64) * (d as u64) * 4;

    ExchangeStats {
        local_tokens: n_local,
        unique_local: u_local,
        unique_global: u_global,
        wire_bytes,
        peak_buffer_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use simgpu::CommGroup;
    use tensor::Matrix;

    const D: usize = 4;
    const VOCAB: usize = 50;

    fn make_table(seed: u64) -> Embedding {
        let mut rng = StdRng::seed_from_u64(seed);
        Embedding::new(&mut rng, VOCAB, D)
    }

    fn make_grad(seed: u64, n: usize) -> SparseGrad {
        let mut rng = StdRng::seed_from_u64(seed);
        let indices: Vec<u32> = (0..n).map(|_| rng.gen_range(0..VOCAB as u32)).collect();
        let rows = Matrix::from_vec(
            n,
            D,
            (0..n * D).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
        );
        SparseGrad { indices, rows }
    }

    /// Runs `f` on every rank; returns per-rank results.
    fn run_group<T: Send>(world: usize, f: impl Fn(Rank) -> T + Sync) -> Vec<T> {
        let ranks = CommGroup::create(world);
        let mut out: Vec<Option<T>> = (0..world).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = ranks
                .into_iter()
                .map(|rank| {
                    let f = &f;
                    s.spawn(move || f(rank))
                })
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                out[i] = Some(h.join().expect("rank panicked"));
            }
        });
        out.into_iter().map(Option::unwrap).collect()
    }

    fn exchange_result(world: usize, cfg: ExchangeConfig) -> Vec<(Matrix, ExchangeStats)> {
        run_group(world, |rank| {
            let mut table = make_table(7);
            let grad = make_grad(100 + rank.rank() as u64, 12);
            let stats = exchange_and_apply(&rank, &grad, &mut table, 0.1, &cfg);
            (table.weights().clone(), stats)
        })
    }

    #[test]
    fn baseline_keeps_replicas_identical() {
        for world in [1usize, 2, 4] {
            let res = exchange_result(world, ExchangeConfig::baseline());
            for r in 1..world {
                assert_eq!(
                    res[0].0.as_slice(),
                    res[r].0.as_slice(),
                    "world {world} rank {r} diverged"
                );
            }
        }
    }

    #[test]
    fn unique_keeps_replicas_identical() {
        for world in [1usize, 2, 4, 6] {
            let res = exchange_result(world, ExchangeConfig::unique());
            for r in 1..world {
                assert_eq!(res[0].0.as_slice(), res[r].0.as_slice());
            }
        }
    }

    #[test]
    fn unique_matches_baseline_result() {
        // THE paper's correctness claim: uniqueness "only changes the
        // flow of computation … and hence produces the same accuracy as
        // the baseline" — the updated tables must agree (up to f32
        // summation order).
        for world in [1usize, 2, 4] {
            let base = exchange_result(world, ExchangeConfig::baseline());
            let uniq = exchange_result(world, ExchangeConfig::unique());
            let diff = base[0].0.max_abs_diff(&uniq[0].0);
            assert!(diff < 1e-5, "world {world}: diff {diff}");
        }
    }

    #[test]
    fn compressed_unique_close_to_exact() {
        let world = 4;
        let exact = exchange_result(world, ExchangeConfig::unique());
        let comp = exchange_result(
            world,
            ExchangeConfig {
                unique: true,
                compression: Some(512.0),
            },
        );
        let diff = exact[0].0.max_abs_diff(&comp[0].0);
        assert!(diff > 0.0, "compression should not be bit-exact");
        assert!(diff < 5e-3, "diff {diff}");
        // Compressed replicas still identical to each other.
        for r in 1..world {
            assert_eq!(comp[0].0.as_slice(), comp[r].0.as_slice());
        }
    }

    #[test]
    fn compressed_baseline_close_to_exact() {
        let world = 3;
        let exact = exchange_result(world, ExchangeConfig::baseline());
        let comp = exchange_result(
            world,
            ExchangeConfig {
                unique: false,
                compression: Some(512.0),
            },
        );
        let diff = exact[0].0.max_abs_diff(&comp[0].0);
        assert!(diff < 5e-3, "diff {diff}");
    }

    #[test]
    fn unique_stats_report_compression_of_duplicates() {
        // All ranks submit the same few hot words: Ug ≪ G·K.
        let world = 4;
        let res = run_group(world, |rank| {
            let mut table = make_table(1);
            let grad = SparseGrad {
                indices: vec![3, 3, 7, 3, 7, 3],
                rows: Matrix::zeros(6, D),
            };
            exchange_and_apply(&rank, &grad, &mut table, 0.1, &ExchangeConfig::unique())
        });
        for s in &res {
            assert_eq!(s.local_tokens, 6);
            assert_eq!(s.unique_local, 2);
            assert_eq!(s.unique_global, 2); // same hot words everywhere
        }
    }

    #[test]
    fn unique_moves_fewer_bytes_when_duplicates_dominate() {
        let world = 4;
        // 64 tokens over only 5 distinct hot words per rank.
        let cfg_b = ExchangeConfig::baseline();
        let cfg_u = ExchangeConfig::unique();
        let mk = |rank: &Rank, cfg: &ExchangeConfig| {
            let mut table = make_table(2);
            let mut rng = StdRng::seed_from_u64(rank.rank() as u64);
            let indices: Vec<u32> = (0..64).map(|_| rng.gen_range(0..5)).collect();
            let n = indices.len();
            let grad = SparseGrad {
                indices,
                rows: Matrix::zeros(n, D),
            };
            exchange_and_apply(rank, &grad, &mut table, 0.1, cfg)
        };
        let base = run_group(world, |rank| mk(&rank, &cfg_b));
        let uniq = run_group(world, |rank| mk(&rank, &cfg_u));
        assert!(
            uniq[0].wire_bytes * 3 < base[0].wire_bytes,
            "unique {} vs baseline {}",
            uniq[0].wire_bytes,
            base[0].wire_bytes
        );
        assert!(uniq[0].peak_buffer_bytes * 3 < base[0].peak_buffer_bytes);
    }

    #[test]
    fn baseline_buffer_grows_linearly_with_world() {
        let grab = |world: usize| {
            run_group(world, |rank| {
                let mut table = make_table(3);
                let grad = make_grad(rank.rank() as u64, 16);
                baseline_exchange(&rank, &grad, &mut table, 0.1, None)
            })[0]
            .peak_buffer_bytes
        };
        let b2 = grab(2);
        let b4 = grab(4);
        assert_eq!(b4, b2 * 2, "baseline buffer must scale with G");
    }

    #[test]
    fn unique_buffer_saturates_with_world() {
        // With a tiny hot vocabulary, Ug saturates, so the Ug·D term
        // stops growing; only the G·K index buffer grows.
        let grab = |world: usize| {
            run_group(world, |rank| {
                let mut table = make_table(3);
                let mut rng = StdRng::seed_from_u64(rank.rank() as u64);
                let indices: Vec<u32> = (0..64).map(|_| rng.gen_range(0..5)).collect();
                let n = indices.len();
                let grad = SparseGrad {
                    indices,
                    rows: Matrix::zeros(n, D),
                };
                unique_exchange(&rank, &grad, &mut table, 0.1, None)
            })[0]
        };
        let s2 = grab(2);
        let s8 = grab(8);
        assert_eq!(s2.unique_global, 5);
        assert_eq!(s8.unique_global, 5);
        // Buffer grows only by the index term: 6·64·4 bytes.
        assert_eq!(s8.peak_buffer_bytes - s2.peak_buffer_bytes, 6 * 64 * 4);
    }

    #[test]
    fn single_gpu_exchange_is_pure_local_update() {
        let res = exchange_result(1, ExchangeConfig::unique());
        assert_eq!(res[0].1.wire_bytes, 0);
    }
}
