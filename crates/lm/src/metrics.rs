//! Training metrics and reports.

use crate::exchange::{ExchangeStats, PhaseTimings};
use simgpu::TrafficSnapshot;

/// Per-step measurements (collected on rank 0; all ranks agree on the
/// synchronised quantities).
#[derive(Debug, Clone, Default)]
pub struct StepMetrics {
    /// Global step index.
    pub step: u64,
    /// Mean training loss across GPUs (nats).
    pub train_loss: f64,
    /// Simulated wall-clock seconds for this step (compute + comm on the
    /// Table II hardware model).
    pub sim_time_s: f64,
    /// Input-embedding exchange statistics.
    pub input_exchange: ExchangeStats,
    /// Output-embedding exchange statistics (word LM only).
    pub output_exchange: Option<ExchangeStats>,
    /// Bytes this rank moved for the dense (RNN/projection) ALLREDUCE.
    pub dense_bytes: u64,
}

/// Per-epoch summary.
#[derive(Debug, Clone, Default)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch (nats).
    pub train_loss: f64,
    /// Validation perplexity at epoch end.
    pub valid_ppl: f64,
    /// Validation bits-per-token at epoch end.
    pub valid_bpc: f64,
    /// Simulated seconds for the epoch.
    pub sim_time_s: f64,
}

/// Result of a full training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-epoch summaries.
    pub epochs: Vec<EpochMetrics>,
    /// Per-step detail.
    pub steps: Vec<StepMetrics>,
    /// Peak simulated device memory over all ranks (bytes).
    pub peak_mem_bytes: u64,
    /// Total communicator traffic over the run.
    pub traffic: TrafficSnapshot,
    /// Number of GPUs used.
    pub gpus: usize,
    /// Mean globally-unique words per step (`Ug`), if the unique path
    /// ran.
    pub mean_unique_global: f64,
}

impl TrainReport {
    /// Final validation perplexity.
    pub fn final_ppl(&self) -> f64 {
        self.epochs.last().map(|e| e.valid_ppl).unwrap_or(f64::NAN)
    }

    /// Total simulated seconds across epochs.
    pub fn total_sim_time(&self) -> f64 {
        self.epochs.iter().map(|e| e.sim_time_s).sum()
    }

    /// Total measured exchange wall-time per phase across all steps
    /// (input and output exchanges combined, rank 0's measurements).
    pub fn exchange_phase_totals(&self) -> PhaseTimings {
        let mut total = PhaseTimings::default();
        for s in &self.steps {
            total.accumulate(&s.input_exchange.timings);
            if let Some(out) = &s.output_exchange {
                total.accumulate(&out.timings);
            }
        }
        total
    }

    /// Mean wire bytes per step across the run.
    pub fn mean_step_bytes(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .steps
            .iter()
            .map(|s| {
                s.dense_bytes
                    + s.input_exchange.wire_bytes
                    + s.output_exchange.map(|e| e.wire_bytes).unwrap_or(0)
            })
            .sum();
        total as f64 / self.steps.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates() {
        let mut r = TrainReport::default();
        assert!(r.final_ppl().is_nan());
        r.epochs.push(EpochMetrics {
            epoch: 0,
            valid_ppl: 120.0,
            sim_time_s: 10.0,
            ..Default::default()
        });
        r.epochs.push(EpochMetrics {
            epoch: 1,
            valid_ppl: 80.0,
            sim_time_s: 9.0,
            ..Default::default()
        });
        assert_eq!(r.final_ppl(), 80.0);
        assert_eq!(r.total_sim_time(), 19.0);
    }

    #[test]
    fn mean_step_bytes() {
        let mut r = TrainReport::default();
        assert_eq!(r.mean_step_bytes(), 0.0);
        r.steps.push(StepMetrics {
            dense_bytes: 100,
            input_exchange: ExchangeStats {
                wire_bytes: 50,
                ..Default::default()
            },
            output_exchange: Some(ExchangeStats {
                wire_bytes: 30,
                ..Default::default()
            }),
            ..Default::default()
        });
        r.steps.push(StepMetrics {
            dense_bytes: 20,
            ..Default::default()
        });
        assert_eq!(r.mean_step_bytes(), 100.0);
    }
}
