//! Training metrics and reports.

use crate::checkpoint::Checkpoint;
use crate::exchange::{ExchangeStats, PhaseTimings};
use simgpu::{TraceLog, TrafficSnapshot};

/// Where one rank's simulated step time went, in integer picoseconds.
///
/// The trainer models a synchronous step: `T = max over ranks of
/// (modelled work + injected straggler delay)`, computed identically on
/// every rank from the α–β cost model (ring schedules and fault plans
/// are global knowledge, so no extra communication is needed). Each
/// rank then splits its own share of `T` into these buckets.
///
/// **Invariant** (asserted in `tests/trace_attribution.rs` and
/// `tests/schedule_overlap.rs`): the seven buckets sum to the step's
/// `sim_time_ps` *exactly*, on every rank — all arithmetic is integer
/// picoseconds, each α–β term quantised individually via
/// [`simgpu::secs_to_ps`], so there is no epsilon.
///
/// Wire time is split by interconnect tier, mirroring
/// [`simgpu::Tier`]: `wire_intra_ps` for node-local PCIe hops and
/// `wire_inter_ps` for Infiniband hops between nodes. Flat collectives
/// charge whichever tier the group occupies (intra when it fits in one
/// node, inter otherwise — the same switch [`simgpu::HardwareConfig`]'s
/// `ring_bandwidth` makes); hierarchical collectives split the two
/// tiers exactly. The legacy total is the
/// [`wire_ps`](TimeAttribution::wire_ps) method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeAttribution {
    /// Local model compute plus gradient-application memory touches.
    pub compute_ps: u64,
    /// Collective latency terms plus this rank's exact wire bytes over
    /// node-local links (PCIe tier).
    pub wire_intra_ps: u64,
    /// Collective latency terms plus this rank's exact wire bytes over
    /// links between nodes (Infiniband tier).
    pub wire_inter_ps: u64,
    /// Time parked waiting for slower peers' *modelled work* — load
    /// imbalance inherent to the step (uneven ring shares).
    pub barrier_wait_ps: u64,
    /// Extra wait caused by peers' *injected* straggler delays. Zero on
    /// the straggler itself — skew is attributed to its victims.
    pub skew_ps: u64,
    /// This rank's own injected straggler delay.
    pub self_delay_ps: u64,
    /// Communication hidden under compute by the overlapped step
    /// schedule (`CommConfig::overlap`): wall-clock where this rank's
    /// compute and comm streams were *both* busy. Carved out of
    /// `compute_ps` — the wire buckets carry only the *exposed* comm
    /// time — so the seven buckets still sum to `sim_time_ps` exactly.
    /// Always zero when overlap is off.
    pub overlapped_ps: u64,
}

impl TimeAttribution {
    /// Total wire time across both tiers — the pre-split `wire_ps`
    /// bucket, kept as a method for display and downstream tooling.
    pub fn wire_ps(&self) -> u64 {
        self.wire_intra_ps + self.wire_inter_ps
    }

    /// Sum of all buckets — equals the step's `sim_time_ps` exactly.
    pub fn total_ps(&self) -> u64 {
        self.compute_ps
            + self.wire_intra_ps
            + self.wire_inter_ps
            + self.barrier_wait_ps
            + self.skew_ps
            + self.self_delay_ps
            + self.overlapped_ps
    }

    /// Elementwise accumulation (for per-run totals).
    pub fn accumulate(&mut self, other: &TimeAttribution) {
        self.compute_ps += other.compute_ps;
        self.wire_intra_ps += other.wire_intra_ps;
        self.wire_inter_ps += other.wire_inter_ps;
        self.barrier_wait_ps += other.barrier_wait_ps;
        self.skew_ps += other.skew_ps;
        self.self_delay_ps += other.self_delay_ps;
        self.overlapped_ps += other.overlapped_ps;
    }
}

/// Per-step measurements, collected on **every** rank (each rank's
/// [`TrainReport`] carries its own copy).
///
/// Synchronised fields — bit-identical across ranks: `step`,
/// `train_loss`, `sim_time_ps` / `sim_time_s`, and the exchanges'
/// `local_tokens` / `unique_global`. Rank-local fields — they differ
/// per rank: `dense_bytes` and the exchanges' `wire_bytes` (each rank's
/// exact ring-schedule share), `unique_local`, `peak_buffer_bytes`, the
/// wall-clock `timings`, and the `attribution` buckets (every rank
/// splits the *same* step time by its own work). Cross-rank agreement
/// of the synchronised fields is asserted in
/// `tests/training_end_to_end.rs`.
#[derive(Debug, Clone, Default)]
pub struct StepMetrics {
    /// Global step index.
    pub step: u64,
    /// Mean training loss across GPUs (nats).
    pub train_loss: f64,
    /// Simulated step time in integer picoseconds on the Table II
    /// hardware model — the synchronous-step `T` described on
    /// [`TimeAttribution`]. Identical on all ranks.
    pub sim_time_ps: u64,
    /// `sim_time_ps` in seconds (`× 1e-12`), kept for display and
    /// backward compatibility.
    pub sim_time_s: f64,
    /// This rank's exact split of the step time.
    pub attribution: TimeAttribution,
    /// Input-embedding exchange statistics.
    pub input_exchange: ExchangeStats,
    /// Output-embedding exchange statistics (word LM only).
    pub output_exchange: Option<ExchangeStats>,
    /// Bytes this rank moved for the dense (RNN/projection) ALLREDUCE
    /// (rank-local: ring chunk shares differ when the payload does not
    /// divide by `G`).
    pub dense_bytes: u64,
}

/// Per-epoch summary, collected on rank 0 only (validation is evaluated
/// there; replicas are identical, so the values are representative —
/// and `train_loss` / `sim_time_s` are synchronised quantities anyway).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch (nats).
    pub train_loss: f64,
    /// Validation perplexity at epoch end.
    pub valid_ppl: f64,
    /// Validation bits-per-token at epoch end.
    pub valid_bpc: f64,
    /// Simulated seconds for the epoch.
    pub sim_time_s: f64,
}

/// One elastic-recovery round: which ranks failed, how the world
/// shrank, and what was restored (recorded by [`crate::train_elastic`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryEvent {
    /// 1-based restart count (the first recovery is restart 1).
    pub restart: usize,
    /// Ranks (in the pre-shrink numbering) whose own failure triggered
    /// this recovery.
    pub failed_ranks: Vec<usize>,
    /// World size before the shrink.
    pub world_before: usize,
    /// World size after the shrink (`survivors.len()`).
    pub world_after: usize,
    /// Global step of the consistent checkpoint restored from, or
    /// `None` when no common snapshot existed (fresh restart).
    pub restored_step: Option<u64>,
    /// Completed steps discarded by rolling back to the restored cut
    /// (max survivor progress − restored step).
    pub steps_lost: u64,
    /// Wall-clock nanoseconds from observing the failure to relaunching
    /// the shrunken world (includes the policy's backoff).
    pub stall_ns: u64,
    /// The snapshot every survivor was restored from — starting a fresh
    /// run at the new world size from this checkpoint is bit-identical
    /// to the recovered run (asserted in `tests/elastic_recovery.rs`).
    pub restored_from: Option<Checkpoint>,
}

/// Result of a full training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-epoch summaries.
    pub epochs: Vec<EpochMetrics>,
    /// Per-step detail.
    pub steps: Vec<StepMetrics>,
    /// Peak simulated device memory over all ranks (bytes).
    pub peak_mem_bytes: u64,
    /// Total communicator traffic over the run.
    pub traffic: TrafficSnapshot,
    /// Number of GPUs used.
    pub gpus: usize,
    /// Mean globally-unique words per step (`Ug`), if the unique path
    /// ran.
    pub mean_unique_global: f64,
    /// Run-total time attribution for this rank (sum of every step's
    /// [`StepMetrics::attribution`]).
    pub attribution: TimeAttribution,
    /// This rank's span trace, when tracing was enabled in
    /// `TrainConfig::trace`. Export with [`simgpu::chrome_trace_json`].
    pub trace: Option<TraceLog>,
    /// This rank's *simulated-timeline* step-schedule spans (compute,
    /// each comm op, apply, barrier wait), when tracing was enabled.
    /// Comm spans that overlap the compute span show the hidden
    /// communication as concurrent tracks; export with
    /// [`simgpu::sim_trace_json`] or
    /// [`TrainReport::schedule_trace_json`].
    pub sim_spans: Vec<simgpu::SimSpan>,
    /// Elastic-recovery rounds survived en route to this report (empty
    /// for non-elastic runs; filled by [`crate::train_elastic`]).
    pub recoveries: Vec<RecoveryEvent>,
}

impl TrainReport {
    /// Final validation perplexity.
    pub fn final_ppl(&self) -> f64 {
        self.epochs.last().map(|e| e.valid_ppl).unwrap_or(f64::NAN)
    }

    /// Total simulated seconds across epochs.
    pub fn total_sim_time(&self) -> f64 {
        self.epochs.iter().map(|e| e.sim_time_s).sum()
    }

    /// Total measured exchange wall-time per phase across all steps
    /// (input and output exchanges combined, rank 0's measurements).
    pub fn exchange_phase_totals(&self) -> PhaseTimings {
        let mut total = PhaseTimings::default();
        for s in &self.steps {
            total.accumulate(&s.input_exchange.timings);
            if let Some(out) = &s.output_exchange {
                total.accumulate(&out.timings);
            }
        }
        total
    }

    /// Serialises per-step telemetry as JSON Lines: one object per step,
    /// newline-terminated, fields in a fixed order (golden-tested in
    /// `tests/telemetry_golden.rs` so downstream tooling can rely on
    /// the schema). Attribution buckets are this rank's; `sim_time_ps`
    /// and `train_loss` are synchronised across ranks.
    pub fn steps_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            let a = &s.attribution;
            out.push_str(&format!(
                "{{\"step\":{},\"train_loss\":{},\"sim_time_ps\":{},\
                 \"compute_ps\":{},\"wire_ps\":{},\"wire_intra_ps\":{},\
                 \"wire_inter_ps\":{},\"barrier_wait_ps\":{},\
                 \"skew_ps\":{},\"self_delay_ps\":{},\"overlapped_ps\":{},\
                 \"dense_bytes\":{},\
                 \"input_wire_bytes\":{},\"output_wire_bytes\":{},\"unique_global\":{}}}\n",
                s.step,
                json_f64(s.train_loss),
                s.sim_time_ps,
                a.compute_ps,
                a.wire_ps(),
                a.wire_intra_ps,
                a.wire_inter_ps,
                a.barrier_wait_ps,
                a.skew_ps,
                a.self_delay_ps,
                a.overlapped_ps,
                s.dense_bytes,
                s.input_exchange.wire_bytes,
                s.output_exchange.map(|e| e.wire_bytes).unwrap_or(0),
                s.input_exchange.unique_global,
            ));
        }
        out
    }

    /// Chrome-trace JSON of this rank's simulated step schedule
    /// ([`TrainReport::sim_spans`]): two tracks per rank (compute stream
    /// and comm stream) positioned in simulated picoseconds, so
    /// overlapped collectives render as spans running concurrently with
    /// compute. Empty-array JSON when tracing was off.
    pub fn schedule_trace_json(&self) -> String {
        simgpu::sim_trace_json(&self.sim_spans)
    }

    /// Mean wire bytes per step across the run.
    pub fn mean_step_bytes(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .steps
            .iter()
            .map(|s| {
                s.dense_bytes
                    + s.input_exchange.wire_bytes
                    + s.output_exchange.map(|e| e.wire_bytes).unwrap_or(0)
            })
            .sum();
        total as f64 / self.steps.len() as f64
    }
}

/// Finite floats print via `{}` (shortest round-trip form); non-finite
/// values become JSON `null` instead of the invalid bare `NaN`/`inf`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_totals_and_accumulates() {
        let a = TimeAttribution {
            compute_ps: 5,
            wire_intra_ps: 3,
            wire_inter_ps: 1,
            barrier_wait_ps: 3,
            skew_ps: 2,
            self_delay_ps: 1,
            overlapped_ps: 4,
        };
        assert_eq!(a.wire_ps(), 4);
        assert_eq!(a.total_ps(), 19);
        let mut sum = TimeAttribution::default();
        sum.accumulate(&a);
        sum.accumulate(&a);
        assert_eq!(sum.total_ps(), 38);
        assert_eq!(sum.compute_ps, 10);
        assert_eq!(sum.wire_intra_ps, 6);
        assert_eq!(sum.wire_inter_ps, 2);
        assert_eq!(sum.overlapped_ps, 8);
    }

    #[test]
    fn jsonl_escapes_non_finite_losses() {
        let mut r = TrainReport::default();
        r.steps.push(StepMetrics {
            train_loss: f64::NAN,
            ..Default::default()
        });
        let line = r.steps_jsonl();
        assert!(line.contains("\"train_loss\":null"));
        assert!(!line.contains("NaN"));
    }

    #[test]
    fn report_aggregates() {
        let mut r = TrainReport::default();
        assert!(r.final_ppl().is_nan());
        r.epochs.push(EpochMetrics {
            epoch: 0,
            valid_ppl: 120.0,
            sim_time_s: 10.0,
            ..Default::default()
        });
        r.epochs.push(EpochMetrics {
            epoch: 1,
            valid_ppl: 80.0,
            sim_time_s: 9.0,
            ..Default::default()
        });
        assert_eq!(r.final_ppl(), 80.0);
        assert_eq!(r.total_sim_time(), 19.0);
    }

    #[test]
    fn mean_step_bytes() {
        let mut r = TrainReport::default();
        assert_eq!(r.mean_step_bytes(), 0.0);
        r.steps.push(StepMetrics {
            dense_bytes: 100,
            input_exchange: ExchangeStats {
                wire_bytes: 50,
                ..Default::default()
            },
            output_exchange: Some(ExchangeStats {
                wire_bytes: 30,
                ..Default::default()
            }),
            ..Default::default()
        });
        r.steps.push(StepMetrics {
            dense_bytes: 20,
            ..Default::default()
        });
        assert_eq!(r.mean_step_bytes(), 100.0);
    }
}
