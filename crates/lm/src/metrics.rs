//! Training metrics and reports.
//!
//! Besides the per-step/per-epoch records, this module carries the
//! fleet-metrics layer (DESIGN.md §13): [`StepObserver`] feeds each
//! rank's [`simgpu::MetricsRegistry`] on the trainer's hot path,
//! [`HealthMonitor`] watches per-rank busy time for stragglers, and
//! [`RunSummary`] is the byte-stable machine-readable run artifact the
//! `bench-diff` regression gate compares.

use crate::checkpoint::Checkpoint;
use crate::config::{MetricsConfig, TrainConfig};
use crate::exchange::{ExchangeStats, PhaseTimings};
use simgpu::{
    CounterId, CounterTrack, GaugeId, Histogram, HistogramId, MetricsRegistry, TraceLog,
    TrafficSnapshot,
};

/// Where one rank's simulated step time went, in integer picoseconds.
///
/// The trainer models a synchronous step: `T = max over ranks of
/// (modelled work + injected straggler delay)`, computed identically on
/// every rank from the α–β cost model (ring schedules and fault plans
/// are global knowledge, so no extra communication is needed). Each
/// rank then splits its own share of `T` into these buckets.
///
/// **Invariant** (asserted in `tests/trace_attribution.rs` and
/// `tests/schedule_overlap.rs`): the seven buckets sum to the step's
/// `sim_time_ps` *exactly*, on every rank — all arithmetic is integer
/// picoseconds, each α–β term quantised individually via
/// [`simgpu::secs_to_ps`], so there is no epsilon.
///
/// Wire time is split by interconnect tier, mirroring
/// [`simgpu::Tier`]: `wire_intra_ps` for node-local PCIe hops and
/// `wire_inter_ps` for Infiniband hops between nodes. Flat collectives
/// charge whichever tier the group occupies (intra when it fits in one
/// node, inter otherwise — the same switch [`simgpu::HardwareConfig`]'s
/// `ring_bandwidth` makes); hierarchical collectives split the two
/// tiers exactly. The legacy total is the
/// [`wire_ps`](TimeAttribution::wire_ps) method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimeAttribution {
    /// Local model compute plus gradient-application memory touches.
    pub compute_ps: u64,
    /// Collective latency terms plus this rank's exact wire bytes over
    /// node-local links (PCIe tier).
    pub wire_intra_ps: u64,
    /// Collective latency terms plus this rank's exact wire bytes over
    /// links between nodes (Infiniband tier).
    pub wire_inter_ps: u64,
    /// Time parked waiting for slower peers' *modelled work* — load
    /// imbalance inherent to the step (uneven ring shares).
    pub barrier_wait_ps: u64,
    /// Extra wait caused by peers' *injected* straggler delays. Zero on
    /// the straggler itself — skew is attributed to its victims.
    pub skew_ps: u64,
    /// This rank's own injected straggler delay.
    pub self_delay_ps: u64,
    /// Communication hidden under compute by the overlapped step
    /// schedule (`CommConfig::overlap`): wall-clock where this rank's
    /// compute and comm streams were *both* busy. Carved out of
    /// `compute_ps` — the wire buckets carry only the *exposed* comm
    /// time — so the seven buckets still sum to `sim_time_ps` exactly.
    /// Always zero when overlap is off.
    pub overlapped_ps: u64,
}

impl TimeAttribution {
    /// Total wire time across both tiers — the pre-split `wire_ps`
    /// bucket, kept as a method for display and downstream tooling.
    pub fn wire_ps(&self) -> u64 {
        self.wire_intra_ps + self.wire_inter_ps
    }

    /// Sum of all buckets — equals the step's `sim_time_ps` exactly.
    pub fn total_ps(&self) -> u64 {
        self.compute_ps
            + self.wire_intra_ps
            + self.wire_inter_ps
            + self.barrier_wait_ps
            + self.skew_ps
            + self.self_delay_ps
            + self.overlapped_ps
    }

    /// Elementwise accumulation (for per-run totals).
    pub fn accumulate(&mut self, other: &TimeAttribution) {
        self.compute_ps += other.compute_ps;
        self.wire_intra_ps += other.wire_intra_ps;
        self.wire_inter_ps += other.wire_inter_ps;
        self.barrier_wait_ps += other.barrier_wait_ps;
        self.skew_ps += other.skew_ps;
        self.self_delay_ps += other.self_delay_ps;
        self.overlapped_ps += other.overlapped_ps;
    }
}

/// Per-step measurements, collected on **every** rank (each rank's
/// [`TrainReport`] carries its own copy).
///
/// Synchronised fields — bit-identical across ranks: `step`,
/// `train_loss`, `sim_time_ps` / `sim_time_s`, and the exchanges'
/// `local_tokens` / `unique_global`. Rank-local fields — they differ
/// per rank: `dense_bytes` and the exchanges' `wire_bytes` (each rank's
/// exact ring-schedule share), `unique_local`, `peak_buffer_bytes`, the
/// wall-clock `timings`, and the `attribution` buckets (every rank
/// splits the *same* step time by its own work). Cross-rank agreement
/// of the synchronised fields is asserted in
/// `tests/training_end_to_end.rs`.
#[derive(Debug, Clone, Default)]
pub struct StepMetrics {
    /// Global step index.
    pub step: u64,
    /// Mean training loss across GPUs (nats).
    pub train_loss: f64,
    /// Simulated step time in integer picoseconds on the Table II
    /// hardware model — the synchronous-step `T` described on
    /// [`TimeAttribution`]. Identical on all ranks.
    pub sim_time_ps: u64,
    /// `sim_time_ps` in seconds (`× 1e-12`), kept for display and
    /// backward compatibility.
    pub sim_time_s: f64,
    /// This rank's exact split of the step time.
    pub attribution: TimeAttribution,
    /// Input-embedding exchange statistics.
    pub input_exchange: ExchangeStats,
    /// Output-embedding exchange statistics (word LM only).
    pub output_exchange: Option<ExchangeStats>,
    /// Bytes this rank moved for the dense (RNN/projection) ALLREDUCE
    /// (rank-local: ring chunk shares differ when the payload does not
    /// divide by `G`).
    pub dense_bytes: u64,
}

/// Per-epoch summary, collected on rank 0 only (validation is evaluated
/// there; replicas are identical, so the values are representative —
/// and `train_loss` / `sim_time_s` are synchronised quantities anyway).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch (nats).
    pub train_loss: f64,
    /// Validation perplexity at epoch end.
    pub valid_ppl: f64,
    /// Validation bits-per-token at epoch end.
    pub valid_bpc: f64,
    /// Simulated seconds for the epoch.
    pub sim_time_s: f64,
}

/// One elastic-recovery round: which ranks failed, how the world
/// shrank, and what was restored (recorded by [`crate::train_elastic`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryEvent {
    /// 1-based restart count (the first recovery is restart 1).
    pub restart: usize,
    /// Ranks (in the pre-shrink numbering) whose own failure triggered
    /// this recovery.
    pub failed_ranks: Vec<usize>,
    /// World size before the shrink.
    pub world_before: usize,
    /// World size after the shrink (`survivors.len()`).
    pub world_after: usize,
    /// Global step of the consistent checkpoint restored from, or
    /// `None` when no common snapshot existed (fresh restart).
    pub restored_step: Option<u64>,
    /// Completed steps discarded by rolling back to the restored cut
    /// (max survivor progress − restored step).
    pub steps_lost: u64,
    /// Wall-clock nanoseconds from observing the failure to relaunching
    /// the shrunken world. Backoff is *not* in here — it is simulated,
    /// not slept (see [`RecoveryEvent::backoff_ps`]).
    pub stall_ns: u64,
    /// Simulated backoff charged to this recovery: the policy's base
    /// backoff doubled per consecutive restart
    /// (`base · 2^(restart−1)`), converted to picoseconds. Recorded on
    /// the event instead of sleeping the calling thread.
    pub backoff_ps: u64,
    /// Restart attempts consumed so far, including this one — equals
    /// [`RecoveryEvent::restart`], carried explicitly so summaries
    /// need not infer it from event ordering.
    pub attempts: u32,
    /// The snapshot every survivor was restored from — starting a fresh
    /// run at the new world size from this checkpoint is bit-identical
    /// to the recovered run (asserted in `tests/elastic_recovery.rs`).
    pub restored_from: Option<Checkpoint>,
}

/// Result of a full training run.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Per-epoch summaries.
    pub epochs: Vec<EpochMetrics>,
    /// Per-step detail.
    pub steps: Vec<StepMetrics>,
    /// Peak simulated device memory over all ranks (bytes).
    pub peak_mem_bytes: u64,
    /// Total communicator traffic over the run.
    pub traffic: TrafficSnapshot,
    /// Number of GPUs used.
    pub gpus: usize,
    /// Mean globally-unique words per step (`Ug`), if the unique path
    /// ran.
    pub mean_unique_global: f64,
    /// Run-total time attribution for this rank (sum of every step's
    /// [`StepMetrics::attribution`]).
    pub attribution: TimeAttribution,
    /// This rank's span trace, when tracing was enabled in
    /// `TrainConfig::trace`. Export with [`simgpu::chrome_trace_json`].
    pub trace: Option<TraceLog>,
    /// This rank's *simulated-timeline* step-schedule spans (compute,
    /// each comm op, apply, barrier wait), when tracing was enabled.
    /// Comm spans that overlap the compute span show the hidden
    /// communication as concurrent tracks; export with
    /// [`simgpu::sim_trace_json`] or
    /// [`TrainReport::schedule_trace_json`].
    pub sim_spans: Vec<simgpu::SimSpan>,
    /// Elastic-recovery rounds survived en route to this report (empty
    /// for non-elastic runs; filled by [`crate::train_elastic`]).
    pub recoveries: Vec<RecoveryEvent>,
    /// This rank's metric registry, when `TrainConfig::metrics` was
    /// enabled. Merge across ranks (exactly — see [`simgpu::metrics`])
    /// for the fleet view, or read `fleet_metrics` on rank 0's report.
    pub metrics: Option<MetricsRegistry>,
    /// The merged fleet registry — every rank's [`TrainReport::metrics`]
    /// folded together by the driver. Present on rank 0's report only.
    pub fleet_metrics: Option<MetricsRegistry>,
    /// Health findings for the run. [`HealthEvent::Straggler`] entries
    /// are computed from synchronised quantities and identical on every
    /// rank; [`HealthEvent::TraceTruncated`] entries are rank-local
    /// (the driver folds all ranks' into rank 0's report).
    pub health: Vec<HealthEvent>,
}

impl TrainReport {
    /// Final validation perplexity.
    pub fn final_ppl(&self) -> f64 {
        self.epochs.last().map(|e| e.valid_ppl).unwrap_or(f64::NAN)
    }

    /// Total simulated seconds across epochs.
    pub fn total_sim_time(&self) -> f64 {
        self.epochs.iter().map(|e| e.sim_time_s).sum()
    }

    /// Total measured exchange wall-time per phase across all steps
    /// (input and output exchanges combined, rank 0's measurements).
    pub fn exchange_phase_totals(&self) -> PhaseTimings {
        let mut total = PhaseTimings::default();
        for s in &self.steps {
            total.accumulate(&s.input_exchange.timings);
            if let Some(out) = &s.output_exchange {
                total.accumulate(&out.timings);
            }
        }
        total
    }

    /// Serialises per-step telemetry as JSON Lines: one object per step,
    /// newline-terminated, fields in a fixed order (golden-tested in
    /// `tests/telemetry_golden.rs` so downstream tooling can rely on
    /// the schema). Attribution buckets are this rank's; `sim_time_ps`
    /// and `train_loss` are synchronised across ranks.
    pub fn steps_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            let a = &s.attribution;
            out.push_str(&format!(
                "{{\"step\":{},\"train_loss\":{},\"sim_time_ps\":{},\
                 \"compute_ps\":{},\"wire_ps\":{},\"wire_intra_ps\":{},\
                 \"wire_inter_ps\":{},\"barrier_wait_ps\":{},\
                 \"skew_ps\":{},\"self_delay_ps\":{},\"overlapped_ps\":{},\
                 \"dense_bytes\":{},\
                 \"input_wire_bytes\":{},\"output_wire_bytes\":{},\"unique_global\":{}}}\n",
                s.step,
                json_f64(s.train_loss),
                s.sim_time_ps,
                a.compute_ps,
                a.wire_ps(),
                a.wire_intra_ps,
                a.wire_inter_ps,
                a.barrier_wait_ps,
                a.skew_ps,
                a.self_delay_ps,
                a.overlapped_ps,
                s.dense_bytes,
                s.input_exchange.wire_bytes,
                s.output_exchange.map(|e| e.wire_bytes).unwrap_or(0),
                s.input_exchange.unique_global,
            ));
        }
        out
    }

    /// Chrome-trace JSON of this rank's simulated step schedule
    /// ([`TrainReport::sim_spans`]): two tracks per rank (compute stream
    /// and comm stream) positioned in simulated picoseconds, so
    /// overlapped collectives render as spans running concurrently with
    /// compute. Empty-array JSON when tracing was off.
    pub fn schedule_trace_json(&self) -> String {
        simgpu::sim_trace_json(&self.sim_spans)
    }

    /// Mean wire bytes per step across the run.
    pub fn mean_step_bytes(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .steps
            .iter()
            .map(|s| {
                s.dense_bytes
                    + s.input_exchange.wire_bytes
                    + s.output_exchange.map(|e| e.wire_bytes).unwrap_or(0)
            })
            .sum();
        total as f64 / self.steps.len() as f64
    }

    /// Total wire bytes one step moved on this rank (dense ALLREDUCE
    /// share plus both exchanges).
    fn step_wire_bytes(s: &StepMetrics) -> u64 {
        s.dense_bytes
            + s.input_exchange.wire_bytes
            + s.output_exchange.map(|e| e.wire_bytes).unwrap_or(0)
    }

    /// Chrome-trace counter tracks derived from the per-step telemetry:
    /// wire bytes per step and the globally-unique word count `Ug` per
    /// step, one point per step. When a wall-clock trace is attached the
    /// points sit at each step's last recorded span end (so they align
    /// with the span tracks); otherwise timestamps fall back to the
    /// cumulative simulated clock (ps → ns). Render with
    /// [`simgpu::chrome_trace_json_with_counters`].
    pub fn counter_tracks(&self) -> Vec<CounterTrack> {
        let mut wire = Vec::with_capacity(self.steps.len());
        let mut ug = Vec::with_capacity(self.steps.len());
        let mut sim_ps = 0u64;
        for s in &self.steps {
            sim_ps += s.sim_time_ps;
            let t_ns = self
                .trace
                .as_ref()
                .and_then(|log| {
                    log.events
                        .iter()
                        .filter(|e| e.step == s.step)
                        .map(|e| e.t_end_ns)
                        .max()
                })
                .unwrap_or(sim_ps / 1000);
            wire.push((t_ns, Self::step_wire_bytes(s)));
            ug.push((t_ns, s.input_exchange.unique_global as u64));
        }
        vec![
            CounterTrack {
                name: "wire_bytes_per_step",
                points: wire,
            },
            CounterTrack {
                name: "unique_global_per_step",
                points: ug,
            },
        ]
    }

    /// Builds the run's [`RunSummary`] artifact. Works with metrics on
    /// or off: step-time quantiles come from pooling the synchronised
    /// `sim_time_ps` of every recorded step into a fresh
    /// [`simgpu::Histogram`] (identical to the registry's
    /// `step_time_ps` series, which observed the same values),
    /// attribution totals are this rank's, wire bytes come from the
    /// shared traffic snapshot.
    pub fn run_summary(&self, cfg: &TrainConfig) -> RunSummary {
        let mut h = Histogram::new();
        let mut codec_raw = 0u64;
        let mut codec_enc = 0u64;
        for s in &self.steps {
            h.observe(s.sim_time_ps);
            codec_raw += s.input_exchange.reduce_raw_bytes;
            codec_enc += s.input_exchange.reduce_enc_bytes;
            if let Some(out) = &s.output_exchange {
                codec_raw += out.reduce_raw_bytes;
                codec_enc += out.reduce_enc_bytes;
            }
        }
        let a = &self.attribution;
        RunSummary {
            world: self.gpus,
            config_fingerprint: format!("{:016x}", config_fingerprint(cfg)),
            steps: self.steps.len() as u64,
            sim_time_ps: self.steps.iter().map(|s| s.sim_time_ps).sum(),
            step_p50_ps: h.quantile(0.50),
            step_p95_ps: h.quantile(0.95),
            step_p99_ps: h.quantile(0.99),
            step_max_ps: h.max().unwrap_or(0),
            compute_ps: a.compute_ps,
            wire_intra_ps: a.wire_intra_ps,
            wire_inter_ps: a.wire_inter_ps,
            barrier_wait_ps: a.barrier_wait_ps,
            skew_ps: a.skew_ps,
            self_delay_ps: a.self_delay_ps,
            overlapped_ps: a.overlapped_ps,
            wire_intra_bytes: self.traffic.intra_bytes(),
            wire_inter_bytes: self.traffic.inter_bytes(),
            codec_raw_bytes: codec_raw,
            codec_enc_bytes: codec_enc,
            codec_ratio_milli: if codec_raw == 0 {
                1000
            } else {
                ((codec_enc as u128 * 1000) / codec_raw as u128) as u64
            },
            train_loss: self.steps.last().map(|s| s.train_loss).unwrap_or(f64::NAN),
            dropped_spans: self.trace.as_ref().map(|t| t.dropped).unwrap_or(0),
            health_events: self.health.len() as u64,
            recoveries: self.recoveries.len() as u64,
            corruptions: self
                .health
                .iter()
                .filter(|e| matches!(e, HealthEvent::CheckpointCorrupt { .. }))
                .count() as u64,
        }
    }
}

/// FNV-1a hash of the config's canonical debug rendering — a stable
/// identity for "same run configuration" in [`RunSummary`] artifacts
/// (derive-`Debug` output is deterministic, and floats print in
/// shortest round-trip form).
pub fn config_fingerprint(cfg: &TrainConfig) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A typed finding from the online health layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthEvent {
    /// One rank's busy time (modelled work + injected delay) exceeded
    /// `factor_milli/1000 ×` the world median for the configured number
    /// of consecutive steps. Fired once per rank per run, at the step
    /// that completed the streak.
    Straggler {
        /// The slow rank.
        rank: usize,
        /// Busy-time-to-median ratio in milli-units at detection
        /// (e.g. 2500 = 2.5× the median).
        factor_milli: u64,
        /// Global step at which the streak completed.
        step: u64,
    },
    /// A rank's trace ring overwrote `dropped` spans — the attached
    /// `TraceLog` is truncated and must not be treated as complete.
    TraceTruncated {
        /// Rank whose ring overflowed.
        rank: usize,
        /// Spans overwritten.
        dropped: u64,
    },
    /// The recovery scan found a damaged checkpoint copy (torn write,
    /// bit rot, or a manifested-but-missing file) and skipped past it.
    /// One event per damaged copy encountered.
    CheckpointCorrupt {
        /// Rank whose copy was damaged (pre-shrink numbering).
        rank: usize,
        /// Step of the damaged snapshot.
        step: u64,
    },
    /// One elastic-recovery round completed: the world shrank and
    /// training resumed from the best consistent checkpoint.
    Recovery {
        /// 1-based recovery round (matches `RecoveryEvent::restart`).
        round: usize,
        /// World size after the shrink.
        survivors: usize,
    },
}

/// Online straggler detection over per-rank busy time.
///
/// Fed once per step with the same rank-invariant `work_ps`/`delay_ps`
/// tables every rank already computes for the synchronous step time, so
/// detection needs no extra communication and every rank derives the
/// identical event list. A rank is flagged when its busy time stays
/// above `straggler_factor_milli/1000 ×` the world median (lower median
/// — robust to the straggler itself pulling the middle up in tiny
/// worlds) for `straggler_window` consecutive steps; each rank fires at
/// most once per run.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    factor_milli: u64,
    window: u32,
    streaks: Vec<u32>,
    flagged: Vec<bool>,
    scratch: Vec<u64>,
    events: Vec<HealthEvent>,
}

impl HealthMonitor {
    /// A monitor for `world` ranks under `cfg`'s thresholds.
    pub fn new(world: usize, cfg: &MetricsConfig) -> Self {
        Self {
            factor_milli: cfg.straggler_factor_milli.max(1),
            window: cfg.straggler_window.max(1),
            streaks: vec![0; world],
            flagged: vec![false; world],
            scratch: Vec::with_capacity(world),
            events: Vec::new(),
        }
    }

    /// Observes one step's per-rank busy times (`work_ps[q] +
    /// delay_ps[q]`). Allocation-free after the first call.
    pub fn observe_step(&mut self, step: u64, work_ps: &[u64], delay_ps: &[u64]) {
        debug_assert_eq!(work_ps.len(), self.streaks.len());
        self.scratch.clear();
        self.scratch
            .extend(work_ps.iter().zip(delay_ps).map(|(&w, &d)| w + d));
        self.scratch.sort_unstable();
        let median = self.scratch[(self.scratch.len() - 1) / 2];
        if median == 0 {
            return;
        }
        for q in 0..work_ps.len() {
            let busy = work_ps[q] + delay_ps[q];
            let factor_milli = ((busy as u128 * 1000) / median as u128) as u64;
            if factor_milli >= self.factor_milli {
                self.streaks[q] += 1;
                if self.streaks[q] >= self.window && !self.flagged[q] {
                    self.flagged[q] = true;
                    self.events.push(HealthEvent::Straggler {
                        rank: q,
                        factor_milli,
                        step,
                    });
                }
            } else {
                self.streaks[q] = 0;
            }
        }
    }

    /// Records a damaged checkpoint copy found by the recovery scan.
    pub fn note_checkpoint_corrupt(&mut self, rank: usize, step: u64) {
        self.events
            .push(HealthEvent::CheckpointCorrupt { rank, step });
    }

    /// Records a completed elastic-recovery round.
    pub fn note_recovery(&mut self, round: usize, survivors: usize) {
        self.events.push(HealthEvent::Recovery { round, survivors });
    }

    /// Findings so far.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Consumes the monitor, returning its findings.
    pub fn into_events(self) -> Vec<HealthEvent> {
        self.events
    }
}

/// One step's inputs to [`StepObserver::on_step`] — everything the
/// trainer already has in hand at the end of a step.
#[derive(Debug)]
pub struct StepSample<'a> {
    /// Global step index.
    pub step: u64,
    /// The synchronised step time `T`.
    pub sim_time_ps: u64,
    /// This rank's attribution of `T`.
    pub attribution: &'a TimeAttribution,
    /// Wire bytes this rank moved this step (dense + exchanges).
    pub wire_bytes: u64,
    /// Globally-unique words this step (0 on the baseline path).
    pub unique_global: u64,
    /// Raw bytes of this step's codec-framed ALLREDUCE payloads.
    pub codec_raw_bytes: u64,
    /// The same payloads' encoded bytes (== raw when no codec).
    pub codec_enc_bytes: u64,
    /// Every rank's modelled work this step (rank-invariant table).
    pub work_ps: &'a [u64],
    /// Every rank's injected delay this step (rank-invariant table).
    pub delay_ps: &'a [u64],
    /// Wall-clock nanoseconds this rank spent parked in barrier waits
    /// this step (0 when wait tracking is off).
    pub barrier_wait_wall_ns: u64,
}

/// Per-rank metrics front-end for the trainer's step loop: owns the
/// rank's [`simgpu::MetricsRegistry`] and [`HealthMonitor`] behind one
/// `Option`, so the disabled path is a single branch per step (the
/// `exchange_steady/metrics_overhead` bench guards exactly this).
#[derive(Debug, Default)]
pub struct StepObserver {
    inner: Option<ObserverInner>,
}

#[derive(Debug)]
struct ObserverInner {
    registry: MetricsRegistry,
    monitor: HealthMonitor,
    h_step: HistogramId,
    h_compute: HistogramId,
    h_wire_intra: HistogramId,
    h_wire_inter: HistogramId,
    h_barrier: HistogramId,
    h_skew: HistogramId,
    h_self_delay: HistogramId,
    h_overlapped: HistogramId,
    h_wire_bytes: HistogramId,
    h_unique: HistogramId,
    h_wait_wall: HistogramId,
    c_steps: CounterId,
    c_wire_bytes: CounterId,
    c_codec_raw: CounterId,
    c_codec_enc: CounterId,
    g_world: GaugeId,
}

impl StepObserver {
    /// The disabled observer: every call is a no-op behind one branch.
    pub fn off() -> Self {
        Self { inner: None }
    }

    /// An observer for one rank of a `world`-rank run; disabled (and
    /// allocation-free) unless `cfg.enabled`.
    pub fn new(world: usize, cfg: &MetricsConfig) -> Self {
        if !cfg.enabled {
            return Self::off();
        }
        let mut registry = MetricsRegistry::new();
        let inner = ObserverInner {
            h_step: registry.histogram("step_time_ps"),
            h_compute: registry.histogram("compute_ps"),
            h_wire_intra: registry.histogram("wire_intra_ps"),
            h_wire_inter: registry.histogram("wire_inter_ps"),
            h_barrier: registry.histogram("barrier_wait_ps"),
            h_skew: registry.histogram("skew_ps"),
            h_self_delay: registry.histogram("self_delay_ps"),
            h_overlapped: registry.histogram("overlapped_ps"),
            h_wire_bytes: registry.histogram("step_wire_bytes"),
            h_unique: registry.histogram("unique_global"),
            h_wait_wall: registry.histogram("barrier_wait_wall_ns"),
            c_steps: registry.counter("steps_total"),
            c_wire_bytes: registry.counter("wire_bytes_total"),
            c_codec_raw: registry.counter("codec_raw_bytes_total"),
            c_codec_enc: registry.counter("codec_enc_bytes_total"),
            g_world: registry.gauge("world"),
            monitor: HealthMonitor::new(world, cfg),
            registry,
        };
        Self { inner: Some(inner) }
    }

    /// True when metrics are being collected.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one finished step. O(series) integer work, no
    /// allocation; a single branch when disabled.
    pub fn on_step(&mut self, s: &StepSample<'_>) {
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let reg = &mut inner.registry;
        let a = s.attribution;
        reg.observe(inner.h_step, s.sim_time_ps);
        reg.observe(inner.h_compute, a.compute_ps);
        reg.observe(inner.h_wire_intra, a.wire_intra_ps);
        reg.observe(inner.h_wire_inter, a.wire_inter_ps);
        reg.observe(inner.h_barrier, a.barrier_wait_ps);
        reg.observe(inner.h_skew, a.skew_ps);
        reg.observe(inner.h_self_delay, a.self_delay_ps);
        reg.observe(inner.h_overlapped, a.overlapped_ps);
        reg.observe(inner.h_wire_bytes, s.wire_bytes);
        reg.observe(inner.h_unique, s.unique_global);
        reg.observe(inner.h_wait_wall, s.barrier_wait_wall_ns);
        reg.inc(inner.c_steps, 1);
        reg.inc(inner.c_wire_bytes, s.wire_bytes);
        reg.inc(inner.c_codec_raw, s.codec_raw_bytes);
        reg.inc(inner.c_codec_enc, s.codec_enc_bytes);
        inner.monitor.observe_step(s.step, s.work_ps, s.delay_ps);
    }

    /// Finalises the rank's registry: end-of-run gauges from the shared
    /// traffic snapshot (gauge merge is max, so globally-identical
    /// values fold idempotently across ranks) plus this rank's device
    /// peak, and a [`HealthEvent::TraceTruncated`] finding when the
    /// trace ring overwrote spans. Returns `(None, [])` when disabled.
    pub fn finish(
        self,
        world: usize,
        rank: usize,
        traffic: &TrafficSnapshot,
        peak_mem_bytes: u64,
        dropped_spans: u64,
    ) -> (Option<MetricsRegistry>, Vec<HealthEvent>) {
        let Some(mut inner) = self.inner else {
            return (None, Vec::new());
        };
        let reg = &mut inner.registry;
        reg.gauge_max(inner.g_world, world as u64);
        let g = reg.gauge("wire_intra_bytes");
        reg.gauge_max(g, traffic.intra_bytes());
        let g = reg.gauge("wire_inter_bytes");
        reg.gauge_max(g, traffic.inter_bytes());
        let g = reg.gauge("peak_mem_bytes");
        reg.gauge_max(g, peak_mem_bytes);
        let g = reg.gauge("dropped_spans");
        reg.gauge_max(g, dropped_spans);
        let mut events = inner.monitor.into_events();
        if dropped_spans > 0 {
            events.push(HealthEvent::TraceTruncated {
                rank,
                dropped: dropped_spans,
            });
        }
        (Some(inner.registry), events)
    }
}

/// The machine-readable run artifact: one flat record of what a run
/// was (world, config fingerprint) and what it measured (step-time
/// quantiles, attribution totals, wire bytes by tier, codec ratio).
///
/// [`to_json`](RunSummary::to_json) is byte-stable for identical
/// contents and [`from_json`](RunSummary::from_json) is its exact
/// inverse — encode→decode→encode is the identity on bytes
/// (property-tested). Two summaries are what the `bench-diff`
/// regression gate compares under tolerance rules.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// World size `G`.
    pub world: usize,
    /// Hex [`config_fingerprint`] of the run's `TrainConfig`.
    pub config_fingerprint: String,
    /// Steps recorded.
    pub steps: u64,
    /// Total simulated picoseconds across recorded steps.
    pub sim_time_ps: u64,
    /// Median step time (bucket upper bound, ≤ 12.5% relative error).
    pub step_p50_ps: u64,
    /// 95th-percentile step time.
    pub step_p95_ps: u64,
    /// 99th-percentile step time.
    pub step_p99_ps: u64,
    /// Exact maximum step time.
    pub step_max_ps: u64,
    /// Run-total compute picoseconds (this rank's attribution).
    pub compute_ps: u64,
    /// Run-total intra-node wire picoseconds.
    pub wire_intra_ps: u64,
    /// Run-total inter-node wire picoseconds.
    pub wire_inter_ps: u64,
    /// Run-total barrier-wait picoseconds.
    pub barrier_wait_ps: u64,
    /// Run-total skew picoseconds.
    pub skew_ps: u64,
    /// Run-total own-injected-delay picoseconds.
    pub self_delay_ps: u64,
    /// Run-total comm picoseconds hidden under compute.
    pub overlapped_ps: u64,
    /// Intra-node (PCIe) bytes over the whole run, all collectives.
    pub wire_intra_bytes: u64,
    /// Inter-node (Infiniband) bytes over the whole run.
    pub wire_inter_bytes: u64,
    /// Raw bytes of the codec-framed ALLREDUCE payloads.
    pub codec_raw_bytes: u64,
    /// Encoded bytes of the same payloads (== raw when no codec ran).
    pub codec_enc_bytes: u64,
    /// `enc/raw` in milli-units (1000 = no compression).
    pub codec_ratio_milli: u64,
    /// Final training loss (synchronised across ranks).
    pub train_loss: f64,
    /// Trace spans overwritten by the ring (0 when tracing was off).
    pub dropped_spans: u64,
    /// Health findings attached to the report.
    pub health_events: u64,
    /// Elastic-recovery rounds survived en route to this report.
    pub recoveries: u64,
    /// Damaged checkpoint copies the recovery scans skipped past
    /// ([`HealthEvent::CheckpointCorrupt`] findings).
    pub corruptions: u64,
}

/// Schema tag of the [`RunSummary`] JSON encoding. v2 appended the
/// durability fields (`recoveries`, `corruptions`); the parser rejects
/// v1 documents explicitly rather than guessing defaults.
pub const RUN_SUMMARY_SCHEMA: &str = "zlm.run_summary.v2";

impl RunSummary {
    /// Serialises to the canonical JSON encoding: fixed field order,
    /// two-space indent, no trailing newline. Byte-stable for identical
    /// contents (golden-tested in `tests/telemetry_golden.rs`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"world\": {},\n  \"config_fingerprint\": \"{}\",\n  \
             \"steps\": {},\n  \"sim_time_ps\": {},\n  \"step_p50_ps\": {},\n  \
             \"step_p95_ps\": {},\n  \"step_p99_ps\": {},\n  \"step_max_ps\": {},\n  \
             \"compute_ps\": {},\n  \"wire_intra_ps\": {},\n  \"wire_inter_ps\": {},\n  \
             \"barrier_wait_ps\": {},\n  \"skew_ps\": {},\n  \"self_delay_ps\": {},\n  \
             \"overlapped_ps\": {},\n  \"wire_intra_bytes\": {},\n  \"wire_inter_bytes\": {},\n  \
             \"codec_raw_bytes\": {},\n  \"codec_enc_bytes\": {},\n  \"codec_ratio_milli\": {},\n  \
             \"train_loss\": {},\n  \"dropped_spans\": {},\n  \"health_events\": {},\n  \
             \"recoveries\": {},\n  \"corruptions\": {}\n}}",
            RUN_SUMMARY_SCHEMA,
            self.world,
            self.config_fingerprint,
            self.steps,
            self.sim_time_ps,
            self.step_p50_ps,
            self.step_p95_ps,
            self.step_p99_ps,
            self.step_max_ps,
            self.compute_ps,
            self.wire_intra_ps,
            self.wire_inter_ps,
            self.barrier_wait_ps,
            self.skew_ps,
            self.self_delay_ps,
            self.overlapped_ps,
            self.wire_intra_bytes,
            self.wire_inter_bytes,
            self.codec_raw_bytes,
            self.codec_enc_bytes,
            self.codec_ratio_milli,
            json_f64(self.train_loss),
            self.dropped_spans,
            self.health_events,
            self.recoveries,
            self.corruptions,
        )
    }

    /// Strict inverse of [`RunSummary::to_json`]: parses the canonical
    /// encoding (any `"key": value` line order is accepted; values must
    /// be well-formed), so `from_json(s.to_json()).to_json()` is
    /// byte-identical to `s.to_json()`. Errors name the offending field.
    pub fn from_json(s: &str) -> Result<RunSummary, String> {
        let mut fields: Vec<(&str, &str)> = Vec::new();
        for line in s.lines() {
            let line = line.trim().trim_end_matches(',');
            if line == "{" || line == "}" || line.is_empty() {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("malformed line: {line}"))?;
            let key = key.trim().trim_matches('"');
            fields.push((key, value.trim()));
        }
        let get = |name: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .ok_or_else(|| format!("missing field: {name}"))
        };
        let get_u64 = |name: &str| -> Result<u64, String> {
            get(name)?
                .parse::<u64>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        let schema = get("schema")?.trim_matches('"');
        if schema != RUN_SUMMARY_SCHEMA {
            return Err(format!("unknown schema: {schema}"));
        }
        let loss = match get("train_loss")? {
            "null" => f64::NAN,
            v => v
                .parse::<f64>()
                .map_err(|e| format!("bad train_loss: {e}"))?,
        };
        Ok(RunSummary {
            world: get_u64("world")? as usize,
            config_fingerprint: get("config_fingerprint")?.trim_matches('"').to_string(),
            steps: get_u64("steps")?,
            sim_time_ps: get_u64("sim_time_ps")?,
            step_p50_ps: get_u64("step_p50_ps")?,
            step_p95_ps: get_u64("step_p95_ps")?,
            step_p99_ps: get_u64("step_p99_ps")?,
            step_max_ps: get_u64("step_max_ps")?,
            compute_ps: get_u64("compute_ps")?,
            wire_intra_ps: get_u64("wire_intra_ps")?,
            wire_inter_ps: get_u64("wire_inter_ps")?,
            barrier_wait_ps: get_u64("barrier_wait_ps")?,
            skew_ps: get_u64("skew_ps")?,
            self_delay_ps: get_u64("self_delay_ps")?,
            overlapped_ps: get_u64("overlapped_ps")?,
            wire_intra_bytes: get_u64("wire_intra_bytes")?,
            wire_inter_bytes: get_u64("wire_inter_bytes")?,
            codec_raw_bytes: get_u64("codec_raw_bytes")?,
            codec_enc_bytes: get_u64("codec_enc_bytes")?,
            codec_ratio_milli: get_u64("codec_ratio_milli")?,
            train_loss: loss,
            dropped_spans: get_u64("dropped_spans")?,
            health_events: get_u64("health_events")?,
            recoveries: get_u64("recoveries")?,
            corruptions: get_u64("corruptions")?,
        })
    }
}

/// Finite floats print via `{}` (shortest round-trip form); non-finite
/// values become JSON `null` instead of the invalid bare `NaN`/`inf`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_totals_and_accumulates() {
        let a = TimeAttribution {
            compute_ps: 5,
            wire_intra_ps: 3,
            wire_inter_ps: 1,
            barrier_wait_ps: 3,
            skew_ps: 2,
            self_delay_ps: 1,
            overlapped_ps: 4,
        };
        assert_eq!(a.wire_ps(), 4);
        assert_eq!(a.total_ps(), 19);
        let mut sum = TimeAttribution::default();
        sum.accumulate(&a);
        sum.accumulate(&a);
        assert_eq!(sum.total_ps(), 38);
        assert_eq!(sum.compute_ps, 10);
        assert_eq!(sum.wire_intra_ps, 6);
        assert_eq!(sum.wire_inter_ps, 2);
        assert_eq!(sum.overlapped_ps, 8);
    }

    #[test]
    fn jsonl_escapes_non_finite_losses() {
        let mut r = TrainReport::default();
        r.steps.push(StepMetrics {
            train_loss: f64::NAN,
            ..Default::default()
        });
        let line = r.steps_jsonl();
        assert!(line.contains("\"train_loss\":null"));
        assert!(!line.contains("NaN"));
    }

    #[test]
    fn report_aggregates() {
        let mut r = TrainReport::default();
        assert!(r.final_ppl().is_nan());
        r.epochs.push(EpochMetrics {
            epoch: 0,
            valid_ppl: 120.0,
            sim_time_s: 10.0,
            ..Default::default()
        });
        r.epochs.push(EpochMetrics {
            epoch: 1,
            valid_ppl: 80.0,
            sim_time_s: 9.0,
            ..Default::default()
        });
        assert_eq!(r.final_ppl(), 80.0);
        assert_eq!(r.total_sim_time(), 19.0);
    }

    #[test]
    fn mean_step_bytes() {
        let mut r = TrainReport::default();
        assert_eq!(r.mean_step_bytes(), 0.0);
        r.steps.push(StepMetrics {
            dense_bytes: 100,
            input_exchange: ExchangeStats {
                wire_bytes: 50,
                ..Default::default()
            },
            output_exchange: Some(ExchangeStats {
                wire_bytes: 30,
                ..Default::default()
            }),
            ..Default::default()
        });
        r.steps.push(StepMetrics {
            dense_bytes: 20,
            ..Default::default()
        });
        assert_eq!(r.mean_step_bytes(), 100.0);
    }

    #[test]
    fn health_monitor_names_the_slow_rank_after_the_window() {
        let cfg = MetricsConfig::on(); // 1.5× median, 3-step window
        let mut m = HealthMonitor::new(4, &cfg);
        let work = [100u64, 100, 100, 100];
        let slow_delay = [0u64, 0, 300, 0];
        m.observe_step(0, &work, &slow_delay);
        m.observe_step(1, &work, &slow_delay);
        assert!(m.events().is_empty(), "window not yet met");
        m.observe_step(2, &work, &slow_delay);
        assert_eq!(
            m.events(),
            &[HealthEvent::Straggler {
                rank: 2,
                factor_milli: 4000,
                step: 2
            }]
        );
        // Fires once per rank, even if the rank stays slow.
        m.observe_step(3, &work, &slow_delay);
        assert_eq!(m.events().len(), 1);
    }

    #[test]
    fn health_monitor_resets_streak_on_recovery() {
        let cfg = MetricsConfig::on();
        let mut m = HealthMonitor::new(2, &cfg);
        m.observe_step(0, &[100, 100], &[0, 200]);
        m.observe_step(1, &[100, 100], &[0, 200]);
        m.observe_step(2, &[100, 100], &[0, 0]); // recovered
        m.observe_step(3, &[100, 100], &[0, 200]);
        m.observe_step(4, &[100, 100], &[0, 200]);
        assert!(m.events().is_empty(), "streak must restart after recovery");
    }

    #[test]
    fn step_observer_off_is_inert_and_on_feeds_series() {
        let mut off = StepObserver::off();
        assert!(!off.enabled());
        let attr = TimeAttribution::default();
        off.on_step(&StepSample {
            step: 0,
            sim_time_ps: 1,
            attribution: &attr,
            wire_bytes: 0,
            unique_global: 0,
            codec_raw_bytes: 0,
            codec_enc_bytes: 0,
            work_ps: &[1],
            delay_ps: &[0],
            barrier_wait_wall_ns: 0,
        });
        let (reg, health) = off.finish(1, 0, &TrafficSnapshot::default(), 0, 0);
        assert!(reg.is_none() && health.is_empty());

        let mut on = StepObserver::new(2, &MetricsConfig::on());
        assert!(on.enabled());
        for step in 0..4u64 {
            on.on_step(&StepSample {
                step,
                sim_time_ps: 100 + step,
                attribution: &attr,
                wire_bytes: 64,
                unique_global: 7,
                codec_raw_bytes: 10,
                codec_enc_bytes: 5,
                work_ps: &[100, 100],
                delay_ps: &[0, 0],
                barrier_wait_wall_ns: 3,
            });
        }
        let (reg, health) = on.finish(2, 1, &TrafficSnapshot::default(), 555, 9);
        let reg = reg.expect("registry");
        assert_eq!(reg.find_counter("steps_total"), Some(4));
        assert_eq!(reg.find_counter("wire_bytes_total"), Some(256));
        assert_eq!(reg.find_counter("codec_enc_bytes_total"), Some(20));
        assert_eq!(reg.find_gauge("peak_mem_bytes"), Some(555));
        assert_eq!(reg.find_gauge("world"), Some(2));
        assert_eq!(reg.find_gauge("dropped_spans"), Some(9));
        let h = reg.find_histogram("step_time_ps").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), Some(103));
        assert_eq!(
            health,
            vec![HealthEvent::TraceTruncated {
                rank: 1,
                dropped: 9
            }]
        );
    }

    #[test]
    fn run_summary_roundtrips_bytes() {
        let s = RunSummary {
            world: 48,
            config_fingerprint: "00ff00ff00ff00ff".into(),
            steps: 12,
            sim_time_ps: 999,
            step_p50_ps: 80,
            step_p95_ps: 95,
            step_p99_ps: 99,
            step_max_ps: 103,
            compute_ps: 1,
            wire_intra_ps: 2,
            wire_inter_ps: 3,
            barrier_wait_ps: 4,
            skew_ps: 5,
            self_delay_ps: 6,
            overlapped_ps: 7,
            wire_intra_bytes: 8,
            wire_inter_bytes: 9,
            codec_raw_bytes: 100,
            codec_enc_bytes: 50,
            codec_ratio_milli: 500,
            train_loss: 3.25,
            dropped_spans: 0,
            health_events: 1,
            recoveries: 2,
            corruptions: 1,
        };
        let j = s.to_json();
        let back = RunSummary::from_json(&j).expect("parse");
        assert_eq!(back, s);
        assert_eq!(back.to_json(), j, "encode→decode→encode is identity");
        // Non-finite losses encode as null and survive the round trip.
        let nan = RunSummary {
            train_loss: f64::NAN,
            ..s
        };
        let j = nan.to_json();
        assert!(j.contains("\"train_loss\": null"));
        assert_eq!(RunSummary::from_json(&j).unwrap().to_json(), j);
    }

    #[test]
    fn run_summary_parser_rejects_drift() {
        let s = RunSummary {
            world: 1,
            config_fingerprint: "0".into(),
            steps: 0,
            sim_time_ps: 0,
            step_p50_ps: 0,
            step_p95_ps: 0,
            step_p99_ps: 0,
            step_max_ps: 0,
            compute_ps: 0,
            wire_intra_ps: 0,
            wire_inter_ps: 0,
            barrier_wait_ps: 0,
            skew_ps: 0,
            self_delay_ps: 0,
            overlapped_ps: 0,
            wire_intra_bytes: 0,
            wire_inter_bytes: 0,
            codec_raw_bytes: 0,
            codec_enc_bytes: 0,
            codec_ratio_milli: 1000,
            train_loss: 0.0,
            dropped_spans: 0,
            health_events: 0,
            recoveries: 0,
            corruptions: 0,
        };
        let j = s.to_json();
        assert!(RunSummary::from_json(&j.replace("zlm.run_summary.v2", "v999")).is_err());
        assert!(RunSummary::from_json(&j.replace("\"steps\"", "\"stepz\"")).is_err());
        // The v1 schema (no durability fields) is rejected, not defaulted.
        assert!(
            RunSummary::from_json(&j.replace("zlm.run_summary.v2", "zlm.run_summary.v1")).is_err()
        );
    }

    #[test]
    fn health_monitor_note_methods_append_events() {
        let mut m = HealthMonitor::new(2, &MetricsConfig::on());
        m.note_checkpoint_corrupt(1, 8);
        m.note_recovery(1, 1);
        assert_eq!(
            m.into_events(),
            vec![
                HealthEvent::CheckpointCorrupt { rank: 1, step: 8 },
                HealthEvent::Recovery {
                    round: 1,
                    survivors: 1
                },
            ]
        );
    }

    #[test]
    fn run_summary_counts_recoveries_and_corruptions() {
        let mut r = TrainReport {
            gpus: 2,
            ..Default::default()
        };
        r.recoveries.push(RecoveryEvent::default());
        r.health
            .push(HealthEvent::CheckpointCorrupt { rank: 1, step: 4 });
        r.health.push(HealthEvent::Recovery {
            round: 1,
            survivors: 1,
        });
        let s = r.run_summary(&TrainConfig::default());
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.corruptions, 1);
        assert_eq!(s.health_events, 2);
    }

    #[test]
    fn counter_tracks_follow_steps() {
        let mut r = TrainReport::default();
        for i in 0..3u64 {
            r.steps.push(StepMetrics {
                step: i,
                sim_time_ps: 1_000_000,
                dense_bytes: 10 * (i + 1),
                input_exchange: ExchangeStats {
                    unique_global: 5,
                    wire_bytes: 1,
                    ..Default::default()
                },
                ..Default::default()
            });
        }
        let tracks = r.counter_tracks();
        assert_eq!(tracks.len(), 2);
        assert_eq!(tracks[0].name, "wire_bytes_per_step");
        assert_eq!(tracks[0].points, vec![(1000, 11), (2000, 21), (3000, 31)]);
        assert_eq!(tracks[1].name, "unique_global_per_step");
        assert_eq!(tracks[1].points[0], (1000, 5));
    }

    #[test]
    fn run_summary_from_report_pools_step_times() {
        let mut r = TrainReport {
            gpus: 4,
            ..Default::default()
        };
        for i in 0..10u64 {
            r.steps.push(StepMetrics {
                step: i,
                sim_time_ps: 100 + i,
                train_loss: 2.0,
                ..Default::default()
            });
        }
        let cfg = TrainConfig::default();
        let s = r.run_summary(&cfg);
        assert_eq!(s.world, 4);
        assert_eq!(s.steps, 10);
        assert!(s.step_p50_ps <= s.step_p95_ps && s.step_p95_ps <= s.step_p99_ps);
        assert!(s.step_p99_ps <= s.step_max_ps);
        assert_eq!(s.step_max_ps, 109);
        assert_eq!(s.codec_ratio_milli, 1000, "no codec ⇒ ratio 1.000");
        assert_eq!(s.config_fingerprint.len(), 16);
        assert_eq!(
            s.config_fingerprint,
            format!("{:016x}", config_fingerprint(&cfg))
        );
    }
}
