//! Explicit step op schedule with critical-path timing.
//!
//! The trainer's step used to be a hardcoded serial sequence — compute,
//! then every collective, then apply — so modelled wire time and compute
//! time always *added*. This module makes the step an explicit schedule
//! of ops with dependency edges, evaluated against the α–β cost model:
//!
//! * a **compute stream** running the forward/backward pass for
//!   `compute_ps`, then the gradient application (`apply_ps`) once all
//!   comm finished;
//! * a **comm stream** running the step's collective ops ([`CommOp`])
//!   serialized in program order, each no earlier than its `ready_ps` —
//!   the compute-stream time at which its payload exists.
//!
//! The DAG is exactly: `produce(op b) → op b` (the `ready_ps` edge,
//! gradients appear as the backward pass streams through the
//! parameters) and `op b → op b+1` (one fabric, ops serialize). The
//! step's simulated time is the critical path:
//!
//! ```text
//! T = compute_ps + exposed_comm_ps + apply_ps
//! ```
//!
//! where `exposed_comm_ps` is the comm time *not* hidden under compute.
//! Every quantity is integer picoseconds, so the identity is exact — no
//! epsilon. With overlap off the caller pins every `ready_ps` to
//! `compute_ps`, the comm stream degenerates to the serial chain, and
//! `T` equals the pre-schedule `compute + wire + touch` sum bit for bit.
//!
//! **Attribution contract** (`TimeAttribution`): the hidden comm time is
//! reported as `overlapped_ps` and carved out of the compute bucket
//! (`compute_ps_bucket = compute_ps + apply_ps − overlapped_ps`), while
//! the wire buckets carry only each op's *exposed* remainder — so the
//! seven buckets still sum to `T` exactly. Within one op the hidden
//! prefix is charged intra-tier first (the hierarchical schedule's
//! node-local phases precede its inter-node ring; for flat ops one tier
//! is zero and the convention is vacuous).

use std::ops::Range;

/// One collective operation on the step's comm stream, priced per
/// interconnect tier for one specific rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommOp {
    /// Stable op name (also the sim-trace span label).
    pub label: &'static str,
    /// Bucket index within the op's payload (0 for unbucketed ops).
    pub bucket: u32,
    /// Node-local (PCIe-tier) picoseconds of this op for this rank.
    pub intra_ps: u64,
    /// Inter-node (Infiniband-tier) picoseconds for this rank.
    pub inter_ps: u64,
    /// Compute-stream time (ps from step start) at which the op's
    /// payload exists; the op cannot start earlier. Never exceeds the
    /// schedule's `compute_ps` (payloads are products of the backward
    /// pass).
    pub ready_ps: u64,
}

impl CommOp {
    /// Total modelled duration across both tiers.
    pub fn duration_ps(&self) -> u64 {
        self.intra_ps + self.inter_ps
    }
}

/// Result of evaluating one rank's step schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScheduleOutcome {
    /// Critical-path step time for this rank:
    /// `compute_ps + exposed_intra_ps + exposed_inter_ps + apply_ps`,
    /// exactly.
    pub total_ps: u64,
    /// Intra-tier comm not hidden under compute.
    pub exposed_intra_ps: u64,
    /// Inter-tier comm not hidden under compute.
    pub exposed_inter_ps: u64,
    /// Comm hidden under compute — wall-clock where both streams were
    /// busy. At most `compute_ps`; zero whenever every op's `ready_ps`
    /// equals `compute_ps` (overlap off).
    pub overlapped_ps: u64,
}

impl ScheduleOutcome {
    /// Exposed comm across both tiers.
    pub fn exposed_ps(&self) -> u64 {
        self.exposed_intra_ps + self.exposed_inter_ps
    }
}

/// Evaluates the schedule, additionally reporting each comm op's
/// placement as `on_op(op_index, start_ps, end_ps)` (step-relative) —
/// the hook the trainer uses to emit simulated-timeline trace spans.
/// See [`evaluate`] for the model.
pub fn evaluate_with<F: FnMut(usize, u64, u64)>(
    compute_ps: u64,
    apply_ps: u64,
    ops: &[CommOp],
    mut on_op: F,
) -> ScheduleOutcome {
    let mut out = ScheduleOutcome::default();
    let mut comm_end = 0u64; // comm-stream clock
    for (i, op) in ops.iter().enumerate() {
        debug_assert!(
            op.ready_ps <= compute_ps,
            "payloads are produced by the backward pass"
        );
        let start = comm_end.max(op.ready_ps.min(compute_ps));
        let dur = op.duration_ps();
        let end = start + dur;
        // Portion of this op inside the compute window [0, compute_ps]:
        // both streams busy — hidden. The remainder is exposed.
        let hidden = end.min(compute_ps).saturating_sub(start.min(compute_ps));
        let hidden_intra = op.intra_ps.min(hidden);
        let hidden_inter = hidden - hidden_intra;
        out.overlapped_ps += hidden;
        out.exposed_intra_ps += op.intra_ps - hidden_intra;
        out.exposed_inter_ps += op.inter_ps - hidden_inter;
        comm_end = end;
        on_op(i, start, end);
    }
    out.total_ps = compute_ps + out.exposed_ps() + apply_ps;
    // The comm stream never idles past the compute window (every
    // ready_ps ≤ compute_ps), so the critical path really is the last
    // stream to finish plus the apply.
    debug_assert_eq!(out.total_ps, comm_end.max(compute_ps) + apply_ps);
    debug_assert_eq!(
        out.exposed_ps() + out.overlapped_ps,
        ops.iter().map(CommOp::duration_ps).sum::<u64>(),
        "every comm picosecond is either exposed or hidden"
    );
    out
}

/// Evaluates one rank's step schedule: `compute_ps` of model work
/// producing the ops' payloads, the ops serialized on the comm stream
/// (each starting at `max(previous end, ready_ps)`), and `apply_ps` of
/// gradient application once both streams drain. Pure integer
/// arithmetic — every rank can evaluate every other rank's schedule
/// locally, which is what keeps the trainer's synchronous step-time
/// model communication-free.
pub fn evaluate(compute_ps: u64, apply_ps: u64, ops: &[CommOp]) -> ScheduleOutcome {
    evaluate_with(compute_ps, apply_ps, ops, |_, _, _| {})
}

/// Serial reference: the pre-schedule step model,
/// `compute + Σ op + apply`. [`evaluate`] equals this exactly when
/// every op's `ready_ps` is `compute_ps`, and never exceeds it.
pub fn serial_total_ps(compute_ps: u64, apply_ps: u64, ops: &[CommOp]) -> u64 {
    compute_ps + ops.iter().map(CommOp::duration_ps).sum::<u64>() + apply_ps
}

/// Splits a payload of `n_elems` elements (`elem_bytes` each on the
/// wire) into consecutive element ranges of at most `bucket_bytes` wire
/// bytes — the gradient buckets of the overlapped schedule. Each range
/// becomes one collective op paying its own latency term.
/// `bucket_bytes == 0` (or ≥ the payload) yields a single range, which
/// reproduces the legacy whole-payload collective byte-for-byte. Empty
/// payloads yield one empty range so the op structure stays stable.
pub fn bucket_ranges(n_elems: usize, elem_bytes: u64, bucket_bytes: u64) -> Vec<Range<usize>> {
    if n_elems == 0 {
        // One empty range, not `vec![]`, so callers always see an op.
        #[allow(clippy::single_range_in_vec_init)]
        return vec![0..0];
    }
    let per = bucket_elems(n_elems, elem_bytes, bucket_bytes);
    let mut out = Vec::with_capacity(n_elems.div_ceil(per));
    let mut start = 0usize;
    while start < n_elems {
        let end = (start + per).min(n_elems);
        out.push(start..end);
        start = end;
    }
    out
}

/// Elements per bucket for a payload — the slice width [`bucket_ranges`]
/// uses, exposed separately so hot paths can walk the buckets with a
/// plain cursor instead of allocating the range vector. Always at least
/// 1 (a `while start < n` / `loop` walk terminates); for empty payloads
/// it returns 1 so a single empty slice covers the payload.
pub fn bucket_elems(n_elems: usize, elem_bytes: u64, bucket_bytes: u64) -> usize {
    if bucket_bytes == 0 || n_elems == 0 {
        return n_elems.max(1);
    }
    ((bucket_bytes / elem_bytes.max(1)) as usize).clamp(1, n_elems)
}

/// Ready time of a payload whose last byte is the `produced_bytes`-th
/// of the step's `total_bytes` of gradients, under the uniform
/// production model: the backward pass emits gradient bytes at a
/// constant rate over `compute_ps`, and a bucket may launch once its
/// last byte exists. Monotone in `produced_bytes` and never past
/// `compute_ps`.
pub fn ready_at(compute_ps: u64, produced_bytes: u64, total_bytes: u64) -> u64 {
    debug_assert!(produced_bytes <= total_bytes);
    if total_bytes == 0 {
        return compute_ps;
    }
    ((compute_ps as u128 * produced_bytes as u128) / total_bytes as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn op(intra: u64, inter: u64, ready: u64) -> CommOp {
        CommOp {
            label: "op",
            bucket: 0,
            intra_ps: intra,
            inter_ps: inter,
            ready_ps: ready,
        }
    }

    #[test]
    fn serial_readiness_reproduces_the_sum() {
        let c = 1000;
        let ops = [op(300, 0, c), op(0, 450, c), op(20, 7, c)];
        let out = evaluate(c, 111, &ops);
        assert_eq!(out.total_ps, serial_total_ps(c, 111, &ops));
        assert_eq!(out.overlapped_ps, 0);
        assert_eq!(out.exposed_intra_ps, 320);
        assert_eq!(out.exposed_inter_ps, 457);
    }

    #[test]
    fn early_ops_hide_under_compute() {
        // One op fully hidden, one straddling the compute boundary.
        let c = 1000;
        let ops = [op(200, 0, 0), op(100, 300, 700)];
        let out = evaluate(c, 50, &ops);
        // Op 0: [0, 200] — fully hidden. Op 1: [700, 1100] — 300 hidden
        // (100 intra first, then 200 of the inter), 100 inter exposed.
        assert_eq!(out.overlapped_ps, 500);
        assert_eq!(out.exposed_intra_ps, 0);
        assert_eq!(out.exposed_inter_ps, 100);
        assert_eq!(out.total_ps, 1000 + 100 + 50);
        assert!(out.total_ps < serial_total_ps(c, 50, &ops));
    }

    #[test]
    fn comm_backlog_serializes() {
        // Two long ops ready early: the second queues behind the first,
        // so only the compute window's worth of comm can hide.
        let c = 100;
        let ops = [op(400, 0, 0), op(400, 0, 10)];
        let out = evaluate(c, 0, &ops);
        assert_eq!(out.overlapped_ps, 100);
        assert_eq!(out.exposed_intra_ps, 700);
        assert_eq!(out.total_ps, 100 + 700);
    }

    #[test]
    fn op_placement_is_reported() {
        let c = 1000;
        let ops = [op(200, 0, 500), op(50, 25, 600)];
        let mut placed = Vec::new();
        let out = evaluate_with(c, 10, &ops, |i, s, e| placed.push((i, s, e)));
        assert_eq!(placed, vec![(0, 500, 700), (1, 700, 775)]);
        assert_eq!(out.overlapped_ps, 275);
        assert_eq!(out.total_ps, 1010);
    }

    #[test]
    fn empty_schedule_is_compute_plus_apply() {
        let out = evaluate(123, 45, &[]);
        assert_eq!(out.total_ps, 168);
        assert_eq!(out.overlapped_ps, 0);
        assert_eq!(out.exposed_ps(), 0);
    }

    #[test]
    fn bucket_ranges_cover_exactly_without_overlap() {
        for (n, elem, bytes, want_buckets) in [
            (100usize, 4u64, 0u64, 1usize), // unbucketed
            (100, 4, 4000, 1),              // bucket ≥ payload
            (100, 4, 100, 4),               // 25 elems per bucket
            (100, 4, 120, 4),               // 30,30,30,10
            (7, 4, 8, 4),                   // 2,2,2,1 — ragged
            (5, 4, 1, 5),                   // sub-element bucket clamps to 1
            (0, 4, 64, 1),                  // empty payload, stable shape
        ] {
            let ranges = bucket_ranges(n, elem, bytes);
            assert_eq!(ranges.len(), want_buckets, "n={n} bytes={bytes}");
            let mut next = 0usize;
            for r in &ranges {
                assert_eq!(r.start, next, "gapless");
                assert!(r.end >= r.start);
                next = r.end;
            }
            assert_eq!(next, n, "covers the payload");
        }
    }

    #[test]
    fn ready_at_is_monotone_and_bounded() {
        let c = 1_000_000u64;
        let total = 977u64;
        let mut last = 0u64;
        for b in 0..=total {
            let t = ready_at(c, b, total);
            assert!(t >= last && t <= c);
            last = t;
        }
        assert_eq!(ready_at(c, total, total), c, "last byte lands at C");
        assert_eq!(ready_at(c, 0, 0), c, "no gradients → ready at end");
    }

    proptest! {
        /// Critical path never exceeds the serial sum, equals it when
        /// overlap is off (ready = compute), and the outcome satisfies
        /// the exact identities the attribution relies on.
        #[test]
        fn critical_path_bounded_by_serial_sum(
            compute in 0u64..2_000_000,
            apply in 0u64..100_000,
            intra in proptest::collection::vec(0u64..500_000, 0..12),
            inter in proptest::collection::vec(0u64..500_000, 0..12),
            frac in proptest::collection::vec(0f64..1.0, 0..12),
        ) {
            let n = intra.len().min(inter.len()).min(frac.len());
            let ops: Vec<CommOp> = (0..n)
                .map(|i| op(intra[i], inter[i], (compute as f64 * frac[i]) as u64))
                .collect();
            let total_comm: u64 = ops.iter().map(CommOp::duration_ps).sum();
            let out = evaluate(compute, apply, &ops);
            let serial = serial_total_ps(compute, apply, &ops);
            prop_assert!(out.total_ps <= serial);
            prop_assert!(out.total_ps >= compute + apply);
            // Exact partition identities — no epsilon anywhere.
            prop_assert_eq!(out.exposed_ps() + out.overlapped_ps, total_comm);
            prop_assert_eq!(out.total_ps, compute + out.exposed_ps() + apply);
            prop_assert!(out.overlapped_ps <= compute);
            // Overlap off: pin every ready to compute — exact equality.
            let serial_ops: Vec<CommOp> =
                ops.iter().map(|o| CommOp { ready_ps: compute, ..*o }).collect();
            let off = evaluate(compute, apply, &serial_ops);
            prop_assert_eq!(off.total_ps, serial);
            prop_assert_eq!(off.overlapped_ps, 0);
            prop_assert_eq!(off.exposed_intra_ps, ops.iter().map(|o| o.intra_ps).sum::<u64>());
            prop_assert_eq!(off.exposed_inter_ps, ops.iter().map(|o| o.inter_ps).sum::<u64>());
        }
    }
}
