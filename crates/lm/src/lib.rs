//! # zipf-lm — Language Modeling at Scale
//!
//! Rust reproduction of *"Language Modeling at Scale"* (Patwary, Chabbi,
//! Jun, Huang, Diamos, Church — Baidu SVAIL, IPPS 2019, arXiv:1810.10045):
//! scaling data-parallel RNN language-model training by exploiting Zipf's
//! law in the embedding-layer gradient exchange.
//!
//! ## The three techniques
//!
//! 1. **Uniqueness** ([`exchange`], §III-A) — the baseline exchanges dense
//!    `K×D` embedding gradients with an ALLGATHER costing `Θ(G·K·D)`
//!    memory and wire bytes per GPU. Because tokens repeat (Zipf), the
//!    set of *unique* words per step is only `Ug ∝ (G·K)^0.64`, so the
//!    exchange can instead gather indices (`Θ(G·K)`), canonicalise them,
//!    and ALLREDUCE a `Ug×D` matrix: `Θ(G·K + Ug·D)` total.
//! 2. **Seeding** ([`seeding`], §III-B) — sampled softmax draws random
//!    candidate words per GPU, destroying cross-GPU overlap. Sharing
//!    seeds among GPU groups (only `G^0.64` distinct seeds are needed)
//!    restores the Zipfian overlap with negligible accuracy cost.
//! 3. **Compression** ([`exchange`] + `simgpu`'s FP16 collectives,
//!    §III-C) — FP32→FP16 wire compression with compression-scaling
//!    halves communication volume.
//!
//! ## Quick start
//!
//! ```
//! use zipf_lm::{TrainConfig, TraceConfig, MetricsConfig, CheckpointConfig, CommConfig, ModelKind, Method, train};
//! use zipf_lm::seeding::SeedStrategy;
//!
//! let cfg = TrainConfig {
//!     model: ModelKind::Word { vocab: 500 },
//!     gpus: 2,
//!     batch: 4,
//!     seq_len: 8,
//!     steps_per_epoch: 5,
//!     epochs: 1,
//!     base_lr: 0.5,
//!     lr_decay: 0.95,
//!     method: Method::unique(),
//!     seed: 42,
//!     tokens: 20_000,
//!     trace: TraceConfig::off(),
//!     metrics: MetricsConfig::off(),
//!     checkpoint: CheckpointConfig::off(),
//!     comm: CommConfig::flat(),
//! };
//! let report = train(&cfg).expect("training runs");
//! assert!(report.epochs[0].train_loss.is_finite());
//! ```
//!
//! ## Elasticity
//!
//! Training survives rank failures: enable periodic bit-exact
//! snapshots with `checkpoint: CheckpointConfig::every(n)` and drive
//! the run through [`train_elastic`], which shrinks the world to the
//! survivors after a failure and restores every remaining rank from
//! the last consistent [`checkpoint::Checkpoint`]. Kill-and-resume at
//! the same world size is bit-identical to an uninterrupted run; see
//! [`elastic`] and DESIGN.md's "Failure model & recovery contract".
//!
//! ## Observability
//!
//! Set `trace: TraceConfig::on()` and every rank records per-span
//! [`simgpu::trace::TraceEvent`]s (collectives, exchange phases, barrier
//! waits, injected straggler delays) into a lock-free ring buffer;
//! export with [`chrome_trace_json`] (open in `chrome://tracing`) or
//! [`TrainReport::steps_jsonl`]. Independent of tracing, each step's
//! simulated time carries an exact integer-picosecond
//! [`TimeAttribution`] split (compute / intra-node wire / inter-node
//! wire / overlapped / barrier-wait / skew / self-delay) that sums to
//! `sim_time_ps` on every rank. The step itself is an explicit op
//! [`schedule`] with critical-path timing: with `CommConfig::overlapped`
//! gradient buckets launch their collectives while later buckets'
//! compute still runs, the hidden comm lands in `overlapped_ps`, and
//! [`TrainReport::schedule_trace_json`] exports the two streams as
//! concurrent spans per rank.
//!
//! ## Fleet metrics
//!
//! Set `metrics: MetricsConfig::on()` and every rank feeds a
//! [`simgpu::MetricsRegistry`] — counters, gauges and log-bucketed
//! histograms whose cross-rank merge is *exact* (merged == pooled
//! samples) — while a [`metrics::HealthMonitor`] watches per-rank busy
//! time and flags stragglers as typed [`HealthEvent`]s naming the slow
//! rank. Rank 0's report carries the merged fleet registry; export it
//! as Prometheus text ([`simgpu::MetricsRegistry::prometheus_text`]) or
//! as a byte-stable [`RunSummary`] JSON
//! ([`TrainReport::run_summary`]) — the artifact the `bench-diff`
//! regression gate compares across runs. See DESIGN.md §13.

pub mod chaos;
pub mod checkpoint;
pub mod ckpt_disk;
pub mod config;
pub mod elastic;
pub mod eval;
pub mod exchange;
pub mod metrics;
pub mod schedule;
pub mod seeding;
pub mod trainer;

pub use chaos::ChaosPlan;
pub use checkpoint::{
    Checkpoint, CheckpointBackend, CheckpointError, CheckpointStore, CorruptCheckpoint,
    MemoryBackend, RecoveryScan,
};
pub use ckpt_disk::CheckpointDir;
pub use config::{
    CheckpointConfig, CommConfig, Method, MetricsConfig, ModelKind, TraceConfig, TrainConfig,
};
pub use elastic::{
    train_elastic, train_elastic_durable, train_elastic_with_memory, RecoveryPolicy, TrainOutcome,
};
pub use exchange::{
    exchange_and_apply, exchange_and_apply_traced, exchange_and_apply_with, ExchangeConfig,
    ExchangeScratch, ExchangeStats, PhaseTimings,
};
pub use metrics::{
    config_fingerprint, EpochMetrics, HealthEvent, HealthMonitor, RecoveryEvent, RunSummary,
    StepMetrics, StepObserver, StepSample, TimeAttribution, TrainReport, RUN_SUMMARY_SCHEMA,
};
pub use schedule::{CommOp, ScheduleOutcome};
pub use seeding::SeedStrategy;
pub use simgpu::{
    chrome_trace_json, chrome_trace_json_with_counters, sim_trace_json, BarrierDeadline, CommError,
    CounterTrack, DiskFault, DiskFaultPlan, FaultPlan, Histogram, MetricsRegistry, SimSpan,
    SimStream, SpanKind, TraceEvent, TraceLog, TraceRecorder,
};
pub use trainer::{
    train, train_checkpointed, train_with_faults, train_with_memory_limit, TrainError,
};
